#!/usr/bin/env python3
"""Check that relative Markdown links in README/docs resolve to real files.

Scans the repository's Markdown documentation for ``[text](target)`` links
and verifies every non-HTTP target (with any ``#fragment`` stripped) exists
relative to the file containing the link.  Exits non-zero listing the broken
links, so CI can gate on documentation staying consistent with the tree.

Usage::

    python tools/check_links.py [repo_root]
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: Markdown inline links; deliberately simple — our docs use no nested
#: brackets or titles inside the target parentheses.
LINK_RE = re.compile(r"\[[^\]]+\]\(([^)\s]+)\)")

#: Documentation files whose links are checked.
DOC_GLOBS = ("README.md", "docs/*.md", "ROADMAP.md", "CHANGES.md")


def iter_links(path: Path):
    """Yield every link target found in ``path``."""
    for match in LINK_RE.finditer(path.read_text(encoding="utf-8")):
        yield match.group(1)


def check_tree(root: Path):
    """Return the list of broken links as (file, target) pairs."""
    broken = []
    for pattern in DOC_GLOBS:
        for doc in sorted(root.glob(pattern)):
            for target in iter_links(doc):
                if target.startswith(("http://", "https://", "mailto:")):
                    continue
                path_part = target.split("#", 1)[0]
                if not path_part:  # pure in-page anchor
                    continue
                resolved = (doc.parent / path_part).resolve()
                if not resolved.exists():
                    broken.append((str(doc.relative_to(root)), target))
    return broken


def main(argv) -> int:
    root = Path(argv[1]) if len(argv) > 1 else Path(__file__).resolve().parent.parent
    broken = check_tree(root)
    if broken:
        print(f"{len(broken)} broken link(s):")
        for doc, target in broken:
            print(f"  {doc}: {target}")
        return 1
    print("all documentation links resolve")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
