#!/usr/bin/env python3
"""Check that relative Markdown links in README/docs resolve to real files.

Scans the repository's Markdown documentation for ``[text](target)`` links
and verifies every non-HTTP target (with any ``#fragment`` stripped) exists
relative to the file containing the link — and that a ``#fragment``, when
present, names a real heading of the target page (GitHub anchor slugs).
Exits non-zero listing the broken links, so CI can gate on documentation
staying consistent with the tree.

Usage::

    python tools/check_links.py [repo_root]
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Iterator, List, Set, Tuple

#: Markdown inline links; deliberately simple — our docs use no nested
#: brackets or titles inside the target parentheses.
LINK_RE = re.compile(r"\[[^\]]+\]\(([^)\s]+)\)")

#: ATX headings (``#`` .. ``######``) — the anchors GitHub generates.
HEADING_RE = re.compile(r"^#{1,6}\s+(.+?)\s*$", re.MULTILINE)

#: Documentation files whose links are checked.
DOC_GLOBS = ("README.md", "docs/*.md", "ROADMAP.md", "CHANGES.md")


def iter_links(path: Path) -> Iterator[str]:
    """Yield every link target found in ``path``."""
    for match in LINK_RE.finditer(path.read_text(encoding="utf-8")):
        yield match.group(1)


def slugify(heading: str) -> str:
    """GitHub's heading-to-anchor slug.

    Lowercase, backticks and punctuation stripped, each space turned into a
    hyphen (consecutive spaces are *not* collapsed, matching GitHub).
    """
    text = heading.strip().lower().replace("`", "")
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def page_anchors(path: Path) -> Set[str]:
    """All anchor slugs a Markdown page defines through its headings."""
    source = path.read_text(encoding="utf-8")
    # Fenced code blocks can contain ``#`` comment lines that are not
    # headings; drop them before scanning.
    source = re.sub(r"```.*?```", "", source, flags=re.DOTALL)
    return {slugify(m.group(1)) for m in HEADING_RE.finditer(source)}


def check_tree(root: Path) -> List[Tuple[str, str]]:
    """Return the list of broken links as (file, target) pairs."""
    broken = []
    for pattern in DOC_GLOBS:
        for doc in sorted(root.glob(pattern)):
            for target in iter_links(doc):
                if target.startswith(("http://", "https://", "mailto:")):
                    continue
                path_part, _, fragment = target.partition("#")
                resolved = (doc.parent / path_part).resolve() if path_part else doc
                if not resolved.exists():
                    broken.append((str(doc.relative_to(root)), target))
                    continue
                if fragment and resolved.suffix == ".md":
                    if fragment not in page_anchors(resolved):
                        broken.append((str(doc.relative_to(root)), target))
    return broken


def main(argv: List[str]) -> int:
    """Entry point: print broken links and return the exit code."""
    root = Path(argv[1]) if len(argv) > 1 else Path(__file__).resolve().parent.parent
    broken = check_tree(root)
    if broken:
        print(f"{len(broken)} broken link(s):")
        for doc, target in broken:
            print(f"  {doc}: {target}")
        return 1
    print("all documentation links resolve")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
