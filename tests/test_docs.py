"""Documentation consistency checks (links, required files, figure map)."""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

sys.path.insert(0, str(REPO_ROOT / "tools"))

from check_links import check_tree, page_anchors, slugify  # noqa: E402

REQUIRED_DOCS = (
    "docs/architecture.md",
    "docs/transports.md",
    "docs/pipelines.md",
    "docs/sweep-format.md",
    "docs/campaigns.md",
    "docs/figures.md",
    "docs/elastic.md",
    "docs/faults.md",
    "docs/perf-model.md",
    "docs/performance.md",
    "docs/static-analysis.md",
    "docs/tenants.md",
)

#: Packages whose public API must be fully docstringed (mirrors the ruff
#: ``D`` lint scope of the CI docs job).  ``lint`` covers the
#: interprocedural ``lint/flow`` package via the recursive glob.
DOCSTRINGED_PACKAGES = (
    "elastic",
    "faults",
    "workflow",
    "sweep",
    "campaign",
    "perfmodel",
    "lint",
    "tenants",
)

#: Top-level modules (not packages) held to the same docstring standard.
DOCSTRINGED_MODULES = ("sanitize",)


def test_required_docs_exist():
    for doc in REQUIRED_DOCS:
        assert (REPO_ROOT / doc).is_file(), f"missing {doc}"


def test_readme_links_every_doc():
    readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    for doc in REQUIRED_DOCS:
        assert doc in readme, f"README does not link {doc}"


def test_all_relative_links_resolve():
    broken = check_tree(REPO_ROOT)
    assert broken == [], f"broken documentation links: {broken}"


@pytest.mark.parametrize("package", DOCSTRINGED_PACKAGES)
def test_package_docstring_coverage(package):
    """Every module, class and public function in the package is documented.

    A stdlib approximation of the ruff ``D1xx`` rules the CI docs job
    enforces, so docstring coverage is also checked where ruff is absent.
    """
    import ast

    missing = []
    for path in sorted((REPO_ROOT / "src" / "repro" / package).rglob("*.py")):
        tree = ast.parse(path.read_text(encoding="utf-8"))
        if not ast.get_docstring(tree):
            missing.append(f"{path.name}: module")
        for node in ast.walk(tree):
            if not isinstance(
                node, (ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            if node.name.startswith("_"):
                continue
            if not ast.get_docstring(node):
                missing.append(f"{path.name}: {node.name}")
    assert missing == [], f"undocumented definitions in repro.{package}: {missing}"


def _docstring_gaps(paths):
    import ast

    missing = []
    for path in paths:
        tree = ast.parse(path.read_text(encoding="utf-8"))
        if not ast.get_docstring(tree):
            missing.append(f"{path.name}: module")
        for node in ast.walk(tree):
            if not isinstance(
                node, (ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            if node.name.startswith("_"):
                continue
            if not ast.get_docstring(node):
                missing.append(f"{path.name}: {node.name}")
    return missing


@pytest.mark.parametrize("module", DOCSTRINGED_MODULES)
def test_module_docstring_coverage(module):
    """Top-level modules (e.g. the sanitizer) meet the same docstring bar."""
    path = REPO_ROOT / "src" / "repro" / f"{module}.py"
    assert path.is_file(), f"missing src/repro/{module}.py"
    assert _docstring_gaps([path]) == []


def test_static_analysis_doc_catalogues_every_rule():
    """docs/static-analysis.md names every registered rule id and name."""
    from repro.lint import all_rules

    doc = (REPO_ROOT / "docs" / "static-analysis.md").read_text(encoding="utf-8")
    for rule in all_rules():
        assert rule.id in doc, f"{rule.id} missing from static-analysis.md"
        assert rule.name in doc, f"{rule.name} missing from static-analysis.md"


def test_anchor_slugs_match_github_convention():
    assert slugify("The flow certificate") == "the-flow-certificate"
    assert slugify("F — interprocedural flow") == "f--interprocedural-flow"
    assert slugify("Scope: model code vs measurement code") == (
        "scope-model-code-vs-measurement-code"
    )
    assert slugify("`repro.lint` suite") == "reprolint-suite"


def test_page_anchors_cover_known_headings():
    anchors = page_anchors(REPO_ROOT / "docs" / "static-analysis.md")
    assert "the-runtime-sanitizer" in anchors
    assert "f--interprocedural-flow" in anchors
    assert "suppression-syntax" in anchors


def test_broken_anchor_is_reported(tmp_path):
    page = tmp_path / "page.md"
    page.write_text("# Real Heading\n", encoding="utf-8")
    doc = tmp_path / "README.md"
    doc.write_text(
        "[ok](page.md#real-heading)\n[bad](page.md#no-such-heading)\n",
        encoding="utf-8",
    )
    broken = check_tree(tmp_path)
    assert broken == [("README.md", "page.md#no-such-heading")]


def test_figures_doc_names_real_grids_and_benches():
    import repro.bench.experiments as experiments

    figures = (REPO_ROOT / "docs" / "figures.md").read_text(encoding="utf-8")
    for spec_name in (
        "figure2_spec",
        "figure12_spec",
        "figure13_spec",
        "figure14_spec",
        "figure16_spec",
        "figure18_spec",
        "pipeline_shapes_spec",
        "elastic_vs_static_spec",
        "model_vs_threshold_spec",
        "fault_recovery_spec",
        "tenant_contention_spec",
    ):
        assert spec_name in figures, f"figures.md does not mention {spec_name}"
        assert hasattr(experiments, spec_name), f"{spec_name} vanished from experiments"
    for bench in sorted((REPO_ROOT / "benchmarks").glob("bench_*.py")):
        assert bench.name in figures, f"figures.md does not mention {bench.name}"
