"""Documentation consistency checks (links, required files, figure map)."""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

sys.path.insert(0, str(REPO_ROOT / "tools"))

from check_links import check_tree  # noqa: E402

REQUIRED_DOCS = (
    "docs/architecture.md",
    "docs/transports.md",
    "docs/pipelines.md",
    "docs/sweep-format.md",
    "docs/figures.md",
    "docs/elastic.md",
    "docs/perf-model.md",
    "docs/performance.md",
    "docs/static-analysis.md",
)

#: Packages whose public API must be fully docstringed (mirrors the ruff
#: ``D`` lint scope of the CI docs job).
DOCSTRINGED_PACKAGES = ("elastic", "workflow", "sweep", "perfmodel", "lint")


def test_required_docs_exist():
    for doc in REQUIRED_DOCS:
        assert (REPO_ROOT / doc).is_file(), f"missing {doc}"


def test_readme_links_every_doc():
    readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    for doc in REQUIRED_DOCS:
        assert doc in readme, f"README does not link {doc}"


def test_all_relative_links_resolve():
    broken = check_tree(REPO_ROOT)
    assert broken == [], f"broken documentation links: {broken}"


@pytest.mark.parametrize("package", DOCSTRINGED_PACKAGES)
def test_package_docstring_coverage(package):
    """Every module, class and public function in the package is documented.

    A stdlib approximation of the ruff ``D1xx`` rules the CI docs job
    enforces, so docstring coverage is also checked where ruff is absent.
    """
    import ast

    missing = []
    for path in sorted((REPO_ROOT / "src" / "repro" / package).rglob("*.py")):
        tree = ast.parse(path.read_text(encoding="utf-8"))
        if not ast.get_docstring(tree):
            missing.append(f"{path.name}: module")
        for node in ast.walk(tree):
            if not isinstance(
                node, (ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            if node.name.startswith("_"):
                continue
            if not ast.get_docstring(node):
                missing.append(f"{path.name}: {node.name}")
    assert missing == [], f"undocumented definitions in repro.{package}: {missing}"


def test_figures_doc_names_real_grids_and_benches():
    import repro.bench.experiments as experiments

    figures = (REPO_ROOT / "docs" / "figures.md").read_text(encoding="utf-8")
    for spec_name in (
        "figure2_spec",
        "figure12_spec",
        "figure13_spec",
        "figure14_spec",
        "figure16_spec",
        "figure18_spec",
        "pipeline_shapes_spec",
        "elastic_vs_static_spec",
        "model_vs_threshold_spec",
    ):
        assert spec_name in figures, f"figures.md does not mention {spec_name}"
        assert hasattr(experiments, spec_name), f"{spec_name} vanished from experiments"
    for bench in sorted((REPO_ROOT / "benchmarks").glob("bench_*.py")):
        assert bench.name in figures, f"figures.md does not mention {bench.name}"
