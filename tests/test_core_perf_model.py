"""Unit and property tests for the analytical performance model (Section 4.4)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    PerformanceModel,
    StageTimes,
    pipeline_makespan,
    pipeline_schedule,
    sequential_makespan,
)

GiB = 1024**3
MiB = 1024**2


def paper_model(**overrides):
    """The Figure 12 configuration: 1,568 sim cores, 784 analysis cores, 3,136 GB."""
    defaults = dict(
        P=1568,
        Q=784,
        total_data=3136 * GiB,
        block_size=1 * MiB,
        stage=StageTimes(compute=0.001, transfer=0.019, analysis=0.006),
    )
    defaults.update(overrides)
    return PerformanceModel(**defaults)


class TestPerformanceModel:
    def test_block_accounting(self):
        model = paper_model()
        assert model.num_blocks == 3136 * 1024
        assert model.blocks_per_simulation_core == pytest.approx(2048)
        assert model.blocks_per_analysis_core == pytest.approx(4096)

    def test_t2s_is_max_of_stages(self):
        model = paper_model()
        breakdown = model.breakdown()
        assert model.time_to_solution() == pytest.approx(
            max(breakdown["simulation"], breakdown["transfer"], breakdown["analysis"])
        )

    def test_dominant_stage_switches_with_compute_cost(self):
        transfer_bound = paper_model(stage=StageTimes(0.001, 0.019, 0.006))
        compute_bound = paper_model(stage=StageTimes(0.031, 0.019, 0.006))
        analysis_bound = paper_model(stage=StageTimes(0.001, 0.002, 0.011))
        assert transfer_bound.dominant_stage() == "transfer"
        assert compute_bound.dominant_stage() == "simulation"
        assert analysis_bound.dominant_stage() == "analysis"

    def test_preserve_mode_adds_store_stage(self):
        no_preserve = paper_model()
        preserve = paper_model(preserve=True, filesystem_bandwidth=23e9)
        assert preserve.time_to_solution() >= no_preserve.time_to_solution()
        assert preserve.dominant_stage() == "store"
        # 3,136 GiB at 23 GB/s is ≈ 146 s, matching Figure 13's ~135-145 s bars.
        assert preserve.store_time == pytest.approx(3136 * GiB / 23e9)

    def test_store_stage_ignored_without_preserve(self):
        assert paper_model().store_time == 0.0

    def test_relative_error(self):
        model = paper_model()
        assert model.relative_error(model.time_to_solution()) == pytest.approx(0.0)
        with pytest.raises(ValueError):
            model.relative_error(0.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"P": 0},
            {"Q": 0},
            {"total_data": 0},
            {"block_size": 0},
            {"filesystem_bandwidth": 0.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            paper_model(**kwargs)

    def test_stage_times_validation(self):
        with pytest.raises(ValueError):
            StageTimes(-0.1, 0, 0)


class TestPipelineFormulas:
    def test_known_values(self):
        assert sequential_makespan(10, [1.0, 2.0]) == pytest.approx(30.0)
        assert pipeline_makespan(10, [1.0, 2.0]) == pytest.approx(3.0 + 9 * 2.0)

    def test_single_block_equivalence(self):
        times = [0.5, 1.5, 0.25]
        assert pipeline_makespan(1, times) == pytest.approx(sequential_makespan(1, times))

    def test_validation(self):
        with pytest.raises(ValueError):
            pipeline_makespan(0, [1.0])
        with pytest.raises(ValueError):
            sequential_makespan(-1, [1.0])
        with pytest.raises(ValueError):
            pipeline_schedule(2, [1.0], stage_names=["a", "b"])

    @given(
        st.integers(1, 200),
        st.lists(st.floats(0.001, 10.0), min_size=1, max_size=6),
    )
    @settings(max_examples=80, deadline=None)
    def test_pipeline_never_slower_than_sequential(self, nblocks, times):
        assert pipeline_makespan(nblocks, times) <= sequential_makespan(nblocks, times) + 1e-9

    @given(
        st.integers(2, 100),
        st.lists(st.floats(0.001, 5.0), min_size=2, max_size=5),
    )
    @settings(max_examples=80, deadline=None)
    def test_pipeline_bounded_below_by_slowest_stage(self, nblocks, times):
        lower = nblocks * max(times)
        assert pipeline_makespan(nblocks, times) >= lower - 1e-9

    @given(st.integers(1, 50), st.lists(st.floats(0.01, 2.0), min_size=1, max_size=4))
    @settings(max_examples=50, deadline=None)
    def test_schedule_consistency(self, nblocks, times):
        schedule = pipeline_schedule(nblocks, times)
        # The schedule's total span equals the closed-form makespan.
        end = max(interval[1] for entry in schedule for interval in entry.values())
        assert end == pytest.approx(pipeline_makespan(nblocks, times))
        # Within each block the stages are ordered; within each stage the
        # blocks never overlap.
        for entry in schedule:
            intervals = list(entry.values())
            for (s0, e0), (s1, e1) in zip(intervals, intervals[1:]):
                assert s1 >= e0 - 1e-12
        nstages = len(times)
        for stage_idx in range(nstages):
            stage_name = f"stage{stage_idx}"
            windows = sorted(entry[stage_name] for entry in schedule)
            for (s0, e0), (s1, e1) in zip(windows, windows[1:]):
                assert s1 >= e0 - 1e-12
