"""The continuous-benchmark harness: suites, BENCH_*.json persistence, CLI."""

from __future__ import annotations

import json

import pytest

from repro.bench.harness import (
    SUITES,
    BenchResult,
    bench_path,
    best_result,
    compare,
    load_history,
    load_result,
    run_suite,
    suite_cases,
    write_result,
)
from repro.bench.__main__ import main as bench_main


def make_result(events_per_sec=100_000.0, **overrides):
    fields = dict(
        suite="smoke",
        wall_seconds=1.0,
        events_processed=100_000,
        events_per_sec=events_per_sec,
        scenarios=2,
        failed_scenarios=0,
        sim_seconds=10.0,
        timestamp="2026-01-01T00:00:00",
    )
    fields.update(overrides)
    return BenchResult(**fields)


class TestSuites:
    def test_known_suites(self):
        assert {"pipeline", "smoke", "elastic"} <= set(SUITES)

    def test_suite_cases_expand(self):
        cases = suite_cases("smoke")
        assert [label for label, _ in cases] == ["chain/384", "fanout/384"]

    def test_unknown_suite_raises(self):
        with pytest.raises(ValueError):
            suite_cases("nope")

    def test_run_smoke_suite(self):
        result = run_suite("smoke", repeats=1)
        assert result.scenarios == 2
        assert result.failed_scenarios == 0
        assert result.events_processed > 10_000
        assert result.events_per_sec > 0
        assert result.sim_seconds > 0
        # events_processed is a *model* count: bit-stable run over run.
        again = run_suite("smoke", repeats=1)
        assert again.events_processed == result.events_processed

    def test_repeats_scale_the_measurement(self):
        one = run_suite("smoke", repeats=1)
        two = run_suite("smoke", repeats=2)
        assert two.events_processed == 2 * one.events_processed
        assert two.scenarios == 2 * one.scenarios


class TestPersistence:
    def test_write_and_load_roundtrip(self, tmp_path):
        path = bench_path("smoke", tmp_path)
        assert path.name == "BENCH_smoke.json"
        write_result(make_result(), path)
        loaded = load_result(path)
        assert loaded is not None
        assert loaded.events_per_sec == 100_000.0
        assert json.loads(path.read_text())["suite"] == "smoke"

    def test_write_records_the_replaced_baseline(self, tmp_path):
        path = bench_path("smoke", tmp_path)
        previous = make_result(events_per_sec=50_000.0)
        write_result(make_result(events_per_sec=100_000.0), path, previous=previous)
        loaded = load_result(path)
        assert loaded.previous_events_per_sec == 50_000.0
        assert loaded.speedup_vs_previous == pytest.approx(2.0)

    def test_load_tolerates_missing_and_corrupt_files(self, tmp_path):
        assert load_result(tmp_path / "absent.json") is None
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert load_result(bad) is None
        bad.write_text('["a list"]')
        assert load_result(bad) is None

    def test_load_ignores_unknown_fields(self, tmp_path):
        path = tmp_path / "BENCH_smoke.json"
        payload = make_result().as_dict()
        payload["future_field"] = 42
        path.write_text(json.dumps(payload))
        assert load_result(path) is not None

    def test_history_appends_instead_of_overwriting(self, tmp_path):
        path = bench_path("smoke", tmp_path)
        write_result(make_result(events_per_sec=50_000.0), path)
        write_result(make_result(events_per_sec=80_000.0), path)
        write_result(make_result(events_per_sec=60_000.0), path)
        history = load_history(path)
        assert [e.events_per_sec for e in history] == [50_000.0, 80_000.0, 60_000.0]
        # load_result is the latest entry; the speedup chain runs entry to entry.
        latest = load_result(path)
        assert latest.events_per_sec == 60_000.0
        assert latest.previous_events_per_sec == 80_000.0
        assert latest.speedup_vs_previous == pytest.approx(0.75)

    def test_legacy_one_slot_file_loads_as_single_entry_history(self, tmp_path):
        path = bench_path("smoke", tmp_path)
        path.write_text(json.dumps(make_result(events_per_sec=42.0).as_dict()))
        history = load_history(path)
        assert [e.events_per_sec for e in history] == [42.0]
        # Appending migrates the file to the history schema in place.
        write_result(make_result(events_per_sec=84.0), path)
        assert [e.events_per_sec for e in load_history(path)] == [42.0, 84.0]
        assert json.loads(path.read_text())["suite"] == "smoke"

    def test_history_is_trimmed_to_the_limit(self, tmp_path):
        path = bench_path("smoke", tmp_path)
        for i in range(5):
            write_result(make_result(events_per_sec=float(i + 1)), path, limit=3)
        assert [e.events_per_sec for e in load_history(path)] == [3.0, 4.0, 5.0]

    def test_best_result_picks_the_fastest_entry(self):
        assert best_result([]) is None
        entries = [
            make_result(events_per_sec=50_000.0),
            make_result(events_per_sec=90_000.0, timestamp="2026-01-02T00:00:00"),
            make_result(events_per_sec=70_000.0),
        ]
        assert best_result(entries).timestamp == "2026-01-02T00:00:00"


class TestCompare:
    def test_no_baseline_is_neutral(self):
        assert compare(make_result(), None) == {"speedup": 0.0, "regression_pct": 0.0}

    def test_speedup_and_regression_math(self):
        current = make_result(events_per_sec=80_000.0)
        previous = make_result(events_per_sec=100_000.0)
        delta = compare(current, previous)
        assert delta["speedup"] == pytest.approx(0.8)
        assert delta["regression_pct"] == pytest.approx(20.0)
        assert compare(previous, current)["regression_pct"] == 0.0


class TestCli:
    def test_update_creates_the_baseline(self, tmp_path, capsys):
        code = bench_main(
            ["--suite", "smoke", "--repeats", "1", "--bench-dir", str(tmp_path), "--update"]
        )
        assert code == 0
        assert (tmp_path / "BENCH_smoke.json").exists()
        assert "wrote" in capsys.readouterr().out

    def test_check_fails_on_regression_beyond_threshold(self, tmp_path, capsys):
        # An absurdly fast committed baseline makes any real run a regression.
        write_result(
            make_result(events_per_sec=1e12), bench_path("smoke", tmp_path)
        )
        code = bench_main(
            ["--suite", "smoke", "--repeats", "1", "--bench-dir", str(tmp_path), "--check"]
        )
        assert code == 1
        assert "regressed" in capsys.readouterr().out

    def test_check_gates_against_best_not_latest(self, tmp_path, capsys):
        # A fast early entry followed by a slow latest one: a latest-based
        # check would pass, but the gate must hold the line at the best.
        path = bench_path("smoke", tmp_path)
        write_result(make_result(events_per_sec=1e12), path)
        write_result(make_result(events_per_sec=1.0), path)
        code = bench_main(
            ["--suite", "smoke", "--repeats", "1", "--bench-dir", str(tmp_path), "--check"]
        )
        assert code == 1
        assert "best recorded" in capsys.readouterr().out

    def test_check_passes_against_a_slow_baseline(self, tmp_path):
        write_result(make_result(events_per_sec=1.0), bench_path("smoke", tmp_path))
        code = bench_main(
            ["--suite", "smoke", "--repeats", "1", "--bench-dir", str(tmp_path), "--check"]
        )
        assert code == 0

    def test_check_events_fails_on_model_change(self, tmp_path, capsys):
        # A baseline whose event count cannot match the real suite: the
        # machine-independent gate must trip regardless of wall clock.
        write_result(
            make_result(events_per_sec=1.0, events_processed=123),
            bench_path("smoke", tmp_path),
        )
        code = bench_main(
            [
                "--suite", "smoke", "--repeats", "1",
                "--bench-dir", str(tmp_path), "--check-events",
            ]
        )
        assert code == 1
        assert "events_processed changed" in capsys.readouterr().out

    def test_check_events_passes_when_counts_match(self, tmp_path):
        real = run_suite("smoke", repeats=1)
        write_result(
            make_result(events_per_sec=1e12, events_processed=real.events_processed),
            bench_path("smoke", tmp_path),
        )
        code = bench_main(
            [
                "--suite", "smoke", "--repeats", "1",
                "--bench-dir", str(tmp_path), "--check-events",
            ]
        )
        assert code == 0
