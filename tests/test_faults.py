"""The fault-injection subsystem: plan vocabulary, injector wiring, recovery model.

The headline contracts — ``FaultPlan.none()`` bit-identity across every
transport and coalesce-mode identity under an active plan — live in
``tests/test_fastpath.py`` next to the other engine-identity suites; the
property-based invariants live in ``tests/test_invariants.py``.  This module
covers the unit layer underneath: spec/plan validation, seeded-plan
determinism, injector construction, the checkpoint/recovery cost model, and
the degraded-node bookkeeping the elastic layer keys off.
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import (
    elastic_burst_pipeline,
    elastic_default_policy,
    fault_recovery_spec,
)
from repro.cluster.machine import Cluster
from repro.cluster.presets import bridges
from repro.faults import KINDS, WINDOWED_KINDS, FaultEvent, FaultPlan, FaultSpec
from repro.workflow.pipeline import PipelineSpec
from repro.workflow.runner import (
    PipelineRunner,
    pipeline_simulation_only_time,
    run_pipeline,
)


def bursty(**overrides) -> PipelineSpec:
    return elastic_burst_pipeline(sim_cores=192, steps=12).replace(**overrides)


def seeded_plan(pipeline: PipelineSpec, **kwargs) -> FaultPlan:
    defaults = dict(
        horizon=pipeline_simulation_only_time(pipeline),
        couplings=(pipeline.couplings[0].name,),
    )
    defaults.update(kwargs)
    return FaultPlan.seeded("test-faults", ("simulation",), **defaults)


class TestFaultSpecValidation:
    def test_known_kinds_only(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(kind="gamma_ray", time=1.0, target="simulation")

    def test_windowed_kinds_need_a_duration(self):
        for kind in WINDOWED_KINDS:
            severity = 4.0 if kind == "straggler" else 0.5
            with pytest.raises(ValueError, match="positive duration"):
                FaultSpec(kind=kind, time=1.0, target="x", severity=severity)

    def test_crash_duration_is_computed_not_specified(self):
        with pytest.raises(ValueError, match="duration must stay 0"):
            FaultSpec(kind="node_crash", time=1.0, target="x", duration=2.0)

    def test_straggler_severity_is_a_slowdown(self):
        with pytest.raises(ValueError, match="slowdown factor"):
            FaultSpec(kind="straggler", time=1.0, target="x", duration=1.0, severity=0.5)

    def test_bandwidth_severity_stays_in_unit_interval(self):
        for kind in ("link_degrade", "transport_restart"):
            with pytest.raises(ValueError, match="bandwidth scale"):
                FaultSpec(kind=kind, time=1.0, target="x", duration=1.0, severity=1.5)

    def test_negative_time_and_rank_rejected(self):
        with pytest.raises(ValueError, match="time"):
            FaultSpec(kind="node_crash", time=-1.0, target="x")
        with pytest.raises(ValueError, match="rank"):
            FaultSpec(kind="node_crash", time=1.0, target="x", rank=-1)


class TestFaultPlan:
    def test_none_plan_is_empty(self):
        plan = FaultPlan.none()
        assert plan.empty
        assert plan.specs == ()

    def test_specs_coerced_to_tuple(self):
        spec = FaultSpec(kind="node_crash", time=1.0, target="x")
        plan = FaultPlan(specs=[spec])
        assert isinstance(plan.specs, tuple)

    def test_negative_recovery_cost_rejected(self):
        with pytest.raises(ValueError, match="recovery_seconds"):
            FaultPlan(recovery_seconds=-0.1)

    def test_seeded_is_deterministic_per_label_and_seed(self):
        kwargs = dict(horizon=10.0, couplings=("a->b",))
        one = FaultPlan.seeded("det", ("sim",), **kwargs)
        two = FaultPlan.seeded("det", ("sim",), **kwargs)
        assert one == two
        assert FaultPlan.seeded("det", ("sim",), seed=2, **kwargs) != one
        assert FaultPlan.seeded("other", ("sim",), **kwargs) != one

    def test_seeded_draws_every_requested_kind_inside_the_horizon(self):
        plan = FaultPlan.seeded(
            "counts", ("sim",), horizon=10.0, couplings=("a->b",),
            crashes=2, stragglers=3, degradations=1, restarts=2,
        )
        by_kind = {kind: 0 for kind in KINDS}
        for spec in plan.specs:
            by_kind[spec.kind] += 1
            assert 0.0 <= spec.time <= 10.0
        assert by_kind == {
            "node_crash": 2, "straggler": 3, "link_degrade": 1, "transport_restart": 2,
        }
        assert list(plan.specs) == sorted(plan.specs, key=lambda s: s.time)

    def test_seeded_validates_its_inputs(self):
        with pytest.raises(ValueError, match="horizon"):
            FaultPlan.seeded("bad", ("sim",), horizon=0.0)
        with pytest.raises(ValueError, match="at least one stage"):
            FaultPlan.seeded("bad", (), horizon=1.0)
        with pytest.raises(ValueError, match="no couplings"):
            FaultPlan.seeded("bad", ("sim",), horizon=1.0, restarts=1)


class TestFaultEventRoundTrip:
    def test_as_dict_from_dict_is_exact(self):
        event = FaultEvent(
            time=1.25, kind="node_crash", action="inject", target="simulation",
            detail={"node": 3.0, "rank": 1.0, "downtime": 0.75},
        )
        assert FaultEvent.from_dict(event.as_dict()) == event


class TestInjectorWiring:
    def test_no_plan_and_none_plan_create_no_injector(self):
        assert PipelineRunner(bursty()).fault_injector is None
        assert PipelineRunner(bursty(faults=FaultPlan.none())).fault_injector is None

    def test_active_plan_creates_an_injector(self):
        pipeline = bursty()
        runner = PipelineRunner(pipeline.replace(faults=seeded_plan(pipeline)))
        assert runner.fault_injector is not None

    def test_unknown_stage_target_fails_at_construction(self):
        plan = FaultPlan(specs=(FaultSpec(kind="node_crash", time=1.0, target="nope"),))
        with pytest.raises(ValueError, match="unknown stage"):
            PipelineRunner(bursty(faults=plan))

    def test_unknown_coupling_target_fails_at_construction(self):
        plan = FaultPlan(
            specs=(
                FaultSpec(
                    kind="transport_restart", time=1.0, target="a->b",
                    duration=1.0, severity=0.5,
                ),
            )
        )
        with pytest.raises(ValueError, match="unknown coupling"):
            PipelineRunner(bursty(faults=plan))

    def test_seeded_run_reproduces_the_exact_timeline(self):
        pipeline = bursty()
        pipeline = pipeline.replace(faults=seeded_plan(pipeline))
        first = run_pipeline(pipeline)
        second = run_pipeline(pipeline)
        assert first.faults, "the plan must actually fire"
        assert first.faults == second.faults
        assert first.end_to_end_time == second.end_to_end_time

    def test_windowed_faults_recover_in_pairs(self):
        pipeline = bursty()
        pipeline = pipeline.replace(faults=seeded_plan(pipeline))
        result = run_pipeline(pipeline)
        for kind in KINDS:
            injects = [e for e in result.faults if e.kind == kind and e.action == "inject"]
            recovers = [e for e in result.faults if e.kind == kind and e.action == "recover"]
            assert len(injects) == len(recovers) == 1


class TestCheckpointRecoveryModel:
    def downtimes(self, interval):
        base = elastic_burst_pipeline(sim_cores=192, steps=12)
        stages = tuple(
            s.replace(checkpoint_interval=interval) if s.name == "simulation" else s
            for s in base.stages
        )
        plan = seeded_plan(base, stragglers=0, degradations=0, restarts=0)
        result = run_pipeline(base.replace(stages=stages, faults=plan))
        return [
            e.detail["downtime"]
            for e in result.faults
            if e.kind == "node_crash" and e.action == "inject"
        ]

    def test_checkpoint_interval_validation(self):
        base = elastic_burst_pipeline(sim_cores=192, steps=12)
        with pytest.raises(ValueError, match="checkpoint_interval"):
            base.stages[0].replace(checkpoint_interval=0)

    def test_downtime_grows_with_the_checkpoint_interval(self):
        by_interval = {i: max(self.downtimes(i)) for i in (1, 4, None)}
        assert by_interval[1] <= by_interval[4] <= by_interval[None]
        assert by_interval[1] < by_interval[None]

    def test_downtime_floor_is_the_plan_recovery_cost(self):
        assert min(self.downtimes(1)) >= 0.25


class TestDegradedNodeBookkeeping:
    def test_fault_scale_composes_into_the_node_rate(self):
        node = Cluster(bridges(), num_nodes=1).node(0)
        node.set_allocation_scale(2.0)
        node.set_fault_scale(0.25)
        assert node.fault_scale == 0.25
        assert node._rate == pytest.approx(node.spec.core_speed * 2.0 * 0.25)
        node.set_fault_scale(1.0)
        assert node._rate == pytest.approx(node.spec.core_speed * 2.0)

    def test_fault_scale_must_be_positive(self):
        node = Cluster(bridges(), num_nodes=1).node(0)
        with pytest.raises(ValueError):
            node.set_fault_scale(0.0)

    def test_elastic_run_reroutes_around_the_same_plan(self):
        """With the identical fault schedule, elastic control beats static."""
        cases = dict(fault_recovery_spec(steps=12, checkpoint_intervals=(4,)).configs())
        static = run_pipeline(cases["static/ckpt-4"])
        elastic = run_pipeline(cases["elastic/ckpt-4"])
        assert static.faults and len(static.faults) == len(elastic.faults)
        assert elastic.end_to_end_time < static.end_to_end_time

    def test_monitor_reports_the_degraded_fraction(self):
        pipeline = bursty(elastic=elastic_default_policy())
        plan = seeded_plan(pipeline, crashes=0, degradations=0, restarts=0)
        runner = PipelineRunner(pipeline.replace(faults=plan))
        result = runner.run()
        straggles = [e for e in result.faults if e.kind == "straggler"]
        assert len(straggles) == 2  # inject + recover
        # After the run the window has closed again.
        assert not any(
            runner.cluster.node(i).degraded for i in range(len(runner.cluster.nodes))
        )
