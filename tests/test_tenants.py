"""Unit tests of the multi-tenant layer: vocabulary, policies, timelines.

The cross-layer contracts (bit-identity, conservation, reproducibility)
live in ``test_invariants.py`` and ``test_fastpath.py``; this file covers
the tenant vocabulary itself — arrival processes, job/facility validation,
the water-filling allocator — and the scheduler's observable behaviour:
FCFS head-of-line blocking, fair-share admission, the recorded job
timeline and the facility-level result.
"""

from __future__ import annotations

import math

import pytest

from repro.bench.experiments import elastic_burst_pipeline
from repro.sweep.spec import config_hash
from repro.tenants import (
    EVENT_KINDS,
    POLICIES,
    ArrivalProcess,
    JobSpec,
    TenantScheduler,
    TenantSpec,
    jain_index,
    job_queue,
    run_tenants,
    water_fill,
)


def small_pipeline(steps: int = 2, total_cores: int = 128):
    return elastic_burst_pipeline(
        sim_cores=(total_cores * 2) // 3,
        total_cores=total_cores,
        steps=steps,
        representative_sim_ranks=4,
    )


# -- arrival processes --------------------------------------------------------
class TestArrivalProcess:
    def test_fixed_replays_its_times_and_ignores_the_seed(self):
        process = ArrivalProcess.fixed(0.0, 1.5, 3.0)
        assert process.arrival_times("a", seed=1) == (0.0, 1.5, 3.0)
        assert process.arrival_times("a", seed=99) == (0.0, 1.5, 3.0)

    def test_fixed_rejects_unsorted_and_negative_times(self):
        with pytest.raises(ValueError):
            ArrivalProcess.fixed(2.0, 1.0)
        with pytest.raises(ValueError):
            ArrivalProcess.fixed(-1.0)
        with pytest.raises(ValueError):
            ArrivalProcess.fixed()

    def test_seeded_draws_reproduce_and_decorrelate(self):
        process = ArrivalProcess.poisson(count=5, rate=2.0, start=1.0)
        first = process.arrival_times("tenant", seed=7)
        assert first == process.arrival_times("tenant", seed=7)
        assert first != process.arrival_times("tenant", seed=8)
        assert first != process.arrival_times("other", seed=7)
        assert len(first) == 5
        assert all(t >= 1.0 for t in first)
        assert list(first) == sorted(first)

    def test_bursty_first_burst_lands_at_start(self):
        process = ArrivalProcess.bursty(count=5, rate=1.0, burst_size=2, start=0.5)
        times = process.arrival_times("tenant", seed=3)
        assert len(times) == 5
        assert times[0] == times[1] == 0.5
        assert list(times) == sorted(times)

    def test_validation_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            ArrivalProcess.poisson(count=0, rate=1.0)
        with pytest.raises(ValueError):
            ArrivalProcess.poisson(count=1, rate=0.0)
        with pytest.raises(ValueError):
            ArrivalProcess.bursty(count=1, rate=1.0, burst_size=0)
        with pytest.raises(ValueError):
            ArrivalProcess(kind="uniform")


# -- jobs and facilities ------------------------------------------------------
class TestJobSpec:
    def test_demand_is_the_pipeline_core_count(self):
        job = JobSpec("a/0", "a", small_pipeline(total_cores=128))
        assert job.demand == 128

    def test_validation(self):
        pipeline = small_pipeline()
        with pytest.raises(ValueError):
            JobSpec("", "a", pipeline)
        with pytest.raises(ValueError):
            JobSpec("a/0", "", pipeline)
        with pytest.raises(ValueError):
            JobSpec("a/0", "a", "not a pipeline")
        with pytest.raises(ValueError):
            JobSpec("a/0", "a", pipeline, arrival=-1.0)
        with pytest.raises(ValueError):
            JobSpec("a/0", "a", pipeline, weight=0.0)

    def test_job_queue_names_and_orders_by_arrival(self):
        jobs = job_queue(
            "burst",
            small_pipeline(),
            ArrivalProcess.poisson(count=3, rate=1.0),
            weight=2.0,
            seed=5,
        )
        assert [job.name for job in jobs] == ["burst/0", "burst/1", "burst/2"]
        assert all(job.tenant == "burst" and job.weight == 2.0 for job in jobs)
        assert [job.arrival for job in jobs] == sorted(job.arrival for job in jobs)


class TestTenantSpec:
    def test_capacity_defaults_to_the_largest_job(self):
        spec = TenantSpec(jobs=(JobSpec("a/0", "a", small_pipeline(total_cores=128)),))
        assert spec.capacity == 128
        assert spec.replace(capacity_cores=384).capacity == 384

    def test_tenants_keep_first_appearance_order(self):
        pipeline = small_pipeline()
        spec = TenantSpec(
            jobs=(
                JobSpec("b/0", "b", pipeline),
                JobSpec("a/0", "a", pipeline),
                JobSpec("b/1", "b", pipeline),
            )
        )
        assert spec.tenants == ("b", "a")

    def test_validation(self):
        pipeline = small_pipeline(total_cores=128)
        job = JobSpec("a/0", "a", pipeline)
        with pytest.raises(ValueError):
            TenantSpec(jobs=())
        with pytest.raises(ValueError):
            TenantSpec(jobs=(job, JobSpec("a/0", "b", pipeline)))
        with pytest.raises(ValueError):
            TenantSpec(jobs=(job,), policy="lottery")
        with pytest.raises(ValueError):
            TenantSpec(jobs=(job,), capacity_cores=64)
        with pytest.raises(ValueError):
            TenantSpec(jobs=(job,), epoch_seconds=0.0)

    def test_hashes_like_every_other_sweep_config(self):
        job = JobSpec("a/0", "a", small_pipeline())
        spec = TenantSpec(jobs=(job,), label="x")
        assert config_hash(spec) == config_hash(TenantSpec(jobs=(job,), label="x"))
        assert config_hash(spec) != config_hash(spec.replace(policy="fcfs"))


# -- the allocator and the fairness metric ------------------------------------
class TestWaterFill:
    def test_uncontended_grants_equal_demands(self):
        grants = water_fill({"a": 100.0, "b": 50.0}, {"a": 1.0, "b": 1.0}, 384.0)
        assert grants == {"a": 100.0, "b": 50.0}

    def test_contended_equal_weights_split_evenly(self):
        grants = water_fill({"a": 300.0, "b": 300.0}, {"a": 1.0, "b": 1.0}, 384.0)
        assert grants == {"a": 192.0, "b": 192.0}

    def test_weights_tilt_the_split(self):
        grants = water_fill({"a": 300.0, "b": 300.0}, {"a": 2.0, "b": 1.0}, 300.0)
        assert grants["a"] == pytest.approx(200.0)
        assert grants["b"] == pytest.approx(100.0)

    def test_capped_surplus_is_redistributed(self):
        grants = water_fill(
            {"a": 50.0, "b": 300.0, "c": 300.0},
            {"a": 1.0, "b": 1.0, "c": 1.0},
            350.0,
        )
        assert grants["a"] == 50.0
        assert grants["b"] == pytest.approx(150.0)
        assert grants["c"] == pytest.approx(150.0)

    def test_grants_conserve_the_wet_capacity(self):
        demands = {"a": 120.0, "b": 77.0, "c": 345.0, "d": 8.0}
        weights = {"a": 1.0, "b": 3.0, "c": 0.5, "d": 2.0}
        for capacity in (64.0, 384.0, 1000.0):
            grants = water_fill(demands, weights, capacity)
            wet = min(capacity, sum(demands.values()))
            assert math.fsum(grants.values()) == pytest.approx(wet)
            assert all(0.0 <= grants[n] <= demands[n] for n in demands)


class TestJainIndex:
    def test_equal_values_are_perfectly_fair(self):
        assert jain_index([2.0, 2.0, 2.0]) == pytest.approx(1.0)
        assert jain_index([]) == 1.0

    def test_one_starved_flow_bounds_below(self):
        assert jain_index([1.0, 0.0, 0.0]) == pytest.approx(1.0 / 3.0)


# -- the scheduler ------------------------------------------------------------
class TestTenantScheduler:
    def contended_spec(self, policy: str) -> TenantSpec:
        heavy = small_pipeline(steps=4, total_cores=320)
        light = small_pipeline(steps=2, total_cores=128)
        return TenantSpec(
            jobs=(
                JobSpec("heavy/0", "heavy", heavy, arrival=0.0),
                JobSpec("light/0", "light", light, arrival=0.5),
            ),
            policy=policy,
            capacity_cores=384,
            epoch_seconds=0.25,
        )

    def test_fcfs_blocks_behind_the_head_of_line(self):
        scheduler = TenantScheduler(self.contended_spec("fcfs"))
        scheduler.run()
        events = {(e.kind, e.job): e for e in scheduler.timeline}
        heavy_done = events[("completed", "heavy/0")]
        light_admitted = events[("admitted", "light/0")]
        # 64 free cores cannot fit the 128-core job until the 320-core job
        # completes, so its admission waits for the full head-of-line time.
        assert light_admitted.time >= heavy_done.time
        assert light_admitted.detail["wait"] > 0.0
        assert not any(e.kind == "share" for e in scheduler.timeline)

    def test_fair_admits_at_the_next_boundary_and_scales_shares(self):
        spec = self.contended_spec("fair")
        scheduler = TenantScheduler(spec)
        result = scheduler.run()
        events = {(e.kind, e.job): e for e in scheduler.timeline}
        light_admitted = events[("admitted", "light/0")]
        # Arrival 0.5 is exactly two epochs in: admission happens there, not
        # after the heavy job finishes.
        assert light_admitted.time == pytest.approx(0.5)
        shares = [e for e in scheduler.timeline if e.kind == "share"]
        assert shares, "contention must rescale at least one share"
        for event in shares:
            assert 0.0 < event.detail["share"] <= 1.0
            assert event.detail["grant"] <= event.detail["demand"]
        assert not result.failed

    def test_timeline_is_ordered_and_walks_the_lifecycle(self):
        scheduler = TenantScheduler(self.contended_spec("fair"))
        scheduler.run()
        times = [e.time for e in scheduler.timeline]
        assert times == sorted(times)
        assert {e.kind for e in scheduler.timeline} <= set(EVENT_KINDS)
        for job in ("heavy/0", "light/0"):
            kinds = [e.kind for e in scheduler.timeline if e.job == job]
            assert kinds[0] == "queued"
            assert kinds[-1] == "completed"
            assert kinds.count("queued") == kinds.count("admitted") == 1

    @pytest.mark.parametrize("policy", POLICIES)
    def test_facility_result_aggregates_per_tenant(self, policy):
        result = run_tenants(self.contended_spec(policy))
        assert result.transport == "tenants"
        assert result.total_cores == 384
        assert result.stats["jobs"] == 2.0
        assert result.stats["jobs_failed"] == 0.0
        assert result.stats["scheduler_events"] > 0
        assert result.stats["aggregate_slowdown"] >= 1.0
        assert 0.0 < result.stats["fairness_jain"] <= 1.0
        for tenant in ("heavy", "light"):
            assert result.stats[f"tenant/{tenant}/jobs"] == 1.0
            assert result.stats[f"tenant/{tenant}/makespan"] > 0.0
            assert result.stats[f"tenant/{tenant}/mean_slowdown"] >= 1.0
        assert result.jobs == sorted(result.jobs, key=lambda e: e.time)

    def test_weights_bias_the_fair_split(self):
        # Two equally hungry 320-core jobs on 384 cores: neither offer is
        # capped, so the water level tracks the weights exactly.
        heavy = small_pipeline(steps=3, total_cores=320)

        def facility(weight_b: float) -> TenantSpec:
            return TenantSpec(
                jobs=(
                    JobSpec("a/0", "a", heavy, arrival=0.0),
                    JobSpec("b/0", "b", heavy, arrival=0.0, weight=weight_b),
                ),
                policy="fair",
                capacity_cores=384,
                epoch_seconds=0.25,
            )

        def first_share(spec: TenantSpec, job: str) -> float:
            scheduler = TenantScheduler(spec)
            scheduler.run()
            shares = [
                e.detail["share"]
                for e in scheduler.timeline
                if e.kind == "share" and e.job == job
            ]
            return shares[0] if shares else 1.0

        assert first_share(facility(1.0), "b/0") == pytest.approx(192.0 / 320.0)
        assert first_share(facility(2.0), "b/0") == pytest.approx(256.0 / 320.0)

    def test_baselines_feed_the_slowdown_denominator(self):
        scheduler = TenantScheduler(self.contended_spec("fair"))
        scheduler.run()
        assert set(scheduler.baseline_times) == {"heavy/0", "light/0"}
        assert all(t > 0 for t in scheduler.baseline_times.values())
