"""Unit tests for cluster specifications and machine presets."""

from __future__ import annotations

import pytest

from repro.cluster import FileSystemSpec, NetworkSpec, NodeSpec
from repro.cluster.presets import bridges, laptop, stampede2
from repro.cluster.spec import GiB


class TestNodeSpec:
    def test_defaults_valid(self):
        spec = NodeSpec()
        assert spec.cores == 28
        assert spec.memory_bytes == 128 * GiB

    @pytest.mark.parametrize("field,value", [("cores", 0), ("memory_bytes", 0), ("core_speed", 0.0)])
    def test_invalid_values_rejected(self, field, value):
        with pytest.raises(ValueError):
            NodeSpec(**{field: value})


class TestNetworkSpec:
    def test_defaults_valid(self):
        spec = NetworkSpec()
        assert spec.link_bandwidth > 0
        assert spec.flit_bytes == 8

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"link_bandwidth": -1},
            {"ports_per_leaf": 0},
            {"core_links_per_leaf": 0},
            {"congestion_alpha": -0.1},
            {"max_congestion_penalty": 0.5},
            {"flit_bytes": 0},
            {"latency": -1e-6},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            NetworkSpec(**kwargs)


class TestFileSystemSpec:
    def test_aggregate_bandwidth(self):
        spec = FileSystemSpec(num_osts=10, ost_bandwidth=1e9, background_load=0.5, job_share=0.5)
        assert spec.aggregate_bandwidth == pytest.approx(10 * 1e9 * 0.5 * 0.5)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_osts": 0},
            {"ost_bandwidth": 0},
            {"client_node_bandwidth": 0},
            {"background_load": 1.0},
            {"background_load": -0.1},
            {"stripe_size": 0},
            {"fabric_weight": 1.5},
            {"job_share": 0.0},
            {"service_cv": -1.0},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FileSystemSpec(**kwargs)


class TestClusterSpec:
    def test_nodes_for_cores(self):
        spec = bridges()
        assert spec.nodes_for_cores(1) == 1
        assert spec.nodes_for_cores(28) == 1
        assert spec.nodes_for_cores(29) == 2
        assert spec.nodes_for_cores(13056 // 2) == pytest.approx(234, abs=1)

    def test_nodes_for_cores_invalid(self):
        with pytest.raises(ValueError):
            bridges().nodes_for_cores(0)

    def test_with_seed(self):
        spec = bridges()
        assert spec.with_seed(99).seed == 99
        assert spec.seed != 99 or spec.with_seed(99) is not spec


class TestPresets:
    def test_bridges_matches_paper_description(self):
        spec = bridges()
        assert spec.node.cores == 28                      # 2x 14-core Haswell
        assert spec.node.memory_bytes == 128 * GiB
        assert spec.max_nodes == 168                      # 4,704-core job limit
        assert spec.network.link_bandwidth == pytest.approx(12.5e9)

    def test_stampede2_matches_paper_description(self):
        spec = stampede2()
        assert spec.node.cores == 68                      # KNL
        assert spec.node.memory_bytes == 96 * GiB
        assert spec.node.core_speed < 1.0                 # slower per core than Haswell
        assert spec.max_nodes == 4200

    def test_laptop_is_small(self):
        spec = laptop()
        assert spec.node.cores <= 8
        assert spec.filesystem.background_load == 0.0

    def test_presets_have_distinct_names(self):
        assert len({bridges().name, stampede2().name, laptop().name}) == 3
