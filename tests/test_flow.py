"""Tests for the interprocedural flow analyses (``repro.lint.flow``).

Fixture families exercise the escape lattice one hazard at a time —
pool-safe consumption, container escape, closure capture, recorder capture,
cross-call escape, use-after-yield — then the meta-tests pin the shipped
tree: the engine's pooled-class tuple equals the analysis certificate, every
pooled class is pool-safe, and the unresolved-call audit list is empty.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

from repro.lint import lint_source, select_rules
from repro.lint.flow.escape import POOLED_CLASSES
from repro.lint.flow.project import KNOWN_EVENT_CLASSES
from repro.lint.flow.report import flow_report
from repro.simcore import POOLED_EVENT_CLASSES

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Fixture module inside the model scope (and outside the excluded engine
#: layer), so F5xx rules classify its allocation sites.
MOD = "repro.cluster.fixture"

F501 = select_rules(["F501"])
F502 = select_rules(["F502"])


def _f501(source: str):
    return [f for f in lint_source(source, module_name=MOD, rules=F501)]


def _f502(source: str):
    return [f for f in lint_source(source, module_name=MOD, rules=F502)]


# -- F501 escape analysis -------------------------------------------------


class TestEscapeVerdicts:
    def test_consumed_by_yield_is_pool_safe(self):
        src = (
            "def proc(env, store: Store):\n"
            "    yield store.put(1)\n"
            "    item = yield store.get()\n"
            "    return item\n"
        )
        assert _f501(src) == []

    def test_fire_and_forget_discard_is_pool_safe(self):
        src = "def kick(env, store: Store):\n    store.put(1)\n"
        assert _f501(src) == []

    def test_container_escape_fires(self):
        src = (
            "def proc(env, store: Store):\n"
            "    pending = []\n"
            "    ev = store.put(1)\n"
            "    pending.append(ev)\n"
            "    yield ev\n"
        )
        findings = _f501(src)
        assert [f.rule for f in findings] == ["F501"]
        assert findings[0].line == 3  # the allocation site, not the append
        assert "container" in findings[0].message

    def test_attribute_store_escape_fires(self):
        src = (
            "def proc(self, env, store: Store):\n"
            "    ev = store.put(1)\n"
            "    self.pending = ev\n"
            "    yield ev\n"
        )
        findings = _f501(src)
        assert [f.rule for f in findings] == ["F501"]

    def test_closure_capture_escape_fires(self):
        src = (
            "def proc(env, store: Store):\n"
            "    ev = store.put(1)\n"
            "    def peek():\n"
            "        return ev\n"
            "    yield ev\n"
            "    return peek\n"
        )
        findings = _f501(src)
        assert [f.rule for f in findings] == ["F501"]
        assert "closure" in findings[0].message

    def test_trace_recorder_capture_escape_fires(self):
        src = (
            "def proc(env, store: Store, ctx):\n"
            "    ev = store.put(1)\n"
            "    ctx.record_event(ev)\n"
            "    yield ev\n"
        )
        findings = _f501(src)
        assert [f.rule for f in findings] == ["F501"]
        assert "recorder" in findings[0].message

    def test_condition_capture_escape_fires(self):
        src = (
            "def proc(env, store: Store):\n"
            "    ev = store.put(1)\n"
            "    yield AllOf(env, [ev, env.sleep(1.0)])\n"
        )
        findings = _f501(src)
        assert len(findings) >= 1
        assert all(f.rule == "F501" for f in findings)

    def test_cross_call_escape_fires(self):
        src = (
            "def stash(ev, log):\n"
            "    log.append(ev)\n"
            "\n"
            "def proc(env, store: Store, log):\n"
            "    ev = store.put(1)\n"
            "    stash(ev, log)\n"
            "    yield ev\n"
        )
        findings = _f501(src)
        assert [f.rule for f in findings] == ["F501"]
        assert "callee" in findings[0].message

    def test_cross_call_engine_consumer_is_safe(self):
        src = (
            "def forward(env, ev):\n"
            "    env.schedule(ev)\n"
            "\n"
            "def proc(env, store: Store):\n"
            "    ev = store.put(1)\n"
            "    forward(env, ev)\n"
        )
        assert _f501(src) == []

    def test_use_after_consuming_yield_fires(self):
        src = (
            "def proc(env, store: Store):\n"
            "    ev = store.put('x')\n"
            "    yield ev\n"
            "    return ev.item\n"
        )
        findings = _f501(src)
        assert [f.rule for f in findings] == ["F501"]
        assert "use-after-recycle" in findings[0].message

    def test_returned_factory_does_not_condemn_the_class(self):
        # A factory returning the event is classified at its call sites; the
        # returned site itself is not an escape.
        src = (
            "def make(store: Store):\n"
            "    return store.put(1)\n"
            "\n"
            "def proc(env, store: Store):\n"
            "    yield make(store)\n"
        )
        assert _f501(src) == []

    def test_unpooled_event_escape_is_not_a_finding(self):
        # Process objects escape all over the model layer — fine, they are
        # not on the free-list certificate.
        src = (
            "def spawn(env, procs):\n"
            "    p = env.process(worker(env))\n"
            "    procs.append(p)\n"
        )
        assert _f501(src) == []


# -- F502 crediting conservation ------------------------------------------


class TestCreditingConservation:
    def test_uncredited_foreign_touch_fires(self):
        src = (
            "def compute(self, cores):\n"
            "    cores.users.append(1)\n"
            "    yield None\n"
            "    cores.users.remove(1)\n"
        )
        findings = _f502(src)
        assert [f.rule for f in findings] == ["F502"]
        assert "crediting call" in findings[0].message

    def test_literal_mismatch_fires_where_e301_is_silent(self):
        # Credits 3, elides 2: E301 sees "a crediting call exists" and stays
        # silent; only the interprocedural conservation check catches it.
        src = (
            "def compute(self, cores):\n"
            "    cores.users.append(1)\n"
            "    yield None\n"
            "    cores.users.remove(1)\n"
            "    self.env.credit_events(3)\n"
        )
        assert lint_source(src, module_name=MOD, rules=select_rules(["E301"])) == []
        findings = _f502(src)
        assert [f.rule for f in findings] == ["F502"]
        assert "credits 3" in findings[0].message
        assert "elides 2" in findings[0].message

    def test_exact_literal_credit_is_clean(self):
        src = (
            "def compute(self, cores):\n"
            "    cores.users.append(1)\n"
            "    yield None\n"
            "    cores.users.remove(1)\n"
            "    self.env.credit_events(2)\n"
        )
        assert _f502(src) == []

    def test_dynamic_credit_is_exempt_from_the_literal_check(self):
        src = (
            "def compute_batch(self, cores, n):\n"
            "    cores.users.append(1)\n"
            "    yield None\n"
            "    cores.users.remove(1)\n"
            "    self.env.credit_events(2 * n)\n"
        )
        assert _f502(src) == []

    def test_credit_in_caller_discharges_the_helper(self):
        # The fast path is split across a helper: E301 would flag the helper,
        # F502 walks the call graph and finds the caller's credit.
        src = (
            "def grab(cores):\n"
            "    cores.users.append(1)\n"
            "    cores.users.remove(1)\n"
            "\n"
            "def fast(self, cores):\n"
            "    grab(cores)\n"
            "    self.env.credit_events(2)\n"
            "    yield None\n"
        )
        assert _f502(src) == []

    def test_unreachable_credit_still_fires(self):
        src = (
            "def grab(cores):\n"
            "    cores.users.append(1)\n"
            "    cores.users.remove(1)\n"
            "\n"
            "def unrelated(self):\n"
            "    self.env.credit_events(2)\n"
        )
        findings = _f502(src)
        assert [f.rule for f in findings] == ["F502"]


# -- meta-tests: the shipped tree -----------------------------------------


def _shipped_report():
    return flow_report([REPO_ROOT / "src"])


class TestShippedTreeCertificate:
    def test_pooled_class_tuples_cannot_drift(self):
        """The engine's free-list tuple IS the analysis certificate."""
        assert POOLED_EVENT_CLASSES == POOLED_CLASSES
        assert set(POOLED_CLASSES) <= set(KNOWN_EVENT_CLASSES)

    def test_every_pooled_class_is_pool_safe_on_the_shipped_tree(self):
        report = _shipped_report()
        for cls in POOLED_CLASSES:
            entry = report["event_classes"][cls]
            assert entry["pooled"] is True
            assert entry["pool_safe"] is True, (
                f"{cls} has escaping sites: "
                f"{[s for s in entry['sites'] if s['verdict'] == 'escapes']}"
            )
            assert entry["sites"], f"{cls} has no classified allocation sites"

    def test_unresolved_event_like_audit_list_is_empty(self):
        """Every put/get/request/release in the model layer resolves."""
        report = _shipped_report()
        assert report["unresolved_event_like"] == []

    def test_crediting_entries_cover_the_known_fast_paths(self):
        report = _shipped_report()
        by_function = {entry["function"]: entry for entry in report["crediting"]}
        compute = by_function["repro.cluster.node:ComputeNode.compute"]
        assert compute["elided"] == 2
        assert compute["literal_credits"] == [2]
        batch = by_function["repro.cluster.node:ComputeNode.compute_batch"]
        assert batch["dynamic_credit"] is True

    def test_flow_report_cli_round_trips_as_json(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.lint", "--flow-report", "src"],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0, proc.stderr
        payload = json.loads(proc.stdout)
        assert payload["pooled_classes"] == list(POOLED_CLASSES)
        assert payload["unresolved_event_like"] == []
