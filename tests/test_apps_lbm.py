"""Physics and interface tests for the lattice-Boltzmann proxy application."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.lbm import (
    DomainDecomposition,
    LatticeBoltzmannD2Q9,
    channel_flow,
    poiseuille_profile,
)


class TestLatticeBoltzmann:
    def test_validation(self):
        with pytest.raises(ValueError):
            LatticeBoltzmannD2Q9(2, 2)
        with pytest.raises(ValueError):
            LatticeBoltzmannD2Q9(16, 16, tau=0.5)
        with pytest.raises(ValueError):
            LatticeBoltzmannD2Q9(16, 16, body_force=-1)

    def test_mass_conservation(self):
        solver = LatticeBoltzmannD2Q9(16, 16, body_force=0.0)
        m0 = solver.total_mass()
        solver.run(50)
        assert solver.total_mass() == pytest.approx(m0, rel=1e-12)

    def test_no_force_stays_at_rest(self):
        solver = LatticeBoltzmannD2Q9(12, 12, body_force=0.0)
        state = solver.run(20)
        assert np.abs(state.velocity_x).max() < 1e-12
        assert np.abs(state.velocity_y).max() < 1e-12

    def test_flow_develops_along_force(self):
        solver = LatticeBoltzmannD2Q9(16, 16, body_force=1e-5)
        state = solver.run(200)
        ux, uy = solver.mean_velocity()
        assert ux > 0
        assert abs(uy) < 1e-6
        assert state.speed.max() > 0

    def test_converges_to_poiseuille_profile(self):
        solver = LatticeBoltzmannD2Q9(8, 32, tau=0.9, body_force=1e-5)
        state = solver.run(3000)
        profile = state.velocity_x.mean(axis=0)
        analytic = poiseuille_profile(32, 1e-5, solver.viscosity)
        error = np.abs(profile[1:-1] - analytic[1:-1]).max() / analytic.max()
        assert error < 0.08
        # No-slip walls carry (almost) no velocity.
        assert abs(profile[0]) < 0.05 * analytic.max()

    def test_profile_symmetry(self):
        solver = LatticeBoltzmannD2Q9(8, 24, tau=0.8, body_force=2e-5)
        profile = solver.run(1500).velocity_x.mean(axis=0)
        assert np.allclose(profile[1:-1], profile[1:-1][::-1], rtol=0.05, atol=1e-6)

    def test_step_counter_and_state_bytes(self):
        solver = LatticeBoltzmannD2Q9(8, 8)
        state = solver.step()
        assert solver.step_count == 1
        assert state.field_bytes() == 3 * 8 * 8 * 8

    def test_run_validation(self):
        with pytest.raises(ValueError):
            LatticeBoltzmannD2Q9(8, 8).run(0)

    def test_equilibrium_preserves_density(self):
        rho = np.full((4, 4), 1.3)
        ux = np.full((4, 4), 0.05)
        uy = np.zeros((4, 4))
        feq = LatticeBoltzmannD2Q9.equilibrium(rho, ux, uy)
        np.testing.assert_allclose(feq.sum(axis=0), rho, rtol=1e-12)


class TestPoiseuilleProfile:
    def test_peak_in_the_middle(self):
        profile = poiseuille_profile(34, 1e-5, 0.1)
        assert np.argmax(profile) in (16, 17)
        assert profile[0] == 0.0 and profile[-1] == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            poiseuille_profile(2, 1e-5, 0.1)
        with pytest.raises(ValueError):
            poiseuille_profile(16, 1e-5, 0.0)


class TestDomainDecomposition:
    def test_covers_domain_exactly(self):
        dd = DomainDecomposition(nx_global=100, ny=8, ranks=7)
        subs = dd.subdomains()
        assert sum(s.nx for s in subs) == 100
        assert subs[0].x_start == 0 and subs[-1].x_end == 100
        # Contiguous, non-overlapping slabs.
        for a, b in zip(subs, subs[1:]):
            assert a.x_end == b.x_start

    def test_matches_paper_subgrid_sizes(self):
        # 16384 columns over 256 ranks -> 64 columns each (Table 1).
        dd = DomainDecomposition(nx_global=16384, ny=64, ranks=256)
        assert all(s.nx == 64 for s in dd.subdomains())

    def test_neighbors_periodic(self):
        dd = DomainDecomposition(nx_global=10, ny=4, ranks=5)
        assert dd.neighbors(0) == (4, 1)
        assert dd.neighbors(4) == (3, 0)

    def test_gather_roundtrip(self):
        dd = DomainDecomposition(nx_global=12, ny=3, ranks=4)
        pieces = [np.full((dd.subdomain(r).nx, 3), r, dtype=float) for r in range(4)]
        gathered = dd.gather(pieces)
        assert gathered.shape == (12, 3)
        assert gathered[0, 0] == 0 and gathered[-1, 0] == 3

    def test_gather_shape_mismatch_rejected(self):
        dd = DomainDecomposition(nx_global=12, ny=3, ranks=4)
        with pytest.raises(ValueError):
            dd.gather([np.zeros((1, 3))] * 4)
        with pytest.raises(ValueError):
            dd.gather([np.zeros((3, 3))] * 3)

    def test_bytes_accounting(self):
        dd = DomainDecomposition(nx_global=64, ny=16, ranks=4)
        sub = dd.subdomain(0)
        assert sub.field_bytes() == 16 * 16 * 3 * 8
        assert sub.halo_bytes() == 16 * 9 * 8
        assert dd.total_output_bytes() == 64 * 16 * 3 * 8

    def test_validation(self):
        with pytest.raises(ValueError):
            DomainDecomposition(4, 4, 0)
        with pytest.raises(ValueError):
            DomainDecomposition(2, 4, 3)
        with pytest.raises(ValueError):
            DomainDecomposition(8, 4, 2).subdomain(5)


class TestChannelFlowDriver:
    def test_yields_requested_outputs(self):
        states = list(channel_flow(nx=16, ny=8, steps=10, output_every=2))
        assert len(states) == 5
        assert states[-1].step == 9

    def test_on_step_callback(self):
        seen = []
        list(channel_flow(nx=8, ny=8, steps=3, on_step=lambda s: seen.append(s.step)))
        assert seen == [0, 1, 2]

    def test_validation(self):
        with pytest.raises(ValueError):
            list(channel_flow(steps=0))
        with pytest.raises(ValueError):
            list(channel_flow(steps=5, output_every=0))
