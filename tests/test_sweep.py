"""Tests of the parallel scenario-sweep engine (grids, runner, store)."""

from __future__ import annotations

import json
import math

import pytest

from repro.apps.costs import MiB, cfd_workload
from repro.bench.experiments import (
    FIGURE2_TRANSPORTS,
    SCALABILITY_CORE_COUNTS,
    figure2_configs,
    figure12_configs,
    figure13_configs,
    figure14_configs,
    figure16_configs,
    figure16_spec,
    run_all,
)
from repro.cluster.presets import laptop, stampede2
from repro.sweep import (
    ParamGrid,
    ResultStore,
    SweepCase,
    SweepRunner,
    SweepSpec,
    config_hash,
    derive_case_seed,
    run_cases,
)
from repro.workflow import WorkflowConfig


def small_config(**overrides) -> WorkflowConfig:
    defaults = dict(
        workload=cfd_workload(steps=2),
        cluster=laptop(),
        transport="zipper",
        total_cores=16,
        representative_sim_ranks=2,
        steps=2,
        trace=False,
    )
    defaults.update(overrides)
    return WorkflowConfig(**defaults)


class TestParamGrid:
    def test_product_order_leftmost_slowest(self):
        grid = ParamGrid(
            small_config(),
            axes=[("total_cores", (16, 32)), ("transport", ("zipper", "none"))],
            label="{total_cores}/{transport}",
        )
        labels = [case.label for case in grid]
        assert labels == ["16/zipper", "16/none", "32/zipper", "32/none"]
        assert len(grid) == 4

    def test_axis_values_applied_to_configs(self):
        grid = ParamGrid(
            small_config(),
            axes={"block_bytes": (1 * MiB, 2 * MiB)},
            label=lambda p: f"{p['block_bytes'] // MiB}MB",
        )
        cases = list(grid)
        assert [c.config.block_bytes for c in cases] == [1 * MiB, 2 * MiB]
        # The case label is copied into the config for results to carry.
        assert [c.config.label for c in cases] == ["1MB", "2MB"]

    def test_machine_axis_resolves_presets(self):
        grid = ParamGrid(
            small_config(),
            axes=[("machine", ("laptop", "stampede2"))],
            label="{machine}",
        )
        clusters = [case.config.cluster for case in grid]
        assert clusters == [laptop(), stampede2()]

    def test_unknown_machine_rejected(self):
        grid = ParamGrid(small_config(), axes=[("machine", ("atlantis",))], label="{machine}")
        with pytest.raises(ValueError, match="unknown machine"):
            list(grid)

    def test_non_config_axis_requires_derive(self):
        with pytest.raises(ValueError, match="derive"):
            ParamGrid(small_config(), axes=[("complexity", ("O(n)",))], label="{complexity}")

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="no values"):
            ParamGrid(small_config(), axes=[("transport", ())], label="{transport}")

    def test_derive_consumes_virtual_axes(self):
        grid = ParamGrid(
            small_config(),
            axes=[("doubled", (1, 2))],
            label="x{doubled}",
            derive=lambda p: {"steps": 2 * p["doubled"]},
        )
        assert [c.config.steps for c in grid] == [2, 4]

    def test_derive_output_typos_are_rejected(self):
        grid = ParamGrid(
            small_config(),
            axes=[("block", (1 * MiB,))],
            label="{block}",
            derive=lambda p: {"block_byte": p["block"]},  # typo'd field name
        )
        with pytest.raises(ValueError, match="block_byte"):
            list(grid)


class TestSweepSpec:
    def test_duplicate_labels_rejected(self):
        spec = SweepSpec("dup", cases=[("a", small_config()), ("a", small_config())])
        with pytest.raises(ValueError, match="duplicate"):
            spec.cases()

    def test_configs_returns_label_config_pairs(self):
        spec = SweepSpec("one", cases=[("only", small_config())])
        [(label, config)] = spec.configs()
        assert label == "only" and config.transport == "zipper"


class TestLegacyGridParity:
    """The declarative grids must reproduce the hand-rolled loops label-for-label."""

    def test_figure2_labels(self):
        labels = [lbl for lbl, _ in figure2_configs(steps=3)]
        assert labels == list(FIGURE2_TRANSPORTS) + ["zipper", "none"]

    def test_figure12_labels_and_fields(self):
        expected = [
            "O(n)/1MB",
            "O(nlogn)/1MB",
            "O(n^1.5)/1MB",
            "O(n)/8MB",
            "O(nlogn)/8MB",
            "O(n^1.5)/8MB",
        ]
        configs = figure12_configs(data_per_rank=16 * MiB)
        assert [lbl for lbl, _ in configs] == expected
        assert all(not cfg.preserve for _, cfg in configs)
        assert [cfg.block_bytes for _, cfg in configs[:3]] == [1 * MiB] * 3
        assert [cfg.block_bytes for _, cfg in configs[3:]] == [8 * MiB] * 3

    def test_figure13_is_preserve_mode(self):
        assert all(cfg.preserve for _, cfg in figure13_configs(data_per_rank=16 * MiB))

    def test_figure14_labels_pair_modes(self):
        configs = figure14_configs(data_per_rank=16 * MiB, core_counts=(84, 168))
        expected = [
            f"{complexity}/{cores}/{mode}"
            for complexity in ("O(n)", "O(nlogn)", "O(n^1.5)")
            for cores in (84, 168)
            for mode in ("mpi-only", "concurrent")
        ]
        assert [lbl for lbl, _ in configs] == expected
        by_label = dict(configs)
        assert by_label["O(n)/84/concurrent"].concurrent_transfer
        assert not by_label["O(n)/84/mpi-only"].concurrent_transfer

    def test_figure16_labels(self):
        expected = [
            f"cfd/{cores}/{transport}"
            for cores in SCALABILITY_CORE_COUNTS
            for transport in ("mpiio", "flexpath", "decaf", "zipper", "none")
        ]
        assert [lbl for lbl, _ in figure16_configs(steps=3)] == expected


class TestConfigHash:
    def test_stable_for_equal_configs(self):
        assert config_hash(small_config()) == config_hash(small_config())

    def test_changes_with_any_parameter(self):
        base = small_config()
        assert config_hash(base) != config_hash(base.replace(block_bytes=2 * MiB))
        assert config_hash(base) != config_hash(base.replace(transport="none"))

    def test_case_seed_is_label_dependent_and_stable(self):
        assert derive_case_seed(1, "a") == derive_case_seed(1, "a")
        assert derive_case_seed(1, "a") != derive_case_seed(1, "b")
        assert derive_case_seed(1, "a") != derive_case_seed(2, "a")


def _downsized_figure16() -> SweepSpec:
    """A small Figure-16 grid that still contains Decaf's modelled crash."""
    return figure16_spec(steps=3, core_counts=(204, 13056), transports=("decaf", "zipper", "none"))


def _assert_same_results(a, b):
    assert set(a) == set(b)
    for label in a:
        ra, rb = a[label], b[label]
        assert ra.failed == rb.failed
        if ra.failed:
            assert math.isnan(ra.end_to_end_time) and math.isnan(rb.end_to_end_time)
        else:
            assert ra.end_to_end_time == rb.end_to_end_time
        assert ra.breakdown == rb.breakdown
        assert ra.stats == rb.stats
        assert ra.xmit_wait == rb.xmit_wait


class TestSweepRunner:
    def test_parallel_equals_serial_deterministic(self):
        spec = _downsized_figure16()
        serial = SweepRunner(workers=0, trace=False).run_labelled(spec)
        parallel = SweepRunner(workers=4, trace=False).run_labelled(spec)
        assert len(serial) == 6
        _assert_same_results(serial, parallel)
        # The modelled Decaf overflow surfaces as a failed record, not a crash.
        assert serial["cfd/13056/decaf"].failed
        assert not serial["cfd/204/decaf"].failed

    def test_matches_legacy_run_all(self):
        spec = _downsized_figure16()
        _assert_same_results(
            SweepRunner(workers=0, trace=False).run_labelled(spec),
            {lbl: r for lbl, r in run_all(spec.configs()).items()},
        )

    def test_crash_is_isolated_to_its_record(self):
        # The unknown transport makes the workflow runner raise outright —
        # unlike a modelled TransportFault — which must not kill the sweep.
        cases = [
            SweepCase("good", small_config()),
            SweepCase("bad", small_config(transport="no-such-transport")),
        ]
        records = run_cases(cases)
        by_label = {r.label: r for r in records}
        assert by_label["good"].ok and by_label["good"].result is not None
        assert not by_label["bad"].ok
        assert "no-such-transport" in by_label["bad"].error
        assert by_label["bad"].failed

    def test_run_labelled_raises_on_crashed_case(self):
        # The dict-returning convenience must fail loudly, not drop the label.
        cases = [("bad", small_config(transport="no-such-transport"))]
        with pytest.raises(RuntimeError, match="no-such-transport"):
            SweepRunner(workers=0).run_labelled(cases)

    def test_figure_specs_disable_tracing(self):
        # Sweeps pickle results across the pool; traces would dominate that.
        for _, config in _downsized_figure16().configs():
            assert not config.trace

    def test_progress_callback_sees_every_case(self):
        seen = []
        runner = SweepRunner(
            workers=0, trace=False, progress=lambda rec, done, total: seen.append((rec.label, done, total))
        )
        runner.run([("only", small_config())])
        assert seen == [("only", 1, 1)]

    def test_reseed_is_deterministic_but_per_label(self):
        records = run_cases(
            [("a", small_config()), ("b", small_config())], workers=0, trace=False
        )
        seeds = {r.label: r.seed for r in records}
        assert seeds["a"] != seeds["b"]
        again = run_cases([("a", small_config())], workers=0, trace=False)
        assert again[0].seed == seeds["a"]


class TestResultStoreResume:
    def test_resume_skips_completed_runs(self, tmp_path):
        store_path = tmp_path / "sweep.jsonl"
        spec = _downsized_figure16()

        first = SweepRunner(workers=0, store=ResultStore(store_path), trace=False).run(spec)
        assert all(not r.skipped for r in first)
        lines_after_first = store_path.read_text().count("\n")
        assert lines_after_first == len(first)

        second = SweepRunner(workers=0, store=ResultStore(store_path), trace=False).run(spec)
        assert all(r.skipped for r in second)
        assert store_path.read_text().count("\n") == lines_after_first
        # Skipped records surface the stored summary, including failures.
        by_label = {r.label: r for r in second}
        assert by_label["cfd/13056/decaf"].failed
        assert by_label["cfd/204/zipper"].summary["end_to_end_time"] > 0

    def test_changed_config_is_rerun(self, tmp_path):
        store = ResultStore(tmp_path / "sweep.jsonl")
        SweepRunner(workers=0, store=store, trace=False).run([("case", small_config())])
        changed = [("case", small_config(total_cores=32))]
        records = SweepRunner(workers=0, store=store, trace=False).run(changed)
        assert not records[0].skipped

    def test_corrupt_trailing_line_is_ignored(self, tmp_path):
        store = ResultStore(tmp_path / "sweep.jsonl")
        SweepRunner(workers=0, store=store, trace=False).run([("case", small_config())])
        with store.path.open("a") as fh:
            fh.write('{"label": "truncated", "config_')
        assert len(store.load()) == 1
        assert {label for label, _ in store.completed_keys()} == {"case"}

    def test_errored_records_are_retried(self, tmp_path):
        store = ResultStore(tmp_path / "sweep.jsonl")
        store.append({"label": "case", "config_hash": "deadbeef", "ok": False})
        assert store.completed_keys() == set()

    def test_payload_roundtrips_through_json(self, tmp_path):
        store = ResultStore(tmp_path / "sweep.jsonl")
        [record] = SweepRunner(workers=0, store=store, trace=False).run(
            [("case", small_config())]
        )
        [loaded] = store.load()
        assert loaded["label"] == "case"
        assert loaded["end_to_end_time"] == pytest.approx(record.result.end_to_end_time)
        assert json.dumps(loaded)  # stays JSON-serialisable

    def test_resume_heals_a_tear_inside_a_fault_timeline(self, tmp_path):
        """A line torn mid-``faults`` array re-runs and re-persists the scenario.

        The fault timeline is the longest nested payload field, so a crash
        mid-write is likeliest to land inside it; the torn record must not
        count as completed, and the resumed store's timeline must equal a
        fresh run's exactly.
        """
        from repro.bench.experiments import fault_recovery_spec

        cases = fault_recovery_spec(steps=6, checkpoint_intervals=(1, 4)).configs()[:3]
        store_path = tmp_path / "faults.jsonl"

        first = SweepRunner(workers=0, store=ResultStore(store_path), trace=False).run(cases)
        assert all(r.ok and not r.skipped for r in first)
        lines = store_path.read_text().splitlines()
        cut = lines[-1].index('"faults"') + len('"faults": [{')
        store_path.write_text("\n".join(lines[:-1]) + "\n" + lines[-1][:cut])

        second = SweepRunner(workers=0, store=ResultStore(store_path), trace=False).run(cases)
        assert [r.label for r in second if not r.skipped] == [cases[-1][0]]
        healed = ResultStore(store_path).get(
            cases[-1][0], next(r for r in second if not r.skipped).config_hash
        )
        fresh = SweepRunner(workers=0, trace=False).run([cases[-1]])[0]
        from repro.sweep.store import result_payload

        assert healed["faults"] == result_payload(fresh.result)["faults"]
        assert healed["faults"]  # the scenario really persisted a timeline

    def test_resume_heals_a_tear_inside_a_job_timeline(self, tmp_path):
        """A line torn mid-``jobs`` array re-runs and re-persists the scenario.

        The multi-tenant job timeline is the tenant records' longest nested
        payload field (queued/admitted/share/completed per job), so it gets
        the same torn-tail treatment as the fault timeline: the torn record
        must not count as completed, and the resumed store's timeline must
        equal a fresh run's exactly.
        """
        from repro.bench.experiments import tenant_contention_spec

        cases = tenant_contention_spec(steps=3).configs()[:2]
        store_path = tmp_path / "tenants.jsonl"

        first = SweepRunner(workers=0, store=ResultStore(store_path), trace=False).run(cases)
        assert all(r.ok and not r.skipped for r in first)
        lines = store_path.read_text().splitlines()
        cut = lines[-1].index('"jobs"') + len('"jobs": [{')
        store_path.write_text("\n".join(lines[:-1]) + "\n" + lines[-1][:cut])

        second = SweepRunner(workers=0, store=ResultStore(store_path), trace=False).run(cases)
        assert [r.label for r in second if not r.skipped] == [cases[-1][0]]
        healed = ResultStore(store_path).get(
            cases[-1][0], next(r for r in second if not r.skipped).config_hash
        )
        fresh = SweepRunner(workers=0, trace=False).run([cases[-1]])[0]
        from repro.sweep.store import result_payload

        assert healed["jobs"] == result_payload(fresh.result)["jobs"]
        assert healed["jobs"]  # the scenario really persisted a timeline


class TestBatchWriter:
    def payloads(self, n):
        return [{"label": f"case-{i}", "config_hash": f"h{i}", "ok": True} for i in range(n)]

    def test_batch_appends_one_record_per_line(self, tmp_path):
        store = ResultStore(tmp_path / "batch.jsonl")
        with store.batch(flush_every=4) as writer:
            for payload in self.payloads(10):
                writer.append(payload)
            assert writer.appended == 10
        assert len(store.load()) == 10

    def test_flush_every_bounds_what_a_crash_loses(self, tmp_path):
        store = ResultStore(tmp_path / "batch.jsonl")
        writer = store.batch(flush_every=4).__enter__()
        for payload in self.payloads(10):
            writer.append(payload)
        # Inspect the on-disk file while the handle is still open — what a
        # hard crash at this instant would leave behind.  Exactly the two
        # full flush batches (8 records) are durable; the 2 records buffered
        # since the last flush are not yet.
        on_disk = [r["label"] for r in store.iter_records()]
        assert on_disk == [f"case-{i}" for i in range(8)]
        writer.close()
        assert len(store.load()) == 10

    def test_resume_after_mid_batch_crash_reruns_only_the_lost_tail(self, tmp_path):
        """The satellite invariant: (label, config-hash) resume survives a crash."""
        store_path = tmp_path / "sweep.jsonl"
        cases = [(f"case-{i}", small_config(seed=i + 1)) for i in range(6)]

        # A full run, buffered through the runner's batch writer.
        runner = SweepRunner(workers=0, store=ResultStore(store_path), trace=False)
        runner.store_flush_every = 2
        first = runner.run(cases)
        assert all(r.ok and not r.skipped for r in first)

        # Simulate the crash: drop the final record entirely (lost buffer)
        # and leave a torn, half-written JSON line behind it.
        lines = store_path.read_text().splitlines()
        store_path.write_text(
            "\n".join(lines[:-1]) + "\n" + lines[-1][: len(lines[-1]) // 2]
        )

        second = SweepRunner(workers=0, store=ResultStore(store_path), trace=False).run(cases)
        skipped = [r.label for r in second if r.skipped]
        rerun = [r.label for r in second if not r.skipped]
        assert skipped == [f"case-{i}" for i in range(5)]
        assert rerun == ["case-5"]
        # After the resume the store is whole again: every key completed.
        keys = ResultStore(store_path).completed_keys()
        assert {label for label, _ in keys} == {f"case-{i}" for i in range(6)}


class TestPersistentPool:
    def test_pool_survives_across_runs_and_close_releases_it(self):
        runner = SweepRunner(workers=2, trace=False)
        try:
            cases = [(f"a-{i}", small_config(seed=i + 1)) for i in range(3)]
            first = runner.run(cases)
            pool = runner._pool
            assert pool is not None  # created on first parallel dispatch
            second = runner.run([(f"b-{i}", small_config(seed=i + 9)) for i in range(3)])
            assert runner._pool is pool  # warm workers reused, not respawned
            assert all(r.ok for r in first + second)
        finally:
            runner.close()
        assert runner._pool is None

    def test_context_manager_closes_the_pool(self):
        with SweepRunner(workers=2, trace=False) as runner:
            records = runner.run([(f"c-{i}", small_config(seed=i + 1)) for i in range(2)])
            assert all(r.ok for r in records)
        assert runner._pool is None

    def test_serial_runner_never_creates_a_pool(self):
        with SweepRunner(workers=0, trace=False) as runner:
            runner.run([("case", small_config())])
            assert runner._pool is None


class TestErrorClassification:
    def test_transient_vs_permanent_taxonomy(self):
        from repro.sweep import classify_error

        assert classify_error(OSError("disk")) == "transient"
        assert classify_error(MemoryError()) == "transient"
        assert classify_error(ConnectionResetError()) == "transient"  # OSError subclass
        assert classify_error(ValueError("bad config")) == "permanent"
        assert classify_error(KeyError("field")) == "permanent"

    def test_crashed_record_carries_its_kind(self):
        records = run_cases([("bad", small_config(transport="no-such-transport"))])
        assert records[0].error_kind == "permanent"
        assert records[0].payload()["error_kind"] == "permanent"

    def test_successful_payload_has_no_error_kind_field(self):
        records = run_cases([("good", small_config())])
        assert "error_kind" not in records[0].payload()


def _hang_or_run(config):
    """Stand-in workflow runner: hang on the sentinel config, else run."""
    import threading

    from repro.workflow.runner import run_workflow

    if config.total_cores == 17:  # the sentinel "hung scenario"
        threading.Event().wait(120)
    return run_workflow(config)


def _exit_or_run(config):
    """Stand-in workflow runner: die without reporting on the sentinel."""
    import os

    from repro.workflow.runner import run_workflow

    if config.total_cores == 17:
        os._exit(3)
    return run_workflow(config)


class TestCaseTimeout:
    """The per-case timeout satellite: hung scenarios die, the sweep lives."""

    def test_rejects_non_positive_timeout(self):
        with pytest.raises(ValueError, match="case_timeout_seconds"):
            SweepRunner(case_timeout_seconds=0)

    def test_hung_case_is_killed_and_recorded(self, monkeypatch):
        import repro.sweep.runner as runner_module

        # Children are forked, so patching the parent's module reaches them.
        monkeypatch.setattr(
            runner_module,
            "_execute_case",
            _patched_execute(_hang_or_run),
        )
        runner = SweepRunner(workers=2, trace=False, case_timeout_seconds=1.0)
        cases = [("hung", small_config(total_cores=17))] + [
            (f"good-{i}", small_config(seed=i + 1)) for i in range(3)
        ]
        records = {r.label: r for r in runner.run(cases)}
        assert len(records) == 4  # the slot was replenished, nothing stalled
        assert not records["hung"].ok
        assert records["hung"].error_kind == "timeout"
        assert "killed" in records["hung"].error
        assert all(records[f"good-{i}"].ok for i in range(3))

    def test_worker_death_is_recorded_as_lost(self, monkeypatch):
        import repro.sweep.runner as runner_module

        monkeypatch.setattr(
            runner_module,
            "_execute_case",
            _patched_execute(_exit_or_run),
        )
        runner = SweepRunner(workers=0, trace=False, case_timeout_seconds=30.0)
        records = {
            r.label: r
            for r in runner.run(
                [("dies", small_config(total_cores=17)), ("good", small_config())]
            )
        }
        assert not records["dies"].ok
        assert records["dies"].error_kind == "lost"
        assert "exit code 3" in records["dies"].error
        assert records["good"].ok

    def test_timeout_path_matches_pool_results(self):
        cases = [(f"case-{i}", small_config(seed=i + 1)) for i in range(3)]
        plain = {r.label: r for r in SweepRunner(workers=0, trace=False).run(cases)}
        timed = {
            r.label: r
            for r in SweepRunner(
                workers=2, trace=False, case_timeout_seconds=60.0
            ).run(cases)
        }
        for label in plain:
            assert timed[label].ok
            assert timed[label].result.stats == plain[label].result.stats


def _patched_execute(workflow_runner):
    """An ``_execute_case`` substitute routing workflows through ``workflow_runner``."""
    import time as time_module
    import traceback as traceback_module

    from repro.sweep.runner import SweepRecord, classify_error

    def execute(payload):
        index, label, digest, config = payload
        record = SweepRecord(label=label, config_hash=digest, seed=config.seed)
        start = time_module.perf_counter()
        try:
            record.result = workflow_runner(config)
        except Exception as exc:  # noqa: BLE001 - mirrors the real executor
            record.ok = False
            record.error = traceback_module.format_exc(limit=8)
            record.error_kind = classify_error(exc)
        record.elapsed = time_module.perf_counter() - start
        return index, record

    return execute


class TestPoolInterruptCleanup:
    """Regression: a KeyboardInterrupt mid-run must terminate pool workers."""

    def test_interrupt_during_pool_run_releases_the_pool(self):
        class Interrupt(KeyboardInterrupt):
            pass

        def interrupt(record, done, total):
            raise Interrupt()

        runner = SweepRunner(workers=2, trace=False, progress=interrupt)
        cases = [(f"case-{i}", small_config(seed=i + 1)) for i in range(4)]
        with pytest.raises(Interrupt):
            runner.run(cases)
        # The pool was terminated, not leaked: no live pool remains.
        assert runner._pool is None

    def test_interrupt_during_timeout_run_kills_children(self):
        class Interrupt(KeyboardInterrupt):
            pass

        def interrupt(record, done, total):
            raise Interrupt()

        runner = SweepRunner(
            workers=2, trace=False, progress=interrupt, case_timeout_seconds=60.0
        )
        cases = [(f"case-{i}", small_config(seed=i + 1)) for i in range(4)]
        with pytest.raises(Interrupt):
            runner.run(cases)


class TestQuarantine:
    """The mid-file corruption satellite: bad lines move aside, loudly."""

    def payload(self, label):
        return {"label": label, "config_hash": f"h-{label}", "ok": True}

    def test_mid_file_corruption_is_quarantined_with_warning(self, tmp_path):
        store = ResultStore(tmp_path / "sweep.jsonl")
        store.append(self.payload("a"))
        with store.path.open("a") as fh:
            fh.write("GARBAGE not json\n")
            fh.write('["a", "list", "not", "a", "record"]\n')
        store.append(self.payload("b"))

        with pytest.warns(RuntimeWarning, match="quarantined 2"):
            records = store.load()
        assert [r["label"] for r in records] == ["a", "b"]
        quarantined = store.quarantine_path.read_text().splitlines()
        assert quarantined == ["GARBAGE not json", '["a", "list", "not", "a", "record"]']

    def test_healed_store_reads_clean_afterwards(self, tmp_path):
        import warnings

        store = ResultStore(tmp_path / "sweep.jsonl")
        store.append(self.payload("a"))
        with store.path.open("a") as fh:
            fh.write("GARBAGE\n")
        with pytest.warns(RuntimeWarning):
            store.load()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert [r["label"] for r in store.load()] == ["a"]
        assert "GARBAGE" not in store.path.read_text()

    def test_torn_tail_is_not_quarantined(self, tmp_path):
        import warnings

        store = ResultStore(tmp_path / "sweep.jsonl")
        store.append(self.payload("a"))
        with store.path.open("a") as fh:
            fh.write('{"label": "torn", "config_')
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert [r["label"] for r in store.load()] == ["a"]
        assert not store.quarantine_path.exists()
        # The next writer heals the tear, exactly as before.
        store.append(self.payload("b"))
        assert [r["label"] for r in store.iter_records(heal=False)] == ["a", "b"]

    def test_heal_false_leaves_the_file_untouched(self, tmp_path):
        import warnings

        store = ResultStore(tmp_path / "sweep.jsonl")
        store.append(self.payload("a"))
        with store.path.open("a") as fh:
            fh.write("GARBAGE\n")
        before = store.path.read_text()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert len(list(store.iter_records(heal=False))) == 1
        assert store.path.read_text() == before


class TestCanonicalView:
    """The byte-identity machinery distributed campaigns are checked against."""

    def test_latest_ok_record_wins_per_key(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        store.append({"label": "a", "config_hash": "h", "ok": False, "error": "x"})
        store.append({"label": "a", "config_hash": "h", "ok": True, "value": 1})
        store.append({"label": "a", "config_hash": "h", "ok": False, "error": "y"})
        [record] = store.canonical_records()
        assert record["ok"] and record["value"] == 1

    def test_volatile_fields_are_dropped(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        store.append(
            {
                "label": "a", "config_hash": "h", "ok": True, "value": 1,
                "elapsed": 1.23, "worker": "w0", "shard": "L1", "attempt": 2,
            }
        )
        [record] = store.canonical_records()
        assert record == {"label": "a", "config_hash": "h", "ok": True, "value": 1}

    def test_bytes_are_order_and_provenance_independent(self, tmp_path):
        one = ResultStore(tmp_path / "one.jsonl")
        two = ResultStore(tmp_path / "two.jsonl")
        one.append({"label": "a", "config_hash": "h", "ok": True, "v": 1, "elapsed": 0.5})
        one.append({"label": "b", "config_hash": "h", "ok": True, "v": 2, "elapsed": 0.6})
        two.append({"label": "b", "config_hash": "h", "ok": True, "v": 2, "worker": "w9"})
        two.append({"label": "a", "config_hash": "h", "ok": False, "v": 0})
        two.append({"label": "a", "config_hash": "h", "ok": True, "v": 1, "attempt": 2})
        assert one.canonical_bytes() == two.canonical_bytes()
        assert one.canonical_bytes()  # not trivially empty

    def test_merge_from_skips_completed_keys(self, tmp_path):
        target = ResultStore(tmp_path / "target.jsonl")
        source = ResultStore(tmp_path / "source.jsonl")
        target.append({"label": "a", "config_hash": "h", "ok": True, "v": 1})
        source.append({"label": "a", "config_hash": "h", "ok": True, "v": 99})
        source.append({"label": "b", "config_hash": "h", "ok": False, "error": "x"})
        source.append({"label": "c", "config_hash": "h", "ok": True, "v": 3})
        assert target.merge_from(source) == 2
        merged = {r["label"]: r for r in target.canonical_records()}
        assert merged["a"]["v"] == 1  # the completed key was not overwritten
        assert not merged["b"]["ok"]  # failures worth retrying are carried over
        assert merged["c"]["v"] == 3
