"""Tests for the declarative Stage/Coupling pipeline API."""

from __future__ import annotations

import pytest

from repro.apps.costs import MiB, cfd_workload, lammps_workload, synthetic_workload
from repro.sweep.runner import SweepRunner
from repro.sweep.spec import ParamGrid
from repro.workflow import (
    CouplingSpec,
    PipelineRunner,
    PipelineSpec,
    StageSpec,
    WorkflowConfig,
    WorkflowRunner,
    run_pipeline,
    run_workflow,
)


def _stage(name, workload, ranks=4, total=64, **kw):
    return StageSpec(
        name, workload, representative_ranks=ranks, total_ranks=total, **kw
    )


@pytest.fixture
def cfd():
    return cfd_workload(steps=4)


@pytest.fixture
def chain_pipeline(cfd, bridges_spec):
    """sim -> analysis -> viz with a different transport on each coupling."""
    return PipelineSpec(
        stages=(
            _stage("simulation", cfd, ranks=8, total=256, role="producer"),
            _stage("analysis", cfd, ranks=4, total=96, output_fraction=0.25),
            _stage("viz", cfd, ranks=2, total=32, role="visualization"),
        ),
        couplings=(
            CouplingSpec("simulation", "analysis", transport="zipper"),
            CouplingSpec("analysis", "viz", transport="dimes"),
        ),
        cluster=bridges_spec,
        total_cores=384,
        steps=4,
        trace=False,
    )


@pytest.fixture
def fanout_pipeline(cfd, bridges_spec):
    """One simulation feeding two concurrent analyses over separate couplings."""
    return PipelineSpec(
        stages=(
            _stage("simulation", cfd, ranks=8, total=256),
            _stage("statistics", cfd, ranks=4, total=64),
            _stage("msd", lammps_workload(steps=4), ranks=2, total=64),
        ),
        couplings=(
            CouplingSpec("simulation", "statistics", transport="zipper"),
            CouplingSpec("simulation", "msd", transport="flexpath"),
        ),
        cluster=bridges_spec,
        total_cores=384,
        steps=4,
        trace=False,
    )


class TestValidation:
    def test_cycle_is_rejected(self, cfd, bridges_spec):
        with pytest.raises(ValueError, match="cycle"):
            PipelineSpec(
                stages=(
                    _stage("a", cfd),
                    _stage("b", cfd),
                    _stage("c", cfd),
                ),
                couplings=(
                    CouplingSpec("a", "b"),
                    CouplingSpec("b", "c"),
                    CouplingSpec("c", "a"),
                ),
                cluster=bridges_spec,
            )

    def test_dangling_endpoint_is_rejected(self, cfd, bridges_spec):
        with pytest.raises(ValueError, match="dangling"):
            PipelineSpec(
                stages=(_stage("a", cfd),),
                couplings=(CouplingSpec("a", "ghost"),),
                cluster=bridges_spec,
            )

    def test_zero_rank_stage_is_rejected(self, cfd):
        with pytest.raises(ValueError, match="zero representative ranks"):
            StageSpec("a", cfd, representative_ranks=0, total_ranks=64)

    def test_self_coupling_is_rejected(self):
        with pytest.raises(ValueError, match="itself"):
            CouplingSpec("a", "a")

    def test_duplicate_coupling_is_rejected(self, cfd, bridges_spec):
        with pytest.raises(ValueError, match="duplicate coupling"):
            PipelineSpec(
                stages=(_stage("a", cfd), _stage("b", cfd)),
                couplings=(CouplingSpec("a", "b"), CouplingSpec("a", "b")),
                cluster=bridges_spec,
            )

    def test_duplicate_stage_names_are_rejected(self, cfd, bridges_spec):
        with pytest.raises(ValueError, match="duplicate stage names"):
            PipelineSpec(
                stages=(_stage("a", cfd), _stage("a", cfd)),
                couplings=(),
                cluster=bridges_spec,
            )

    def test_core_share_must_resolve(self, cfd, bridges_spec):
        with pytest.raises(ValueError, match="core_share"):
            PipelineSpec(
                stages=(StageSpec("a", cfd, core_share=0.0),),
                couplings=(),
                cluster=bridges_spec,
            )

    def test_fan_in_steps_must_agree(self, bridges_spec):
        w3 = cfd_workload(steps=3)
        w5 = cfd_workload(steps=5)
        with pytest.raises(ValueError, match="disagree on step"):
            PipelineSpec(
                stages=(
                    _stage("a", w3),
                    _stage("b", w5),
                    _stage("c", w3),
                ),
                couplings=(CouplingSpec("a", "c"), CouplingSpec("b", "c")),
                cluster=bridges_spec,
            )

    def test_forwarding_stage_cannot_outnumber_its_producers(self, cfd, bridges_spec):
        with pytest.raises(ValueError, match="models more ranks"):
            PipelineSpec(
                stages=(
                    _stage("a", cfd, ranks=2),
                    _stage("b", cfd, ranks=4),
                    _stage("c", cfd, ranks=2),
                ),
                couplings=(CouplingSpec("a", "b"), CouplingSpec("b", "c")),
                cluster=bridges_spec,
            )

    @pytest.mark.parametrize("where", ["source", "sink"])
    def test_output_fraction_only_applies_to_forwarding_stages(
        self, cfd, bridges_spec, where
    ):
        fraction = {"a": 0.1} if where == "source" else {"b": 0.1}
        with pytest.raises(ValueError, match="output_fraction does not apply"):
            PipelineSpec(
                stages=(
                    _stage("a", cfd, output_fraction=fraction.get("a", 1.0)),
                    _stage("b", cfd, output_fraction=fraction.get("b", 1.0)),
                ),
                couplings=(CouplingSpec("a", "b"),),
                cluster=bridges_spec,
            )

    def test_coupling_high_water_mark_validated_at_construction(self, cfd, bridges_spec):
        with pytest.raises(ValueError, match="high_water_mark"):
            PipelineSpec(
                stages=(_stage("a", cfd), _stage("b", cfd)),
                couplings=(
                    CouplingSpec("a", "b", producer_buffer_blocks=10, high_water_mark=100),
                ),
                cluster=bridges_spec,
            )

    def test_unknown_transport_override_is_rejected(self, cfd, bridges_spec):
        pipeline = PipelineSpec(
            stages=(_stage("a", cfd), _stage("b", cfd)),
            couplings=(CouplingSpec("a", "b"),),
            cluster=bridges_spec,
        )
        with pytest.raises(ValueError, match="unknown couplings"):
            PipelineRunner(pipeline, transports={"a->ghost": object()})

    @pytest.mark.parametrize("name", ["none", "null", "simulation-only"])
    def test_no_coupling_transport_cannot_feed_a_forwarding_stage(
        self, cfd, bridges_spec, name
    ):
        with pytest.raises(ValueError, match="no-coupling transport"):
            PipelineSpec(
                stages=(
                    _stage("a", cfd, ranks=4),
                    _stage("b", cfd, ranks=2),
                    _stage("c", cfd, ranks=2),
                ),
                couplings=(
                    CouplingSpec("a", "b", transport=name),
                    CouplingSpec("b", "c"),
                ),
                cluster=bridges_spec,
            )

    def test_unknown_transport_rejected_at_spec_construction(self, cfd, bridges_spec):
        with pytest.raises(ValueError, match="unknown transport"):
            PipelineSpec(
                stages=(_stage("a", cfd), _stage("b", cfd)),
                couplings=(CouplingSpec("a", "b", transport="carrier-pigeon"),),
                cluster=bridges_spec,
            )


class TestLoweringEquivalence:
    @pytest.mark.parametrize("transport", ["zipper", "dataspaces", "mpiio"])
    def test_config_and_lowered_pipeline_agree(self, small_cfd_config, transport):
        config = small_cfd_config.replace(transport=transport, trace=False)
        legacy = run_workflow(config)
        lowered = run_pipeline(config.to_pipeline())
        assert legacy.end_to_end_time == pytest.approx(
            lowered.end_to_end_time, rel=1e-12
        )
        if transport == "zipper":
            assert legacy.stats["blocks_produced"] == lowered.stats["blocks_produced"]
        assert legacy.breakdown.as_dict() == pytest.approx(
            lowered.breakdown.as_dict(), rel=1e-9
        )

    def test_equivalence_with_jitter_on_fixed_seed(self, small_cfd_config):
        config = small_cfd_config.replace(deterministic=False, seed=7, trace=False)
        legacy = run_workflow(config)
        lowered = run_pipeline(config.to_pipeline())
        assert legacy.end_to_end_time == pytest.approx(
            lowered.end_to_end_time, rel=1e-12
        )

    def test_lowered_pipeline_shape(self, small_cfd_config):
        pipeline = small_cfd_config.to_pipeline()
        assert [s.name for s in pipeline.stages] == ["simulation", "analysis"]
        assert len(pipeline.couplings) == 1
        coupling = pipeline.couplings[0]
        assert coupling.name == "simulation->analysis"
        assert coupling.transport == small_cfd_config.transport
        assert pipeline.modelled_ranks("simulation") == small_cfd_config.sim_ranks
        assert pipeline.resolved_total_ranks("analysis") == (
            small_cfd_config.total_analysis_ranks
        )


class TestChainExecution:
    def test_chain_runs_end_to_end(self, chain_pipeline):
        result = run_pipeline(chain_pipeline)
        assert not result.failed
        assert result.end_to_end_time > 0
        # Every stage did real work.
        assert result.stage_breakdowns["simulation"].simulation > 0
        assert result.stage_breakdowns["analysis"].analysis > 0
        assert result.stage_breakdowns["viz"].analysis > 0
        # Each coupling used its own transport and moved data.
        assert result.coupling_transports == {
            "simulation->analysis": "zipper",
            "analysis->viz": "dimes",
        }
        for name in ("simulation->analysis", "analysis->viz"):
            stats = result.coupling_stats[name]
            moved = stats.get("bytes_network", 0.0) + stats.get("bytes_file", 0.0)
            assert moved > 0, name
        # The analysis reduces the stream, so the second coupling carries less.
        first = result.coupling_stats["simulation->analysis"]
        second = result.coupling_stats["analysis->viz"]
        assert second.get("bytes_network", 0.0) < first.get("bytes_network", 0.0)

    def test_chain_is_reproducible(self, chain_pipeline):
        a = run_pipeline(chain_pipeline)
        b = run_pipeline(chain_pipeline)
        assert a.end_to_end_time == pytest.approx(b.end_to_end_time, rel=1e-12)

    def test_every_viz_rank_receives_data(self, chain_pipeline):
        result = run_pipeline(chain_pipeline)
        for rank, stats in result.stage_rank_stats["viz"].items():
            assert stats.get("analysis_time", 0.0) > 0, rank

    def test_chain_overlaps_stages(self, chain_pipeline):
        """Pipelining: the makespan beats running the stages back to back."""
        result = run_pipeline(chain_pipeline)
        busy = {
            name: b.simulation + b.analysis
            for name, b in result.stage_breakdowns.items()
        }
        assert result.end_to_end_time < sum(busy.values())
        assert result.end_to_end_time >= max(busy.values())

    def test_chain_trace_rows_cover_all_stages(self, chain_pipeline):
        result = run_pipeline(chain_pipeline.replace(trace=True))
        assert result.tracer is not None
        total_ranks = 8 + 4 + 2
        assert set(result.tracer.ranks()) <= set(range(total_ranks))
        assert max(result.tracer.ranks()) >= 12  # viz rows are traced too

    def test_transport_spans_carry_their_coupling_tag(self, cfd, bridges_spec):
        # MPI-IO records io_write/io_read spans through the coupling context,
        # so its spans must be attributable to their coupling.
        pipeline = PipelineSpec(
            stages=(_stage("simulation", cfd, ranks=4), _stage("analysis", cfd, ranks=2)),
            couplings=(CouplingSpec("simulation", "analysis", transport="mpiio"),),
            cluster=bridges_spec,
            total_cores=384,
            steps=4,
            trace=True,
        )
        result = run_pipeline(pipeline)
        tagged = {
            span.meta["coupling"]
            for span in result.tracer.spans
            if "coupling" in span.meta
        }
        assert tagged == {"simulation->analysis"}

    def test_transport_override_by_coupling_name(self, chain_pipeline):
        from repro.transports import ZipperTransport

        override = ZipperTransport(concurrent_transfer=False)
        runner = PipelineRunner(
            chain_pipeline, transports={"simulation->analysis": override}
        )
        assert runner.transports["simulation->analysis"] is override
        result = runner.run()
        assert not result.failed


class TestFanOutExecution:
    def test_fanout_runs_both_branches(self, fanout_pipeline):
        result = run_pipeline(fanout_pipeline)
        assert not result.failed
        assert result.stage_breakdowns["statistics"].analysis > 0
        assert result.stage_breakdowns["msd"].analysis > 0
        # Both couplings carried the full simulation output independently.
        zipper_bytes = result.coupling_stats["simulation->statistics"].get(
            "bytes_network", 0.0
        ) + result.coupling_stats["simulation->statistics"].get("bytes_file", 0.0)
        flexpath_bytes = result.coupling_stats["simulation->msd"].get(
            "bytes_network", 0.0
        )
        assert zipper_bytes > 0 and flexpath_bytes > 0
        # Rank-identity keys are namespaced per coupling in the aggregate
        # stats of multi-coupling runs (summing them would be meaningless).
        assert not any(k.startswith("consumer_") for k in result.stats)
        assert any(
            k.startswith("simulation->statistics/consumer_") for k in result.stats
        )

    def test_fan_in_xmit_scale_factor_covers_both_sources(self, cfd, bridges_spec):
        pipeline = PipelineSpec(
            stages=(
                _stage("big", cfd, ranks=8, total=256),
                _stage("small", cfd, ranks=8, total=32),
                _stage("analysis", cfd, ranks=4),
            ),
            couplings=(
                CouplingSpec("big", "analysis"),
                CouplingSpec("small", "analysis", transport="dimes"),
            ),
            cluster=bridges_spec,
            total_cores=384,
            steps=4,
            trace=False,
        )
        runner = PipelineRunner(pipeline)
        # Modelled-rank-weighted over both sources, not just the first one.
        assert runner.ctx.rank_scale_factor == pytest.approx((256 + 32) / (8 + 8))
        # Per-coupling factors stay source-specific for the transports.
        assert runner.ctx.coupling("big->analysis").rank_scale_factor == 32.0
        assert runner.ctx.coupling("small->analysis").rank_scale_factor == 4.0

    def test_mismatched_deliveries_hook_fails_loudly(self, chain_pipeline):
        from repro.transports import ZipperTransport

        class MisreportingZipper(ZipperTransport):
            def consumer_deliveries_per_step(self, ctx, arank):
                return 1  # lies: zipper delivers per block, not per step

        with pytest.raises(RuntimeError, match="consumer_deliveries_per_step"):
            PipelineRunner(
                chain_pipeline,
                transports={"simulation->analysis": MisreportingZipper()},
            ).run()

    def test_under_delivery_fails_loudly(self, chain_pipeline):
        from repro.transports import ZipperTransport

        class OverreportingZipper(ZipperTransport):
            def consumer_deliveries_per_step(self, ctx, arank):
                # Claims one more delivery per step than consumer_run makes,
                # so the forwarding stage can never complete a step.
                return super().consumer_deliveries_per_step(ctx, arank) + 1

        with pytest.raises(RuntimeError, match="only forwarded"):
            PipelineRunner(
                chain_pipeline,
                transports={"simulation->analysis": OverreportingZipper()},
            ).run()

    def test_out_of_order_completion_forwards_in_step_order(self, bridges_spec):
        """Work stealing delivers blocks across steps out of order; the
        forwarding stage must still re-emit steps in order for downstream
        transports with in-order producer contracts (MPI-IO, DIMES)."""
        workload = synthetic_workload("O(n)", 1 * MiB, data_per_rank=16 * MiB)
        for downstream in ("mpiio", "dimes"):
            pipeline = PipelineSpec(
                stages=(
                    _stage("simulation", workload, ranks=4, total=64),
                    _stage("analysis", workload, ranks=2, total=32,
                           output_fraction=0.5),
                    _stage("viz", workload, ranks=2, total=16),
                ),
                couplings=(
                    # A tiny buffer with work stealing from block zero forces
                    # heavy file-path reordering on the first coupling.
                    CouplingSpec("simulation", "analysis", transport="zipper",
                                 producer_buffer_blocks=2, high_water_mark=0),
                    CouplingSpec("analysis", "viz", transport=downstream),
                ),
                cluster=bridges_spec,
                total_cores=384,
                trace=False,
            )
            result = run_pipeline(pipeline)
            assert not result.failed, downstream
            assert result.end_to_end_time > 0
            for rank, stats in result.stage_rank_stats["viz"].items():
                assert stats.get("analysis_time", 0.0) > 0, (downstream, rank)

    def test_decaf_overflow_check_uses_coupling_bytes(self, cfd, bridges_spec):
        """A reduced mid-pipeline stream must not trip Decaf's overflow fault
        sized for the raw (16x larger) workload output."""
        pipeline = PipelineSpec(
            stages=(
                _stage("simulation", cfd, ranks=4, total=4352),
                _stage("analysis", cfd, ranks=4, total=4352,
                       output_fraction=1.0 / 16.0),
                _stage("viz", cfd, ranks=2, total=64),
            ),
            couplings=(
                CouplingSpec("simulation", "analysis", transport="zipper"),
                CouplingSpec("analysis", "viz", transport="decaf"),
            ),
            cluster=bridges_spec,
            total_cores=13056,
            steps=2,
            trace=False,
        )
        result = run_pipeline(pipeline)
        assert not result.failed, result.failure_reason

    def test_fan_in_with_collective_transports(self, cfd, bridges_spec):
        """Two mpiio couplings into one stage: each coupling barriers on its
        own private communicator, so the concurrent per-coupling consumer
        processes cannot corrupt each other's collective sync."""
        pipeline = PipelineSpec(
            stages=(
                _stage("a", cfd, ranks=4),
                _stage("b", cfd, ranks=4),
                _stage("analysis", cfd, ranks=2),
            ),
            couplings=(
                CouplingSpec("a", "analysis", transport="mpiio"),
                CouplingSpec("b", "analysis", transport="mpiio"),
            ),
            cluster=bridges_spec,
            total_cores=384,
            steps=4,
            trace=False,
        )
        runner = PipelineRunner(pipeline)
        first, second = runner.ctx.couplings
        assert first.analysis_comm is not second.analysis_comm
        result = runner.run()
        assert not result.failed
        for name in ("a->analysis", "b->analysis"):
            assert result.coupling_stats[name].get("bytes_file", 0.0) > 0, name
        for stats in result.stage_rank_stats["analysis"].values():
            assert stats.get("analysis_time", 0.0) > 0

    def test_fan_in_merges_two_sources(self, cfd, bridges_spec):
        merged = PipelineSpec(
            stages=(
                _stage("md", lammps_workload(steps=4).replace(steps=4), ranks=4),
                _stage("cfd", cfd, ranks=4),
                _stage("analysis", cfd, ranks=2),
            ),
            couplings=(
                CouplingSpec("md", "analysis", transport="zipper"),
                CouplingSpec("cfd", "analysis", transport="dimes"),
            ),
            cluster=bridges_spec,
            total_cores=384,
            steps=4,
            trace=False,
        )
        result = run_pipeline(merged)
        assert not result.failed
        for stats in result.stage_rank_stats["analysis"].values():
            assert stats.get("analysis_time", 0.0) > 0
        assert result.coupling_stats["md->analysis"].get("blocks_produced", 0) > 0


class TestExtrasRegression:
    """``WorkflowConfig.extras`` must reach the transport constructor."""

    def test_extras_configure_the_transport(self, small_cfd_config):
        runner = WorkflowRunner(
            small_cfd_config.replace(extras={"counter_queries": 3})
        )
        assert runner.transport.counter_queries == 3

    def test_extras_change_behaviour(self, small_synthetic_config):
        base = small_synthetic_config.replace(trace=False)
        default = run_workflow(base)
        # Disable the concurrent-transfer optimisation through extras only:
        # the config-level flag stays True, the constructor kwarg must win.
        via_extras = run_workflow(base.replace(extras={"concurrent_transfer": False}))
        assert default.steal_fraction > 0
        assert via_extras.steal_fraction == 0

    def test_unknown_extras_raise(self, small_cfd_config):
        with pytest.raises(TypeError):
            WorkflowRunner(small_cfd_config.replace(extras={"bogus_option": 1}))


class TestPipelineSweeps:
    def _grid(self, chain_pipeline):
        return ParamGrid(
            chain_pipeline,
            axes=[("total_cores", (384, 768))],
            label="chain/{total_cores}",
        )

    def test_paramgrid_accepts_pipeline_specs(self, chain_pipeline):
        cases = list(self._grid(chain_pipeline))
        assert [c.label for c in cases] == ["chain/384", "chain/768"]
        assert all(isinstance(c.config, PipelineSpec) for c in cases)

    def test_sweep_runner_executes_pipelines(self, chain_pipeline):
        results = SweepRunner(workers=0).run_labelled(self._grid(chain_pipeline))
        assert set(results) == {"chain/384", "chain/768"}
        for result in results.values():
            assert not result.failed
            assert result.stage_breakdowns["viz"].analysis > 0

    def test_sweep_runner_parallel_and_resume(self, chain_pipeline, tmp_path):
        store = tmp_path / "pipelines.jsonl"
        grid = self._grid(chain_pipeline)
        first = SweepRunner(workers=2, store=str(store)).run(grid)
        assert all(r.ok and not r.skipped for r in first)
        second = SweepRunner(workers=2, store=str(store)).run(grid)
        assert all(r.skipped for r in second)

    def test_bench_shapes_spec(self):
        from repro.bench.experiments import pipeline_shapes_spec

        spec = pipeline_shapes_spec(steps=3, core_counts=(384,))
        labels = [case.label for case in spec.cases()]
        assert labels == ["chain/384", "fanout/384"]
        results = SweepRunner(workers=0).run_labelled(spec)
        assert all(not r.failed for r in results.values())


class TestRegistryHelpers:
    def test_canonical_name_is_exported(self):
        from repro.transports import canonical_name
        from repro.transports.registry import __all__ as registry_all

        assert "canonical_name" in registry_all
        assert canonical_name("ADIOS/DIMES") == "adios+dimes"

    def test_available_transports_with_aliases(self):
        from repro.transports import available_transports

        plain = available_transports()
        with_aliases = available_transports(include_aliases=True)
        assert set(plain) <= set(with_aliases)
        assert "mpi-io" in with_aliases and "mpi-io" not in plain
        assert "simulation-only" in with_aliases
