"""Tests for the workflow configuration, context, runner and result types."""

from __future__ import annotations

import pytest

from repro.apps.costs import MiB, cfd_workload, synthetic_workload
from repro.core import PerformanceModel, StageTimes
from repro.workflow import (
    WorkflowConfig,
    WorkflowRunner,
    run_workflow,
    simulation_only_time,
)
from repro.workflow.result import StageBreakdown


class TestWorkflowConfig:
    def test_rank_derivation_matches_paper_ratio(self, bridges_spec):
        cfg = WorkflowConfig(
            workload=cfd_workload(steps=5),
            cluster=bridges_spec,
            total_cores=384,
            sim_core_fraction=256 / 384,
            representative_sim_ranks=8,
        )
        assert cfg.total_sim_ranks == 256
        assert cfg.total_analysis_ranks == 128
        assert cfg.sim_ranks == 8
        assert cfg.analysis_ranks == 4  # same 2:1 ratio as the full job

    def test_small_jobs_are_not_overrepresented(self, bridges_spec):
        cfg = WorkflowConfig(
            workload=cfd_workload(steps=5),
            cluster=bridges_spec,
            total_cores=12,
            representative_sim_ranks=64,
        )
        assert cfg.sim_ranks <= cfg.total_sim_ranks

    def test_effective_block_never_exceeds_step_output(self, bridges_spec):
        cfg = WorkflowConfig(
            workload=cfd_workload(steps=5),
            cluster=bridges_spec,
            block_bytes=64 * MiB,
        )
        assert cfg.effective_block_bytes == 16 * MiB

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"total_cores": 1},
            {"sim_core_fraction": 0.0},
            {"representative_sim_ranks": 0},
            {"ranks_per_modelled_node": 0},
            {"ranks_per_modelled_node": 1000},
            {"block_bytes": 0},
            {"high_water_mark": 1000},
            {"steps": 0},
            {"staging_ranks_per_8_sim": -1},
        ],
    )
    def test_validation(self, bridges_spec, kwargs):
        base = dict(workload=cfd_workload(steps=5), cluster=bridges_spec)
        base.update(kwargs)
        with pytest.raises(ValueError):
            WorkflowConfig(**base)


class TestWorkflowContext:
    def test_placement_and_mapping(self, small_cfd_config):
        runner = WorkflowRunner(small_cfd_config)
        ctx = runner.ctx
        assert ctx.sim_ranks == 8 and ctx.analysis_ranks == 4
        # Sim and analysis ranks live on disjoint nodes.
        sim_nodes = {ctx.sim_node(r) for r in range(ctx.sim_ranks)}
        analysis_nodes = {ctx.analysis_node(a) for a in range(ctx.analysis_ranks)}
        assert sim_nodes.isdisjoint(analysis_nodes)
        # Every producer maps to exactly one consumer; consumers partition producers.
        all_producers = [r for a in range(ctx.analysis_ranks) for r in ctx.producers_of(a)]
        assert sorted(all_producers) == list(range(ctx.sim_ranks))
        for rank in range(ctx.sim_ranks):
            assert rank in ctx.producers_of(ctx.consumer_of(rank))

    def test_blocks_per_step(self, small_cfd_config):
        ctx = WorkflowRunner(small_cfd_config).ctx
        assert ctx.blocks_per_step() == 16  # 16 MiB / 1 MiB
        assert ctx.consumer_step_bytes(0) == 2 * 16 * MiB

    def test_staging_nodes_allocated_when_needed(self, small_cfd_config):
        ctx = WorkflowRunner(small_cfd_config.replace(transport="dataspaces")).ctx
        assert ctx.staging_ranks >= 1
        assert ctx.staging_node(0) >= ctx.sim_nodes + ctx.analysis_nodes

    def test_rank_scale_factor(self, small_cfd_config):
        ctx = WorkflowRunner(small_cfd_config).ctx
        assert ctx.rank_scale_factor == pytest.approx(256 / 8)


class TestRunnerResults:
    def test_simulation_only_lower_bound(self, small_cfd_config):
        result = run_workflow(small_cfd_config.replace(transport="none"))
        expected = simulation_only_time(small_cfd_config)
        assert result.end_to_end_time == pytest.approx(expected, rel=0.05)
        assert result.breakdown.simulation == pytest.approx(expected, rel=0.05)

    def test_zipper_run_is_reproducible(self, small_cfd_config):
        a = run_workflow(small_cfd_config)
        b = run_workflow(small_cfd_config)
        assert a.end_to_end_time == pytest.approx(b.end_to_end_time, rel=1e-12)
        assert a.stats["blocks_produced"] == b.stats["blocks_produced"]

    def test_trace_collection_toggle(self, small_cfd_config):
        with_trace = run_workflow(small_cfd_config.replace(trace=True))
        without = run_workflow(small_cfd_config.replace(trace=False))
        assert with_trace.tracer is not None and len(with_trace.tracer) > 0
        assert without.tracer is None
        assert "step" in with_trace.tracer.categories()

    def test_zipper_matches_analytical_model(self, small_synthetic_config):
        """The measured end-to-end time stays close to max(Tcomp, Ttransfer, Tanalysis)."""
        result = run_workflow(small_synthetic_config)
        largest_stage = max(
            result.breakdown.simulation + result.breakdown.stall,
            result.breakdown.transfer,
            result.breakdown.analysis,
        )
        assert result.end_to_end_time <= largest_stage * 1.4 + 0.5
        assert result.end_to_end_time >= largest_stage * 0.8

    def test_preserve_mode_persists_and_slows(self, small_synthetic_config):
        no_preserve = run_workflow(small_synthetic_config)
        preserve = run_workflow(small_synthetic_config.replace(preserve=True))
        assert preserve.stats.get("blocks_preserved", 0) + preserve.stats.get(
            "blocks_stolen", 0
        ) >= preserve.stats.get("blocks_produced")
        assert preserve.end_to_end_time >= no_preserve.end_to_end_time * 0.999
        assert preserve.breakdown.store > 0

    def test_concurrent_transfer_reduces_stall_for_transfer_bound_workload(
        self, small_synthetic_config
    ):
        concurrent = run_workflow(small_synthetic_config)
        mpi_only = run_workflow(small_synthetic_config.replace(concurrent_transfer=False))
        assert concurrent.steal_fraction > 0
        assert mpi_only.steal_fraction == 0
        assert (
            concurrent.breakdown.simulation + concurrent.breakdown.stall
            <= mpi_only.breakdown.simulation + mpi_only.breakdown.stall + 1e-6
        )
        assert concurrent.xmit_wait <= mpi_only.xmit_wait * 1.05

    def test_weak_scaling_congestion_grows(self, bridges_spec):
        workload = synthetic_workload("O(n)", 1 * MiB, data_per_rank=32 * MiB)

        def run_at(cores):
            return run_workflow(
                WorkflowConfig(
                    workload=workload,
                    cluster=bridges_spec,
                    transport="zipper",
                    total_cores=cores,
                    representative_sim_ranks=4,
                    representative_analysis_ranks=2,
                )
            )

        small, large = run_at(84), run_at(2352)
        assert large.xmit_wait > small.xmit_wait

    def test_result_helpers(self):
        breakdown = StageBreakdown(simulation=2.0, transfer=1.0, analysis=0.5, store=0.0, stall=0.1)
        assert breakdown.dominant() == "simulation"
        assert breakdown.as_dict()["stall"] == 0.1

    def test_speedup_and_summary(self, small_cfd_config):
        zipper = run_workflow(small_cfd_config)
        decaf = run_workflow(small_cfd_config.replace(transport="decaf"))
        assert zipper.speedup_over(decaf) > 1.0
        assert "zipper" in zipper.summary()

    def test_perf_model_cross_check(self):
        """The standalone model reproduces the paper's qualitative Figure 12 claim."""
        model = PerformanceModel(
            P=1568,
            Q=784,
            total_data=3136 * 1024**3,
            block_size=1 * MiB,
            stage=StageTimes(compute=0.001, transfer=0.0186, analysis=0.006),
        )
        assert model.dominant_stage() == "transfer"
        assert model.time_to_solution() == pytest.approx(0.0186 * 2048, rel=1e-6)
