"""Unit tests for the interconnect model and its counters."""

from __future__ import annotations

import pytest

from repro.cluster import Cluster, CounterRegistry, Network, PortCounters
from repro.cluster.presets import bridges, laptop
from repro.cluster.spec import NetworkSpec
from repro.simcore import Environment, Interrupt, RandomStreams, Timeout


def make_network(num_nodes=4, total_nodes=None, **spec_kwargs):
    env = Environment()
    spec = NetworkSpec(**spec_kwargs)
    return env, Network(env, spec, num_nodes=num_nodes, total_nodes=total_nodes)


def run_transfer(env, net, src, dst, nbytes, **kwargs):
    results = []

    def proc():
        r = yield from net.transfer(src, dst, nbytes, **kwargs)
        results.append(r)

    env.process(proc())
    env.run()
    return results[0]


class TestTransfer:
    def test_bandwidth_bound_duration(self):
        env, net = make_network()
        nbytes = 100 * 1024 * 1024
        result = run_transfer(env, net, 0, 1, nbytes)
        expected = nbytes / net.spec.link_bandwidth
        assert result.duration == pytest.approx(expected, rel=0.05)
        assert result.bandwidth <= net.spec.link_bandwidth

    def test_zero_bytes_costs_latency_only(self):
        env, net = make_network()
        result = run_transfer(env, net, 0, 1, 0)
        assert result.duration == pytest.approx(
            net.spec.latency + net.spec.per_message_overhead
        )

    def test_intra_node_uses_memory_bandwidth(self):
        env, net = make_network()
        nbytes = 64 * 1024 * 1024
        result = run_transfer(env, net, 2, 2, nbytes)
        assert result.duration < nbytes / net.spec.link_bandwidth

    def test_negative_bytes_rejected(self):
        env, net = make_network()
        with pytest.raises(ValueError):
            run_transfer(env, net, 0, 1, -1)

    def test_unknown_node_rejected(self):
        env, net = make_network(num_nodes=2)
        with pytest.raises(ValueError):
            run_transfer(env, net, 0, 5, 10)

    def test_fifo_queueing_at_source_port(self):
        env, net = make_network()
        results = []

        def sender(i):
            r = yield from net.transfer(0, 1, 50 * 1024 * 1024)
            results.append((i, r))

        for i in range(3):
            env.process(sender(i))
        env.run()
        queued = [r.queued for _, r in results]
        # The later messages wait behind the first at the shared source NIC.
        assert queued[0] == pytest.approx(0.0)
        assert queued[1] > 0 and queued[2] > queued[1]

    def test_congestion_reduces_bandwidth(self):
        env, net = make_network(congestion_alpha=0.5, max_congestion_penalty=8.0)
        # Eight concurrent incast flows into node 3.
        results = []

        def sender(src):
            r = yield from net.transfer(src, 3, 20 * 1024 * 1024)
            results.append(r)

        for src in range(3):
            env.process(sender(src))
        env.run()
        solo_env, solo_net = make_network(congestion_alpha=0.5, max_congestion_penalty=8.0)
        solo = run_transfer(solo_env, solo_net, 0, 3, 20 * 1024 * 1024)
        assert max(r.duration for r in results) > solo.duration

    def test_bytes_and_message_accounting(self):
        env, net = make_network()
        run_transfer(env, net, 0, 1, 1000)
        assert net.bytes_moved == 1000
        assert net.messages_sent == 1


class TestScaleEffects:
    def test_fabric_efficiency_declines_with_job_size(self):
        _, small = make_network(num_nodes=4, total_nodes=4)
        _, large = make_network(num_nodes=4, total_nodes=2000)
        assert large.fabric_efficiency() < small.fabric_efficiency()
        assert 0 < large.fabric_efficiency() <= 1.0

    def test_congestion_scale_grows_with_job_size(self):
        _, small = make_network(num_nodes=4, total_nodes=4)
        _, large = make_network(num_nodes=4, total_nodes=2000)
        assert small.congestion_scale() == pytest.approx(1.0)
        assert large.congestion_scale() > small.congestion_scale()

    def test_core_share_never_exceeds_link_bandwidth(self):
        _, net = make_network(num_nodes=4, total_nodes=500)
        assert net.core_share_per_node() <= net.spec.link_bandwidth

    def test_modelled_nodes_spread_over_leaves(self):
        _, net = make_network(num_nodes=4, total_nodes=500, ports_per_leaf=42)
        leaves = {net.node_leaf(n) for n in range(4)}
        assert len(leaves) > 1

    def test_total_nodes_cannot_be_smaller_than_modelled(self):
        env = Environment()
        with pytest.raises(ValueError):
            Network(env, NetworkSpec(), num_nodes=8, total_nodes=4)

    def test_scale_node_bandwidth(self):
        env, net = make_network()
        before = run_transfer(env, net, 0, 1, 10 * 1024 * 1024).duration
        env2, net2 = make_network()
        net2.scale_node_bandwidth(0, 0.5)
        after = run_transfer(env2, net2, 0, 1, 10 * 1024 * 1024).duration
        assert after > before
        with pytest.raises(ValueError):
            net2.scale_node_bandwidth(0, 0.0)


class TestCounters:
    def test_send_receive_counters(self):
        env, net = make_network()
        run_transfer(env, net, 0, 1, 5000)
        tx = net.counters.port("node0").snapshot()
        rx = net.counters.port("node1").snapshot()
        assert tx["XmitData"] == 5000 and tx["XmitPkts"] == 1
        assert rx["RcvData"] == 5000 and rx["RcvPkts"] == 1

    def test_xmitwait_accumulates_when_queued(self):
        env, net = make_network()

        def sender():
            yield from net.transfer(0, 1, 100 * 1024 * 1024)

        for _ in range(4):
            env.process(sender())
        env.run()
        assert net.xmit_wait_total() > 0

    def test_counter_registry_deltas(self):
        reg = CounterRegistry()
        port = reg.port("n0")
        port.record_send(100)
        reg.query(now=1.0)
        port.record_send(300)
        reg.query(now=2.0)
        deltas = reg.deltas("XmitData")
        assert [d for _, d in deltas] == [100, 300]

    def test_port_counters_validation(self):
        port = PortCounters("p")
        with pytest.raises(ValueError):
            port.record_send(-1)
        with pytest.raises(ValueError):
            port.record_wait(-1.0, 1e9, 8)
        port.record_wait(0.0, 1e9, 8)
        assert port.xmit_wait == 0

    def test_background_load_slows_transfers(self):
        env1, net1 = make_network(congestion_alpha=0.5)
        base = run_transfer(env1, net1, 0, 1, 50 * 1024 * 1024).duration
        env2, net2 = make_network(congestion_alpha=0.5)
        net2.add_background_load(0, 5.0)
        loaded = run_transfer(env2, net2, 0, 1, 50 * 1024 * 1024).duration
        assert loaded > base
        net2.remove_background_load(0, 5.0)
        assert net2.port_load(0) == pytest.approx(0.0)


class TestClusterFacade:
    def test_cluster_builds_components(self):
        cluster = Cluster(laptop(), num_nodes=2)
        assert cluster.network.num_nodes == 2
        assert cluster.filesystem is not None
        assert len(cluster.nodes) == 2
        assert cluster.total_cores == 2 * laptop().node.cores

    def test_max_nodes_enforced(self):
        with pytest.raises(ValueError):
            Cluster(bridges(), num_nodes=4, total_nodes=1000)

    def test_node_of_rank(self):
        cluster = Cluster(laptop(), num_nodes=2)
        assert cluster.node_of_rank(0, ranks_per_node=2) == 0
        assert cluster.node_of_rank(2, ranks_per_node=2) == 1
        with pytest.raises(ValueError):
            cluster.node_of_rank(0, ranks_per_node=0)


class TestTransferRobustness:
    """Regression tests for the port-load leak and the jitter bookkeeping bug."""

    def test_interrupted_transfer_restores_port_load(self):
        env, net = make_network()
        nbytes = 100 * 1024 * 1024  # ~8 ms on the fabric: plenty to interrupt

        def victim():
            try:
                yield from net.transfer(0, 1, nbytes)
            except Interrupt:
                pass

        proc = env.process(victim())

        def killer():
            yield Timeout(env, 1e-4)
            proc.interrupt("link failure")

        env.process(killer())
        env.run()
        # The cleanup after the yield must run even on interrupt, otherwise
        # the port keeps phantom congestion load forever.
        assert net.port_load(0) == pytest.approx(0.0)
        assert net.port_load(1) == pytest.approx(0.0)

    def test_failed_transfer_process_restores_port_load(self):
        env, net = make_network()

        def doomed():
            try:
                yield from net.transfer(0, 1, 100 * 1024 * 1024)
            except Interrupt:
                raise RuntimeError("rank died mid-transfer")

        proc = env.process(doomed())

        def killer():
            yield Timeout(env, 1e-4)
            proc.interrupt("nic reset")

        env.process(killer())
        with pytest.raises(RuntimeError, match="rank died"):
            env.run()
        assert net.port_load(0) == pytest.approx(0.0)

    def test_jittered_transfer_keeps_port_bookkeeping_consistent(self):
        env = Environment()
        net = Network(
            env,
            NetworkSpec(),
            num_nodes=4,
            rng=RandomStreams(7),
            jitter_cv=0.5,
        )
        result = run_transfer(env, net, 0, 1, 32 * 1024 * 1024)
        # The jitter draw must be folded in before the finish time is frozen,
        # so the FIFO availability of every stage agrees with simulated time.
        assert result.finish == env.now
        assert net._inject[0].busy_until == pytest.approx(result.finish)
        assert net._eject[1].busy_until == pytest.approx(result.finish)

    def test_jitter_actually_perturbs_durations(self):
        base = run_transfer(*make_network(), 0, 1, 32 * 1024 * 1024)
        env = Environment()
        net = Network(env, NetworkSpec(), num_nodes=4, rng=RandomStreams(7), jitter_cv=0.5)
        jittered = run_transfer(env, net, 0, 1, 32 * 1024 * 1024)
        assert jittered.duration != base.duration

    @pytest.mark.parametrize("seed", range(16))
    def test_queued_senders_keep_fifo_order_under_jitter(self, seed):
        env = Environment()
        net = Network(env, NetworkSpec(), num_nodes=4, rng=RandomStreams(seed), jitter_cv=0.5)
        results = []

        def sender(i):
            r = yield from net.transfer(0, 1, 16 * 1024 * 1024)
            results.append((i, r))

        for i in range(4):
            env.process(sender(i))
        env.run()
        ordered = [r for _, r in sorted(results)]
        # Only the service time is jittered, never the queueing delay, so a
        # later message can never finish before the one it queued behind —
        # for any seed, not just a lucky one.
        for earlier, later in zip(ordered, ordered[1:]):
            assert later.finish >= earlier.finish
            assert later.queued > 0
