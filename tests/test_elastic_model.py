"""Tests for the model-driven elastic layer (policy, controller, rank counts)."""

from __future__ import annotations

import json

import pytest

from repro.bench.experiments import (
    elastic_burst_pipeline,
    model_driven_default_policy,
    model_vs_threshold_spec,
)
from repro.elastic import (
    ElasticController,
    ElasticPolicy,
    ModelDrivenController,
    ModelDrivenPolicy,
    RebalanceEvent,
)
from repro.simcore import PIDSmoother
from repro.sweep.runner import SweepRunner
from repro.sweep.store import result_payload
from repro.workflow.runner import PipelineRunner, run_pipeline

GRANTS = (128, 160, 192, 224, 256)


def bursty(grant=256, steps=12, elastic=None, elastic_ranks=False):
    """The bursty-analytics pipeline, optionally with rank-elastic stages."""
    pipeline = elastic_burst_pipeline(sim_cores=grant, steps=steps).replace(
        elastic=elastic
    )
    if elastic_ranks:
        pipeline = pipeline.replace(
            stages=tuple(s.replace(elastic_ranks=True) for s in pipeline.stages)
        )
    return pipeline


# -- policy -------------------------------------------------------------------
class TestModelDrivenPolicy:
    def test_defaults_validate(self):
        policy = ModelDrivenPolicy()
        assert policy.smoothing > 0 and policy.deadband_fraction >= 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"smoothing": 0.0},
            {"smoothing": 1.5},
            {"proportional_gain": -0.1},
            {"integral_gain": -0.1},
            {"derivative_gain": -0.1},
            {"deadband_fraction": -0.5},
            {"max_assist_ranks": -1},
            {"min_progress_steps": -1.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ModelDrivenPolicy(**kwargs)

    def test_never_policy_has_infinite_deadband(self):
        assert ModelDrivenPolicy.never().deadband_fraction == float("inf")

    def test_build_controller_dispatches_on_policy_type(self):
        threshold_runner = PipelineRunner(bursty(elastic=ElasticPolicy()))
        assert type(threshold_runner.elastic_controller) is ElasticController
        model_runner = PipelineRunner(bursty(elastic=ModelDrivenPolicy()))
        assert type(model_runner.elastic_controller) is ModelDrivenController
        assert model_runner.elastic_controller.runner is model_runner


# -- the acceptance invariants -------------------------------------------------
class TestNeverTriggeringModelPolicy:
    def test_bit_identical_to_static(self):
        static = run_pipeline(bursty())
        never = run_pipeline(bursty(elastic=ModelDrivenPolicy.never(epoch_seconds=0.25)))
        assert never.rebalances == []
        assert result_payload(never) == result_payload(static)

    def test_bit_identical_with_rank_elastic_stages(self):
        static = run_pipeline(bursty(elastic_ranks=True))
        never = run_pipeline(
            bursty(elastic=ModelDrivenPolicy.never(epoch_seconds=0.25), elastic_ranks=True)
        )
        assert never.rebalances == []
        assert never.stage_assist_ranks == {}
        assert result_payload(never) == result_payload(static)


class TestModelBeatsThreshold:
    @pytest.fixture(scope="class")
    def grid_results(self):
        spec = model_vs_threshold_spec(steps=24)
        return SweepRunner(workers=0).run_labelled(spec)

    def test_grid_shape(self, grid_results):
        threshold = [k for k in grid_results if k.startswith("threshold/")]
        model = [k for k in grid_results if k.startswith("model/")]
        assert len(threshold) == len(model) == len(GRANTS)

    def test_best_model_run_at_least_matches_best_threshold(self, grid_results):
        best_threshold = min(
            (r for k, r in grid_results.items() if k.startswith("threshold/")),
            key=lambda r: r.end_to_end_time,
        )
        best_model = min(
            (r for k, r in grid_results.items() if k.startswith("model/")),
            key=lambda r: r.end_to_end_time,
        )
        assert best_model.end_to_end_time <= best_threshold.end_to_end_time
        # ... with strictly fewer rebalance events.
        assert len(best_model.rebalances) < len(best_threshold.rebalances)

    def test_model_dominates_every_grant(self, grid_results):
        for grant in GRANTS:
            threshold = grid_results[f"threshold/{grant}"]
            model = grid_results[f"model/{grant}"]
            assert model.end_to_end_time <= threshold.end_to_end_time, grant
            assert len(model.rebalances) < len(threshold.rebalances), grant

    def test_model_halves_total_rebalance_traffic(self, grid_results):
        threshold_events = sum(
            len(r.rebalances) for k, r in grid_results.items() if k.startswith("threshold/")
        )
        model_events = sum(
            len(r.rebalances) for k, r in grid_results.items() if k.startswith("model/")
        )
        assert model_events < threshold_events / 2

    def test_model_runs_actually_adapted(self, grid_results):
        for grant in GRANTS:
            assert grid_results[f"model/{grant}"].rebalances


class TestModelCoreConservation:
    def test_resizes_conserve_total_cores(self):
        runner = PipelineRunner(bursty(grant=192, elastic=model_driven_default_policy()))
        result = runner.run()
        controller = runner.elastic_controller
        resizes = [e for e in result.rebalances if e.kind == "stage_resize"]
        assert resizes, "the bursty scenario must trigger model-driven resizes"
        allocations = dict(controller.baseline)
        total = sum(allocations.values())
        for event in resizes:
            allocations[event.donor] -= event.amount
            allocations[event.receiver] += event.amount
            assert event.amount > 0
            assert sum(allocations.values()) == pytest.approx(total, rel=1e-12)
        assert allocations == pytest.approx(controller.allocations)

    def test_floors_respected_throughout(self):
        policy = model_driven_default_policy().replace(min_stage_fraction=0.25)
        runner = PipelineRunner(bursty(grant=192, elastic=policy))
        result = runner.run()
        controller = runner.elastic_controller
        allocations = dict(controller.baseline)
        for event in result.rebalances:
            if event.kind != "stage_resize":
                continue
            allocations[event.donor] -= event.amount
            allocations[event.receiver] += event.amount
            for name, value in allocations.items():
                assert value >= 0.25 * controller.baseline[name] - 1e-9


# -- edge cases ----------------------------------------------------------------
class TestEdgeCases:
    def test_all_stages_non_resizable_never_resize(self):
        pipeline = bursty(elastic=model_driven_default_policy())
        stages = tuple(s.replace(resizable=False) for s in pipeline.stages)
        runner = PipelineRunner(pipeline.replace(stages=stages))
        result = runner.run()
        assert [e for e in result.rebalances if e.kind == "stage_resize"] == []
        assert runner.elastic_controller.allocations == runner.elastic_controller.baseline

    def test_zero_length_epoch_reports_zero_health(self):
        runner = PipelineRunner(bursty(elastic=model_driven_default_policy()))
        monitor = runner.elastic_controller.monitor
        health = monitor.advance(runner.ctx.env.now)
        assert health.duration == 0.0
        for stage in health.stages.values():
            assert stage.busy_fraction == 0.0
            assert stage.stall_fraction == 0.0
            assert stage.work_fraction == 0.0
            assert stage.progress_steps == 0.0

    def test_zero_length_epoch_takes_no_decision(self):
        runner = PipelineRunner(bursty(elastic=model_driven_default_policy()))
        controller = runner.elastic_controller
        controller._on_epoch(runner.ctx.env.now)
        assert controller.epoch == 1
        assert controller.timeline == []
        assert controller.allocations == controller.baseline
        assert controller.model.epochs_observed == 0


class TestPIDDamping:
    def test_pid_amplitude_shrinks_while_bang_bang_oscillates(self):
        """The documented PR 3 fix: a fixed-step (bang-bang) loop keeps an
        oscillation amplitude of one full step around the target forever,
        while the PID-smoothed loop's amplitude shrinks epoch over epoch."""
        target, start, step = 200.0, 100.0, 80.0

        bang_bang_amplitudes = []
        holding = start
        for _ in range(12):
            holding += step if holding < target else -step
            bang_bang_amplitudes.append(abs(target - holding))
        # Once near balance the bang-bang loop never settles: it cycles
        # through the same overshoot amplitudes forever.
        tail = bang_bang_amplitudes[2:]
        assert min(tail) > 0
        assert tail[0:2] * (len(tail) // 2) == tail
        assert tail[-1] >= min(tail)

        pid = PIDSmoother(kp=0.6)
        holding = start
        pid_amplitudes = []
        for _ in range(12):
            holding += pid.update(target - holding, dt=1.0)
            pid_amplitudes.append(abs(target - holding))
        assert all(
            later < earlier
            for earlier, later in zip(pid_amplitudes, pid_amplitudes[1:])
        )
        assert pid_amplitudes[-1] < 0.1

    def test_integral_limit_clamps_windup(self):
        pid = PIDSmoother(kp=0.0, ki=1.0, integral_limit=5.0)
        for _ in range(100):
            out = pid.update(10.0, dt=1.0)
        assert out == pytest.approx(5.0)

    @pytest.mark.parametrize(
        "kwargs", [{"kp": -1.0}, {"ki": -0.1}, {"kd": -0.1}, {"integral_limit": 0.0}]
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            PIDSmoother(**kwargs)

    def test_rejects_non_positive_dt(self):
        with pytest.raises(ValueError):
            PIDSmoother().update(1.0, dt=0.0)


# -- elastic rank counts --------------------------------------------------------
class TestRankLifecycleHooks:
    def test_spawn_and_retire_track_census_and_hosting(self):
        runner = PipelineRunner(bursty(elastic_ranks=True))
        base = runner.placement.stage_node_base["analysis"]
        nodes = [
            runner.cluster.node(base + offset)
            for offset in range(runner.placement.stage_nodes["analysis"])
        ]
        hosted_before = sum(n.hosted_ranks for n in nodes)
        assert runner.stage_assists("analysis") == 0
        assert runner.spawn_rank("analysis") == 1
        assert runner.spawn_rank("analysis") == 2
        assert sum(n.hosted_ranks for n in nodes) == hosted_before + 2
        assert runner.retire_rank("analysis") == 1
        assert runner.set_assist_ranks("analysis", 3) == 3
        assert runner.stage_assists("analysis") == 3

    def test_retire_without_spawn_rejected(self):
        runner = PipelineRunner(bursty(elastic_ranks=True))
        with pytest.raises(ValueError):
            runner.retire_rank("analysis")

    def test_spawn_for_unknown_stage_rejected(self):
        runner = PipelineRunner(bursty(elastic_ranks=True))
        with pytest.raises(KeyError):
            runner.spawn_rank("nope")

    def test_node_release_validation(self):
        runner = PipelineRunner(bursty())
        node = runner.cluster.node(0)
        node.hosted_ranks = 0
        with pytest.raises(ValueError):
            node.release_rank()

    def test_assists_speed_up_their_stage(self):
        """Spawned ranks are real capacity: a run that gets assists for free
        finishes faster than the identical static run."""
        static = run_pipeline(bursty(elastic_ranks=True))
        runner = PipelineRunner(bursty(elastic_ranks=True))
        runner.set_assist_ranks("simulation", 4)
        runner.set_assist_ranks("analysis", 2)
        assisted = runner.run()
        assert assisted.end_to_end_time < static.end_to_end_time
        assert assisted.stage_assist_ranks == {"simulation": 4, "analysis": 2}
        assert assisted.stats["simulation/assist_busy_time"] > 0
        assert assisted.stats["analysis/assist_busy_time"] > 0


class TestRankElasticRuns:
    @pytest.fixture(scope="class")
    def rank_elastic_result(self):
        runner = PipelineRunner(
            bursty(grant=192, steps=24, elastic=model_driven_default_policy(),
                   elastic_ranks=True)
        )
        return runner, runner.run()

    def test_rank_events_appear_on_the_timeline(self, rank_elastic_result):
        _, result = rank_elastic_result
        kinds = {e.kind for e in result.rebalances}
        assert "rank_spawn" in kinds
        assert "rank_retire" in kinds
        for event in result.rebalances:
            if event.kind in ("rank_spawn", "rank_retire"):
                assert event.amount >= 1
                assert "assist_ranks" in event.detail

    def test_census_and_stats_are_reported(self, rank_elastic_result):
        _, result = rank_elastic_result
        assert result.stage_assist_ranks
        assert any(key.endswith("/assist_busy_time") for key in result.stats)

    def test_assist_cap_respected(self, rank_elastic_result):
        runner, result = rank_elastic_result
        cap = runner.elastic_controller.policy.max_assist_ranks
        for event in result.rebalances:
            if event.kind in ("rank_spawn", "rank_retire"):
                assert event.detail["assist_ranks"] <= cap

    def test_timeline_roundtrips_through_store_payload(self, rank_elastic_result):
        _, result = rank_elastic_result
        payload = result_payload(result)
        assert "stage_assist_ranks" in payload
        restored = json.loads(json.dumps(payload, sort_keys=True))
        events = [RebalanceEvent.from_dict(e) for e in restored["rebalances"]]
        assert events == result.rebalances
        assert restored["stage_assist_ranks"] == {
            name: count for name, count in result.stage_assist_ranks.items()
        }
