"""Tests for the runtime determinism sanitizer (``repro.sanitize``).

Each trap is demonstrated on a deliberately broken fixture — a wall-clock
read mid-event, an unseeded global random draw, a set at an order-sensitive
boundary, a use-after-recycle hold, a crediting imbalance — and each has a
near-identical correct twin that must run trap-free.  A final smoke test
checks a sanitized pipeline run is bit-identical with an unsanitized one:
the sanitizer is a pure detector.
"""

from __future__ import annotations

import random
import time

import pytest

from repro import sanitize
from repro.sanitize import SanitizerTrap
from repro.simcore import AllOf, Environment, Store


@pytest.fixture(autouse=True)
def _guards_restored():
    """Leave the process clock/RNG untouched for the rest of the suite."""
    yield
    sanitize.uninstall_guards()


def _run_trapped(proc_fn, **env_kwargs):
    env = Environment(sanitize=True, **env_kwargs)
    env.process(proc_fn(env))
    with pytest.raises(SanitizerTrap) as excinfo:
        env.run()
    return str(excinfo.value)


# -- wall-clock and global-RNG guards -------------------------------------


class TestClockAndRandomGuards:
    def test_wall_clock_read_during_event_traps(self):
        def broken(env):
            yield env.sleep(1.0)
            time.perf_counter()

        message = _run_trapped(broken)
        assert "time.perf_counter()" in message
        assert "D202" in message

    def test_global_random_draw_during_event_traps(self):
        def broken(env):
            yield env.sleep(1.0)
            random.random()

        message = _run_trapped(broken)
        assert "random.random()" in message
        assert "D201" in message

    def test_guards_are_transparent_outside_event_execution(self):
        env = Environment(sanitize=True)
        assert sanitize.guards_installed()
        # The harness (pytest, the bench timer) keeps its wall clock.
        assert isinstance(time.perf_counter(), float)
        assert 0.0 <= random.random() < 1.0

        def fine(env):
            yield env.sleep(1.0)

        env.process(fine(env))
        env.run()
        assert isinstance(time.perf_counter(), float)

    def test_install_is_idempotent_and_uninstall_restores(self):
        originals = (time.perf_counter, random.random)
        sanitize.install_guards()
        patched = (time.perf_counter, random.random)
        sanitize.install_guards()
        assert (time.perf_counter, random.random) == patched
        sanitize.uninstall_guards()
        assert (time.perf_counter, random.random) == originals
        assert not sanitize.guards_installed()

    def test_seeded_stream_randomness_stays_trap_free(self):
        from repro.simcore import RandomStreams

        streams = RandomStreams(7)

        def fine(env):
            yield env.sleep(streams.jitter("svc", 1.0, 0.1))

        env = Environment(sanitize=True)
        env.process(fine(env))
        env.run()
        assert env.now > 0.0


# -- order-sensitive boundaries -------------------------------------------


class TestOrderedBoundaries:
    def test_condition_built_from_a_set_traps(self):
        env = Environment(sanitize=True)
        events = {env.sleep(1.0), env.sleep(2.0)}
        with pytest.raises(SanitizerTrap, match="D203"):
            AllOf(env, events)

    def test_condition_built_from_a_list_is_fine(self):
        env = Environment(sanitize=True)
        done = AllOf(env, [env.sleep(1.0), env.sleep(2.0)])
        env.run(done)
        assert env.now == 2.0

    def test_check_ordered_names_the_boundary(self):
        with pytest.raises(SanitizerTrap, match="batch coalescing"):
            sanitize.check_ordered(frozenset({1, 2}), "batch coalescing")
        sanitize.check_ordered([1, 2], "batch coalescing")
        sanitize.check_ordered((1, 2), "batch coalescing")


# -- use-after-recycle poisoning ------------------------------------------


class TestUseAfterRecycle:
    def test_holding_a_store_put_past_its_yield_traps(self):
        def broken(env, store):
            ev = store.put("x")
            yield ev
            yield ev  # use-after-recycle: the event has been poisoned

        env = Environment(sanitize=True, pool_events=True)
        store = Store(env)
        env.process(broken(env, store))
        with pytest.raises(SanitizerTrap) as excinfo:
            env.run()
        assert "after recycling" in str(excinfo.value)
        assert "generation" in str(excinfo.value)

    def test_fresh_event_per_operation_is_fine(self):
        def fine(env, store):
            yield store.put("x")
            item = yield store.get()
            assert item == "x"

        env = Environment(sanitize=True, pool_events=True)
        store = Store(env)
        env.process(fine(env, store))
        env.run()

    def test_sanitize_keeps_free_lists_empty(self):
        def fine(env, store):
            for _ in range(5):
                yield store.put("x")
                yield store.get()

        env = Environment(sanitize=True, pool_events=True)
        store = Store(env)
        env.process(fine(env, store))
        env.run()
        assert env._put_pool == []
        assert env._get_pool == []

    def test_poison_event_bumps_the_generation_counter(self):
        env = Environment()
        event = env.sleep(1.0)  # PooledTimeout: carries the generation slot
        sanitize.poison_event(event)
        sanitize.poison_event(event)
        assert event._generation == 2
        assert isinstance(event._value, SanitizerTrap)
        assert event.callbacks is None


# -- crediting validation -------------------------------------------------


class TestCreditingValidation:
    def test_zero_and_negative_counts_trap(self):
        def broken(env):
            yield env.sleep(1.0)
            env.credit_events(0)

        assert "credit_events(0)" in _run_trapped(broken)

        def negative(env):
            yield env.sleep(1.0)
            env.credit_events(-2)

        assert "credit_events(-2)" in _run_trapped(negative)

    def test_non_integer_count_traps(self):
        def broken(env):
            yield env.sleep(1.0)
            env.credit_events(1.5)

        assert "credit_events(1.5)" in _run_trapped(broken)

    def test_crediting_outside_event_execution_traps(self):
        env = Environment(sanitize=True)
        with pytest.raises(SanitizerTrap, match="outside event execution"):
            env.credit_events(2)

    def test_valid_crediting_counts_like_unsanitized(self):
        def fast(env):
            yield env.sleep(1.0)
            env.credit_events(2)

        env = Environment(sanitize=True)
        env.process(fast(env))
        env.run()
        plain = Environment()
        plain.process(fast(plain))
        plain.run()
        assert env.events_processed == plain.events_processed


# -- enablement and end-to-end identity -----------------------------------


class TestEnablement:
    def test_default_enabled_reads_the_environment_variable(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        assert sanitize.default_enabled() is False
        monkeypatch.setenv("REPRO_SANITIZE", "0")
        assert sanitize.default_enabled() is False
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert sanitize.default_enabled() is True
        env = Environment()
        assert env.sanitize is True
        assert Environment(sanitize=False).sanitize is False

    def test_sanitized_run_is_bit_identical(self):
        from repro.bench.experiments import pipeline_chain
        from repro.sweep.store import result_payload
        from repro.workflow.runner import run_pipeline

        pipeline = pipeline_chain(total_cores=96, steps=2)
        sanitized = run_pipeline(pipeline.replace(sanitize=True))
        plain = run_pipeline(pipeline)
        assert result_payload(sanitized) == result_payload(plain)
