"""Integration tests: scaled-down versions of the paper's headline experiments.

These are the same experiments the ``benchmarks/`` harness regenerates, run at
very small step counts so they fit in the unit-test budget.  They pin down the
qualitative findings the reproduction must preserve.
"""

from __future__ import annotations

import pytest

from repro.apps.costs import MiB, cfd_workload, lammps_workload, synthetic_workload
from repro.bench.experiments import (
    FIGURE2_TRANSPORTS,
    figure2_configs,
    figure12_configs,
    figure14_configs,
    trace_config,
)
from repro.cluster.presets import stampede2
from repro.trace import compare_traces, summarize_categories
from repro.workflow import WorkflowConfig, run_workflow


class TestBenchDescriptors:
    def test_figure2_covers_all_seven_methods(self):
        labels = [t for t, _ in figure2_configs(steps=3)]
        for method in FIGURE2_TRANSPORTS:
            assert method in labels
        assert "zipper" in labels and "none" in labels

    def test_figure12_covers_both_block_sizes_and_all_complexities(self):
        labels = [label for label, _ in figure12_configs(data_per_rank=16 * MiB)]
        assert len(labels) == 6
        assert any("8MB" in lbl for lbl in labels) and any("O(n^1.5)" in lbl for lbl in labels)

    def test_figure14_pairs_mpi_only_with_concurrent(self):
        labels = [label for label, _ in figure14_configs(data_per_rank=16 * MiB, core_counts=(84,))]
        assert sum("mpi-only" in lbl for lbl in labels) == 3
        assert sum("concurrent" in lbl for lbl in labels) == 3

    def test_trace_config_enables_tracing(self):
        cfg = trace_config("decaf", "cfd", 204, steps=4)
        assert cfg.trace and cfg.transport == "decaf"


class TestFigure2Shape:
    """Figure 2: end-to-end times of the seven transports on the Bridges CFD workflow."""

    @pytest.fixture(scope="class")
    def results(self):
        return {t: run_workflow(cfg) for t, cfg in figure2_configs(steps=4, representative_sim_ranks=4)}

    def test_every_method_completes(self, results):
        assert all(not r.failed for r in results.values())

    def test_simulation_only_is_the_floor(self, results):
        floor = results["none"].end_to_end_time
        assert all(r.end_to_end_time >= floor * 0.99 for t, r in results.items() if t != "none")

    def test_mpiio_is_slowest_and_decaf_beats_it(self, results):
        others = {t: r.end_to_end_time for t, r in results.items() if t != "none"}
        assert max(others, key=others.get) == "mpiio"
        assert others["decaf"] < others["mpiio"]

    def test_zipper_outperforms_every_baseline(self, results):
        zipper = results["zipper"].end_to_end_time
        for method in FIGURE2_TRANSPORTS:
            assert zipper <= results[method].end_to_end_time


class TestFigure14Shape:
    """Figure 14: the concurrent transfer optimisation helps the transfer-bound producer."""

    def _run(self, complexity, concurrent):
        workload = synthetic_workload(complexity, 1 * MiB, data_per_rank=24 * MiB)
        cfg = WorkflowConfig(
            workload=workload,
            cluster=stampede2(),
            transport="zipper",
            total_cores=588,
            representative_sim_ranks=4,
            representative_analysis_ranks=2,
            producer_buffer_blocks=8,
            high_water_mark=6,
            concurrent_transfer=concurrent,
        )
        return run_workflow(cfg)

    def test_transfer_bound_producer_benefits(self):
        mpi_only = self._run("O(n)", False)
        concurrent = self._run("O(n)", True)
        assert concurrent.steal_fraction > 0.05
        wallclock_mpi = mpi_only.breakdown.simulation + mpi_only.breakdown.stall
        wallclock_conc = concurrent.breakdown.simulation + concurrent.breakdown.stall
        assert wallclock_conc <= wallclock_mpi * 1.02

    def test_compute_bound_producer_falls_back(self):
        concurrent = self._run("O(n^1.5)", True)
        assert concurrent.steal_fraction < 0.05
        assert concurrent.breakdown.stall == pytest.approx(0.0, abs=1e-6)


class TestScalabilityShape:
    """Figures 16/18: Zipper tracks simulation-only; Decaf fails/degrades at scale."""

    def _run(self, workload, transport, cores):
        cfg = WorkflowConfig(
            workload=workload,
            cluster=stampede2(),
            transport=transport,
            total_cores=cores,
            representative_sim_ranks=4,
            steps=4,
        )
        return run_workflow(cfg)

    def test_zipper_tracks_simulation_only_across_scales(self):
        for cores in (204, 3264, 13056):
            zipper = self._run(cfd_workload(steps=4), "zipper", cores)
            sim_only = self._run(cfd_workload(steps=4), "none", cores)
            assert zipper.end_to_end_time <= sim_only.end_to_end_time * 1.5

    def test_decaf_integer_overflow_only_at_large_cfd_scale(self):
        ok = self._run(cfd_workload(steps=4), "decaf", 3264)
        crash = self._run(cfd_workload(steps=4), "decaf", 13056)
        assert not ok.failed and crash.failed

    def test_headline_lammps_gap_at_13056_cores(self):
        zipper = self._run(lammps_workload(steps=4), "zipper", 13056)
        decaf = self._run(lammps_workload(steps=4), "decaf", 13056)
        assert not decaf.failed
        assert decaf.end_to_end_time / zipper.end_to_end_time > 1.3


class TestTraceShape:
    """Figures 5/6/17: interference and step counts visible in the traces."""

    def test_decaf_inflates_sendrecv_and_stalls(self):
        alone = run_workflow(trace_config("none", "cfd", 204, steps=5))
        decaf = run_workflow(trace_config("decaf", "cfd", 204, steps=5))
        sendrecv_alone = summarize_categories(alone.tracer, rank=0).get("sendrecv", 0.0)
        sendrecv_decaf = summarize_categories(decaf.tracer, rank=0).get("sendrecv", 0.0)
        assert sendrecv_decaf >= sendrecv_alone * 0.99
        assert summarize_categories(decaf.tracer, rank=0).get("waitall", 0.0) > 0

    def test_zipper_fits_more_steps_than_decaf_in_the_same_window(self):
        zipper = run_workflow(trace_config("zipper", "cfd", 204, steps=6))
        decaf = run_workflow(trace_config("decaf", "cfd", 204, steps=6))
        cmp = compare_traces(zipper.tracer, decaf.tracer, window=2.0, rank=0)
        assert cmp["ratio"] >= 1.0
