"""Unit tests for resources, stores and containers."""

from __future__ import annotations

import pytest

from repro.simcore import (
    Container,
    FilterStore,
    PriorityResource,
    Resource,
    SimulationError,
    Store,
    Timeout,
)


class TestResource:
    def test_capacity_validation(self, env):
        with pytest.raises(SimulationError):
            Resource(env, capacity=0)

    def test_grant_and_queue(self, env):
        res = Resource(env, capacity=1)
        order = []

        def user(env, res, uid, hold):
            req = res.request()
            yield req
            order.append(("acquired", uid, env.now))
            yield Timeout(env, hold)
            res.release(req)

        env.process(user(env, res, "a", 2.0))
        env.process(user(env, res, "b", 1.0))
        env.run()
        assert order == [("acquired", "a", 0.0), ("acquired", "b", 2.0)]

    def test_count_and_queue_length(self, env):
        res = Resource(env, capacity=2)

        def holder(env, res):
            req = res.request()
            yield req
            yield Timeout(env, 10)
            res.release(req)

        for _ in range(3):
            env.process(holder(env, res))
        env.run(until=1.0)
        assert res.count == 2
        assert res.queue_length == 1

    def test_release_unknown_request_raises(self, env):
        res = Resource(env)
        other = Resource(env)
        req = other.request()
        env.run()
        with pytest.raises(SimulationError):
            res.release(req)

    def test_cancel_waiting_request(self, env):
        res = Resource(env, capacity=1)
        first = res.request()
        second = res.request()
        assert res.queue_length == 1
        second.cancel()
        assert res.queue_length == 0
        assert first.triggered


class TestPriorityResource:
    def test_lower_priority_value_served_first(self, env):
        res = PriorityResource(env, capacity=1)
        order = []

        def user(env, res, uid, priority, start_delay):
            yield Timeout(env, start_delay)
            req = res.request(priority=priority)
            yield req
            order.append(uid)
            yield Timeout(env, 5)
            res.release(req)

        env.process(user(env, res, "low", 5.0, 0.0))
        env.process(user(env, res, "urgent", 0.0, 1.0))
        env.process(user(env, res, "normal", 2.0, 1.0))
        env.run()
        assert order == ["low", "urgent", "normal"]


class TestStore:
    def test_fifo_order(self, env):
        store = Store(env)
        got = []

        def producer(env, store):
            for i in range(3):
                yield store.put(i)

        def consumer(env, store):
            for _ in range(3):
                item = yield store.get()
                got.append(item)

        env.process(producer(env, store))
        env.process(consumer(env, store))
        env.run()
        assert got == [0, 1, 2]

    def test_bounded_capacity_blocks_put(self, env):
        store = Store(env, capacity=1)
        times = []

        def producer(env, store):
            yield store.put("a")
            start = env.now
            yield store.put("b")
            times.append((start, env.now))

        def consumer(env, store):
            yield Timeout(env, 5)
            yield store.get()

        env.process(producer(env, store))
        env.process(consumer(env, store))
        env.run()
        assert times == [(0.0, 5.0)]

    def test_get_blocks_until_item(self, env):
        store = Store(env)
        got = []

        def consumer(env, store):
            item = yield store.get()
            got.append((item, env.now))

        def producer(env, store):
            yield Timeout(env, 3)
            yield store.put("x")

        env.process(consumer(env, store))
        env.process(producer(env, store))
        env.run()
        assert got == [("x", 3.0)]

    def test_len(self, env):
        store = Store(env)
        store.put(1)
        store.put(2)
        env.run()
        assert len(store) == 2

    def test_invalid_capacity(self, env):
        with pytest.raises(SimulationError):
            Store(env, capacity=0)


class TestFilterStore:
    def test_filtered_get(self, env):
        store = FilterStore(env)
        got = []

        def consumer(env, store):
            item = yield store.get(lambda x: x % 2 == 0)
            got.append(item)

        def producer(env, store):
            yield store.put(1)
            yield store.put(3)
            yield Timeout(env, 1)
            yield store.put(4)

        env.process(consumer(env, store))
        env.process(producer(env, store))
        env.run()
        assert got == [4]
        assert store.items == [1, 3]


class TestContainer:
    def test_level_tracking(self, env):
        c = Container(env, capacity=10, init=4)
        c.put(3)
        env.run()
        assert c.level == 7
        c.get(5)
        env.run()
        assert c.level == 2

    def test_get_blocks_until_available(self, env):
        c = Container(env, capacity=10, init=0)
        times = []

        def consumer(env, c):
            yield c.get(5)
            times.append(env.now)

        def producer(env, c):
            yield Timeout(env, 2)
            yield c.put(5)

        env.process(consumer(env, c))
        env.process(producer(env, c))
        env.run()
        assert times == [2.0]

    def test_put_blocks_at_capacity(self, env):
        c = Container(env, capacity=5, init=5)
        times = []

        def producer(env, c):
            yield c.put(2)
            times.append(env.now)

        def consumer(env, c):
            yield Timeout(env, 4)
            yield c.get(3)

        env.process(producer(env, c))
        env.process(consumer(env, c))
        env.run()
        assert times == [4.0]

    def test_validation(self, env):
        with pytest.raises(SimulationError):
            Container(env, capacity=0)
        with pytest.raises(SimulationError):
            Container(env, capacity=5, init=6)
        c = Container(env, capacity=5)
        with pytest.raises(SimulationError):
            c.put(0)
        with pytest.raises(SimulationError):
            c.get(-1)
