"""Tests for the analysis kernels, the synthetic producers and the cost models."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import (
    MeanSquaredDisplacement,
    StreamingMoments,
    SyntheticProducer,
    cfd_workload,
    lammps_workload,
    nth_moment,
    standard_variance,
    synthetic_workload,
    velocity_moments,
)
from repro.apps.analysis.msd import mean_squared_displacement
from repro.apps.costs import GiB, MiB
from repro.apps.synthetic import canonical_complexity, complexity_units


class TestMoments:
    def test_nth_moment_known_values(self):
        data = np.array([1.0, 2.0, 3.0, 4.0])
        assert nth_moment(data, 1) == pytest.approx(2.5)
        assert nth_moment(data, 2) == pytest.approx(7.5)
        assert nth_moment(data, 2, central=True) == pytest.approx(np.var(data))

    def test_standard_variance_matches_numpy(self):
        data = np.random.default_rng(0).standard_normal(1000)
        assert standard_variance(data) == pytest.approx(float(np.var(data)))

    def test_velocity_moments_orders(self):
        moments = velocity_moments(np.arange(10.0), max_order=4)
        assert set(moments) == {1, 2, 3, 4}

    def test_validation(self):
        with pytest.raises(ValueError):
            nth_moment(np.array([]), 2)
        with pytest.raises(ValueError):
            nth_moment(np.arange(3.0), -1)
        with pytest.raises(ValueError):
            standard_variance(np.array([]))
        with pytest.raises(ValueError):
            velocity_moments(np.arange(3.0), max_order=0)


class TestStreamingMoments:
    def test_streaming_equals_batch(self):
        rng = np.random.default_rng(1)
        blocks = [rng.standard_normal(100) for _ in range(7)]
        sm = StreamingMoments(max_order=4)
        for b in blocks:
            sm.update(b)
        full = np.concatenate(blocks)
        for n in range(1, 5):
            assert sm.moment(n) == pytest.approx(nth_moment(full, n), rel=1e-10)
        assert sm.variance == pytest.approx(float(np.var(full)), rel=1e-9)

    def test_empty_update_is_noop(self):
        sm = StreamingMoments()
        sm.update(np.array([]))
        assert sm.count == 0

    def test_requires_data_for_moments(self):
        with pytest.raises(ValueError):
            StreamingMoments().moment(1)

    def test_order_bounds(self):
        sm = StreamingMoments(max_order=2)
        sm.update(np.arange(4.0))
        with pytest.raises(ValueError):
            sm.moment(3)
        with pytest.raises(ValueError):
            StreamingMoments(max_order=0)

    @given(
        st.lists(
            st.lists(st.floats(-100, 100), min_size=1, max_size=30),
            min_size=2,
            max_size=6,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_merge_is_equivalent_to_sequential(self, blocks):
        """The reduction is associative: merging per-rank accumulators equals one pass."""
        blocks = [np.asarray(b) for b in blocks]
        sequential = StreamingMoments(max_order=3)
        for b in blocks:
            sequential.update(b)
        halves = [StreamingMoments(max_order=3), StreamingMoments(max_order=3)]
        for i, b in enumerate(blocks):
            halves[i % 2].update(b)
        merged = StreamingMoments.merge_all(halves)
        assert merged.count == sequential.count
        for n in range(1, 4):
            assert merged.moment(n) == pytest.approx(sequential.moment(n), rel=1e-9, abs=1e-9)

    def test_merge_order_mismatch_rejected(self):
        with pytest.raises(ValueError):
            StreamingMoments(2).merge(StreamingMoments(3))
        with pytest.raises(ValueError):
            StreamingMoments.merge_all([])


class TestMSD:
    def test_zero_displacement(self):
        ref = np.random.default_rng(0).random((20, 3))
        assert mean_squared_displacement(ref, ref) == pytest.approx(0.0)

    def test_known_displacement(self):
        ref = np.zeros((4, 3))
        pos = np.full((4, 3), 2.0)
        assert mean_squared_displacement(pos, ref) == pytest.approx(12.0)

    def test_minimum_image_wrapping(self):
        ref = np.zeros((1, 3))
        pos = np.array([[9.5, 0.0, 0.0]])
        assert mean_squared_displacement(pos, ref, box_length=10.0) == pytest.approx(0.25)

    def test_streaming_blocks_and_curve(self):
        rng = np.random.default_rng(2)
        ref = rng.random((30, 3)) * 5
        msd = MeanSquaredDisplacement(ref, box_length=5.0)
        for step, scale in enumerate((0.0, 0.1, 0.2)):
            pos = (ref + scale) % 5.0
            msd.update(step, pos[:15], offset=0)
            msd.update(step, pos[15:], offset=15)
        curve = msd.curve()
        assert list(curve) == [0, 1, 2]
        assert curve[0] == pytest.approx(0.0)
        assert msd.is_monotonic()

    def test_validation(self):
        with pytest.raises(ValueError):
            mean_squared_displacement(np.zeros((3, 3)), np.zeros((4, 3)))
        with pytest.raises(ValueError):
            mean_squared_displacement(np.zeros((3, 5)), np.zeros((3, 5)))
        with pytest.raises(ValueError):
            mean_squared_displacement(np.zeros((3, 3)), np.zeros((3, 3)), box_length=0)
        msd = MeanSquaredDisplacement(np.zeros((5, 3)))
        with pytest.raises(ValueError):
            msd.update(0, np.zeros((4, 3)), offset=3)


class TestSyntheticProducers:
    def test_canonical_names(self):
        assert canonical_complexity("o(n)") == "O(n)"
        assert canonical_complexity("nlogn") == "O(nlogn)"
        assert canonical_complexity("O(n3/2)") == "O(n^1.5)"
        with pytest.raises(ValueError):
            canonical_complexity("O(n^2)")

    def test_complexity_units_ordering(self):
        n = 4096
        assert complexity_units("O(n)", n) < complexity_units("O(nlogn)", n) < complexity_units("O(n^1.5)", n)
        assert complexity_units("O(n)", 0) == 0.0
        with pytest.raises(ValueError):
            complexity_units("O(n)", -1)

    @pytest.mark.parametrize("complexity", ["O(n)", "O(nlogn)", "O(n^1.5)"])
    def test_produce_block_shape_and_determinism(self, complexity):
        a = SyntheticProducer(complexity, elements=1024, seed=5).produce_block(3)
        b = SyntheticProducer(complexity, elements=1024, seed=5).produce_block(3)
        assert a.shape == (1024,)
        np.testing.assert_array_equal(a, b)

    def test_blocks_iterator(self):
        producer = SyntheticProducer("O(n)", elements=64)
        items = list(producer.blocks(steps=2, blocks_per_step=3))
        assert len(items) == 6
        assert items[0][:2] == (0, 0) and items[-1][:2] == (1, 2)

    def test_validation(self):
        with pytest.raises(ValueError):
            SyntheticProducer("O(n)", elements=0)
        with pytest.raises(ValueError):
            list(SyntheticProducer("O(n)", elements=8).blocks(steps=0))


class TestWorkloadModels:
    def test_cfd_workload_matches_table1(self):
        w = cfd_workload()
        assert w.steps == 100
        assert w.output_bytes_per_step == 16 * MiB
        assert w.simulation_only_seconds() == pytest.approx(39.2)
        # 256 ranks x 100 steps x 16 MiB = 400 GiB moved, as in Table 1.
        assert w.total_output_bytes(256) == 256 * 100 * 16 * MiB

    def test_lammps_workload(self):
        w = lammps_workload()
        assert w.output_bytes_per_step == 20 * 1000 * 1000
        assert w.element_bytes == 24

    def test_synthetic_calibration(self):
        for complexity, expected in (("O(n)", 2.1), ("O(nlogn)", 22.2), ("O(n^1.5)", 64.0)):
            w = synthetic_workload(complexity, 1 * MiB, data_per_rank=2 * GiB)
            assert w.sim_step_seconds * w.steps == pytest.approx(expected, rel=1e-6)

    def test_synthetic_block_exponent_increases_large_block_cost(self):
        small = synthetic_workload("O(n^1.5)", 1 * MiB, data_per_rank=2 * GiB)
        large = synthetic_workload("O(n^1.5)", 8 * MiB, data_per_rank=2 * GiB)
        assert large.sim_step_seconds * large.steps > small.sim_step_seconds * small.steps

    def test_sim_block_seconds_partition_step(self):
        w = cfd_workload()
        per_block = w.sim_block_seconds(1 * MiB)
        assert per_block * 16 == pytest.approx(w.sim_step_seconds)

    def test_analysis_costs(self):
        w = cfd_workload()
        assert w.analysis_block_seconds(1 * MiB) > 0
        assert w.analysis_step_seconds(0) == 0.0
        with pytest.raises(ValueError):
            w.analysis_step_seconds(-1)

    def test_validation(self):
        with pytest.raises(ValueError):
            synthetic_workload("O(n)", 0)
        with pytest.raises(ValueError):
            synthetic_workload("O(n)", 2 * MiB, data_per_rank=1 * MiB)
        with pytest.raises(ValueError):
            cfd_workload(steps=0)
        w = cfd_workload()
        with pytest.raises(ValueError):
            w.sim_step_seconds_for_block(0)
        with pytest.raises(ValueError):
            w.total_output_bytes(0)

    def test_replace(self):
        w = cfd_workload().replace(steps=5)
        assert w.steps == 5
