"""Tests for the transport registry and the behavioural properties of each transport."""

from __future__ import annotations

import pytest

from repro.apps.costs import MiB, cfd_workload, lammps_workload
from repro.transports import (
    DecafTransport,
    FlexpathTransport,
    MPIIOTransport,
    TransportFault,
    available_transports,
    create_transport,
)
from repro.transports.registry import canonical_name
from repro.workflow import WorkflowConfig, run_workflow


class TestRegistry:
    def test_all_paper_methods_available(self):
        names = available_transports()
        for required in (
            "mpiio",
            "dataspaces",
            "adios+dataspaces",
            "dimes",
            "adios+dimes",
            "flexpath",
            "decaf",
            "zipper",
            "none",
        ):
            assert required in names

    def test_aliases(self):
        assert canonical_name("ADIOS/DataSpaces") == "adios+dataspaces"
        assert canonical_name("native DIMES") == "dimes"
        assert canonical_name("MPI-IO") == "mpiio"
        assert type(create_transport("Simulation-Only")).__name__ == "NullTransport"

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            create_transport("carrier-pigeon")

    def test_failure_domain_metadata(self):
        assert create_transport("decaf").multiple_failure_domains is False
        assert create_transport("dataspaces").multiple_failure_domains is True
        assert create_transport("dataspaces").uses_staging_ranks is True
        assert create_transport("zipper").uses_staging_ranks is False


class TestTransportParameterValidation:
    def test_mpiio(self):
        with pytest.raises(ValueError):
            MPIIOTransport(shared_file_penalty=0.0)
        with pytest.raises(ValueError):
            MPIIOTransport(poll_interval=0.0)

    def test_flexpath(self):
        with pytest.raises(ValueError):
            FlexpathTransport(socket_node_bandwidth=0)
        with pytest.raises(ValueError):
            FlexpathTransport(socket_contention=-1)

    def test_decaf(self):
        with pytest.raises(ValueError):
            DecafTransport(link_buffer_steps=0)
        with pytest.raises(ValueError):
            DecafTransport(element_bytes=0)
        with pytest.raises(ValueError):
            DecafTransport(serialization_seconds_per_byte=-1)


@pytest.fixture(scope="module")
def quick_results(request):
    """One small CFD run per transport, shared across the behavioural tests."""
    from repro.cluster.presets import bridges

    base = WorkflowConfig(
        workload=cfd_workload(steps=5),
        cluster=bridges(),
        total_cores=384,
        representative_sim_ranks=8,
        steps=5,
    )
    transports = (
        "none",
        "zipper",
        "decaf",
        "flexpath",
        "mpiio",
        "dimes",
        "adios+dimes",
        "dataspaces",
        "adios+dataspaces",
    )
    return {t: run_workflow(base.replace(transport=t)) for t in transports}


class TestTransportBehaviour:
    def test_all_transports_complete(self, quick_results):
        for name, result in quick_results.items():
            assert not result.failed, name
            assert result.end_to_end_time > 0

    def test_all_analysis_ranks_receive_all_steps(self, quick_results):
        for name, result in quick_results.items():
            if name == "none":
                continue
            for arank, stats in result.analysis_rank_stats.items():
                assert stats.get("analysis_time", 0.0) > 0, (name, arank)

    def test_every_coupling_is_slower_than_simulation_only(self, quick_results):
        floor = quick_results["none"].end_to_end_time
        for name, result in quick_results.items():
            if name == "none":
                continue
            assert result.end_to_end_time >= floor * 0.999, name

    def test_zipper_is_the_fastest_coupling(self, quick_results):
        zipper = quick_results["zipper"].end_to_end_time
        for name, result in quick_results.items():
            if name in ("zipper", "none"):
                continue
            assert zipper <= result.end_to_end_time * 1.001, name

    def test_mpiio_is_the_slowest(self, quick_results):
        slowest = max(
            (r.end_to_end_time, n) for n, r in quick_results.items() if n != "none"
        )
        assert slowest[1] == "mpiio"

    def test_adios_interface_is_slower_than_native(self, quick_results):
        assert (
            quick_results["adios+dataspaces"].end_to_end_time
            >= quick_results["dataspaces"].end_to_end_time * 0.999
        )
        assert (
            quick_results["adios+dimes"].end_to_end_time
            >= quick_results["dimes"].end_to_end_time * 0.999
        )

    def test_mpiio_moves_data_through_the_file_system(self, quick_results):
        assert quick_results["mpiio"].stats.get("bytes_file", 0) > 0

    def test_decaf_records_waitall_time(self, quick_results):
        stats = quick_results["decaf"].sim_rank_stats[0]
        assert stats.get("waitall_time", 0.0) > 0

    def test_zipper_produces_expected_block_count(self, quick_results):
        result = quick_results["zipper"]
        # 8 modelled ranks x 5 steps x 16 blocks (16 MiB output / 1 MiB blocks)
        assert result.stats.get("blocks_produced") == 8 * 5 * 16


class TestDecafIntegerOverflow:
    def _config(self, workload, cores):
        from repro.cluster.presets import stampede2

        return WorkflowConfig(
            workload=workload,
            cluster=stampede2(),
            transport="decaf",
            total_cores=cores,
            representative_sim_ranks=4,
            steps=3,
        )

    def test_cfd_overflows_at_large_scale(self):
        result = run_workflow(self._config(cfd_workload(steps=3), 6528))
        assert result.failed
        assert "overflow" in result.failure_reason

    def test_cfd_fine_at_moderate_scale(self):
        result = run_workflow(self._config(cfd_workload(steps=3), 3264))
        assert not result.failed

    def test_lammps_never_overflows(self):
        result = run_workflow(self._config(lammps_workload(steps=3), 13056))
        assert not result.failed

    def test_fault_is_a_transport_fault(self):
        transport = DecafTransport()

        class FakeWorkload:
            output_bytes_per_step = 64 * MiB
            element_bytes = 8

        class FakeCtx:
            total_sim_ranks = 10_000
            workload = FakeWorkload()

            def represented_step_output_bytes(self):
                return self.workload.output_bytes_per_step

        with pytest.raises(TransportFault):
            transport._check_overflow(FakeCtx())
