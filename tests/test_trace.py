"""Unit tests for the tracing and Gantt-timeline utilities."""

from __future__ import annotations

import pytest

from repro.trace import (
    Span,
    Timeline,
    Tracer,
    category_share,
    compare_traces,
    render_ascii,
    steps_in_window,
    summarize_categories,
)


def build_trace():
    t = Tracer()
    # rank 0: two steps of 1s each, with 0.3s of stall inside the second
    t.record(0, "step", 0.0, 1.0)
    t.record(0, "compute", 0.0, 0.8)
    t.record(0, "step", 1.0, 2.0)
    t.record(0, "stall", 1.5, 1.8)
    # rank 1 (analysis): one long span
    t.record(1, "analysis", 0.2, 1.9)
    return t


class TestSpan:
    def test_duration_and_overlap(self):
        s = Span(0, "x", 1.0, 3.0)
        assert s.duration == 2.0
        assert s.overlaps(2.0, 4.0)
        assert not s.overlaps(3.0, 4.0)
        clipped = s.clipped(2.0, 10.0)
        assert (clipped.start, clipped.end) == (2.0, 3.0)

    def test_invalid_span_rejected(self):
        with pytest.raises(ValueError):
            Span(0, "x", 2.0, 1.0)


class TestTracer:
    def test_record_and_query(self):
        t = build_trace()
        assert len(t) == 5
        assert t.ranks() == [0, 1]
        assert "stall" in t.categories()
        assert t.total_time("step", rank=0) == pytest.approx(2.0)
        assert len(t.spans_for(rank=0, category="step")) == 2

    def test_disabled_tracer_records_nothing(self):
        t = Tracer(enabled=False)
        assert t.record(0, "x", 0, 1) is None
        assert len(t) == 0

    def test_category_filter(self):
        t = Tracer(categories=["step"])
        t.record(0, "step", 0, 1)
        t.record(0, "other", 0, 1)
        assert t.categories() == ["step"]

    def test_span_context_manager(self):
        t = Tracer()
        clock = iter([1.0, 3.5])
        with t.span(2, "work", clock=lambda: next(clock)):
            pass
        assert t.spans[0].duration == pytest.approx(2.5)

    def test_merge(self):
        a, b = Tracer(), Tracer()
        a.record(0, "x", 0, 1)
        b.record(1, "y", 0.5, 2)
        merged = a.merge(b)
        assert len(merged) == 2
        assert merged.ranks() == [0, 1]

    def test_clear(self):
        t = build_trace()
        t.clear()
        assert len(t) == 0


class TestTimeline:
    def test_window_clipping(self):
        t = build_trace()
        tl = Timeline(t, 0.5, 1.5)
        assert tl.duration == pytest.approx(1.0)
        row0 = tl.row(0)
        assert row0.busy_time() > 0
        # The clipped "compute" span contributes only [0.5, 0.8].
        assert row0.category_time("compute") == pytest.approx(0.3)

    def test_missing_rank_raises(self):
        tl = Timeline(build_trace())
        with pytest.raises(KeyError):
            tl.row(99)

    def test_empty_trace(self):
        tl = Timeline(Tracer())
        assert tl.rows == []
        assert tl.categories() == []

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            Timeline(build_trace(), 2.0, 1.0)

    def test_render_ascii(self):
        text = render_ascii(Timeline(build_trace()), width=40)
        lines = text.splitlines()
        assert len(lines) == 3  # header + 2 ranks
        assert "rank    0" in lines[1]
        assert len(lines[1].split("|")[1]) == 40

    def test_render_ascii_rank_filter(self):
        text = render_ascii(Timeline(build_trace()), width=20, ranks=[1])
        assert "rank    1" in text and "rank    0" not in text

    def test_render_width_validation(self):
        with pytest.raises(ValueError):
            render_ascii(Timeline(build_trace()), width=0)


class TestAnalysis:
    def test_summarize_categories(self):
        sums = summarize_categories(build_trace())
        assert sums["step"] == pytest.approx(2.0)
        assert sums["analysis"] == pytest.approx(1.7)
        rank0 = summarize_categories(build_trace(), rank=0)
        assert "analysis" not in rank0

    def test_category_share(self):
        t = Tracer()
        t.record(0, "a", 0, 1)
        t.record(0, "b", 0, 3)
        assert category_share(t, "a") == pytest.approx(0.25)
        assert category_share(Tracer(), "a") == 0.0

    def test_steps_in_window_counts_fractions(self):
        t = build_trace()
        assert steps_in_window(t, 0.0, 2.0, "step", rank=0) == pytest.approx(2.0)
        assert steps_in_window(t, 0.0, 1.5, "step", rank=0) == pytest.approx(1.5)
        with pytest.raises(ValueError):
            steps_in_window(t, 2.0, 1.0)

    def test_compare_traces_ratio(self):
        fast, slow = Tracer(), Tracer()
        for i in range(4):
            fast.record(0, "step", i * 1.0, (i + 1) * 1.0)
        for i in range(2):
            slow.record(0, "step", i * 2.0, (i + 1) * 2.0)
        cmp = compare_traces(fast, slow, window=4.0, rank=0)
        assert cmp["steps_a"] == pytest.approx(4.0)
        assert cmp["steps_b"] == pytest.approx(2.0)
        assert cmp["ratio"] == pytest.approx(2.0)
        with pytest.raises(ValueError):
            compare_traces(fast, slow, window=0.0)
