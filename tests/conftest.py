"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.apps.costs import cfd_workload, synthetic_workload
from repro.cluster import Cluster
from repro.cluster.presets import bridges, laptop, stampede2
from repro.simcore import Environment
from repro.workflow import WorkflowConfig

MiB = 1024 * 1024


@pytest.fixture
def env():
    """A fresh simulation environment."""
    return Environment()


@pytest.fixture
def laptop_cluster():
    """A small, fully deterministic cluster."""
    return Cluster(laptop(), num_nodes=4)


@pytest.fixture
def bridges_spec():
    return bridges()


@pytest.fixture
def stampede2_spec():
    return stampede2()


@pytest.fixture
def small_cfd_config(bridges_spec):
    """A quick CFD workflow configuration (8 modelled sim ranks, 6 steps)."""
    return WorkflowConfig(
        workload=cfd_workload(steps=6),
        cluster=bridges_spec,
        transport="zipper",
        total_cores=384,
        representative_sim_ranks=8,
        steps=6,
    )


@pytest.fixture
def small_synthetic_config(bridges_spec):
    """A quick transfer-bound synthetic workflow configuration."""
    workload = synthetic_workload("O(n)", 1 * MiB, data_per_rank=32 * MiB)
    return WorkflowConfig(
        workload=workload,
        cluster=bridges_spec,
        transport="zipper",
        total_cores=588,
        representative_sim_ranks=4,
        representative_analysis_ranks=2,
        # A small producer buffer so the transfer-bound producer actually
        # fills it and the work-stealing writer engages in the quick tests.
        producer_buffer_blocks=8,
        high_water_mark=6,
    )
