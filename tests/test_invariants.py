"""Property-based invariant harness: random pipelines, engine-wide contracts.

Each seed deterministically generates one small bursty pipeline — random
step count, core split, burst intensity, elastic policy (threshold,
model-driven, or none), checkpoint interval and optional seeded fault plan —
and every invariant test runs over the same seed set.  The invariants are
the contracts everything else in the repo leans on:

* **bit-identity** — the coalescing fast path and the per-event slow path
  persist byte-equal payloads, ``events_processed`` included;
* **conservation** — replaying the rebalance timeline from the baseline
  holdings reproduces the controller's final allocations and bandwidth
  shares *exactly* (cores and share units are never created or destroyed);
* **monotonicity** — recorded timelines never step backwards in time and
  never outrun the run itself;
* **round-trip** — the persisted JSONL payload survives a JSON encode/decode
  unchanged, and the typed timeline events rebuild exactly from their dicts;
* **reproducibility** — re-running a seeded fault scenario replays the
  identical fault timeline.

The harness is seeded, not fuzzing: failures reproduce by seed number.
"""

from __future__ import annotations

import json
import math
import random
from functools import lru_cache

import pytest

from repro.bench.experiments import (
    elastic_burst_pipeline,
    elastic_default_policy,
    model_driven_default_policy,
)
from repro.elastic.policy import RebalanceEvent
from repro.faults import FaultEvent, FaultPlan
from repro.sweep.store import result_payload
from repro.workflow.runner import (
    PipelineRunner,
    pipeline_simulation_only_time,
    run_pipeline,
)

SEEDS = tuple(range(8))


@lru_cache(maxsize=None)
def scenario(seed: int):
    """The deterministic random pipeline of one seed."""
    rng = random.Random(seed)
    pipeline = elastic_burst_pipeline(
        sim_cores=rng.choice((128, 192, 256)),
        steps=rng.choice((6, 8, 10)),
        burst_factor=rng.choice((4.0, 8.0, 12.0)),
    )
    policy = rng.choice(
        (None, elastic_default_policy(), model_driven_default_policy())
    )
    if policy is not None:
        pipeline = pipeline.replace(elastic=policy)
    interval = rng.choice((None, 1, 2, 4))
    pipeline = pipeline.replace(
        stages=tuple(
            s.replace(checkpoint_interval=interval) if s.name == "simulation" else s
            for s in pipeline.stages
        )
    )
    if seed % 2 == 0:
        plan = FaultPlan.seeded(
            f"invariants/{seed}",
            ("simulation",),
            horizon=pipeline_simulation_only_time(pipeline),
            couplings=(pipeline.couplings[0].name,),
            crashes=rng.choice((1, 2)),
            seed=seed + 1,
        )
        pipeline = pipeline.replace(faults=plan)
    return pipeline


@lru_cache(maxsize=None)
def completed_runner(seed: int) -> PipelineRunner:
    """One completed (fast-path) run of the seed's pipeline."""
    runner = PipelineRunner(scenario(seed))
    runner.result = runner.run()
    return runner


@pytest.mark.parametrize("seed", SEEDS)
def test_fast_and_slow_paths_persist_equal_payloads(seed):
    pipeline = scenario(seed)
    fast = result_payload(run_pipeline(pipeline.replace(coalesce=True)))
    slow = result_payload(run_pipeline(pipeline.replace(coalesce=False)))
    assert fast == slow


@pytest.mark.parametrize("seed", SEEDS)
def test_rebalance_timeline_conserves_cores_and_shares(seed):
    runner = completed_runner(seed)
    ctrl = runner.elastic_controller
    if ctrl is None:
        pytest.skip("seed generated a static pipeline")
    allocations = dict(ctrl.baseline)
    shares = {name: 1.0 for name in ctrl.bandwidth_shares}
    for event in ctrl.timeline:
        if event.kind == "stage_resize":
            allocations[event.donor] -= event.amount
            allocations[event.receiver] += event.amount
            assert allocations[event.donor] > 0
        elif event.kind == "bandwidth_lease":
            shares[event.donor] -= event.amount
            shares[event.receiver] += event.amount
            assert shares[event.donor] > 0
    # Exact replay: the controller applies the identical +=/-= sequence, so
    # the final holdings must match bit for bit, not approximately.
    assert allocations == ctrl.allocations
    assert shares == ctrl.bandwidth_shares
    assert math.fsum(allocations.values()) == pytest.approx(ctrl.total_cores)


@pytest.mark.parametrize("seed", SEEDS)
def test_timelines_are_monotone_and_bounded_by_the_run(seed):
    runner = completed_runner(seed)
    result = runner.result
    for events in (result.rebalances, result.faults):
        times = [event.time for event in events]
        assert times == sorted(times)
        for when in times:
            assert 0.0 <= when <= result.end_to_end_time
    assert result.end_to_end_time > 0.0
    assert result.stats["events_processed"] > 0


@pytest.mark.parametrize("seed", SEEDS)
def test_persisted_payload_survives_a_json_round_trip(seed):
    payload = result_payload(completed_runner(seed).result)
    assert json.loads(json.dumps(payload, sort_keys=True)) == payload
    for raw in payload.get("faults", ()):
        event = FaultEvent.from_dict(raw)
        assert event.as_dict() == raw
    for raw in payload.get("rebalances", ()):
        event = RebalanceEvent.from_dict(raw)
        assert event.as_dict() == raw


@pytest.mark.parametrize("seed", SEEDS)
def test_seeded_fault_scenarios_replay_their_exact_timeline(seed):
    pipeline = scenario(seed)
    if pipeline.faults is None:
        pytest.skip("seed generated a fault-free pipeline")
    first = completed_runner(seed).result
    second = run_pipeline(pipeline)
    assert first.faults, "the seeded plan must actually fire"
    assert first.faults == second.faults
    assert first.end_to_end_time == second.end_to_end_time
    assert first.stats["events_processed"] == second.stats["events_processed"]


def test_every_seed_exercises_both_sides_of_each_axis():
    """The seed set must cover faulty/fault-free and elastic/static cases."""
    pipelines = [scenario(seed) for seed in SEEDS]
    assert any(p.faults is not None for p in pipelines)
    assert any(p.faults is None for p in pipelines)
    assert any(p.elastic is not None for p in pipelines)
    assert any(p.elastic is None for p in pipelines)
