"""Property-based invariant harness: random pipelines, engine-wide contracts.

Each seed deterministically generates one small bursty pipeline — random
step count, core split, burst intensity, elastic policy (threshold,
model-driven, or none), checkpoint interval and optional seeded fault plan —
and every invariant test runs over the same seed set.  The invariants are
the contracts everything else in the repo leans on:

* **bit-identity** — the coalescing fast path and the per-event slow path
  persist byte-equal payloads, ``events_processed`` included;
* **conservation** — replaying the rebalance timeline from the baseline
  holdings reproduces the controller's final allocations and bandwidth
  shares *exactly* (cores and share units are never created or destroyed);
* **monotonicity** — recorded timelines never step backwards in time and
  never outrun the run itself;
* **round-trip** — the persisted JSONL payload survives a JSON encode/decode
  unchanged, and the typed timeline events rebuild exactly from their dicts;
* **reproducibility** — re-running a seeded fault scenario replays the
  identical fault timeline.

The multi-tenant extension applies the same contracts one layer up: each
tenant seed generates a small two-tenant facility (a heavy batch job plus a
seeded stream of light jobs, under either co-scheduling policy), and the
tests replay the merged job + rebalance timelines to check that the
scheduler's core grants conserve the facility capacity, that fixed seeds
reproduce the job timeline event for event, and that the coalescing fast
path stays bit-identical with two tenants contending.

The harness is seeded, not fuzzing: failures reproduce by seed number.
"""

from __future__ import annotations

import json
import math
import random
from functools import lru_cache

import pytest

from repro.bench.experiments import (
    elastic_burst_pipeline,
    elastic_default_policy,
    model_driven_default_policy,
)
from repro.elastic.policy import RebalanceEvent
from repro.faults import FaultEvent, FaultPlan
from repro.sweep.store import result_payload
from repro.tenants import (
    POLICIES,
    ArrivalProcess,
    JobEvent,
    JobSpec,
    TenantScheduler,
    TenantSpec,
    job_queue,
    run_tenants,
)
from repro.workflow.runner import (
    PipelineRunner,
    pipeline_simulation_only_time,
    run_pipeline,
)

SEEDS = tuple(range(8))


@lru_cache(maxsize=None)
def scenario(seed: int):
    """The deterministic random pipeline of one seed."""
    rng = random.Random(seed)
    pipeline = elastic_burst_pipeline(
        sim_cores=rng.choice((128, 192, 256)),
        steps=rng.choice((6, 8, 10)),
        burst_factor=rng.choice((4.0, 8.0, 12.0)),
    )
    policy = rng.choice(
        (None, elastic_default_policy(), model_driven_default_policy())
    )
    if policy is not None:
        pipeline = pipeline.replace(elastic=policy)
    interval = rng.choice((None, 1, 2, 4))
    pipeline = pipeline.replace(
        stages=tuple(
            s.replace(checkpoint_interval=interval) if s.name == "simulation" else s
            for s in pipeline.stages
        )
    )
    if seed % 2 == 0:
        plan = FaultPlan.seeded(
            f"invariants/{seed}",
            ("simulation",),
            horizon=pipeline_simulation_only_time(pipeline),
            couplings=(pipeline.couplings[0].name,),
            crashes=rng.choice((1, 2)),
            seed=seed + 1,
        )
        pipeline = pipeline.replace(faults=plan)
    return pipeline


@lru_cache(maxsize=None)
def completed_runner(seed: int) -> PipelineRunner:
    """One completed (fast-path) run of the seed's pipeline."""
    runner = PipelineRunner(scenario(seed))
    runner.result = runner.run()
    return runner


@pytest.mark.parametrize("seed", SEEDS)
def test_fast_and_slow_paths_persist_equal_payloads(seed):
    pipeline = scenario(seed)
    fast = result_payload(run_pipeline(pipeline.replace(coalesce=True)))
    slow = result_payload(run_pipeline(pipeline.replace(coalesce=False)))
    assert fast == slow


@pytest.mark.parametrize("seed", SEEDS)
def test_rebalance_timeline_conserves_cores_and_shares(seed):
    runner = completed_runner(seed)
    ctrl = runner.elastic_controller
    if ctrl is None:
        pytest.skip("seed generated a static pipeline")
    allocations = dict(ctrl.baseline)
    shares = {name: 1.0 for name in ctrl.bandwidth_shares}
    for event in ctrl.timeline:
        if event.kind == "stage_resize":
            allocations[event.donor] -= event.amount
            allocations[event.receiver] += event.amount
            assert allocations[event.donor] > 0
        elif event.kind == "bandwidth_lease":
            shares[event.donor] -= event.amount
            shares[event.receiver] += event.amount
            assert shares[event.donor] > 0
    # Exact replay: the controller applies the identical +=/-= sequence, so
    # the final holdings must match bit for bit, not approximately.
    assert allocations == ctrl.allocations
    assert shares == ctrl.bandwidth_shares
    assert math.fsum(allocations.values()) == pytest.approx(ctrl.total_cores)


@pytest.mark.parametrize("seed", SEEDS)
def test_timelines_are_monotone_and_bounded_by_the_run(seed):
    runner = completed_runner(seed)
    result = runner.result
    for events in (result.rebalances, result.faults):
        times = [event.time for event in events]
        assert times == sorted(times)
        for when in times:
            assert 0.0 <= when <= result.end_to_end_time
    assert result.end_to_end_time > 0.0
    assert result.stats["events_processed"] > 0


@pytest.mark.parametrize("seed", SEEDS)
def test_persisted_payload_survives_a_json_round_trip(seed):
    payload = result_payload(completed_runner(seed).result)
    assert json.loads(json.dumps(payload, sort_keys=True)) == payload
    for raw in payload.get("faults", ()):
        event = FaultEvent.from_dict(raw)
        assert event.as_dict() == raw
    for raw in payload.get("rebalances", ()):
        event = RebalanceEvent.from_dict(raw)
        assert event.as_dict() == raw


@pytest.mark.parametrize("seed", SEEDS)
def test_seeded_fault_scenarios_replay_their_exact_timeline(seed):
    pipeline = scenario(seed)
    if pipeline.faults is None:
        pytest.skip("seed generated a fault-free pipeline")
    first = completed_runner(seed).result
    second = run_pipeline(pipeline)
    assert first.faults, "the seeded plan must actually fire"
    assert first.faults == second.faults
    assert first.end_to_end_time == second.end_to_end_time
    assert first.stats["events_processed"] == second.stats["events_processed"]


def test_every_seed_exercises_both_sides_of_each_axis():
    """The seed set must cover faulty/fault-free and elastic/static cases."""
    pipelines = [scenario(seed) for seed in SEEDS]
    assert any(p.faults is not None for p in pipelines)
    assert any(p.faults is None for p in pipelines)
    assert any(p.elastic is not None for p in pipelines)
    assert any(p.elastic is None for p in pipelines)


# -- the multi-tenant extension ----------------------------------------------
TENANT_SEEDS = tuple(range(4))


@lru_cache(maxsize=None)
def tenant_scenario(seed: int) -> TenantSpec:
    """The deterministic two-tenant facility of one seed.

    Policies alternate by construction so both sides of the axis are always
    covered; odd seeds put an elastic controller *inside* the light jobs so
    the facility's tenant scale composes with the controller's allocation
    scale in at least half the scenarios.
    """
    rng = random.Random(1000 + seed)
    heavy = elastic_burst_pipeline(
        sim_cores=rng.choice((192, 213)),
        total_cores=320,
        steps=rng.choice((4, 6)),
    )
    light = elastic_burst_pipeline(
        sim_cores=85,
        total_cores=128,
        steps=rng.choice((2, 3)),
        representative_sim_ranks=4,
    )
    if seed % 2:
        light = light.replace(elastic=elastic_default_policy())
    arrivals = ArrivalProcess.bursty(
        count=2, rate=1.0, burst_size=2, start=rng.choice((0.2, 0.7))
    )
    jobs = (JobSpec("heavy/0", "heavy", heavy, arrival=0.0),) + job_queue(
        "light", light, arrivals, seed=seed + 1
    )
    return TenantSpec(
        jobs=jobs,
        policy=POLICIES[seed % len(POLICIES)],
        capacity_cores=384,
        epoch_seconds=0.25,
        label=f"invariants/tenants/{seed}",
    )


@lru_cache(maxsize=None)
def completed_tenant_scheduler(seed: int) -> TenantScheduler:
    """One completed facility run of the seed's tenant scenario."""
    scheduler = TenantScheduler(tenant_scenario(seed))
    scheduler.result = scheduler.run()
    return scheduler


@pytest.mark.parametrize("seed", TENANT_SEEDS)
def test_tenant_grants_conserve_capacity_on_the_merged_timeline(seed):
    """Replaying job + rebalance events together conserves every ledger.

    The facility ledger: at each instant a ``share`` event fires, the fair
    scheduler's active grants must water-fill to ``min(capacity, demand)``;
    under FCFS the admitted demands must fit the capacity exactly (integer
    arithmetic, no tolerance) and shares must never move at all.  The
    merged job-level ledger: every rebalance a job's own elastic controller
    applied must land inside that job's [admit, complete] facility window.
    """
    scheduler = completed_tenant_scheduler(seed)
    spec = scheduler.spec
    capacity = float(spec.capacity)

    admit_time = {e.job: e.time for e in scheduler.timeline if e.kind == "admitted"}
    finish_time = {e.job: e.time for e in scheduler.timeline if e.kind == "completed"}
    merged = [(event.time, "job", event.job, event) for event in scheduler.timeline]
    for name, result in scheduler.job_results.items():
        for event in result.rebalances:
            merged.append((admit_time[name] + event.time, "rebalance", name, event))
    merged.sort(key=lambda item: item[0])
    assert [t for t, *_ in merged] == sorted(t for t, *_ in merged)

    demand = {}
    active = set()
    for when, source, name, event in merged:
        if source == "rebalance":
            assert admit_time[name] <= when <= finish_time[name]
            continue
        if event.kind == "admitted":
            demand[name] = event.detail["demand"]
            active.add(name)
            if spec.policy == "fcfs":
                # Dedicated admission: integer demands, exact fit, no slack.
                assert sum(int(demand[n]) for n in active) <= int(capacity)
        elif event.kind == "share":
            assert spec.policy == "fair", "FCFS must never move a share"
        elif event.kind == "completed":
            active.discard(name)
    # Conservation at each share instant, with all same-time events applied:
    # the water-filled grants of the active set sum to the wet capacity.
    share_instants = sorted({e.time for e in scheduler.timeline if e.kind == "share"})
    for instant in share_instants:
        running = {
            e.job: e.detail["demand"]
            for e in scheduler.timeline
            if e.kind == "admitted" and e.time <= instant
        }
        for e in scheduler.timeline:
            if e.kind == "completed" and e.time <= instant:
                running.pop(e.job, None)
        grants = {}
        for e in scheduler.timeline:
            if e.job in running and e.time <= instant:
                if e.kind == "admitted":
                    grants[e.job] = e.detail["share"] * e.detail["demand"]
                elif e.kind == "share":
                    grants[e.job] = e.detail["grant"]
        wet = min(capacity, sum(running.values()))
        assert math.fsum(grants.values()) == pytest.approx(wet)


@pytest.mark.parametrize("seed", TENANT_SEEDS)
def test_tenant_timelines_replay_identically_under_fixed_seeds(seed):
    first = completed_tenant_scheduler(seed)
    second = TenantScheduler(tenant_scenario(seed))
    result = second.run()
    assert first.timeline == second.timeline
    assert first.timeline, "the scenario must actually record a timeline"
    assert first.result.end_to_end_time == result.end_to_end_time
    assert first.result.stats["events_processed"] == result.stats["events_processed"]
    for raw in result_payload(result).get("jobs", ()):
        event = JobEvent.from_dict(raw)
        assert event.as_dict() == raw


@pytest.mark.parametrize("seed", TENANT_SEEDS)
def test_tenant_fast_and_slow_paths_persist_equal_payloads(seed):
    spec = tenant_scenario(seed)

    def with_coalesce(flag: bool) -> TenantSpec:
        return spec.replace(
            jobs=tuple(
                job.replace(pipeline=job.pipeline.replace(coalesce=flag))
                for job in spec.jobs
            )
        )

    fast = result_payload(run_tenants(with_coalesce(True)))
    slow = result_payload(run_tenants(with_coalesce(False)))
    assert fast == slow


def test_every_tenant_seed_exercises_both_policies():
    """The tenant seed set must cover FCFS and fair, elastic and static jobs."""
    specs = [tenant_scenario(seed) for seed in TENANT_SEEDS]
    assert {spec.policy for spec in specs} == set(POLICIES)
    elastic_jobs = [
        job.pipeline.elastic is not None for spec in specs for job in spec.jobs
    ]
    assert any(elastic_jobs) and not all(elastic_jobs)
