"""Tests of the distributed campaign layer (board, protocol, end-to-end)."""

from __future__ import annotations

import threading

import pytest

from repro.campaign import (
    BackoffPolicy,
    Campaign,
    CampaignWorker,
    CoordinatorClient,
    CoordinatorServer,
    CoordinatorUnreachable,
    WorkBoard,
    campaign_cases,
    resolve_spec,
    spec_descriptor,
)
from repro.sweep import ResultStore, SweepRunner
from repro.sweep.spec import SweepCase


class FakeClock:
    """Injectable monotonic clock for deterministic lease-expiry tests."""

    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _board(n=4, **kwargs) -> WorkBoard:
    clock = kwargs.pop("clock", FakeClock())
    cases = [(f"case-{i}", f"hash-{i}") for i in range(n)]
    return WorkBoard(cases, clock=clock, **kwargs)


class TestBackoffPolicy:
    def test_schedule_is_deterministic_across_instances(self):
        a = BackoffPolicy(seed=7).schedule("case", 5)
        b = BackoffPolicy(seed=7).schedule("case", 5)
        assert a == b

    def test_delays_grow_and_cap(self):
        policy = BackoffPolicy(base_seconds=1.0, multiplier=2.0, cap_seconds=4.0, jitter=0.0)
        assert policy.schedule("x", 4) == [1.0, 2.0, 4.0, 4.0]

    def test_jitter_stays_within_bounds_and_decorrelates_labels(self):
        policy = BackoffPolicy(base_seconds=1.0, multiplier=1.0, jitter=0.25)
        delays = {label: policy.delay(label, 1) for label in ("a", "b", "c", "d")}
        assert all(0.75 <= d <= 1.25 for d in delays.values())
        assert len(set(delays.values())) > 1

    def test_seed_changes_the_schedule(self):
        assert BackoffPolicy(seed=1).schedule("x", 3) != BackoffPolicy(seed=2).schedule("x", 3)


class TestWorkBoard:
    def test_leases_hand_out_shards_in_spec_order(self):
        board = _board(5, shard_size=2)
        first = board.lease("w1")
        second = board.lease("w2")
        assert first.indices == (0, 1) and second.indices == (2, 3)
        assert not first.speculative
        assert board.counts()["leased"] == 4

    def test_expired_lease_is_reclaimed_and_reissued(self):
        clock = FakeClock()
        board = _board(2, shard_size=2, lease_seconds=10.0, clock=clock)
        first = board.lease("w1")
        clock.advance(10.1)
        second = board.lease("w2")
        assert second is not None and not second.speculative
        assert second.indices == first.indices
        assert board.leases_expired == 1
        assert first.lease_id not in board.leases

    def test_heartbeat_extends_the_deadline(self):
        clock = FakeClock()
        board = _board(2, shard_size=2, lease_seconds=10.0, clock=clock)
        lease = board.lease("w1")
        clock.advance(9.0)
        assert board.heartbeat(lease.lease_id)
        clock.advance(9.0)
        assert board.reclaim_expired() == []
        assert lease.lease_id in board.leases

    def test_heartbeat_of_unknown_lease_says_abandon(self):
        assert not _board().heartbeat("L999999")

    def test_idle_worker_steals_a_speculative_duplicate(self):
        board = _board(2, shard_size=2)
        primary = board.lease("w1")
        stolen = board.lease("w2")
        assert stolen.speculative and stolen.origin == primary.lease_id
        assert stolen.indices == primary.indices
        assert board.leases_stolen == 1
        # The straggler's lease is not duplicated twice.
        assert board.lease("w3") is None

    def test_own_lease_is_not_stolen(self):
        board = _board(2, shard_size=2)
        board.lease("w1")
        assert board.lease("w1") is None

    def test_first_result_wins_and_duplicate_is_dropped(self):
        board = _board(1, shard_size=1)
        board.lease("w1")
        board.lease("w2")  # speculative copy
        assert board.record_result("case-0", "hash-0", ok=True) == "done"
        assert board.record_result("case-0", "hash-0", ok=True) == "duplicate"
        assert board.duplicates_dropped == 1
        assert board.complete

    def test_transient_failure_retries_after_backoff(self):
        clock = FakeClock()
        board = _board(
            1,
            shard_size=1,
            clock=clock,
            backoff=BackoffPolicy(base_seconds=2.0, jitter=0.0),
        )
        board.lease("w1")
        action = board.record_result("case-0", "hash-0", ok=False, error_kind="transient")
        assert action == "retry"
        assert board.retries_scheduled == 1
        # Backoff holds the case: nothing leasable until the delay passes.
        for lease_id in list(board.leases):
            board.release(lease_id)
        assert board.lease("w2") is None
        assert board.next_retry_in() == pytest.approx(2.0)
        clock.advance(2.1)
        assert board.lease("w2") is not None

    def test_attempt_budget_exhaustion_poisons(self):
        clock = FakeClock()
        board = _board(
            1,
            shard_size=1,
            max_attempts=2,
            clock=clock,
            backoff=BackoffPolicy(base_seconds=0.0, jitter=0.0),
        )
        board.lease("w1")
        assert board.record_result("case-0", "hash-0", False, "timeout") == "retry"
        board.lease("w1")
        assert board.record_result("case-0", "hash-0", False, "timeout") == "poisoned"
        assert board.complete
        assert board.poisoned() == [("case-0", "hash-0", "timeout")]

    def test_permanent_failure_poisons_immediately(self):
        board = _board(1, shard_size=1, max_attempts=5)
        board.lease("w1")
        assert board.record_result("case-0", "hash-0", False, "permanent") == "poisoned"
        assert board.poisoned() == [("case-0", "hash-0", "permanent")]

    def test_unknown_key_is_reported(self):
        assert _board().record_result("nope", "nope", True) == "unknown"

    def test_resume_seeding_marks_entries(self):
        board = _board(3)
        assert board.mark_done("case-0", "hash-0")
        assert board.mark_poisoned("case-1", "hash-1")
        board.restore_attempts("case-2", "hash-2", 2)
        counts = board.counts()
        assert counts["done"] == 1 and counts["poisoned"] == 1
        assert board.entries[2].attempts == 2
        assert not board.mark_done("missing", "missing")

    def test_duplicate_case_keys_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            WorkBoard([("a", "h"), ("a", "h")])

    def test_snapshot_is_json_safe_and_complete(self):
        import json

        board = _board(2, shard_size=1)
        board.lease("w1")
        board.record_result("case-0", "hash-0", True)
        snapshot = board.snapshot()
        assert json.dumps(snapshot)
        assert snapshot["counts"]["done"] == 1
        assert snapshot["counters"]["leases_issued"] == 1


def _tiny_descriptor():
    return spec_descriptor("figure2", steps=2, sim_ranks=2)


class TestProtocol:
    def test_unknown_figure_rejected(self):
        with pytest.raises(ValueError, match="unknown figure"):
            spec_descriptor("figure99")

    def test_unknown_knob_rejected(self):
        with pytest.raises(ValueError, match="knob"):
            spec_descriptor("figure2", step=3)

    def test_version_mismatch_rejected(self):
        descriptor = _tiny_descriptor()
        descriptor["version"] = 999
        with pytest.raises(ValueError, match="version"):
            resolve_spec(descriptor)

    def test_both_sides_expand_the_same_grid(self):
        first = [(c.label, c.config_digest) for c in campaign_cases(_tiny_descriptor())]
        second = [(c.label, c.config_digest) for c in campaign_cases(_tiny_descriptor())]
        assert first == second and len(first) == 9

    def test_unreachable_coordinator_raises_typed_error(self):
        client = CoordinatorClient("http://127.0.0.1:9", timeout=0.5)
        with pytest.raises(CoordinatorUnreachable):
            client.status()


def _serial_baseline(tmp_path):
    """The single-host store a campaign's canonical view must reproduce."""
    store = ResultStore(tmp_path / "serial.jsonl")
    SweepRunner(workers=0, store=store, trace=False).run(resolve_spec(_tiny_descriptor()))
    return store


def _run_campaign(campaign, worker_count=2, **worker_kwargs):
    """Drive a campaign to completion with in-process worker threads."""
    with CoordinatorServer(campaign) as server:
        workers = [
            CampaignWorker(server.url, name=f"t{i}", **worker_kwargs)
            for i in range(worker_count)
        ]
        threads = [threading.Thread(target=w.run, daemon=True) for w in workers]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(60)
        assert not any(thread.is_alive() for thread in threads)
    return workers


class TestCampaignEndToEnd:
    def test_campaign_store_matches_single_host_run(self, tmp_path):
        store = ResultStore(tmp_path / "campaign.jsonl")
        campaign = Campaign(_tiny_descriptor(), store, shard_size=2, lease_seconds=10.0)
        _run_campaign(campaign)
        assert campaign.board.counts()["done"] == 9
        assert store.canonical_bytes() == _serial_baseline(tmp_path).canonical_bytes()

    def test_transient_failures_retry_and_converge(self, tmp_path):
        store = ResultStore(tmp_path / "campaign.jsonl")
        campaign = Campaign(
            _tiny_descriptor(),
            store,
            shard_size=2,
            lease_seconds=10.0,
            backoff=BackoffPolicy(base_seconds=0.01, jitter=0.0),
        )
        failed_once = set()
        guard = threading.Lock()

        def fail_first_attempt(label: str) -> None:
            with guard:
                if label not in failed_once:
                    failed_once.add(label)
                    raise OSError(f"injected transient fault in {label}")

        _run_campaign(campaign, failure_hook=fail_first_attempt)
        assert campaign.board.counts() == {
            "total": 9, "pending": 0, "leased": 0, "done": 9, "poisoned": 0,
        }
        assert campaign.board.retries_scheduled == 9
        # Failed attempts never shadow the retry that succeeded.
        assert store.canonical_bytes() == _serial_baseline(tmp_path).canonical_bytes()

    def test_permanent_failure_is_poisoned_not_retried(self, tmp_path):
        store = ResultStore(tmp_path / "campaign.jsonl")
        campaign = Campaign(_tiny_descriptor(), store, shard_size=2, lease_seconds=10.0)
        victim = campaign.cases[0].label

        def always_crash(label: str) -> None:
            if label == victim:
                raise ValueError("deterministic scenario bug")

        _run_campaign(campaign, failure_hook=always_crash)
        counts = campaign.board.counts()
        assert counts["done"] == 8 and counts["poisoned"] == 1
        assert campaign.board.retries_scheduled == 0
        poison = [r for r in store.load() if r.get("poisoned")]
        assert len(poison) == 1
        assert poison[0]["label"] == victim
        assert poison[0]["error_kind"] == "permanent"
        assert poison[0]["attempt"] == 1

    def test_resume_skips_stored_records(self, tmp_path):
        serial = _serial_baseline(tmp_path)
        partial = ResultStore(tmp_path / "partial.jsonl")
        for record in serial.load()[:4]:
            partial.append(record)

        campaign = Campaign(_tiny_descriptor(), partial, shard_size=2, lease_seconds=10.0)
        assert campaign.board.counts()["done"] == 4
        workers = _run_campaign(campaign, worker_count=1)
        assert campaign.board.counts()["done"] == 9
        assert workers[0].cases_run == 5  # only the missing cases re-ran
        assert partial.canonical_bytes() == serial.canonical_bytes()

    def test_fully_stored_campaign_is_complete_at_boot(self, tmp_path):
        serial = _serial_baseline(tmp_path)
        campaign = Campaign(_tiny_descriptor(), serial)
        assert campaign.complete

    def test_coordinator_restart_midway_resumes_same_port(self, tmp_path):
        store = ResultStore(tmp_path / "campaign.jsonl")
        campaign = Campaign(_tiny_descriptor(), store, shard_size=1, lease_seconds=3.0)
        server = CoordinatorServer(campaign).start()
        port = server.httpd.server_address[1]
        url = server.url

        worker = CampaignWorker(url, name="survivor", throttle_seconds=0.05,
                                give_up_seconds=30.0)
        thread = threading.Thread(target=worker.run, daemon=True)
        thread.start()

        # Let a few records land, then kill the coordinator mid-campaign.
        pacer = threading.Event()
        while campaign.records_merged < 2 and thread.is_alive():
            pacer.wait(0.02)
        server.stop()
        merged_before = campaign.records_merged
        assert merged_before >= 2

        # A fresh coordinator on the same port resumes from the store alone.
        revived = Campaign(_tiny_descriptor(), store, shard_size=1, lease_seconds=3.0)
        assert revived.board.counts()["done"] >= merged_before
        with CoordinatorServer(revived, port=port):
            thread.join(60)
        assert not thread.is_alive()
        assert revived.board.counts()["done"] == 9
        assert store.canonical_bytes() == _serial_baseline(tmp_path).canonical_bytes()

    def test_spec_drift_aborts_the_worker_loudly(self, tmp_path):
        store = ResultStore(tmp_path / "campaign.jsonl")
        campaign = Campaign(_tiny_descriptor(), store, shard_size=2)
        # Simulate version skew: the coordinator leases an identity the
        # worker's locally expanded grid does not contain.
        campaign.cases[0] = SweepCase("tampered", campaign.cases[0].config)
        with CoordinatorServer(campaign) as server:
            with pytest.raises(RuntimeError, match="spec drift"):
                CampaignWorker(server.url, name="drifted").run()
        assert store.load() == []


class TestCampaignCLI:
    def test_sweep_cli_dispatches_campaign_subcommand(self):
        from repro.sweep.cli import main

        assert main(["campaign", "status", "http://127.0.0.1:9"]) == 3

    def test_serve_times_out_with_exit_code_5(self, tmp_path, capsys):
        from repro.campaign.cli import main

        code = main([
            "serve", "figure2", "--steps", "2", "--sim-ranks", "2",
            "--store", str(tmp_path / "c.jsonl"), "--max-seconds", "0.3",
        ])
        assert code == 5
        captured = capsys.readouterr()
        assert "listening on" in captured.out
        assert "timed out" in captured.err

    def test_serve_resume_of_complete_store_exits_clean(self, tmp_path, capsys):
        from repro.campaign.cli import main

        serial = _serial_baseline(tmp_path)
        code = main([
            "serve", "figure2", "--steps", "2", "--sim-ranks", "2",
            "--store", str(serial.path),
        ])
        assert code == 0
        assert "done=9 poisoned=0" in capsys.readouterr().out

    def test_status_of_live_coordinator(self, tmp_path, capsys):
        from repro.campaign.cli import main

        campaign = Campaign(_tiny_descriptor(), tmp_path / "c.jsonl")
        with CoordinatorServer(campaign) as server:
            assert main(["status", server.url]) == 0
        out = capsys.readouterr().out
        assert "0/9 done" in out and "9 pending" in out
