"""Unit tests for the parallel file system and compute-node models."""

from __future__ import annotations

import pytest

from repro.cluster import Cluster, ComputeNode, ParallelFileSystem
from repro.cluster.presets import laptop
from repro.cluster.spec import FileSystemSpec, NodeSpec
from repro.simcore import Environment


def make_pfs(**kwargs):
    env = Environment()
    spec = FileSystemSpec(service_cv=0.0, metadata_latency=0.0, background_load=0.0, **kwargs)
    return env, ParallelFileSystem(env, spec)


def run_io(env, gen):
    out = []

    def proc():
        r = yield from gen
        out.append(r)

    env.process(proc())
    env.run()
    return out[0]


class TestParallelFileSystem:
    def test_write_duration_bounded_by_client_cap(self):
        env, fs = make_pfs(num_osts=64, ost_bandwidth=1e9, client_node_bandwidth=2e9)
        nbytes = 200 * 1024 * 1024
        result = run_io(env, fs.write(0, nbytes))
        assert result.duration >= nbytes / 2e9 * 0.99
        assert result.op == "write"

    def test_single_stripe_bounded_by_one_ost(self):
        env, fs = make_pfs(num_osts=64, ost_bandwidth=0.5e9, client_node_bandwidth=10e9, stripe_size=1024 * 1024)
        nbytes = 1024 * 1024
        result = run_io(env, fs.write(0, nbytes))
        assert result.bandwidth <= 0.5e9 * 1.01

    def test_shared_aggregate_bandwidth(self):
        env, fs = make_pfs(num_osts=4, ost_bandwidth=1e9, client_node_bandwidth=100e9, stripe_size=1024)
        durations = []

        def writer():
            r = yield from fs.write(0, 50 * 1024 * 1024)
            durations.append(r.duration)

        for _ in range(8):
            env.process(writer())
        env.run()
        solo_env, solo_fs = make_pfs(num_osts=4, ost_bandwidth=1e9, client_node_bandwidth=100e9, stripe_size=1024)
        solo = run_io(solo_env, solo_fs.write(0, 50 * 1024 * 1024))
        assert max(durations) > solo.duration

    def test_read_and_write_accounting(self):
        env, fs = make_pfs()
        run_io(env, fs.write(0, 1000, filename="a"))
        env2 = env  # same env keeps state
        run_io(env2, fs.read(0, 400, filename="a"))
        assert fs.bytes_written == 1000
        assert fs.bytes_read == 400
        assert fs.file_size("a") == 1000
        assert fs.exists("a") and not fs.exists("b")
        assert fs.files() == {"a": 1000}

    def test_negative_bytes_rejected(self):
        env, fs = make_pfs()
        with pytest.raises(ValueError):
            run_io(env, fs.write(0, -5))

    def test_zero_byte_io_costs_only_metadata(self):
        env = Environment()
        fs = ParallelFileSystem(
            env, FileSystemSpec(metadata_latency=1e-3, service_cv=0.0, background_load=0.0)
        )
        result = run_io(env, fs.write(0, 0))
        assert result.duration == pytest.approx(1e-3)

    def test_job_share_scales_aggregate_only(self):
        full = FileSystemSpec(num_osts=10, ost_bandwidth=1e9, background_load=0.0)
        shared = FileSystemSpec(num_osts=10, ost_bandwidth=1e9, background_load=0.0, job_share=0.1)
        assert shared.aggregate_bandwidth == pytest.approx(full.aggregate_bandwidth * 0.1)


class TestComputeNode:
    def test_compute_scales_with_core_speed(self):
        env = Environment()
        fast = ComputeNode(env, 0, NodeSpec(cores=2, core_speed=2.0))
        out = []

        def proc():
            yield from fast.compute(1.0)
            out.append(env.now)

        env.process(proc())
        env.run()
        assert out == [pytest.approx(0.5)]

    def test_oversubscription_queues(self):
        env = Environment()
        node = ComputeNode(env, 0, NodeSpec(cores=1, core_speed=1.0))
        finish = []

        def proc(i):
            yield from node.compute(1.0)
            finish.append(env.now)

        env.process(proc(0))
        env.process(proc(1))
        env.run()
        assert finish == [pytest.approx(1.0), pytest.approx(2.0)]
        assert node.busy_core_seconds == pytest.approx(2.0)

    def test_negative_compute_rejected(self):
        env = Environment()
        node = ComputeNode(env, 0, NodeSpec())

        def proc():
            yield from node.compute(-1.0)

        p = env.process(proc())
        with pytest.raises(ValueError):
            env.run(p)

    def test_memory_accounting(self):
        env = Environment()
        node = ComputeNode(env, 0, NodeSpec(cores=2, memory_bytes=1000))
        node.allocate_memory(400)
        env.run()
        assert node.memory_in_use == 400
        assert node.memory_free == 600
        node.free_memory(400)
        env.run()
        assert node.memory_in_use == 0


class TestClusterDeterminism:
    def test_two_identical_clusters_same_behaviour(self):
        def run_once():
            cluster = Cluster(laptop(), num_nodes=2)
            out = []

            def proc():
                r = yield from cluster.network.transfer(0, 1, 10 * 1024 * 1024)
                out.append(r.finish)
                r2 = yield from cluster.filesystem.write(0, 5 * 1024 * 1024)
                out.append(r2.finish)

            cluster.env.process(proc())
            cluster.run()
            return out

        assert run_once() == run_once()
