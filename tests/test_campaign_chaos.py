"""Chaos test: SIGKILL workers and the coordinator mid-campaign.

The tentpole guarantee under test: a campaign whose processes are killed at
random instants — including the coordinator itself — still converges, and
the merged store's canonical view is byte-identical to a single-host run of
the same spec.  Real subprocesses, real SIGKILLs, one seeded RNG.
"""

from __future__ import annotations

import os
import random
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

from repro.campaign.protocol import resolve_spec, spec_descriptor
from repro.sweep import ResultStore, SweepRunner

SRC = Path(__file__).resolve().parents[1] / "src"
FIGURE_ARGS = ["figure2", "--steps", "2", "--sim-ranks", "2"]


def _free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def _spawn(*args: str) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC)
    return subprocess.Popen(
        [sys.executable, "-m", "repro.sweep", "campaign", *args],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )


def _wait_until(predicate, timeout: float, pause: float = 0.05) -> bool:
    """Poll ``predicate`` without busy-waiting until it holds or time runs out."""
    pacer = threading.Event()
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        pacer.wait(pause)
    return predicate()


def _ok_lines(store: ResultStore) -> int:
    try:
        return sum(1 for record in store.iter_records(heal=False) if record.get("ok", True))
    except OSError:
        return 0


def _drain(proc: subprocess.Popen, timeout: float = 30.0) -> str:
    try:
        out, _err = proc.communicate(timeout=timeout)
    except subprocess.TimeoutExpired:
        proc.kill()
        out, _err = proc.communicate()
    return out or ""


class TestCampaignChaos:
    def test_killed_workers_and_coordinator_still_converge(self, tmp_path):
        rng = random.Random(20260808)
        port = _free_port()
        store = ResultStore(tmp_path / "campaign.jsonl")
        serve_args = [
            "serve", *FIGURE_ARGS,
            "--store", str(store.path), "--host", "127.0.0.1", "--port", str(port),
            "--shard-size", "2", "--lease-seconds", "2", "--backoff-base", "0.05",
            "--max-seconds", "120",
        ]
        work_args = [
            f"http://127.0.0.1:{port}",
            "--throttle-seconds", "0.25", "--give-up-seconds", "60",
        ]

        coordinator = _spawn(*serve_args)
        procs = [coordinator]
        try:
            assert _wait_until(lambda: _ok_lines(store) >= 0 and coordinator.poll() is None, 5)
            workers = [
                _spawn("work", *work_args, "--name", f"chaos-w{i}") for i in range(2)
            ]
            procs.extend(workers)

            # Phase 1: let a couple of records land, then SIGKILL one worker
            # mid-shard at a seeded-random instant and respawn it.
            assert _wait_until(lambda: _ok_lines(store) >= 2, 60), "no early progress"
            threading.Event().wait(rng.uniform(0.0, 0.3))
            victim = workers[rng.randrange(len(workers))]
            victim.send_signal(signal.SIGKILL)
            victim.wait(10)
            replacement = _spawn("work", *work_args, "--name", "chaos-respawn")
            procs.append(replacement)

            # Phase 2: once more progress lands, SIGKILL the coordinator and
            # restart it on the same port against the same store.  Workers
            # must ride out the outage.
            assert _wait_until(lambda: _ok_lines(store) >= 4, 60), "no mid progress"
            coordinator.send_signal(signal.SIGKILL)
            coordinator.wait(10)
            coordinator = _spawn(*serve_args)
            procs.append(coordinator)

            # Everything drains: coordinator exits 0 once all 9 cases landed.
            assert _wait_until(lambda: coordinator.poll() is not None, 90), (
                "resumed coordinator did not finish; store has "
                f"{_ok_lines(store)} ok records"
            )
            serve_out = _drain(coordinator)
            assert coordinator.returncode == 0, serve_out
            assert "done=9 poisoned=0" in serve_out
            for worker in procs[1:]:
                if worker is coordinator or worker.poll() == -signal.SIGKILL:
                    continue
                assert _wait_until(lambda w=worker: w.poll() is not None, 60)
        finally:
            for proc in procs:
                if proc.poll() is None:
                    proc.kill()
                    proc.wait(10)
                if proc.stdout is not None:
                    proc.stdout.close()

        # The tentpole guarantee: canonical bytes equal a single-host run.
        baseline = ResultStore(tmp_path / "serial.jsonl")
        SweepRunner(workers=0, store=baseline, trace=False).run(
            resolve_spec(spec_descriptor("figure2", steps=2, sim_ranks=2))
        )
        assert store.canonical_bytes() == baseline.canonical_bytes()
