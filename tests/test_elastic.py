"""Tests for the elastic adaptation layer (policy, controller, invariants)."""

from __future__ import annotations

import json

import pytest

from repro.apps.costs import MiB, cfd_workload, synthetic_workload
from repro.bench.experiments import (
    elastic_burst_pipeline,
    elastic_default_policy,
    elastic_vs_static_spec,
)
from repro.cluster.presets import bridges, laptop
from repro.cluster import Cluster
from repro.elastic import ElasticPolicy, RebalanceEvent
from repro.elastic.monitor import CouplingHealth, EpochHealth, StageHealth
from repro.simcore import CounterDeltas, Environment, PeriodicController, Timeout
from repro.sweep.runner import SweepRunner
from repro.sweep.store import result_payload
from repro.workflow import CouplingSpec, PipelineSpec, StageSpec
from repro.workflow.runner import PipelineRunner, run_pipeline


# -- scenario helpers ---------------------------------------------------------
def two_stage_pipeline(elastic=None, steps=6, **overrides):
    """A small static-by-default CFD pipeline used across the tests."""
    workload = cfd_workload(steps=steps)
    spec = dict(
        stages=(
            StageSpec("simulation", workload, representative_ranks=8, total_ranks=256),
            StageSpec("analysis", workload, representative_ranks=4, total_ranks=128),
        ),
        couplings=(CouplingSpec("simulation", "analysis", transport="zipper"),),
        cluster=bridges(),
        total_cores=384,
        steps=steps,
        trace=False,
        seed=11,
        elastic=elastic,
    )
    spec.update(overrides)
    return PipelineSpec(**spec)


def lease_pipeline(elastic=None):
    """Two independent producer->consumer pairs: one transfer-bound, one light."""
    heavy = synthetic_workload("O(n)", 8 * MiB, data_per_rank=512 * MiB)
    light = synthetic_workload("O(nlogn)", 1 * MiB, data_per_rank=64 * MiB)
    return PipelineSpec(
        stages=(
            StageSpec("simA", heavy, representative_ranks=4, total_ranks=128),
            StageSpec("analysisA", heavy, representative_ranks=2, total_ranks=64),
            StageSpec("simB", light, representative_ranks=4, total_ranks=128),
            StageSpec("analysisB", light, representative_ranks=2, total_ranks=64),
        ),
        couplings=(
            CouplingSpec("simA", "analysisA", transport="zipper"),
            CouplingSpec("simB", "analysisB", transport="zipper"),
        ),
        cluster=bridges(),
        total_cores=384,
        trace=False,
        producer_buffer_blocks=4,
        high_water_mark=4,
        concurrent_transfer=False,
        elastic=elastic,
        seed=3,
    )


# -- policy -------------------------------------------------------------------
class TestElasticPolicy:
    def test_defaults_validate(self):
        policy = ElasticPolicy()
        assert policy.epoch_seconds > 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"epoch_seconds": 0.0},
            {"stall_threshold": -0.1},
            {"idle_threshold": 1.5},
            {"idle_threshold": 0.8, "saturated_threshold": 0.5},
            {"resize_fraction": 0.0},
            {"resize_fraction": 1.5},
            {"min_stage_fraction": 0.0},
            {"lease_step": 0.0},
            {"min_bandwidth_share": 0.0},
            {"max_bandwidth_share": 0.5},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ElasticPolicy(**kwargs)

    def test_never_policy_cannot_trigger(self):
        policy = ElasticPolicy.never()
        assert policy.stall_threshold == float("inf")
        assert policy.saturated_threshold == float("inf")
        assert policy.starved_threshold == float("inf")
        assert policy.idle_threshold == 0.0

    def test_pipeline_rejects_non_policy(self):
        with pytest.raises(ValueError):
            two_stage_pipeline(elastic="not a policy")


# -- simcore control primitives ----------------------------------------------
class TestPeriodicController:
    def test_fires_at_interval_and_stops_on_false(self):
        env = Environment()
        seen = []

        def tick(now):
            seen.append(now)
            return len(seen) < 3

        def keep_alive():
            yield Timeout(env, 100.0)

        controller = PeriodicController(env, 2.0, tick)
        controller.start()
        env.process(keep_alive())
        env.run()
        assert seen == [2.0, 4.0, 6.0]
        assert controller.wakeups == 3
        assert controller.events_consumed == 4  # init event + three wake-ups

    def test_unstarted_controller_consumed_nothing(self):
        controller = PeriodicController(Environment(), 1.0, lambda now: None)
        assert controller.events_consumed == 0
        assert not controller.started

    def test_rejects_bad_interval_and_double_start(self):
        env = Environment()
        with pytest.raises(ValueError):
            PeriodicController(env, 0.0, lambda now: None)
        controller = PeriodicController(env, 1.0, lambda now: False)
        controller.start()
        with pytest.raises(RuntimeError):
            controller.start()


class TestCounterDeltas:
    def test_deltas_between_advances(self):
        deltas = CounterDeltas()
        assert deltas.advance("g", {"a": 2.0}) == {"a": 2.0}
        assert deltas.advance("g", {"a": 5.0, "b": 1.0}) == {"a": 3.0, "b": 1.0}
        assert deltas.peek("g") == {"a": 5.0, "b": 1.0}
        assert deltas.peek("other") == {}


# -- cluster-side mechanism ---------------------------------------------------
class TestNodeAllocation:
    def test_allocation_scale_changes_compute_rate(self):
        cluster = Cluster(laptop(), num_nodes=1)
        node = cluster.node(0)
        durations = []

        def work():
            got = yield from node.compute(1.0)
            durations.append(got)

        cluster.env.process(work())
        cluster.run()
        node.set_allocation_scale(2.0)
        cluster.env.process(work())
        cluster.run()
        assert durations[1] == pytest.approx(durations[0] / 2.0)
        assert node.allocation_scale == 2.0

    def test_invalid_scale_rejected(self):
        cluster = Cluster(laptop(), num_nodes=1)
        with pytest.raises(ValueError):
            cluster.node(0).set_allocation_scale(0.0)

    def test_cluster_helper_applies_to_group(self):
        cluster = Cluster(laptop(), num_nodes=3)
        cluster.set_node_allocation([0, 2], 0.5)
        assert cluster.node(0).allocation_scale == 0.5
        assert cluster.node(1).allocation_scale == 1.0
        assert cluster.node(2).allocation_scale == 0.5


# -- bursty workload model ----------------------------------------------------
class TestBurstyWorkload:
    def test_steady_workload_is_exact_passthrough(self):
        workload = cfd_workload(steps=4)
        for step in range(8):
            assert (
                workload.analysis_seconds_per_byte_at(step)
                == workload.analysis_seconds_per_byte
            )

    def test_burst_pattern_hits_window_tail(self):
        workload = cfd_workload(steps=12).replace(
            analysis_burst_factor=4.0, analysis_burst_period=6, analysis_burst_length=2
        )
        base = workload.analysis_seconds_per_byte
        costs = [workload.analysis_seconds_per_byte_at(step) for step in range(12)]
        assert costs[:4] == [base] * 4
        assert costs[4:6] == [base * 4.0] * 2
        assert costs[6:10] == [base] * 4
        assert costs[10:] == [base * 4.0] * 2

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"analysis_burst_factor": 0.0},
            {"analysis_burst_period": -1},
            {"analysis_burst_length": 0},
            {"analysis_burst_period": 2, "analysis_burst_length": 3},
            # length == period would make every step a burst step, leaving
            # no observable steady baseline before the first burst.
            {"analysis_burst_period": 2, "analysis_burst_length": 2},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            cfd_workload(steps=4).replace(**kwargs)


# -- the acceptance invariants -----------------------------------------------
class TestNeverTriggeringPolicy:
    def test_bit_identical_to_static(self):
        static = run_pipeline(two_stage_pipeline())
        never = run_pipeline(
            two_stage_pipeline(elastic=ElasticPolicy.never(epoch_seconds=0.25))
        )
        assert never.rebalances == []
        # The full persisted payloads (times, breakdowns, every counter
        # including events_processed) must match bit for bit.
        assert result_payload(never) == result_payload(static)

    def test_bit_identical_on_bursty_scenario(self):
        static = run_pipeline(elastic_burst_pipeline(steps=12))
        never = run_pipeline(
            elastic_burst_pipeline(steps=12).replace(
                elastic=ElasticPolicy.never(epoch_seconds=0.25)
            )
        )
        assert never.rebalances == []
        assert result_payload(never) == result_payload(static)


class TestCoreConservation:
    def run_bursty(self, **policy_overrides):
        policy = elastic_default_policy().replace(**policy_overrides)
        runner = PipelineRunner(
            elastic_burst_pipeline(steps=12).replace(elastic=policy)
        )
        result = runner.run()
        return runner, result

    def test_resizes_conserve_total_cores_at_every_epoch(self):
        runner, result = self.run_bursty()
        controller = runner.elastic_controller
        resizes = [e for e in result.rebalances if e.kind == "stage_resize"]
        assert resizes, "the bursty scenario must trigger resizes"
        # Replay the timeline from the baseline: the sum is invariant after
        # every decision and the final holdings match the controller's.
        allocations = dict(controller.baseline)
        total = sum(allocations.values())
        for event in resizes:
            allocations[event.donor] -= event.amount
            allocations[event.receiver] += event.amount
            assert event.amount > 0
            assert sum(allocations.values()) == pytest.approx(total, rel=1e-12)
            for name, after in event.detail.items():
                assert allocations[name] == pytest.approx(after, rel=1e-12)
        assert allocations == pytest.approx(controller.allocations)
        assert sum(controller.allocations.values()) == pytest.approx(total)

    def test_floors_respected_throughout(self):
        runner, result = self.run_bursty(min_stage_fraction=0.25)
        controller = runner.elastic_controller
        allocations = dict(controller.baseline)
        for event in result.rebalances:
            if event.kind != "stage_resize":
                continue
            allocations[event.donor] -= event.amount
            allocations[event.receiver] += event.amount
            for name, value in allocations.items():
                assert value >= 0.25 * controller.baseline[name] - 1e-9

    def test_min_core_fraction_override_tightens_floor(self):
        policy = elastic_default_policy()
        pipeline = elastic_burst_pipeline(steps=12).replace(elastic=policy)
        stages = tuple(s.replace(min_core_fraction=0.9) for s in pipeline.stages)
        runner = PipelineRunner(pipeline.replace(stages=stages))
        result = runner.run()
        controller = runner.elastic_controller
        allocations = dict(controller.baseline)
        for event in result.rebalances:
            if event.kind != "stage_resize":
                continue
            allocations[event.donor] -= event.amount
            allocations[event.receiver] += event.amount
            for name, value in allocations.items():
                assert value >= 0.9 * controller.baseline[name] - 1e-9

    def test_uneven_grants_conserve_granted_cores(self):
        """With an uneven static grant the baseline is the *granted* cores,
        so resizes move real cores (not rank units) and conserve the total."""
        policy = elastic_default_policy()
        runner = PipelineRunner(
            elastic_burst_pipeline(sim_cores=128, steps=12).replace(elastic=policy)
        )
        controller = runner.elastic_controller
        assert controller.baseline == {"simulation": 128.0, "analysis": 256.0}
        assert controller.total_cores == 384.0
        runner.run()
        assert sum(controller.allocations.values()) == pytest.approx(384.0)

    def test_non_resizable_stages_are_left_alone(self):
        policy = elastic_default_policy()
        pipeline = elastic_burst_pipeline(steps=12).replace(elastic=policy)
        stages = tuple(s.replace(resizable=False) for s in pipeline.stages)
        runner = PipelineRunner(pipeline.replace(stages=stages))
        result = runner.run()
        assert [e for e in result.rebalances if e.kind == "stage_resize"] == []
        assert runner.elastic_controller.allocations == runner.elastic_controller.baseline


class TestBandwidthLeases:
    def test_lender_never_below_floor(self):
        policy = ElasticPolicy(
            epoch_seconds=0.25,
            stage_resize=False,
            work_stealing=True,
            starved_threshold=0.05,
            lease_step=0.25,
            min_bandwidth_share=0.5,
            max_bandwidth_share=2.0,
        )
        runner = PipelineRunner(lease_pipeline(elastic=policy))
        result = runner.run()
        leases = [e for e in result.rebalances if e.kind == "bandwidth_lease"]
        assert leases, "the lease scenario must trigger work stealing"
        shares = {c.name: 1.0 for c in runner.pipeline.couplings}
        for event in leases:
            shares[event.donor] -= event.amount
            shares[event.receiver] += event.amount
            assert min(shares.values()) >= policy.min_bandwidth_share - 1e-9
            assert max(shares.values()) <= policy.max_bandwidth_share + 1e-9
            assert sum(shares.values()) == pytest.approx(len(shares), rel=1e-12)
        assert shares == pytest.approx(runner.elastic_controller.bandwidth_shares)

    def test_floor_clamps_synthetic_decisions(self):
        """Drive the lease logic directly: even under permanent starvation the
        lender is never pushed below the floor."""
        policy = ElasticPolicy(
            epoch_seconds=0.25,
            stage_resize=False,
            min_bandwidth_share=0.5,
            lease_step=0.4,
        )
        runner = PipelineRunner(lease_pipeline(elastic=policy))
        controller = runner.elastic_controller
        names = [c.name for c in runner.pipeline.couplings]
        health = EpochHealth(
            time=1.0,
            duration=0.25,
            stages={
                s.name: StageHealth(s.name, busy_fraction=0.8, stall_fraction=0.0)
                for s in runner.pipeline.stages
            },
            couplings={
                names[0]: CouplingHealth(names[0], stall_fraction=0.9, bytes_moved=1e9, buffer_level=4),
                names[1]: CouplingHealth(names[1], stall_fraction=0.0, bytes_moved=0.0, buffer_level=0),
            },
        )
        for _ in range(10):
            controller._decide_lease(1.0, health)
        assert controller.bandwidth_shares[names[1]] == pytest.approx(0.5)
        assert controller.bandwidth_shares[names[0]] == pytest.approx(1.5)

    def test_occupancy_alone_triggers_a_lease(self):
        """Buffer occupancy near capacity is a starvation signal even before
        any producer actually stalls."""
        policy = ElasticPolicy(
            epoch_seconds=0.25, stage_resize=False, starved_occupancy=0.75
        )
        runner = PipelineRunner(lease_pipeline(elastic=policy))
        controller = runner.elastic_controller
        names = [c.name for c in runner.pipeline.couplings]
        health = EpochHealth(
            time=1.0,
            duration=0.25,
            stages={
                s.name: StageHealth(s.name, busy_fraction=0.8, stall_fraction=0.0)
                for s in runner.pipeline.stages
            },
            couplings={
                names[0]: CouplingHealth(
                    names[0], stall_fraction=0.0, bytes_moved=1e9,
                    buffer_level=15.0, occupancy_fraction=0.95,
                ),
                names[1]: CouplingHealth(
                    names[1], stall_fraction=0.0, bytes_moved=0.0,
                    buffer_level=0.0, occupancy_fraction=0.0,
                ),
            },
        )
        controller._decide_lease(1.0, health)
        assert controller.bandwidth_shares[names[0]] > 1.0
        assert controller.bandwidth_shares[names[1]] < 1.0

    def test_buffer_level_aggregates_over_ranks(self):
        runner = PipelineRunner(lease_pipeline())
        ctx = runner.ctx.couplings[0]
        assert ctx.buffer_level == 0.0
        ctx.note_buffer_level(0, 3)
        ctx.note_buffer_level(1, 2)
        ctx.note_buffer_level(0, 1)  # rank 0 drained two blocks
        assert ctx.buffer_level == 3.0

    def test_mpiio_honours_bandwidth_lease(self):
        """A halved bandwidth share slows mpiio's file path (lease is not a no-op)."""

        def run_with_share(share):
            runner = PipelineRunner(
                two_stage_pipeline(steps=3, couplings=(
                    CouplingSpec("simulation", "analysis", transport="mpiio"),
                ))
            )
            runner.ctx.couplings[0].set_bandwidth_share(share)
            return runner.run().end_to_end_time

        assert run_with_share(0.5) > run_with_share(1.0)

    @pytest.mark.parametrize("transport", ["dataspaces", "dimes", "decaf", "flexpath"])
    def test_staging_transports_honour_bandwidth_lease(self, transport):
        """Staging/link/event traffic is leased too: a halved share slows the
        bulk transfers of every network transport (ROADMAP follow-up)."""

        def run_with_share(share):
            runner = PipelineRunner(
                two_stage_pipeline(steps=3, couplings=(
                    CouplingSpec("simulation", "analysis", transport=transport),
                ))
            )
            runner.ctx.couplings[0].set_bandwidth_share(share)
            return runner.run().end_to_end_time

        assert run_with_share(0.5) > run_with_share(1.0)

    def test_non_leasable_couplings_never_lend(self):
        policy = ElasticPolicy(epoch_seconds=0.25, stage_resize=False)
        pipeline = lease_pipeline(elastic=policy)
        couplings = tuple(c.replace(leasable=False) for c in pipeline.couplings)
        runner = PipelineRunner(pipeline.replace(couplings=couplings))
        result = runner.run()
        assert [e for e in result.rebalances if e.kind == "bandwidth_lease"] == []


class TestElasticBeatsStatic:
    def test_spec_builds_for_small_totals(self):
        for total in (48, 192, 256):
            cases = elastic_vs_static_spec(steps=6, total_cores=total).cases()
            assert len(cases) == 10

    def test_beats_best_static_split_on_bursty_scenario(self):
        spec = elastic_vs_static_spec(steps=12)
        results = SweepRunner(workers=0).run_labelled(spec)
        static = {k: v for k, v in results.items() if k.startswith("static/")}
        elastic = {k: v for k, v in results.items() if k.startswith("elastic/")}
        assert len(static) == len(elastic) == 5
        best_static = min(r.end_to_end_time for r in static.values())
        best_elastic = min(r.end_to_end_time for r in elastic.values())
        assert best_elastic < best_static
        # The winning elastic run actually adapted.
        winner = min(elastic.values(), key=lambda r: r.end_to_end_time)
        assert winner.rebalances


# -- persistence --------------------------------------------------------------
class TestRebalanceTimelineRoundTrip:
    def test_events_roundtrip_through_store_payload(self, tmp_path):
        policy = elastic_default_policy()
        result = run_pipeline(elastic_burst_pipeline(steps=12).replace(elastic=policy))
        assert result.rebalances
        payload = result_payload(result)
        assert "rebalances" in payload
        # Through JSON (exactly what the JSONL store writes) and back.
        restored = json.loads(json.dumps(payload, sort_keys=True))
        events = [RebalanceEvent.from_dict(e) for e in restored["rebalances"]]
        assert events == result.rebalances

    def test_static_payload_has_no_rebalance_key(self):
        result = run_pipeline(two_stage_pipeline())
        assert "rebalances" not in result_payload(result)

    def test_stage_summary_mentions_rebalances(self):
        policy = elastic_default_policy()
        result = run_pipeline(elastic_burst_pipeline(steps=12).replace(elastic=policy))
        summary = result.stage_summary()
        assert "rebalance" in summary
        assert "stage_resize" in summary
