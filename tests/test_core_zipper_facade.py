"""Integration tests of the Zipper facade and ``zip_applications``."""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.apps.analysis import StreamingMoments
from repro.core import BlockId, Zipper, ZipperConfig, zip_applications


def simple_producer(steps=4, blocks_per_step=3, elements=128):
    def produce(writer):
        rng = np.random.default_rng(0)
        for step in range(steps):
            for index in range(blocks_per_step):
                writer.write(BlockId(step, 0, index), rng.standard_normal(elements))
        return steps * blocks_per_step

    return produce


def counting_analysis():
    def analyze(reader):
        moments = StreamingMoments(max_order=2)
        for block in reader.blocks():
            moments.update(block.data)
        return moments

    return analyze


class TestZipApplications:
    def test_end_to_end_counts_match(self):
        result = zip_applications(simple_producer(), counting_analysis(), ZipperConfig(block_size=1024))
        assert result.producer_result == 12
        assert result.consumer_result.blocks_consumed == 12
        assert result.blocks_produced == 12
        assert result.end_to_end_time > 0
        assert result.config is not None

    def test_streamed_statistics_match_offline(self):
        collected = []

        def produce(writer):
            rng = np.random.default_rng(7)
            for step in range(5):
                data = rng.standard_normal(256)
                collected.append(data)
                writer.write(BlockId(step, 0, 0), data)

        result = zip_applications(produce, counting_analysis(), ZipperConfig(block_size=2048))
        everything = np.concatenate(collected)
        assert result.consumer_result.variance == pytest.approx(float(np.var(everything)), rel=1e-9)

    def test_preserve_mode(self, tmp_path):
        config = ZipperConfig(block_size=1024, mode="preserve", spill_dir=tmp_path)
        result = zip_applications(simple_producer(steps=3), counting_analysis(), config)
        assert result.stats.get("blocks_preserved") == 9
        assert len(list((tmp_path / "preserved").glob("*.npy"))) == 9

    def test_throttled_network_triggers_work_stealing(self, tmp_path):
        config = ZipperConfig(
            block_size=8192,
            producer_buffer_blocks=4,
            high_water_mark=2,
            network_bandwidth=2e6,
            spill_dir=tmp_path,
        )
        result = zip_applications(
            simple_producer(steps=4, blocks_per_step=8, elements=1024),
            counting_analysis(),
            config,
        )
        assert result.consumer_result.blocks_consumed == 32
        assert result.blocks_stolen > 0
        assert 0 < result.steal_fraction < 1

    def test_producer_exception_propagates(self):
        def bad_producer(writer):
            writer.write(BlockId(0, 0, 0), np.zeros(8))
            raise RuntimeError("simulation blew up")

        with pytest.raises(RuntimeError, match="simulation blew up"):
            zip_applications(bad_producer, counting_analysis(), ZipperConfig())

    def test_consumer_exception_propagates(self):
        def bad_analysis(reader):
            for _ in reader.blocks():
                raise ValueError("analysis failed")

        with pytest.raises(ValueError, match="analysis failed"):
            zip_applications(simple_producer(steps=1), bad_analysis, ZipperConfig())

    def test_empty_producer_terminates(self):
        def produce(writer):
            return 0

        def analyze(reader):
            return sum(1 for _ in reader.blocks())

        result = zip_applications(produce, analyze, ZipperConfig())
        assert result.consumer_result == 0


class TestZipperSession:
    def test_manual_session(self, tmp_path):
        config = ZipperConfig(block_size=512, spill_dir=tmp_path)
        with Zipper(config) as session:
            session.write(BlockId(0, 0, 0), np.arange(16.0))
            session.finalize_producer()
            block = session.read(timeout=1.0)
            assert block is not None
            np.testing.assert_array_equal(block.data, np.arange(16.0))
            session.release(block.block_id)
            assert session.read(timeout=1.0) is None

    def test_temporary_spill_dir_cleanup(self):
        session = Zipper(ZipperConfig(block_size=512))
        spill = session.spill_dir
        session.start()
        session.write(BlockId(0, 0, 0), np.zeros(4))
        session.finalize_producer()
        while session.read(timeout=0.5) is not None:
            pass
        session.close()
        assert not spill.exists()


class TestErrorShutdown:
    """Regression tests: a failing side must abort the session, not deadlock it."""

    def test_raising_consumer_unblocks_stalled_producer(self):
        """A consumer that dies while the producer is blocked on a full buffer.

        Before the abort-on-first-error fix the producer stayed parked in
        ``ProducerBuffer.put`` forever (nothing drained the buffer once the
        consumer was gone) and ``zip_applications`` hung in ``join``.
        """
        config = ZipperConfig(
            block_size=1024,
            producer_buffer_blocks=2,
            high_water_mark=2,  # no work stealing: nothing else drains the buffer
            concurrent_transfer=False,
            consumer_buffer_blocks=2,  # the dead consumer stops draining this
            network_bandwidth=64 * 1024,  # slow sender so the buffer stays full
        )

        def eager_producer(writer):
            for index in range(64):
                writer.write(BlockId(0, 0, index), np.zeros(256))

        def dying_consumer(reader):
            reader.read(timeout=5.0)
            raise ValueError("analysis failed hard")

        start = time.perf_counter()
        with pytest.raises(ValueError, match="analysis failed hard"):
            zip_applications(eager_producer, dying_consumer, config, shutdown_timeout=30.0)
        # Promptly: well under the shutdown timeout, not a 60 s join hang.
        assert time.perf_counter() - start < 20.0

    def test_immediately_raising_consumer_reports_its_error(self):
        def dying_consumer(reader):
            raise ValueError("analysis refused to start")

        with pytest.raises(ValueError, match="refused to start"):
            zip_applications(
                simple_producer(steps=8, blocks_per_step=8),
                dying_consumer,
                ZipperConfig(
                    block_size=1024,
                    producer_buffer_blocks=4,
                    high_water_mark=4,
                    consumer_buffer_blocks=2,
                ),
                shutdown_timeout=30.0,
            )

    def test_successful_runs_are_unaffected_by_bounded_joins(self):
        result = zip_applications(
            simple_producer(steps=2, blocks_per_step=2),
            counting_analysis(),
            ZipperConfig(block_size=1024),
            shutdown_timeout=30.0,
        )
        assert result.consumer_result.blocks_consumed == 4
