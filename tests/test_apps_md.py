"""Physics tests for the Lennard-Jones molecular-dynamics proxy (the LAMMPS workload)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.md import LennardJonesMD, fcc_lattice


class TestFccLattice:
    def test_atom_count_and_box(self):
        positions, box = fcc_lattice(3, density=0.8442)
        assert positions.shape == (108, 3)
        assert box == pytest.approx((108 / 0.8442) ** (1 / 3))
        assert positions.min() >= 0.0 and positions.max() < box

    def test_minimum_separation_reasonable(self):
        positions, box = fcc_lattice(2)
        delta = positions[:, None, :] - positions[None, :, :]
        delta -= box * np.round(delta / box)
        dist = np.sqrt((delta**2).sum(-1))
        np.fill_diagonal(dist, np.inf)
        assert dist.min() > 0.7  # nearest-neighbour spacing of the melt lattice

    def test_validation(self):
        with pytest.raises(ValueError):
            fcc_lattice(0)
        with pytest.raises(ValueError):
            fcc_lattice(2, density=0.0)


class TestLennardJonesMD:
    def test_validation(self):
        with pytest.raises(ValueError):
            LennardJonesMD(temperature=-1)
        with pytest.raises(ValueError):
            LennardJonesMD(dt=0)
        with pytest.raises(ValueError):
            LennardJonesMD(cutoff=0)

    def test_initial_momentum_is_zero(self):
        md = LennardJonesMD(cells_per_side=2, temperature=1.44)
        assert np.abs(md.total_momentum()).max() < 1e-10

    def test_momentum_conserved(self):
        md = LennardJonesMD(cells_per_side=2, temperature=1.0, dt=0.004)
        md.run(30)
        assert np.abs(md.total_momentum()).max() < 1e-9

    def test_energy_approximately_conserved(self):
        md = LennardJonesMD(cells_per_side=2, temperature=1.0, dt=0.002)
        e0 = md.total_energy()
        md.run(60)
        drift = abs(md.total_energy() - e0) / abs(e0)
        assert drift < 5e-3

    def test_zero_temperature_lattice_stays_put(self):
        md = LennardJonesMD(cells_per_side=2, temperature=0.0, dt=0.002)
        md.run(10)
        assert md.msd_from_start() < 1e-6

    def test_hot_system_melts(self):
        md = LennardJonesMD(cells_per_side=2, temperature=2.5, dt=0.004)
        md.run(80)
        assert md.msd_from_start() > 0.01

    def test_state_contents(self):
        md = LennardJonesMD(cells_per_side=2, temperature=1.44)
        state = md.step()
        assert state.step == 1
        assert state.positions.shape == (md.n_atoms, 3)
        assert state.kinetic_energy > 0
        assert state.temperature > 0
        assert state.total_energy == pytest.approx(state.kinetic_energy + state.potential_energy)
        assert state.output_bytes() == md.n_atoms * 3 * 8

    def test_positions_stay_in_box(self):
        md = LennardJonesMD(cells_per_side=2, temperature=1.44, dt=0.004)
        state = md.run(40)
        assert state.positions.min() >= 0.0
        assert state.positions.max() <= md.box_length

    def test_run_validation(self):
        with pytest.raises(ValueError):
            LennardJonesMD(cells_per_side=2).run(0)

    def test_cell_list_matches_all_pairs(self):
        """Forces from the cell-list path agree with a brute-force evaluation."""
        md = LennardJonesMD(cells_per_side=3, temperature=1.0, dt=0.004, seed=3)
        forces_cell, pot_cell = md._compute_forces()

        # Brute force with the same cutoff and shift.
        pos, box, rc = md.positions, md.box_length, md.cutoff
        delta = pos[:, None, :] - pos[None, :, :]
        delta -= box * np.round(delta / box)
        r2 = (delta**2).sum(-1)
        np.fill_diagonal(r2, np.inf)
        mask = r2 < rc * rc
        inv_r2 = np.where(mask, 1.0 / r2, 0.0)
        inv_r6 = inv_r2**3
        inv_c6 = 1.0 / rc**6
        shift = 4.0 * (inv_c6 * inv_c6 - inv_c6)
        pot_brute = 0.5 * np.sum(np.where(mask, 4.0 * (inv_r6**2 - inv_r6) - shift, 0.0))
        fmag = (48.0 * inv_r6**2 - 24.0 * inv_r6) * inv_r2
        forces_brute = np.einsum("ij,ijk->ik", fmag, delta)

        assert pot_cell == pytest.approx(pot_brute, rel=1e-9)
        np.testing.assert_allclose(forces_cell, forces_brute, rtol=1e-8, atol=1e-9)
