"""Tests for the benchmark report formatting utilities."""

from __future__ import annotations

import pytest

from repro.bench import breakdown_row, format_series, format_table
from repro.workflow.result import StageBreakdown


class TestFormatTable:
    def test_basic_rendering(self):
        text = format_table(["name", "value"], [["a", 1.5], ["bb", 20]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert lines[2].startswith("----")
        assert "1.50" in lines[3] and "bb" in lines[4]

    def test_column_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])

    def test_empty_rows(self):
        text = format_table(["a"], [])
        assert "a" in text


class TestFormatSeries:
    def test_rendering(self):
        text = format_series("zipper", {204: 41.0, 13056: 42.5})
        assert text.startswith("zipper:")
        assert "204: 41.00s" in text and "13056: 42.50s" in text


class TestBreakdownRow:
    def test_row_contents(self):
        row = breakdown_row("x", StageBreakdown(1.234, 2.345, 3.456, 0.5, 0.1))
        assert row == ["x", 1.23, 2.35, 0.5, 3.46, 0.1]
