"""Unit and property tests for random streams and statistics monitors."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simcore import RandomStreams, TallyMonitor, TimeSeriesMonitor


class TestRandomStreams:
    def test_streams_are_deterministic_across_instances(self):
        a = RandomStreams(seed=7).stream("network").random(5)
        b = RandomStreams(seed=7).stream("network").random(5)
        assert np.allclose(a, b)

    def test_streams_are_independent_of_request_order(self):
        r1 = RandomStreams(seed=3)
        first_net = r1.stream("network").random(3)
        r2 = RandomStreams(seed=3)
        r2.stream("pfs").random(10)  # interleave another stream first
        second_net = r2.stream("network").random(3)
        assert np.allclose(first_net, second_net)

    def test_different_names_differ(self):
        rs = RandomStreams(seed=1)
        assert not np.allclose(rs.stream("a").random(4), rs.stream("b").random(4))

    def test_jitter_zero_cv_is_exact(self):
        assert RandomStreams(0).jitter("x", 2.5, 0.0) == 2.5

    def test_jitter_mean_is_respected(self):
        rs = RandomStreams(0)
        samples = [rs.jitter("j", 10.0, 0.2) for _ in range(4000)]
        assert np.mean(samples) == pytest.approx(10.0, rel=0.05)

    def test_jitter_validation(self):
        rs = RandomStreams(0)
        with pytest.raises(ValueError):
            rs.jitter("x", -1.0, 0.1)
        with pytest.raises(ValueError):
            rs.jitter("x", 1.0, -0.1)

    def test_contains_and_len(self):
        rs = RandomStreams(0)
        rs.stream("a")
        assert "a" in rs and "b" not in rs
        assert len(rs) == 1


class TestTallyMonitor:
    def test_basic_statistics(self):
        m = TallyMonitor("t")
        for v in (1.0, 2.0, 3.0, 4.0):
            m.observe(v)
        assert m.count == 4
        assert m.mean == pytest.approx(2.5)
        assert m.minimum == 1.0 and m.maximum == 4.0
        assert m.variance == pytest.approx(np.var([1, 2, 3, 4], ddof=1))

    def test_empty_monitor(self):
        m = TallyMonitor()
        assert m.mean == 0.0 and m.variance == 0.0 and m.count == 0

    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_matches_numpy(self, values):
        m = TallyMonitor()
        for v in values:
            m.observe(v)
        assert m.mean == pytest.approx(float(np.mean(values)), rel=1e-9, abs=1e-6)
        assert m.total == pytest.approx(float(np.sum(values)), rel=1e-9, abs=1e-6)
        if len(values) > 1:
            assert m.variance == pytest.approx(float(np.var(values, ddof=1)), rel=1e-6, abs=1e-3)

    @given(
        st.lists(st.floats(-1e5, 1e5), min_size=1, max_size=80),
        st.lists(st.floats(-1e5, 1e5), min_size=1, max_size=80),
    )
    @settings(max_examples=40, deadline=None)
    def test_merge_equals_combined(self, left, right):
        a, b = TallyMonitor(), TallyMonitor()
        for v in left:
            a.observe(v)
        for v in right:
            b.observe(v)
        merged = a.merge(b)
        combined = left + right
        assert merged.count == len(combined)
        assert merged.mean == pytest.approx(float(np.mean(combined)), rel=1e-6, abs=1e-3)


class TestTimeSeriesMonitor:
    def test_time_average(self):
        m = TimeSeriesMonitor("queue", initial=0.0)
        m.record(1.0, 2.0)   # level 0 for [0,1)
        m.record(3.0, 4.0)   # level 2 for [1,3)
        # average over [0,3] = (0*1 + 2*2) / 3
        assert m.time_average(3.0) == pytest.approx(4.0 / 3.0)
        assert m.maximum == 4.0 and m.minimum == 0.0

    def test_non_monotonic_time_rejected(self):
        m = TimeSeriesMonitor()
        m.record(2.0, 1.0)
        with pytest.raises(ValueError):
            m.record(1.0, 5.0)

    def test_increment_decrement(self):
        m = TimeSeriesMonitor(initial=1.0)
        m.increment(1.0)
        m.decrement(2.0, 0.5)
        assert m.level == pytest.approx(1.5)

    def test_time_average_before_last_record_rejected(self):
        m = TimeSeriesMonitor()
        m.record(5.0, 1.0)
        with pytest.raises(ValueError):
            m.time_average(4.0)
