"""Tests for the ``repro.lint`` static-analysis suite.

Each rule is exercised three ways — a fixture that fires it, a near-identical
fixture that must stay silent, and the firing fixture silenced by an
``allow`` comment — plus reporter golden tests and the meta-test that the
shipped tree itself lints clean.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint import (
    MODEL_PACKAGES,
    all_rules,
    apply_fixes,
    lint_paths,
    lint_source,
    render_json,
    render_text,
    select_rules,
)
from repro.lint.framework import LintReport, module_name_for

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Default fixture module name: inside the model scope, so every rule applies.
MODEL_MOD = "repro.cluster.fixture"

#: (rule id, firing source, silent source, fixture module name) per rule.
RULE_FIXTURES = [
    (
        "D201",
        "import random\nx = random.randint(0, 5)\n",
        "from repro.simcore import RandomStreams\nx = RandomStreams(3).jitter('a', 1.0, 0.1)\n",
        MODEL_MOD,
    ),
    (
        "D201",
        "import numpy as np\nx = np.random.rand(4)\n",
        "import numpy as np\nrng = np.random.default_rng(42)\nx = rng.random(4)\n",
        MODEL_MOD,
    ),
    (
        "D201",
        "import numpy as np\nrng = np.random.default_rng()\n",
        "import numpy as np\nss = np.random.SeedSequence([1, 2])\nrng = np.random.default_rng(ss)\n",
        MODEL_MOD,
    ),
    (
        "D202",
        "import time\nstart = time.perf_counter()\n",
        "def f(env):\n    start = env.now\n    return start\n",
        MODEL_MOD,
    ),
    (
        "D202",
        "from datetime import datetime\nt = datetime.now()\n",
        "from datetime import datetime\nt = datetime.fromtimestamp(0)\n",
        MODEL_MOD,
    ),
    (
        "D203",
        "for rank in {0, 1, 2}:\n    pass\n",
        "for rank in sorted({0, 1, 2}):\n    pass\n",
        MODEL_MOD,
    ),
    (
        "D203",
        "pending = {}\nrank, evt = pending.popitem()\n",
        "pending = {}\nevt = pending.pop(0, None)\n",
        MODEL_MOD,
    ),
    (
        "D204",
        "import os\nworkers = os.environ.get('WORKERS')\n",
        "def f(spec):\n    return spec.workers\n",
        MODEL_MOD,
    ),
    (
        "E301",
        (
            "def compute(self, cores):\n"
            "    cores.users.append(1)\n"
            "    yield None\n"
            "    cores.users.remove(1)\n"
        ),
        (
            "def compute(self, cores):\n"
            "    cores.users.append(1)\n"
            "    yield None\n"
            "    cores.users.remove(1)\n"
            "    self.env.credit_events(2)\n"
        ),
        MODEL_MOD,
    ),
    (
        "E301",
        (
            "def drain(self, cores):\n"
            "    while cores._waiters:\n"
            "        cores._grant(cores._pop_waiter())\n"
        ),
        (
            "class Resource:\n"
            "    def drain(self):\n"
            "        while self._waiters:\n"
            "            self._grant(self._pop_waiter())\n"
        ),
        MODEL_MOD,
    ),
    (
        "E302",
        "class StepDone(Event):\n    pass\n",
        "class StepDone(Event):\n    __slots__ = ('step',)\n",
        MODEL_MOD,
    ),
    (
        "E303",
        (
            "def proc(env):\n"
            "    start = env.now\n"
            "    yield env.sleep(1.0)\n"
            "    return start\n"
        ),
        (
            "def proc(env, stats):\n"
            "    start = env.now\n"
            "    yield env.sleep(1.0)\n"
            "    stats['busy'] += env.now - start\n"
        ),
        MODEL_MOD,
    ),
    (
        "H401",
        "def record(value, out=[]):\n    out.append(value)\n",
        "def record(value, out=None):\n    out = [] if out is None else out\n    out.append(value)\n",
        MODEL_MOD,
    ),
    (
        "H402",
        "try:\n    pass\nexcept:\n    pass\n",
        "try:\n    pass\nexcept Exception:\n    pass\n",
        MODEL_MOD,
    ),
    (
        "F501",
        (
            "def proc(self, env, store: Store):\n"
            "    ev = store.put(1)\n"
            "    self.pending = ev\n"
            "    yield ev\n"
        ),
        (
            "def proc(env, store: Store):\n"
            "    yield store.put(1)\n"
        ),
        MODEL_MOD,
    ),
    (
        "F502",
        (
            "def compute(self, cores):\n"
            "    cores.users.append(1)\n"
            "    yield None\n"
            "    cores.users.remove(1)\n"
            "    self.env.credit_events(3)\n"
        ),
        (
            "def compute(self, cores):\n"
            "    cores.users.append(1)\n"
            "    yield None\n"
            "    cores.users.remove(1)\n"
            "    self.env.credit_events(2)\n"
        ),
        MODEL_MOD,
    ),
    (
        "H403",
        (
            "import time\n"
            "def wait(buffer):\n"
            "    while not buffer:\n"
            "        time.sleep(0.01)\n"
        ),
        (
            "import time\n"
            "def send(nbytes, bandwidth):\n"
            "    time.sleep(nbytes / bandwidth)\n"
        ),
        "repro.core.fixture",
    ),
]


#: Rules allowed to co-fire on another rule's firing fixture.  F502 is the
#: interprocedural upgrade of E301, so an uncredited elision trips both.
CO_FIRING = {"E301": {"F502"}}


def _ids():
    seen = {}
    out = []
    for rule_id, *_ in RULE_FIXTURES:
        seen[rule_id] = seen.get(rule_id, 0) + 1
        out.append(f"{rule_id}-{seen[rule_id]}")
    return out


@pytest.mark.parametrize(
    "rule_id,firing,silent,module_name", RULE_FIXTURES, ids=_ids()
)
def test_rule_fires_and_negative_stays_silent(rule_id, firing, silent, module_name):
    findings = lint_source(firing, module_name=module_name)
    assert [f.rule for f in findings].count(rule_id) >= 1, f"{rule_id} did not fire"
    tolerated = {rule_id} | CO_FIRING.get(rule_id, set())
    assert all(f.rule in tolerated for f in findings), (
        f"fixture for {rule_id} tripped other rules: {findings}"
    )
    assert lint_source(silent, module_name=module_name) == []


@pytest.mark.parametrize(
    "rule_id,firing,silent,module_name", RULE_FIXTURES, ids=_ids()
)
def test_allow_comment_suppresses_each_rule(rule_id, firing, silent, module_name):
    findings = lint_source(firing, module_name=module_name)
    lines = firing.splitlines()
    by_line = {}
    for finding in findings:
        by_line.setdefault(finding.line, []).append(finding.rule)
    for line, rules in by_line.items():
        lines[line - 1] += f"  # lint: allow={','.join(sorted(set(rules)))}"
    assert lint_source("\n".join(lines) + "\n", module_name=module_name) == []


def test_allow_comment_accepts_rule_name_and_star():
    firing = "import time\nt = time.perf_counter()  # lint: allow=wall-clock\n"
    assert lint_source(firing, module_name=MODEL_MOD) == []
    firing = "import time\nt = time.perf_counter()  # lint: allow=*\n"
    assert lint_source(firing, module_name=MODEL_MOD) == []


def test_allow_comment_for_other_rule_does_not_suppress():
    firing = "import time\nt = time.perf_counter()  # lint: allow=D201\n"
    assert [f.rule for f in lint_source(firing, module_name=MODEL_MOD)] == ["D202"]


def test_skip_file_silences_everything():
    firing = "# lint: skip-file\nimport time\nt = time.time()\n"
    assert lint_source(firing, module_name=MODEL_MOD) == []


def test_directive_inside_string_is_not_a_suppression():
    firing = 'import time\ns = "# lint: skip-file"\nt = time.time()\n'
    assert [f.rule for f in lint_source(firing, module_name=MODEL_MOD)] == ["D202"]


def test_model_scope_rules_skip_measurement_layers():
    firing = "import time\nstart = time.perf_counter()\n"
    assert lint_source(firing, module_name="repro.bench.fixture") == []
    assert lint_source(firing, module_name="repro.trace.fixture") == []
    for package in MODEL_PACKAGES:
        assert lint_source(firing, module_name=package + ".fixture") != []


def test_hygiene_rules_apply_everywhere():
    firing = "try:\n    pass\nexcept:\n    pass\n"
    assert [f.rule for f in lint_source(firing, module_name="repro.bench.fixture")] == [
        "H402"
    ]


def test_elapsed_time_idiom_is_allowed_everywhere_it_ships():
    # The sanctioned idiom from the transports: capture, yield, subtract with
    # a fresh read in the same statement.
    src = (
        "def producer_put(self, ctx, env, rank):\n"
        "    lock_start = env.now\n"
        "    yield from self.acquire(rank)\n"
        "    ctx.stats[rank]['lock_time'] += env.now - lock_start\n"
    )
    assert lint_source(src, module_name="repro.transports.fixture") == []


def test_stale_now_caught_on_second_loop_iteration():
    src = (
        "def proc(env):\n"
        "    while True:\n"
        "        if env.now > 10:\n"
        "            break\n"
        "        start = env.now\n"
        "        yield env.sleep(1.0)\n"
        "        emit(start)\n"
    )
    findings = lint_source(src, module_name=MODEL_MOD)
    assert [f.rule for f in findings] == ["E303"]


def test_stale_now_reset_by_reassignment():
    src = (
        "def proc(env):\n"
        "    start = env.now\n"
        "    yield env.sleep(1.0)\n"
        "    start = env.now\n"
        "    emit(start)\n"
    )
    assert lint_source(src, module_name=MODEL_MOD) == []


def test_stale_now_allows_recorder_interval_calls():
    # The decaf/mpiio idiom: recorders take the interval *start* by contract,
    # so handing a captured timestamp to ctx.record_* after a yield is fine.
    src = (
        "def run(self, ctx, env, rank, step):\n"
        "    credit_start = env.now\n"
        "    yield from self.buffer.get(rank)\n"
        "    ctx.record_sim(rank, 'stall', credit_start, step=step)\n"
    )
    assert lint_source(src, module_name="repro.transports.fixture") == []
    # A non-recorder use of the same captured name still fires.
    bad = src.replace("ctx.record_sim", "ctx.note")
    assert [f.rule for f in lint_source(bad, module_name="repro.transports.fixture")] == [
        "E303"
    ]


def test_stale_now_yield_in_terminating_branch_does_not_poison_main_path():
    # The network.py shape: an early-return branch yields, but the fallthrough
    # path never crossed that yield, so its captured clock is still fresh.
    src = (
        "def transfer(self, env, size):\n"
        "    start = env.now\n"
        "    if size == 0:\n"
        "        yield env.sleep(0.0)\n"
        "        return\n"
        "    now = start\n"
        "    emit(now)\n"
    )
    assert lint_source(src, module_name=MODEL_MOD) == []
    # A yield in a branch that falls through DOES poison the main path.
    live = src.replace("        return\n", "")
    assert [f.rule for f in lint_source(live, module_name=MODEL_MOD)] == ["E303"]


def test_select_and_ignore_filter_rules():
    firing = "import time\nt = time.perf_counter()\ntry:\n    pass\nexcept:\n    pass\n"
    only_d = lint_source(firing, module_name=MODEL_MOD, rules=select_rules(["D202"]))
    assert [f.rule for f in only_d] == ["D202"]
    no_d = lint_source(
        firing, module_name=MODEL_MOD, rules=select_rules(ignore=["D202"])
    )
    assert [f.rule for f in no_d] == ["H402"]
    with pytest.raises(ValueError):
        select_rules(["NOPE"])


def test_registry_has_at_least_ten_rules_with_unique_ids():
    rules = all_rules()
    assert len(rules) >= 10
    assert len({r.id for r in rules}) == len(rules)
    assert len({r.name for r in rules}) == len(rules)
    for rule in rules:
        assert rule.rationale, f"{rule.id} has no rationale"


# -- reporters ------------------------------------------------------------


def _report_for(source: str) -> LintReport:
    report = LintReport()
    report.findings = lint_source(source, module_name=MODEL_MOD, path="pkg/mod.py")
    report.files_checked = 1
    return report


def test_text_reporter_golden():
    report = _report_for("import time\nt = time.perf_counter()\n")
    assert render_text(report) == (
        "pkg/mod.py:2:4: D202 wall-clock: `time.perf_counter()` reads the "
        "wall clock inside model code; model time must come from `env.now`\n"
        "1 finding in 1 file(s)"
    )


def test_text_reporter_clean_summary():
    report = _report_for("x = 1\n")
    assert render_text(report) == "0 findings in 1 file(s)"


def test_json_reporter_golden():
    report = _report_for("import time\nt = time.perf_counter()\n")
    payload = json.loads(render_json(report))
    assert payload["files_checked"] == 1
    assert payload["fixes_applied"] == 0
    assert payload["errors"] == []
    (finding,) = payload["findings"]
    assert finding == {
        "rule": "D202",
        "name": "wall-clock",
        "path": "pkg/mod.py",
        "line": 2,
        "col": 4,
        "message": (
            "`time.perf_counter()` reads the wall clock inside model code; "
            "model time must come from `env.now`"
        ),
        "fixable": False,
    }


# -- fixes ----------------------------------------------------------------


def test_fix_bare_except_rewrites_and_relints_clean():
    source = "try:\n    x = 1\nexcept:\n    x = 2\n"
    findings = lint_source(source, module_name=MODEL_MOD)
    fixed, applied = apply_fixes(source, findings)
    assert [f.rule for f in applied] == ["H402"]
    assert "except Exception:" in fixed
    assert lint_source(fixed, module_name=MODEL_MOD) == []


def test_fix_event_slots_inserts_declaration():
    source = 'class StepDone(Event):\n    """Docs."""\n\n    def f(self):\n        pass\n'
    findings = lint_source(source, module_name=MODEL_MOD)
    fixed, applied = apply_fixes(source, findings)
    assert [f.rule for f in applied] == ["E302"]
    assert "__slots__ = ()" in fixed
    assert lint_source(fixed, module_name=MODEL_MOD) == []


def test_fix_event_slots_without_docstring():
    source = "class StepDone(Event):\n    def f(self):\n        pass\n"
    fixed, applied = apply_fixes(source, lint_source(source, module_name=MODEL_MOD))
    assert len(applied) == 1
    assert lint_source(fixed, module_name=MODEL_MOD) == []


def test_fix_applied_order_matches_report_and_roundtrips():
    # Edits are applied bottom-up so line numbers stay valid, but the
    # *reported* applied list must read top-down like the findings — even
    # when the findings are handed over in scrambled order.
    source = (
        "try:\n    x = 1\nexcept:\n    x = 2\n"
        "class StepDone(Event):\n    pass\n"
        "try:\n    y = 1\nexcept:\n    y = 2\n"
    )
    findings = lint_source(source, module_name=MODEL_MOD)
    fixed, applied = apply_fixes(source, list(reversed(findings)))
    expected = sorted(
        (f.line, f.col, f.rule) for f in findings if f.fix is not None
    )
    assert [(f.line, f.col, f.rule) for f in applied] == expected
    assert len(applied) == 3
    assert lint_source(fixed, module_name=MODEL_MOD) == []


def test_fix_report_renders_applied_lines_in_order():
    source = "try:\n    x = 1\nexcept:\n    x = 2\n"
    report = LintReport()
    fixed, applied = apply_fixes(
        source, lint_source(source, module_name=MODEL_MOD, path="pkg/mod.py")
    )
    report.files_checked = 1
    report.fixes_applied = len(applied)
    report.applied = applied
    text = render_text(report)
    assert "fixed: pkg/mod.py:3:0: H402" in text
    assert "1 fix(es) applied" in text
    payload = json.loads(render_json(report))
    assert [f["rule"] for f in payload["applied"]] == ["H402"]


def test_lint_paths_fix_writes_file_back(tmp_path):
    bad = tmp_path / "mod.py"
    bad.write_text("try:\n    x = 1\nexcept:\n    x = 2\n", encoding="utf-8")
    report = lint_paths([tmp_path], fix=True)
    assert report.fixes_applied == 1
    assert report.findings == []
    assert "except Exception:" in bad.read_text(encoding="utf-8")


# -- walking, module names, CLI -------------------------------------------


def test_module_name_for_package_layout():
    assert module_name_for(REPO_ROOT / "src/repro/cluster/node.py") == "repro.cluster.node"
    assert module_name_for(REPO_ROOT / "src/repro/simcore/__init__.py") == "repro.simcore"
    assert module_name_for(REPO_ROOT / "tools/check_links.py") == "check_links"


def test_lint_paths_reports_syntax_errors(tmp_path):
    (tmp_path / "broken.py").write_text("def f(:\n", encoding="utf-8")
    report = lint_paths([tmp_path])
    assert report.findings == []
    assert len(report.errors) == 1


def _run_cli(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "repro.lint", *args],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
    )


def test_cli_shipped_tree_is_clean():
    """The acceptance gate: ``python -m repro.lint src/`` exits 0."""
    proc = _run_cli("src")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "0 findings" in proc.stdout


def test_cli_findings_exit_one(tmp_path):
    bad = tmp_path / "pkg.py"
    bad.write_text("try:\n    pass\nexcept:\n    pass\n", encoding="utf-8")
    proc = _run_cli(str(bad))
    assert proc.returncode == 1
    assert "H402" in proc.stdout


def test_cli_json_format(tmp_path):
    bad = tmp_path / "pkg.py"
    bad.write_text("try:\n    pass\nexcept:\n    pass\n", encoding="utf-8")
    proc = _run_cli("--format", "json", str(bad))
    assert proc.returncode == 1
    assert json.loads(proc.stdout)["findings"][0]["rule"] == "H402"


def test_cli_unknown_rule_and_missing_path_exit_two(tmp_path):
    assert _run_cli("--select", "NOPE", "src").returncode == 2
    assert _run_cli(str(tmp_path / "missing")).returncode == 2


def test_cli_list_rules_names_all_ten():
    proc = _run_cli("--list-rules")
    assert proc.returncode == 0
    for rule in all_rules():
        assert rule.id in proc.stdout and rule.name in proc.stdout


def test_module_suppression_survives_crlf_and_blank_files():
    assert lint_source("", module_name=MODEL_MOD) == []
    assert lint_source("\n\n", module_name=MODEL_MOD) == []
