"""Unit tests for the simulated MPI layer."""

from __future__ import annotations

import pytest

from repro.cluster import Cluster
from repro.cluster.presets import laptop
from repro.simmpi import Communicator, MPIFile, Message
from repro.simmpi.message import ANY_SOURCE, ANY_TAG
from repro.trace import Tracer


@pytest.fixture
def comm_setup():
    cluster = Cluster(laptop(), num_nodes=4)
    tracer = Tracer()
    comm = Communicator(cluster, [0, 1, 2, 3], represented_size=4096, tracer=tracer)
    return cluster, comm, tracer


class TestMessage:
    def test_matching(self):
        msg = Message(source=2, dest=0, tag=7, nbytes=10)
        assert msg.matches(2, 7)
        assert msg.matches(ANY_SOURCE, 7)
        assert msg.matches(2, ANY_TAG)
        assert not msg.matches(3, 7)
        assert not msg.matches(2, 8)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Message(source=0, dest=1, tag=0, nbytes=-1)


class TestPointToPoint:
    def test_send_recv_delivers_payload(self, comm_setup):
        cluster, comm, _ = comm_setup
        received = []

        def sender():
            yield from comm.send(0, 1, 4096, tag=3, payload={"step": 9})

        def receiver():
            msg = yield from comm.recv(1, source=0, tag=3)
            received.append(msg)

        cluster.env.process(sender())
        cluster.env.process(receiver())
        cluster.run()
        assert received[0].payload == {"step": 9}
        assert received[0].latency > 0

    def test_recv_filters_by_tag(self, comm_setup):
        cluster, comm, _ = comm_setup
        order = []

        def sender():
            yield from comm.send(0, 1, 10, tag=1, payload="first")
            yield from comm.send(0, 1, 10, tag=2, payload="second")

        def receiver():
            msg = yield from comm.recv(1, tag=2)
            order.append(msg.payload)
            msg = yield from comm.recv(1, tag=1)
            order.append(msg.payload)

        cluster.env.process(sender())
        cluster.env.process(receiver())
        cluster.run()
        assert order == ["second", "first"]

    def test_isend_waitall(self, comm_setup):
        cluster, comm, tracer = comm_setup
        done = []

        def sender():
            reqs = [comm.isend(0, dest, 1 << 20) for dest in (1, 2, 3)]
            yield from comm.waitall(0, reqs)
            done.append(cluster.env.now)

        def receiver(rank):
            yield from comm.recv(rank, source=0)

        cluster.env.process(sender())
        for rank in (1, 2, 3):
            cluster.env.process(receiver(rank))
        cluster.run()
        assert done and done[0] > 0
        assert tracer.total_time("waitall", rank=0) > 0

    def test_invalid_rank_rejected(self, comm_setup):
        _, comm, _ = comm_setup
        with pytest.raises(ValueError):
            comm.node_of(10)

    def test_sendrecv_traced(self, comm_setup):
        cluster, comm, tracer = comm_setup

        def rank_proc(rank):
            yield from comm.sendrecv(
                rank, (rank + 1) % comm.size, 65536, (rank - 1) % comm.size
            )

        for rank in range(comm.size):
            cluster.env.process(rank_proc(rank))
        cluster.run()
        assert len(tracer.spans_for(category="sendrecv")) == comm.size


class TestCollectives:
    def test_barrier_synchronises(self, comm_setup):
        cluster, comm, _ = comm_setup
        times = []

        def rank_proc(rank):
            yield cluster.env.timeout(float(rank))
            yield from comm.barrier(rank)
            times.append(cluster.env.now)

        for rank in range(comm.size):
            cluster.env.process(rank_proc(rank))
        cluster.run()
        assert max(times) - min(times) < 1e-9
        assert min(times) >= 3.0  # the slowest rank arrives at t=3

    def test_collective_cost_grows_with_represented_size(self):
        def barrier_time(represented):
            cluster = Cluster(laptop(), num_nodes=2)
            comm = Communicator(cluster, [0, 1], represented_size=represented)
            done = []

            def rank_proc(rank):
                yield from comm.barrier(rank)
                done.append(cluster.env.now)

            for rank in range(2):
                cluster.env.process(rank_proc(rank))
            cluster.run()
            return max(done)

        assert barrier_time(16384) > barrier_time(2)

    def test_allreduce_and_gather_complete(self, comm_setup):
        cluster, comm, tracer = comm_setup

        def rank_proc(rank):
            yield from comm.allreduce(rank, nbytes=8)
            yield from comm.gather(rank, nbytes=1024, root=0)

        for rank in range(comm.size):
            cluster.env.process(rank_proc(rank))
        cluster.run()
        assert len(tracer.spans_for(category="allreduce")) == comm.size
        assert len(tracer.spans_for(category="gather")) == comm.size

    def test_represented_size_validation(self):
        cluster = Cluster(laptop(), num_nodes=2)
        with pytest.raises(ValueError):
            Communicator(cluster, [0, 1], represented_size=1)
        with pytest.raises(ValueError):
            Communicator(cluster, [])
        with pytest.raises(ValueError):
            Communicator(cluster, [0, 9])


class TestMPIFile:
    def test_collective_write_then_poll_then_read(self):
        cluster = Cluster(laptop(), num_nodes=2)
        writer_comm = Communicator(cluster, [0, 0], represented_size=2)
        reader_comm = Communicator(cluster, [1], represented_size=1)
        shared = MPIFile(writer_comm, "out.bp")
        seen = []

        def writer(rank):
            for step in range(2):
                yield from shared.write_all(rank, 4 * 1024 * 1024, step=step)

        def reader():
            polls = yield from shared.wait_for_step(0, 1, poll_interval=0.01)
            yield from cluster.filesystem.read(1, 8 * 1024 * 1024, filename="out.bp")
            seen.append((polls, cluster.env.now))

        for rank in range(2):
            cluster.env.process(writer(rank))
        cluster.env.process(reader())
        cluster.run()
        assert shared.steps_completed == 2
        assert seen and seen[0][0] >= 1
        assert cluster.filesystem.file_size("out.bp") == 2 * 2 * 4 * 1024 * 1024

    def test_poll_interval_validation(self):
        cluster = Cluster(laptop(), num_nodes=1)
        comm = Communicator(cluster, [0])
        shared = MPIFile(comm, "f")
        with pytest.raises(ValueError):
            next(shared.wait_for_step(0, 0, poll_interval=0.0))
