"""Unit tests for the synchronisation primitives."""

from __future__ import annotations

import pytest

from repro.simcore import (
    ConditionVar,
    Mutex,
    OneShotSignal,
    Semaphore,
    SimBarrier,
    SimulationError,
    Timeout,
)


class TestMutex:
    def test_mutual_exclusion(self, env):
        m = Mutex(env)
        trace = []

        def worker(env, m, name, hold):
            token = yield m.acquire()
            trace.append((name, "in", env.now))
            yield Timeout(env, hold)
            trace.append((name, "out", env.now))
            m.release(token)

        env.process(worker(env, m, "a", 2))
        env.process(worker(env, m, "b", 1))
        env.run()
        assert trace == [("a", "in", 0.0), ("a", "out", 2.0), ("b", "in", 2.0), ("b", "out", 3.0)]
        assert m.acquisitions == 2
        assert m.contended_acquisitions == 1

    def test_release_unlocked_raises(self, env):
        with pytest.raises(SimulationError):
            Mutex(env).release()

    def test_release_by_non_owner_raises(self, env):
        m = Mutex(env)
        token = None

        def owner(env, m):
            nonlocal token
            token = yield m.acquire()

        env.process(owner(env, m))
        env.run()
        with pytest.raises(SimulationError):
            m.release(object())  # type: ignore[arg-type]
        m.release(token)
        assert not m.locked


class TestSemaphore:
    def test_counting(self, env):
        sem = Semaphore(env, value=2)
        entered = []

        def worker(env, sem, name):
            yield sem.acquire()
            entered.append((name, env.now))
            yield Timeout(env, 1)
            sem.release()

        for name in "abc":
            env.process(worker(env, sem, name))
        env.run()
        assert [t for _, t in entered] == [0.0, 0.0, 1.0]

    def test_negative_initial_value_rejected(self, env):
        with pytest.raises(SimulationError):
            Semaphore(env, value=-1)


class TestSimBarrier:
    def test_all_parties_released_together(self, env):
        barrier = SimBarrier(env, 3)
        times = []

        def party(env, barrier, delay):
            yield Timeout(env, delay)
            yield barrier.wait()
            times.append(env.now)

        for delay in (1.0, 2.0, 5.0):
            env.process(party(env, barrier, delay))
        env.run()
        assert times == [5.0, 5.0, 5.0]
        assert barrier.generations_completed == 1

    def test_barrier_is_reusable(self, env):
        barrier = SimBarrier(env, 2)
        log = []

        def party(env, barrier, name):
            for step in range(3):
                yield Timeout(env, 1)
                yield barrier.wait()
                log.append((name, step, env.now))

        env.process(party(env, barrier, "a"))
        env.process(party(env, barrier, "b"))
        env.run()
        assert barrier.generations_completed == 3
        assert all(t == step + 1 for _, step, t in log)

    def test_invalid_parties(self, env):
        with pytest.raises(SimulationError):
            SimBarrier(env, 0)


class TestConditionVar:
    def test_notify_wakes_in_fifo_order(self, env):
        cv = ConditionVar(env)
        woken = []

        def waiter(env, cv, name):
            yield cv.wait()
            woken.append(name)

        for name in "abc":
            env.process(waiter(env, cv, name))

        def notifier(env, cv):
            yield Timeout(env, 1)
            assert cv.notify(2) == 2
            yield Timeout(env, 1)
            assert cv.notify_all() == 1

        env.process(notifier(env, cv))
        env.run()
        assert woken == ["a", "b", "c"]
        assert cv.notifications == 3

    def test_notify_without_waiters_returns_zero(self, env):
        assert ConditionVar(env).notify() == 0


class TestOneShotSignal:
    def test_wait_before_and_after_set(self, env):
        sig = OneShotSignal(env)
        got = []

        def early(env, sig):
            value = yield sig.wait()
            got.append(("early", value, env.now))

        def late(env, sig):
            yield Timeout(env, 5)
            value = yield sig.wait()
            got.append(("late", value, env.now))

        def setter(env, sig):
            yield Timeout(env, 2)
            sig.set("go")

        env.process(early(env, sig))
        env.process(late(env, sig))
        env.process(setter(env, sig))
        env.run()
        assert ("early", "go", 2.0) in got
        assert ("late", "go", 5.0) in got

    def test_second_set_is_ignored(self, env):
        sig = OneShotSignal(env)
        sig.set(1)
        sig.set(2)
        got = []

        def waiter(env, sig):
            got.append((yield sig.wait()))

        env.process(waiter(env, sig))
        env.run()
        assert got == [1]
