"""The engine fast path: pooled timeouts, event crediting, compute coalescing.

The acceptance invariant of the fast path is *bit-identity*: for fixed seeds,
a run with ``PipelineSpec.coalesce=True`` (the default) must produce exactly
the same persisted payload — every time, breakdown and counter, including
``events_processed`` — as the per-event slow path (``coalesce=False``), which
itself reproduces the pre-fast-path engine event for event.
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import (
    elastic_burst_pipeline,
    figure2_configs,
    model_driven_default_policy,
    pipeline_chain,
    pipeline_fanout,
)
from repro.cluster.machine import Cluster
from repro.cluster.presets import bridges
from repro.elastic import ModelDrivenPolicy
from repro.simcore import Environment, PooledTimeout, SimulationError
from repro.workflow.pipeline import lower_config
from repro.workflow.runner import run_pipeline
from repro.sweep.store import result_payload


def payload_pair(pipeline):
    """Persisted payloads of the same pipeline with the fast path on and off."""
    fast = run_pipeline(pipeline.replace(coalesce=True))
    slow = run_pipeline(pipeline.replace(coalesce=False))
    return result_payload(fast), result_payload(slow)


# -- engine primitives --------------------------------------------------------
class TestPooledTimeouts:
    def test_sleep_advances_like_timeout(self):
        env = Environment()
        log = []

        def proc(env):
            yield env.sleep(1.5)
            log.append(env.now)
            yield env.sleep(0.5)
            log.append(env.now)

        env.process(proc(env))
        env.run()
        assert log == [1.5, 2.0]

    def test_sleep_recycles_the_event_object(self):
        env = Environment()
        seen = []

        def proc(env):
            for _ in range(3):
                event = env.sleep(1.0)
                seen.append(id(event))
                yield event

        env.process(proc(env))
        env.run()
        # An event returns to the free list only after its callbacks ran, so
        # the next sleep (created inside the callback) allocates a second
        # object — and from then on the two alternate out of the pool.
        assert len(seen) == 3
        assert seen[2] == seen[0]
        assert len(set(seen)) == 2

    def test_sleep_rejects_negative_delay(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.sleep(-0.1)

    def test_sleep_until_rejects_the_past(self):
        env = Environment(initial_time=2.0)
        with pytest.raises(SimulationError):
            env.sleep_until(1.0)

    def test_sleep_until_jumps_to_absolute_time(self):
        env = Environment()
        log = []

        def proc(env):
            yield env.sleep_until(3.25)
            log.append(env.now)

        env.process(proc(env))
        env.run()
        assert log == [3.25]
        assert isinstance(env.sleep_until(env.now), PooledTimeout)


class TestEventAccounting:
    def test_credit_events_counts_without_processing(self):
        env = Environment()
        env.credit_events(5)
        assert env.events_processed == 5

    def test_complete_requires_triggered_callback_free_event(self):
        env = Environment()
        pending = env.event()
        with pytest.raises(SimulationError):
            env.complete(pending)
        waited = env.event()
        waited.succeed()
        waited.add_callback(lambda e: None)
        with pytest.raises(SimulationError):
            env.complete(waited)

    def test_release_is_counted_like_a_queued_event(self):
        # One request grant + one timeout + one release = 3 events, exactly
        # as when the release took a queue trip.
        from repro.simcore import Resource, Timeout

        env = Environment()
        res = Resource(env, capacity=1)

        def proc(env):
            req = res.request()
            yield req
            yield Timeout(env, 1.0)
            res.release(req)

        env.process(proc(env))
        env.run()
        # init + request + timeout + release + process-completion
        assert env.events_processed == 5


class TestComputeFastPath:
    def make_node(self, claims=0):
        cluster = Cluster(bridges(), num_nodes=1)
        node = cluster.node(0)
        if claims:
            node.claim_compute_slots(claims)
        return cluster.env, node

    def test_unclaimed_node_keeps_slow_path(self):
        env, node = self.make_node(claims=0)
        assert not node.uncontended

    def test_claims_beyond_cores_disable_fast_path(self):
        env, node = self.make_node(claims=1)
        assert node.uncontended
        node.claim_compute_slots(node.spec.cores)
        assert not node.uncontended
        node.release_compute_slots(node.spec.cores)
        assert node.uncontended

    def test_fast_and_slow_compute_agree_on_time_and_events(self):
        def run(claims):
            env, node = self.make_node(claims=claims)

            def proc(env):
                for _ in range(4):
                    yield from node.compute(0.25)

            env.process(proc(env))
            env.run()
            return env.now, env.events_processed, node.busy_core_seconds

        assert run(claims=1) == run(claims=0)

    def test_compute_batch_matches_percall_sequence(self):
        chunks = (0.45, 0.35, 0.20)

        def run(batched):
            env, node = self.make_node(claims=1)

            def proc(env):
                if batched:
                    elapsed = yield from node.compute_batch(chunks, steps=3)
                    assert len(elapsed) == 3
                else:
                    for _ in range(3):
                        for chunk in chunks:
                            yield from node.compute(chunk)

            env.process(proc(env))
            env.run()
            return env.now, env.events_processed, node.busy_core_seconds

        assert run(batched=True) == run(batched=False)

    def test_compute_batch_declines_past_deadline(self):
        env, node = self.make_node(claims=1)
        outcome = []

        def proc(env):
            result = yield from node.compute_batch((1.0,), deadline=0.5)
            outcome.append(result)
            if result is None:
                yield from node.compute(1.0)

        env.process(proc(env))
        env.run()
        assert outcome == [None]
        assert env.now == pytest.approx(1.0 / node.spec.core_speed)

    def test_fast_path_holds_a_visible_core_slot(self):
        """A fast-path compute occupies a slot, so contenders queue behind it.

        Regression: when an elastic assist spawn pushes a node's claims past
        its core count while a fast-path compute is mid-flight, later
        slow-path computes must observe the true occupancy and queue —
        finishing at the same time as with the fast path disabled.
        """
        from dataclasses import replace as dc_replace

        from repro.simcore import Timeout

        def run(fast):
            cluster = Cluster(bridges(), num_nodes=1)
            node = cluster.node(0)
            # A one-core node makes the contention observable.
            node.spec = dc_replace(node.spec, cores=1)
            node.cores._capacity = 1
            if fast:
                node.claim_compute_slots(1)
            env = cluster.env
            finishes = {}

            def proc_a(env):
                yield from node.compute(10.0 * node.spec.core_speed)
                finishes["a"] = env.now

            def spawn_then_b(env):
                yield Timeout(env, 5.0)
                node.claim_compute_slots(1)  # claims now exceed the core count
                yield from node.compute(10.0 * node.spec.core_speed)
                finishes["b"] = env.now

            env.process(proc_a(env))
            env.process(spawn_then_b(env))
            env.run()
            return finishes

        fast = run(fast=True)
        slow = run(fast=False)
        assert fast == slow
        assert slow["b"] == pytest.approx(20.0)  # queued behind A, not overlapped

    def test_compute_batch_declines_on_unclaimed_node(self):
        env, node = self.make_node(claims=0)

        def proc(env):
            result = yield from node.compute_batch((1.0,))
            assert result is None

        env.process(proc(env))
        env.run()
        assert env.now == 0.0


# -- whole-run bit-identity ---------------------------------------------------
class TestCoalescingBitIdentity:
    @pytest.mark.parametrize(
        "label,config",
        figure2_configs(steps=4, representative_sim_ranks=4),
        ids=lambda val: val if isinstance(val, str) else "",
    )
    def test_all_transports(self, label, config):
        """Fast path on vs off across every transport of Figure 2 (+ zipper/none)."""
        fast, slow = payload_pair(lower_config(config))
        assert fast == slow

    @pytest.mark.parametrize(
        "label,config",
        figure2_configs(steps=4, representative_sim_ranks=4),
        ids=lambda val: val if isinstance(val, str) else "",
    )
    def test_empty_fault_plan_is_inert(self, label, config):
        """``FaultPlan.none()`` never perturbs a run, on either engine path.

        The no-fault plan creates no injector at all, so results *and*
        ``events_processed`` must equal the plain pipeline's exactly —
        across every transport, with coalescing both on and off.
        """
        from repro.faults import FaultPlan

        pipeline = lower_config(config)
        baseline = payload_pair(pipeline)
        with_plan = payload_pair(pipeline.replace(faults=FaultPlan.none()))
        assert with_plan == baseline

    @pytest.mark.parametrize("shape", [pipeline_chain, pipeline_fanout])
    def test_multi_stage_pipelines(self, shape):
        fast, slow = payload_pair(shape(total_cores=384, steps=6))
        assert fast == slow

    def test_jittered_run(self):
        """Per-call jitter draws survive the fast path (batching auto-disables)."""
        pipeline = pipeline_chain(total_cores=384, steps=4).replace(
            deterministic=False, seed=123
        )
        fast, slow = payload_pair(pipeline)
        assert fast == slow

    def test_traced_run_disables_coalescing_but_not_results(self):
        pipeline = pipeline_chain(total_cores=384, steps=4, trace=True)
        fast, slow = payload_pair(pipeline)
        assert fast == slow


class TestEventPoolingBitIdentity:
    """Free-list recycling of the F501-certified classes changes nothing."""

    @pytest.mark.parametrize(
        "label,config",
        figure2_configs(steps=4, representative_sim_ranks=4),
        ids=lambda val: val if isinstance(val, str) else "",
    )
    def test_all_transports(self, label, config):
        pipeline = lower_config(config)
        pooled = run_pipeline(pipeline.replace(pool_events=True))
        fresh = run_pipeline(pipeline.replace(pool_events=False))
        assert result_payload(pooled) == result_payload(fresh)

    def test_store_events_recycle_through_the_free_lists(self):
        from repro.simcore import Store

        def churn(env, store):
            for _ in range(8):
                yield store.put("x")
                yield store.get()

        env = Environment(pool_events=True)
        store = Store(env)
        env.process(churn(env, store))
        env.run()
        assert env._put_pool and env._get_pool, "free lists never warmed up"

    def test_release_events_recycle_through_the_free_list(self):
        from repro.simcore import Resource

        def worker(env, resource):
            for _ in range(4):
                req = resource.request()
                yield req
                yield env.sleep(0.1)
                yield resource.release(req)

        env = Environment(pool_events=True)
        resource = Resource(env, capacity=1)
        env.process(worker(env, resource))
        env.run()
        assert env._release_pool, "release free list never warmed up"


class TestElasticCoalescingBitIdentity:
    def bursty(self, **overrides):
        return elastic_burst_pipeline(sim_cores=192, steps=12).replace(**overrides)

    def test_threshold_policy_run(self):
        from repro.bench.experiments import elastic_default_policy

        fast, slow = payload_pair(self.bursty(elastic=elastic_default_policy()))
        assert fast.get("rebalances"), "scenario must actually rebalance mid-run"
        assert fast == slow

    def test_model_driven_reallocation_splits_coalesced_segments(self):
        """Mid-run reallocations land between the same steps as on the slow path."""
        pipeline = self.bursty(elastic=model_driven_default_policy())
        fast, slow = payload_pair(pipeline)
        assert fast.get("rebalances"), "scenario must actually rebalance mid-run"
        assert fast == slow

    def test_rank_elastic_assist_spawns(self):
        """Spawned assist ranks claim compute slots and stay bit-identical."""
        pipeline = self.bursty(elastic=model_driven_default_policy())
        pipeline = pipeline.replace(
            stages=tuple(s.replace(elastic_ranks=True) for s in pipeline.stages)
        )
        fast = run_pipeline(pipeline.replace(coalesce=True))
        slow = run_pipeline(pipeline.replace(coalesce=False))
        assert result_payload(fast) == result_payload(slow)

    def test_never_policy_still_matches_static(self):
        static = run_pipeline(self.bursty())
        never = run_pipeline(
            self.bursty(elastic=ModelDrivenPolicy.never(epoch_seconds=0.25))
        )
        assert result_payload(never) == result_payload(static)


class TestFaultCoalescingBitIdentity:
    """An active fault plan bounds batch deadlines exactly like an epoch."""

    def seeded_plan(self, pipeline):
        from repro.faults import FaultPlan
        from repro.workflow.runner import pipeline_simulation_only_time

        return FaultPlan.seeded(
            "fastpath",
            ("simulation",),
            horizon=pipeline_simulation_only_time(pipeline),
            couplings=(pipeline.couplings[0].name,),
        )

    def test_active_plan_coalesces_bit_identically(self):
        pipeline = elastic_burst_pipeline(sim_cores=192, steps=12)
        pipeline = pipeline.replace(faults=self.seeded_plan(pipeline))
        fast, slow = payload_pair(pipeline)
        assert fast.get("faults"), "the plan must actually fire mid-run"
        assert fast == slow

    def test_active_plan_under_elastic_control(self):
        from repro.bench.experiments import elastic_default_policy

        pipeline = elastic_burst_pipeline(
            sim_cores=192, steps=12, elastic=elastic_default_policy()
        )
        pipeline = pipeline.replace(faults=self.seeded_plan(pipeline))
        fast, slow = payload_pair(pipeline)
        assert fast.get("faults"), "the plan must actually fire mid-run"
        assert fast == slow


class TestTenantBitIdentity:
    """The tenant layer adds exactly zero modelled events to a solo run.

    A single job arriving at time zero on an exactly-fitting facility must
    persist the identical payload — ``events_processed`` included — as the
    same pipeline run directly through the dedicated engine, with the
    coalescing fast path on and off alike.
    """

    def solo_payload(self, pipeline):
        from repro.tenants import JobSpec, TenantScheduler, TenantSpec

        spec = TenantSpec(
            jobs=(JobSpec("solo/0", "solo", pipeline),),
            policy="fair",
            epoch_seconds=0.25,
        )
        scheduler = TenantScheduler(spec)
        scheduler.run()
        return result_payload(scheduler.job_results["solo/0"])

    @pytest.mark.parametrize("coalesce", (True, False))
    def test_solo_job_matches_the_dedicated_engine(self, coalesce):
        pipeline = elastic_burst_pipeline(sim_cores=192, steps=8).replace(
            coalesce=coalesce
        )
        via_tenants = self.solo_payload(pipeline)
        dedicated = result_payload(run_pipeline(pipeline))
        assert via_tenants == dedicated
        assert via_tenants["stats"]["events_processed"] == (
            dedicated["stats"]["events_processed"]
        )

    def test_facility_events_are_instrumentation_only(self):
        from repro.tenants import JobSpec, TenantScheduler, TenantSpec

        pipeline = elastic_burst_pipeline(sim_cores=192, steps=8)
        spec = TenantSpec(jobs=(JobSpec("solo/0", "solo", pipeline),))
        scheduler = TenantScheduler(spec)
        facility = scheduler.run()
        dedicated = run_pipeline(pipeline)
        # The scheduler's own boundary wake-ups are reported separately and
        # never leak into the modelled event count.
        assert facility.stats["scheduler_events"] > 0
        assert facility.stats["events_processed"] == (
            dedicated.stats["events_processed"]
        )
