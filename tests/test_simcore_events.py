"""Unit tests for the event primitives of the discrete-event kernel."""

from __future__ import annotations

import pytest

from repro.simcore import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    StopProcess,
    Timeout,
)


class TestEvent:
    def test_initial_state(self, env):
        ev = Event(env)
        assert not ev.triggered
        assert not ev.processed

    def test_value_before_trigger_raises(self, env):
        with pytest.raises(SimulationError):
            _ = Event(env).value

    def test_ok_before_trigger_raises(self, env):
        with pytest.raises(SimulationError):
            _ = Event(env).ok

    def test_succeed_sets_value(self, env):
        ev = Event(env).succeed(42)
        assert ev.triggered and ev.ok and ev.value == 42

    def test_succeed_twice_raises(self, env):
        ev = Event(env).succeed()
        with pytest.raises(SimulationError):
            ev.succeed()

    def test_fail_requires_exception(self, env):
        with pytest.raises(SimulationError):
            Event(env).fail("not an exception")  # type: ignore[arg-type]

    def test_fail_sets_exception_value(self, env):
        exc = ValueError("boom")
        ev = Event(env).fail(exc)
        ev.defuse()
        assert ev.triggered and not ev.ok and ev.value is exc

    def test_callbacks_run_on_processing(self, env):
        ev = Event(env)
        seen = []
        ev.add_callback(lambda e: seen.append(e.value))
        ev.succeed("x")
        env.run()
        assert seen == ["x"]
        assert ev.processed

    def test_add_callback_after_processing_raises(self, env):
        ev = Event(env).succeed()
        env.run()
        with pytest.raises(SimulationError):
            ev.add_callback(lambda e: None)


class TestTimeout:
    def test_fires_at_delay(self, env):
        times = []

        def proc(env):
            yield Timeout(env, 2.5)
            times.append(env.now)

        env.process(proc(env))
        env.run()
        assert times == [2.5]

    def test_negative_delay_raises(self, env):
        with pytest.raises(SimulationError):
            Timeout(env, -1.0)

    def test_carries_value(self, env):
        values = []

        def proc(env):
            got = yield Timeout(env, 1.0, value="payload")
            values.append(got)

        env.process(proc(env))
        env.run()
        assert values == ["payload"]

    def test_zero_delay_allowed(self, env):
        t = Timeout(env, 0.0)
        env.run()
        assert t.processed


class TestProcess:
    def test_return_value_becomes_event_value(self, env):
        def proc(env):
            yield Timeout(env, 1)
            return "done"

        p = env.process(proc(env))
        assert env.run(p) == "done"

    def test_requires_generator(self, env):
        with pytest.raises(SimulationError):
            Process(env, lambda: None)  # type: ignore[arg-type]

    def test_yielding_non_event_fails_process(self, env):
        def proc(env):
            yield 42

        p = env.process(proc(env))
        with pytest.raises(SimulationError):
            env.run(p)

    def test_exception_propagates_to_runner(self, env):
        def proc(env):
            yield Timeout(env, 1)
            raise RuntimeError("app bug")

        p = env.process(proc(env))
        with pytest.raises(RuntimeError, match="app bug"):
            env.run(p)

    def test_exception_can_be_caught_by_waiter(self, env):
        def failing(env):
            yield Timeout(env, 1)
            raise ValueError("inner")

        def waiter(env):
            try:
                yield env.process(failing(env))
            except ValueError as exc:
                return f"caught {exc}"

        w = env.process(waiter(env))
        assert env.run(w) == "caught inner"

    def test_stop_process_terminates_early(self, env):
        def proc(env):
            yield Timeout(env, 1)
            raise StopProcess("early")
            yield Timeout(env, 100)  # pragma: no cover

        p = env.process(proc(env))
        assert env.run(p) == "early"
        assert env.now == pytest.approx(1.0)

    def test_is_alive(self, env):
        def proc(env):
            yield Timeout(env, 5)

        p = env.process(proc(env))
        assert p.is_alive
        env.run()
        assert not p.is_alive

    def test_chained_processes(self, env):
        def child(env, delay):
            yield Timeout(env, delay)
            return delay * 2

        def parent(env):
            a = yield env.process(child(env, 1.0))
            b = yield env.process(child(env, 2.0))
            return a + b

        p = env.process(parent(env))
        assert env.run(p) == 6.0
        assert env.now == pytest.approx(3.0)


class TestInterrupt:
    def test_interrupt_delivers_cause(self, env):
        causes = []

        def victim(env):
            try:
                yield Timeout(env, 100)
            except Interrupt as i:
                causes.append(i.cause)
                return "interrupted"

        def attacker(env, victim_proc):
            yield Timeout(env, 1)
            victim_proc.interrupt(cause="stop now")

        v = env.process(victim(env))
        env.process(attacker(env, v))
        assert env.run(v) == "interrupted"
        assert causes == ["stop now"]
        assert env.now == pytest.approx(1.0)

    def test_cannot_interrupt_self(self, env):
        def proc(env):
            p = env.active_process
            p.interrupt()
            yield Timeout(env, 1)

        p = env.process(proc(env))
        with pytest.raises(SimulationError):
            env.run(p)

    def test_interrupting_finished_process_raises(self, env):
        def proc(env):
            yield Timeout(env, 1)

        p = env.process(proc(env))
        env.run()
        with pytest.raises(SimulationError):
            p.interrupt()


class TestConditions:
    def test_allof_waits_for_everything(self, env):
        def proc(env):
            t1 = Timeout(env, 1, value="a")
            t2 = Timeout(env, 3, value="b")
            result = yield AllOf(env, [t1, t2])
            return sorted(result.values())

        p = env.process(proc(env))
        assert env.run(p) == ["a", "b"]
        assert env.now == pytest.approx(3.0)

    def test_anyof_returns_on_first(self, env):
        def proc(env):
            t1 = Timeout(env, 1, value="fast")
            t2 = Timeout(env, 10, value="slow")
            result = yield AnyOf(env, [t1, t2])
            return list(result.values())

        p = env.process(proc(env))
        assert env.run(p) == ["fast"]
        assert env.now == pytest.approx(1.0)

    def test_allof_empty_list_triggers_immediately(self, env):
        cond = AllOf(env, [])
        assert cond.triggered

    def test_allof_propagates_failure(self, env):
        def failing(env):
            yield Timeout(env, 1)
            raise RuntimeError("nope")

        def waiter(env):
            try:
                yield AllOf(env, [env.process(failing(env)), Timeout(env, 5)])
            except RuntimeError:
                return "failed"
            return "ok"

        p = env.process(waiter(env))
        assert env.run(p) == "failed"

    def test_mixed_environment_events_rejected(self):
        env1, env2 = Environment(), Environment()
        with pytest.raises(SimulationError):
            AllOf(env1, [Timeout(env1, 1), Timeout(env2, 1)])

    def test_len(self, env):
        cond = AllOf(env, [Timeout(env, 1), Timeout(env, 2), Timeout(env, 3)])
        assert len(cond) == 3
