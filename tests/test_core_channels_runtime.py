"""Unit tests for the channels and the threaded producer/consumer runtime modules."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    BlockId,
    ConsumerRuntime,
    DataBlock,
    FileChannel,
    MixedMessage,
    NetworkChannel,
    ProducerRuntime,
    RuntimeStats,
    ZipperConfig,
)


def block(i: int, step: int = 0, elements: int = 64) -> DataBlock:
    return DataBlock(BlockId(step, 0, i), np.full(elements, float(i)))


class TestNetworkChannel:
    def test_send_recv_roundtrip(self):
        chan = NetworkChannel()
        msg = MixedMessage(block=block(1), disk_ids=[BlockId(0, 0, 9)], producer_rank=2)
        chan.send(msg)
        got = chan.recv(timeout=0.5)
        assert got is msg
        assert chan.messages_sent == 1
        assert chan.bytes_sent == msg.nbytes

    def test_recv_timeout_returns_none(self):
        assert NetworkChannel().recv(timeout=0.01) is None

    def test_throttled_send_takes_time(self):
        import time

        chan = NetworkChannel(bandwidth=1e6)  # 1 MB/s
        msg = MixedMessage(block=block(0, elements=12_500))  # 100 KB
        start = time.perf_counter()
        chan.send(msg)
        assert time.perf_counter() - start >= 0.08

    def test_validation(self):
        with pytest.raises(ValueError):
            NetworkChannel(bandwidth=0)
        with pytest.raises(ValueError):
            NetworkChannel(latency=-1)

    def test_eof_message_has_no_bytes(self):
        assert MixedMessage(eof=True).nbytes == 0


class TestFileChannel:
    def test_write_read_roundtrip(self, tmp_path):
        chan = FileChannel(tmp_path)
        original = block(3)
        path = chan.write(original)
        assert path.exists()
        loaded = chan.read(original.block_id)
        assert loaded.on_disk
        np.testing.assert_array_equal(loaded.data, original.data)
        assert chan.blocks_written == 1 and chan.blocks_read == 1

    def test_exists_delete(self, tmp_path):
        chan = FileChannel(tmp_path)
        b = block(0)
        assert not chan.exists(b.block_id)
        chan.write(b)
        assert chan.exists(b.block_id)
        assert chan.delete(b.block_id)
        assert not chan.delete(b.block_id)

    def test_stored_ids_sorted(self, tmp_path):
        chan = FileChannel(tmp_path)
        for i in (2, 0, 1):
            chan.write(block(i))
        names = chan.stored_ids()
        assert names == sorted(names) and len(names) == 3

    def test_read_missing_block_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            FileChannel(tmp_path).read(BlockId(0, 0, 0))

    def test_bandwidth_validation(self, tmp_path):
        with pytest.raises(ValueError):
            FileChannel(tmp_path, bandwidth=0)


class TestRuntimeStats:
    def test_add_get_snapshot(self):
        s = RuntimeStats()
        s.add("x", 2)
        s.add("x", 3)
        s.set("y", 7)
        assert s.get("x") == 5 and s.get("y") == 7
        assert s.snapshot() == {"x": 5.0, "y": 7.0}

    def test_merge(self):
        a, b = RuntimeStats(), RuntimeStats()
        a.add("blocks_produced", 4)
        b.add("blocks_produced", 6)
        b.add("blocks_stolen", 3)
        merged = a.merge(b)
        assert merged.get("blocks_produced") == 10
        assert merged.steal_fraction == pytest.approx(0.3)

    def test_steal_fraction_zero_without_production(self):
        assert RuntimeStats().steal_fraction == 0.0


class TestProducerConsumerRuntimes:
    def make_pair(self, tmp_path, **cfg_kwargs):
        config = ZipperConfig(spill_dir=tmp_path, **cfg_kwargs)
        stats = RuntimeStats()
        network = NetworkChannel(
            bandwidth=config.network_bandwidth, latency=config.network_latency
        )
        files = FileChannel(tmp_path)
        producer = ProducerRuntime(config, network, files, stats)
        consumer = ConsumerRuntime(config, network, files, stats)
        return config, producer, consumer

    def test_blocks_flow_end_to_end(self, tmp_path):
        _, producer, consumer = self.make_pair(tmp_path, block_size=512)
        producer.start()
        consumer.start()
        for i in range(10):
            producer.write(BlockId(0, 0, i), np.full(64, float(i)))
        producer.close()
        received = sorted(b.block_id.block_index for b in consumer.blocks(timeout=1.0))
        consumer.join()
        assert received == list(range(10))
        assert consumer.buffer.outstanding == 0

    def test_write_after_close_rejected(self, tmp_path):
        _, producer, _ = self.make_pair(tmp_path)
        producer.start()
        producer.close()
        with pytest.raises(RuntimeError):
            producer.write(BlockId(0, 0, 0), np.zeros(4))

    def test_close_is_idempotent(self, tmp_path):
        _, producer, _ = self.make_pair(tmp_path)
        producer.start()
        producer.close()
        producer.close()
        assert producer.closed

    def test_write_array_splits_into_blocks(self, tmp_path):
        config, producer, consumer = self.make_pair(tmp_path, block_size=256)
        producer.start()
        consumer.start()
        data = np.arange(128, dtype=np.float64)  # 1024 bytes -> 4 blocks of 256
        nblocks = producer.write_array(step=0, array=data)
        producer.close()
        blocks = list(consumer.blocks(timeout=1.0))
        consumer.join()
        assert nblocks == 4 and len(blocks) == 4
        reassembled = np.concatenate(
            [b.data for b in sorted(blocks, key=lambda b: b.block_id.block_index)]
        )
        np.testing.assert_array_equal(reassembled, data)

    def test_work_stealing_uses_file_channel(self, tmp_path):
        _, producer, consumer = self.make_pair(
            tmp_path,
            block_size=8192,
            producer_buffer_blocks=4,
            high_water_mark=1,
            network_bandwidth=2e6,  # slow message path -> buffer fills
        )
        producer.start()
        consumer.start()
        for i in range(24):
            producer.write(BlockId(0, 0, i), np.zeros(1024))
        producer.close()
        indices = sorted(b.block_id.block_index for b in consumer.blocks(timeout=2.0))
        consumer.join()
        assert indices == list(range(24))
        assert producer.stats.get("blocks_stolen") > 0
        assert producer.stats.get("blocks_stolen") + producer.stats.get("blocks_sent_network") == 24

    def test_disabled_concurrent_transfer_never_steals(self, tmp_path):
        _, producer, consumer = self.make_pair(
            tmp_path,
            block_size=8192,
            producer_buffer_blocks=4,
            high_water_mark=1,
            network_bandwidth=5e6,
            concurrent_transfer=False,
        )
        producer.start()
        consumer.start()
        for i in range(8):
            producer.write(BlockId(0, 0, i), np.zeros(1024))
        producer.close()
        count = sum(1 for _ in consumer.blocks(timeout=2.0))
        consumer.join()
        assert count == 8
        assert producer.stats.get("blocks_stolen", 0) == 0

    def test_preserve_mode_persists_blocks(self, tmp_path):
        config, producer, consumer = self.make_pair(tmp_path, mode="preserve", block_size=512)
        producer.start()
        consumer.start()
        for i in range(6):
            producer.write(BlockId(1, 0, i), np.full(32, float(i)))
        producer.close()
        seen = sum(1 for _ in consumer.blocks(timeout=1.0))
        consumer.join()
        assert seen == 6
        assert consumer.stats.get("blocks_preserved") == 6
        preserved = list((tmp_path / "preserved").glob("*.npy"))
        assert len(preserved) == 6
