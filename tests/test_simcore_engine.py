"""Unit tests for the simulation environment / event loop."""

from __future__ import annotations

import pytest

from repro.simcore import Environment, SimulationError, Timeout
from repro.simcore.engine import EmptySchedule


class TestClock:
    def test_starts_at_initial_time(self):
        assert Environment().now == 0.0
        assert Environment(initial_time=5.0).now == 5.0

    def test_run_until_time(self, env):
        log = []

        def ticker(env):
            while True:
                yield Timeout(env, 1.0)
                log.append(env.now)

        env.process(ticker(env))
        env.run(until=3.5)
        assert log == [1.0, 2.0, 3.0]
        assert env.now == pytest.approx(3.5)

    def test_run_until_past_time_raises(self, env):
        env.run(until=5.0)
        with pytest.raises(SimulationError):
            env.run(until=1.0)

    def test_run_drains_queue(self, env):
        done = []

        def proc(env):
            yield Timeout(env, 2)
            done.append(True)

        env.process(proc(env))
        env.run()
        assert done == [True]
        assert env.peek() == float("inf")

    def test_run_until_untriggered_event_with_empty_schedule_raises(self, env):
        ev = env.event()
        with pytest.raises(SimulationError):
            env.run(until=ev)


class TestStep:
    def test_step_empty_schedule_raises(self, env):
        with pytest.raises(EmptySchedule):
            env.step()

    def test_events_processed_counter(self, env):
        for delay in (1, 2, 3):
            Timeout(env, delay)
        env.run()
        assert env.events_processed == 3

    def test_priority_orders_same_time_events(self, env):
        order = []

        def proc(env):
            # The Initialize event is URGENT and must run before a NORMAL
            # timeout scheduled at the same instant.
            order.append("proc-started")
            yield Timeout(env, 1)

        t = Timeout(env, 0.0)
        t.add_callback(lambda e: order.append("timeout"))
        env.process(proc(env))
        env.run()
        assert order[0] == "proc-started"

    def test_negative_delay_rejected(self, env):
        with pytest.raises(SimulationError):
            env.schedule(env.event(), delay=-0.1)


class TestRunAll:
    def test_run_all_returns_count(self, env):
        for delay in (1, 2):
            Timeout(env, delay)
        assert env.run_all() == 2

    def test_run_all_budget_guard(self, env):
        def forever(env):
            while True:
                yield Timeout(env, 1)

        env.process(forever(env))
        with pytest.raises(SimulationError):
            env.run_all(max_events=10)


class TestDeterminism:
    def test_same_model_same_timeline(self):
        def build_and_run():
            env = Environment()
            log = []

            def worker(env, wid):
                for i in range(3):
                    yield Timeout(env, 0.5 * (wid + 1))
                    log.append((round(env.now, 6), wid, i))

            for wid in range(4):
                env.process(worker(env, wid))
            env.run()
            return log

        assert build_and_run() == build_and_run()

    def test_helpers_create_bound_objects(self, env):
        assert env.event().env is env
        assert env.timeout(1.0).env is env
