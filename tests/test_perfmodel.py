"""Tests for the analytical pipeline performance model and its calibration."""

from __future__ import annotations

import pytest

from repro.bench.experiments import elastic_burst_pipeline
from repro.elastic.monitor import CouplingHealth, EpochHealth, StageHealth
from repro.perfmodel import (
    CalibrationBank,
    EwmaEstimate,
    PipelinePerfModel,
    baseline_cores,
    proportional_fill,
)


def burst_model(**kwargs):
    """A perf model over the bursty-analytics two-stage pipeline."""
    return PipelinePerfModel(elastic_burst_pipeline(steps=12), **kwargs)


def health_for(model, *, busy, progress, duration=0.25, bytes_moved=None):
    """Build a synthetic EpochHealth over the model's pipeline."""
    stages = {
        name: StageHealth(
            name,
            busy_fraction=busy[name],
            stall_fraction=0.0,
            work_fraction=busy[name],
            progress_steps=progress[name],
        )
        for name in busy
    }
    couplings = {}
    for coupling in model.pipeline.couplings:
        moved = (
            bytes_moved[coupling.name]
            if bytes_moved is not None
            else model.coupling_bytes_per_step[coupling.name]
        )
        couplings[coupling.name] = CouplingHealth(
            coupling.name, stall_fraction=0.0, bytes_moved=moved, buffer_level=0.0
        )
    return EpochHealth(time=duration, duration=duration, stages=stages, couplings=couplings)


# -- calibration primitives ---------------------------------------------------
class TestEwmaEstimate:
    def test_prior_participates_in_blend(self):
        est = EwmaEstimate(10.0, smoothing=0.5)
        assert not est.calibrated
        assert est.observe(20.0) == pytest.approx(15.0)
        assert est.observe(20.0) == pytest.approx(17.5)
        assert est.calibrated and est.observations == 2

    def test_smoothing_one_tracks_instantly(self):
        est = EwmaEstimate(10.0, smoothing=1.0)
        assert est.observe(3.0) == pytest.approx(3.0)

    @pytest.mark.parametrize(
        "kwargs", [{"prior": -1.0}, {"prior": 1.0, "smoothing": 0.0}, {"prior": 1.0, "smoothing": 1.5}]
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            EwmaEstimate(**kwargs)

    def test_negative_observation_rejected(self):
        with pytest.raises(ValueError):
            EwmaEstimate(1.0).observe(-0.5)


class TestCalibrationBank:
    def test_named_estimates(self):
        bank = CalibrationBank({"a": 1.0, "b": 2.0}, smoothing=0.5)
        assert "a" in bank and "missing" not in bank
        bank.observe("a", 3.0)
        assert bank.value("a") == pytest.approx(2.0)
        assert bank.values() == {"a": pytest.approx(2.0), "b": 2.0}


# -- the floor-aware proportional split ---------------------------------------
class TestProportionalFill:
    def test_plain_proportional(self):
        split = proportional_fill(300.0, {"x": 2.0, "y": 1.0}, {})
        assert split == {"x": pytest.approx(200.0), "y": pytest.approx(100.0)}

    def test_floor_pins_and_redistributes(self):
        split = proportional_fill(300.0, {"x": 10.0, "y": 0.1}, {"y": 50.0})
        assert split["y"] == pytest.approx(50.0)
        assert split["x"] == pytest.approx(250.0)

    def test_ceiling_pins_and_redistributes(self):
        split = proportional_fill(
            300.0, {"x": 10.0, "y": 0.1}, {}, ceilings={"x": 180.0}
        )
        assert split["x"] == pytest.approx(180.0)
        assert split["y"] == pytest.approx(120.0)

    def test_total_is_conserved(self):
        split = proportional_fill(
            4.0, {"a": 3.0, "b": 1.0, "c": 1.0}, {n: 0.5 for n in "abc"}
        )
        assert sum(split.values()) == pytest.approx(4.0)
        assert min(split.values()) >= 0.5 - 1e-9

    def test_simultaneous_floor_and_ceiling_violations_conserve_total(self):
        """One dominant weight pushing everyone else under their floor must
        not lose the slack freed by the dominant key's ceiling (regression:
        pinning floor violators against pre-ceiling shares dropped 0.5)."""
        split = proportional_fill(
            4.0,
            {"a": 8.0, "b": 0.4, "c": 0.4, "d": 0.4},
            {n: 0.5 for n in "abcd"},
            ceilings={n: 2.0 for n in "abcd"},
        )
        assert sum(split.values()) == pytest.approx(4.0)
        assert split["a"] == pytest.approx(2.0)
        for name in "bcd":
            assert split[name] == pytest.approx(2.0 / 3.0)

    def test_zero_weights_split_evenly(self):
        split = proportional_fill(10.0, {"a": 0.0, "b": 0.0}, {})
        assert split == {"a": pytest.approx(5.0), "b": pytest.approx(5.0)}

    def test_unsatisfiable_floors_rejected(self):
        with pytest.raises(ValueError):
            proportional_fill(1.0, {"a": 1.0, "b": 1.0}, {"a": 2.0, "b": 2.0})


# -- the pipeline model --------------------------------------------------------
class TestPriors:
    def test_baseline_uses_granted_cores(self):
        pipeline = elastic_burst_pipeline(sim_cores=128, steps=12)
        assert baseline_cores(pipeline) == {"simulation": 128.0, "analysis": 256.0}

    def test_prior_predictions_are_finite_and_positive(self):
        model = burst_model()
        for stage in ("simulation", "analysis"):
            assert 0.0 < model.stage_step_time(stage) < float("inf")
            assert model.stage_throughput(stage) > 0.0
        assert 0.0 < model.coupling_step_time("simulation->analysis") < float("inf")
        assert model.bottleneck() in {"simulation", "analysis", "simulation->analysis"}

    def test_more_cores_mean_faster_stage(self):
        model = burst_model()
        assert model.stage_step_time("analysis", cores=256.0) < model.stage_step_time(
            "analysis", cores=128.0
        )

    def test_rank_factor_scales_capacity(self):
        model = burst_model()
        base = model.stage_step_time("analysis")
        assert model.stage_step_time("analysis", rank_factor=1.5) == pytest.approx(
            base / 1.5
        )

    def test_more_share_means_faster_coupling(self):
        model = burst_model()
        assert model.coupling_step_time(
            "simulation->analysis", share=2.0
        ) == pytest.approx(model.coupling_step_time("simulation->analysis") / 2.0)


class TestCalibration:
    def test_observation_moves_work_towards_measurement(self):
        model = burst_model(smoothing=0.5)
        prior = model.work_per_step.value("analysis")
        # One epoch in which the analysis burned its full allocation for a
        # quarter of a step of progress: w_hat = 1.0 * 0.25 * 384 / 0.25.
        health = health_for(
            model,
            busy={"simulation": 0.5, "analysis": 1.0},
            progress={"simulation": 0.25, "analysis": 0.25},
        )
        model.observe(health, {"simulation": 256.0, "analysis": 128.0}, {"simulation->analysis": 1.0})
        measured = 1.0 * 0.25 * 128.0 / 0.25
        assert model.work_per_step.value("analysis") == pytest.approx(
            0.5 * prior + 0.5 * measured
        )
        assert model.epochs_observed == 1

    def test_zero_duration_epoch_is_a_no_op(self):
        model = burst_model()
        before = dict(model.work_per_step.values())
        health = health_for(
            model,
            busy={"simulation": 1.0, "analysis": 1.0},
            progress={"simulation": 1.0, "analysis": 1.0},
            duration=0.0,
        )
        model.observe(health, model.baseline, {"simulation->analysis": 1.0})
        assert model.work_per_step.values() == before
        assert model.epochs_observed == 0

    def test_no_progress_epoch_teaches_nothing(self):
        model = burst_model()
        before = dict(model.work_per_step.values())
        health = health_for(
            model,
            busy={"simulation": 1.0, "analysis": 1.0},
            progress={"simulation": 0.0, "analysis": 0.0},
            bytes_moved={"simulation->analysis": 0.0},
        )
        model.observe(health, model.baseline, {"simulation->analysis": 1.0})
        assert model.work_per_step.values() == before

    def test_idle_stage_epoch_teaches_nothing(self):
        model = burst_model()
        before = model.work_per_step.value("analysis")
        health = health_for(
            model,
            busy={"simulation": 1.0, "analysis": 0.0},
            progress={"simulation": 1.0, "analysis": 1.0},
        )
        model.observe(health, model.baseline, {"simulation->analysis": 1.0})
        assert model.work_per_step.value("analysis") == before

    def test_bandwidth_calibrates_per_unit_share(self):
        model = burst_model(smoothing=1.0)
        name = "simulation->analysis"
        moved = model.coupling_bytes_per_step[name]
        health = health_for(
            model,
            busy={"simulation": 0.5, "analysis": 0.5},
            progress={"simulation": 1.0, "analysis": 1.0},
            bytes_moved={name: moved},
        )
        model.observe(health, model.baseline, {name: 0.5})
        # moved bytes over duration 0.25 at share 0.5.
        assert model.unit_bandwidth.value(name) == pytest.approx(moved / 0.25 / 0.5)


class TestInverseProblems:
    def test_optimal_split_proportional_to_work(self):
        model = burst_model()
        split = model.optimal_core_split(
            model.baseline, ["simulation", "analysis"], {"simulation": 64.0, "analysis": 32.0}
        )
        assert sum(split.values()) == pytest.approx(384.0)
        w = model.work_per_step
        assert split["simulation"] / split["analysis"] == pytest.approx(
            w.value("simulation") / w.value("analysis")
        )

    def test_non_resizable_stages_keep_their_holding(self):
        model = burst_model()
        split = model.optimal_core_split(model.baseline, ["analysis"], {"analysis": 32.0})
        assert split["simulation"] == model.baseline["simulation"]
        assert split["analysis"] == model.baseline["analysis"]

    def test_equalized_split_balances_predicted_step_times(self):
        model = burst_model()
        split = model.optimal_core_split(
            model.baseline, ["simulation", "analysis"], {"simulation": 1.0, "analysis": 1.0}
        )
        assert model.stage_step_time(
            "simulation", split["simulation"]
        ) == pytest.approx(model.stage_step_time("analysis", split["analysis"]))

    def test_single_leasable_coupling_keeps_shares(self):
        model = burst_model()
        shares = {"simulation->analysis": 1.0}
        assert model.optimal_bandwidth_shares(
            shares, ["simulation->analysis"], 0.5, 2.0
        ) == shares


# -- the relocated Section 4.4 model -------------------------------------------
class TestCompatibilityShim:
    def test_core_perf_model_reexports_zipper_module(self):
        import repro.core.perf_model as legacy
        import repro.perfmodel.zipper as relocated

        assert legacy.PerformanceModel is relocated.PerformanceModel
        assert legacy.StageTimes is relocated.StageTimes
        assert legacy.pipeline_makespan is relocated.pipeline_makespan

    def test_package_exports_both_layers(self):
        import repro.perfmodel as pm

        assert pm.PerformanceModel is not None
        assert pm.PipelinePerfModel is not None
