"""Unit and property tests for data blocks, configuration and buffers."""

from __future__ import annotations

import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    BlockId,
    BufferClosed,
    ConsumerBuffer,
    DataBlock,
    ProducerBuffer,
    ZipperConfig,
)


class TestBlockId:
    def test_identity_and_filename(self):
        bid = BlockId(step=3, source_rank=7, block_index=1, offset=4096)
        assert bid.key == (3, 7, 1)
        name = bid.filename()
        assert "s000003" in name and "r00007" in name and "b00001" in name

    def test_ordering(self):
        assert BlockId(0, 0, 0) < BlockId(0, 0, 1) < BlockId(1, 0, 0)

    @pytest.mark.parametrize("kwargs", [{"step": -1}, {"source_rank": -1}, {"block_index": -1}])
    def test_validation(self, kwargs):
        base = {"step": 0, "source_rank": 0, "block_index": 0}
        base.update(kwargs)
        with pytest.raises(ValueError):
            BlockId(**base)


class TestDataBlock:
    def test_nbytes(self):
        block = DataBlock(BlockId(0, 0, 0), np.zeros(100, dtype=np.float64))
        assert block.nbytes == 800

    def test_coerces_to_ndarray(self):
        block = DataBlock(BlockId(0, 0, 0), [1.0, 2.0, 3.0])
        assert isinstance(block.data, np.ndarray)

    def test_with_data(self):
        block = DataBlock(BlockId(0, 0, 0), np.zeros(4), meta={"field": "u"})
        replaced = block.with_data(np.ones(4), on_disk=True)
        assert replaced.on_disk and replaced.meta == {"field": "u"}
        assert not block.on_disk


class TestZipperConfig:
    def test_defaults_valid(self):
        cfg = ZipperConfig()
        assert not cfg.preserve
        assert cfg.high_water_mark <= cfg.producer_buffer_blocks

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"block_size": 0},
            {"producer_buffer_blocks": 0},
            {"high_water_mark": 100, "producer_buffer_blocks": 10},
            {"consumer_buffer_blocks": 0},
            {"mode": "bogus"},
            {"network_bandwidth": -1.0},
            {"network_latency": -0.1},
            {"num_producers": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ZipperConfig(**kwargs)

    def test_replace(self):
        cfg = ZipperConfig().replace(mode="preserve")
        assert cfg.preserve


def make_block(i: int, step: int = 0) -> DataBlock:
    return DataBlock(BlockId(step, 0, i), np.zeros(16))


class TestProducerBuffer:
    def test_put_take_fifo(self):
        buf = ProducerBuffer(capacity=4, high_water_mark=2)
        for i in range(3):
            buf.put(make_block(i))
        taken = [buf.take(timeout=0.1).block_id.block_index for _ in range(3)]
        assert taken == [0, 1, 2]

    def test_put_blocks_when_full_and_reports_stall(self):
        buf = ProducerBuffer(capacity=1, high_water_mark=1)
        buf.put(make_block(0))

        def drain_later():
            import time

            time.sleep(0.1)
            buf.take(timeout=1)

        t = threading.Thread(target=drain_later)
        t.start()
        stalled = buf.put(make_block(1), timeout=5)
        t.join()
        assert stalled >= 0.05
        assert buf.stats.get("producer_stall_time") >= 0.05

    def test_put_after_close_raises(self):
        buf = ProducerBuffer(capacity=2, high_water_mark=1)
        buf.close()
        with pytest.raises(BufferClosed):
            buf.put(make_block(0))

    def test_take_returns_none_when_closed_and_empty(self):
        buf = ProducerBuffer(capacity=2, high_water_mark=1)
        buf.close()
        assert buf.take(timeout=0.05) is None

    def test_steal_only_above_watermark(self):
        buf = ProducerBuffer(capacity=8, high_water_mark=3)
        for i in range(3):
            buf.put(make_block(i))
        assert buf.steal(timeout=0.05) is None  # at the mark, not above
        buf.put(make_block(3))
        stolen = buf.steal(timeout=0.5)
        assert stolen is not None and stolen.block_id.block_index == 0

    def test_steal_returns_none_after_close(self):
        buf = ProducerBuffer(capacity=4, high_water_mark=2)
        buf.close()
        assert buf.steal(timeout=0.05) is None

    def test_timeout_on_full_buffer(self):
        buf = ProducerBuffer(capacity=1, high_water_mark=1)
        buf.put(make_block(0))
        with pytest.raises(TimeoutError):
            buf.put(make_block(1), timeout=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            ProducerBuffer(capacity=0, high_water_mark=0)
        with pytest.raises(ValueError):
            ProducerBuffer(capacity=4, high_water_mark=5)

    @given(st.lists(st.integers(0, 1000), min_size=1, max_size=60))
    @settings(max_examples=30, deadline=None)
    def test_everything_put_is_taken_exactly_once(self, indices):
        buf = ProducerBuffer(capacity=len(indices) + 1, high_water_mark=len(indices))
        for step, i in enumerate(indices):
            buf.put(DataBlock(BlockId(step, 0, 0), np.array([i])))
        buf.close()
        seen = []
        while True:
            block = buf.take(timeout=0.01)
            if block is None:
                break
            seen.append(int(block.data[0]))
        assert seen == indices


class TestConsumerBuffer:
    def test_get_and_free_accounting_no_preserve(self):
        buf = ConsumerBuffer(capacity=4, preserve=False)
        block = make_block(0)
        buf.put(block)
        got = buf.get(timeout=0.1)
        assert got is block
        assert buf.outstanding == 1
        assert buf.mark_analyzed(block.block_id)
        assert buf.outstanding == 0
        assert buf.freed_blocks == 1

    def test_preserve_requires_analyzed_and_stored(self):
        buf = ConsumerBuffer(capacity=4, preserve=True)
        block = make_block(0)
        buf.put(block)
        buf.get(timeout=0.1)
        assert not buf.mark_analyzed(block.block_id)   # not yet stored
        assert buf.mark_stored(block.block_id)          # now both -> freed
        assert buf.freed_blocks == 1

    def test_on_disk_blocks_count_as_stored(self):
        buf = ConsumerBuffer(capacity=4, preserve=True)
        block = make_block(0)
        block.on_disk = True
        buf.put(block)
        buf.get(timeout=0.1)
        assert buf.mark_analyzed(block.block_id)

    def test_get_none_after_close(self):
        buf = ConsumerBuffer(capacity=2)
        buf.close()
        assert buf.get(timeout=0.05) is None

    def test_put_after_close_raises(self):
        buf = ConsumerBuffer(capacity=2)
        buf.close()
        with pytest.raises(BufferClosed):
            buf.put(make_block(0))

    def test_mark_unknown_block_is_noop(self):
        buf = ConsumerBuffer(capacity=2)
        assert not buf.mark_analyzed(BlockId(9, 9, 9))

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            ConsumerBuffer(capacity=0)
