"""Declarative multi-stage pipeline specifications.

The paper's central argument is that the *whole* coupled workflow — not one
producer/consumer pair — is the unit that must be integrated and pipelined.
This module captures that idea declaratively:

* a :class:`StageSpec` describes one application of the workflow (its cost
  model, its share of the job's cores, and how many representative ranks are
  actually simulated);
* a :class:`CouplingSpec` describes one directed data coupling between two
  stages, each with its *own* transport method, transport options, block size
  and buffering policy;
* a :class:`PipelineSpec` bundles stages and couplings into a validated DAG
  plus the run-wide knobs (cluster, total cores, steps, seed, ...).

A classic two-application run is the special case of a two-stage pipeline with
a single coupling; :func:`lower_config` performs exactly that lowering from a
legacy :class:`~repro.workflow.config.WorkflowConfig`, which is how the old
API keeps working unchanged on top of the pipeline runner.

Execution semantics (see :class:`~repro.workflow.runner.PipelineRunner`):

* stages with no inbound coupling are *sources*: they run the simulation
  compute loop and put each step's output into every outbound coupling;
* stages with inbound couplings consume delivered data (charging their
  workload's per-byte analysis cost) and, if they also have outbound
  couplings, forward ``output_fraction`` of each fully-consumed step
  downstream — the sim → analysis → visualization chain;
* fan-out (one source stage feeding several analyses over independent
  couplings) and fan-in (several stages feeding one consumer) are both
  expressed as plain extra couplings.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.apps.costs import WorkloadModel
from repro.cluster.spec import ClusterSpec
from repro.elastic.policy import ElasticPolicy
from repro.faults.plan import FaultPlan
from repro.transports.null import NullTransport
from repro.transports.registry import transport_class

if TYPE_CHECKING:
    from repro.workflow.config import WorkflowConfig

__all__ = ["StageSpec", "CouplingSpec", "PipelineSpec", "lower_config", "MiB"]

MiB = 1024 * 1024


@dataclass(frozen=True)
class StageSpec:
    """One application (stage) of a multi-stage workflow.

    ``core_share`` is the stage's fraction of the pipeline's ``total_cores``
    in the represented (full-scale) job; ``total_ranks`` overrides the derived
    count directly.  ``representative_ranks`` is how many of those ranks are
    actually simulated — per-rank resource shares are scaled so weak-scaling
    behaviour of the full job is preserved, exactly as in the two-app model.
    """

    name: str
    workload: WorkloadModel
    #: Fraction of the pipeline's ``total_cores`` this stage occupies in the
    #: full job (ignored when ``total_ranks`` is given).
    core_share: float = 0.0
    #: Number of ranks actually simulated (representative subset).
    representative_ranks: int = 8
    #: Explicit full-job rank count (overrides ``core_share``).
    total_ranks: Optional[int] = None
    #: Free-form role tag carried into results ("producer", "analysis",
    #: "visualization", ...); purely descriptive — behaviour follows topology.
    role: str = ""
    #: For stages that both consume and produce (chain middles): bytes emitted
    #: downstream per byte consumed.
    output_fraction: float = 1.0
    #: Whether an elastic controller may move cores to/from this stage.
    resizable: bool = True
    #: Floor for elastic resizes, as a fraction of this stage's baseline
    #: cores; ``None`` inherits the policy's ``min_stage_fraction``.
    min_core_fraction: Optional[float] = None
    #: Represented cores this stage actually holds at the start of the run,
    #: for elastic accounting (``None`` = its resolved full-job rank count).
    #: Scenario builders that encode an uneven static core grant as workload
    #: rate factors set this so the controller moves (and conserves) the
    #: *granted* cores rather than rank units.
    granted_cores: Optional[float] = None
    #: Whether a model-driven controller delivers grown capacity by spawning
    #: modelled assist ranks at epoch boundaries (the runner's rank lifecycle
    #: hooks) instead of purely re-rating the stage's nodes.
    elastic_ranks: bool = False
    #: Steps between checkpoints for fault recovery.  A crashed rank loses
    #: the steps completed since its last checkpoint and recomputes them
    #: during recovery; ``None`` means no checkpointing — every completed
    #: step is lost on a crash (see ``docs/faults.md``).
    checkpoint_interval: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a stage needs a non-empty name")
        if self.representative_ranks <= 0:
            raise ValueError(
                f"stage {self.name!r} has zero representative ranks; every "
                "stage must model at least one rank"
            )
        if self.total_ranks is not None and self.total_ranks <= 0:
            raise ValueError(f"stage {self.name!r} has a non-positive total_ranks")
        if self.output_fraction <= 0:
            raise ValueError(f"stage {self.name!r} needs output_fraction > 0")
        if self.min_core_fraction is not None and not 0.0 < self.min_core_fraction <= 1.0:
            raise ValueError(
                f"stage {self.name!r} needs min_core_fraction in (0, 1] (or None)"
            )
        if self.granted_cores is not None and self.granted_cores <= 0:
            raise ValueError(f"stage {self.name!r} needs granted_cores > 0 (or None)")
        if self.checkpoint_interval is not None and self.checkpoint_interval <= 0:
            raise ValueError(
                f"stage {self.name!r} needs checkpoint_interval > 0 (or None)"
            )

    def replace(self, **changes) -> "StageSpec":
        """A copy of the stage spec with ``changes`` applied."""
        return replace(self, **changes)


@dataclass(frozen=True)
class CouplingSpec:
    """One directed data coupling between two stages.

    Every coupling owns its transport: name + keyword options (forwarded to
    :func:`~repro.transports.registry.create_transport`), block size and
    producer-buffer policy.  ``None`` values inherit the pipeline defaults.
    """

    source: str
    target: str
    transport: str = "zipper"
    #: Keyword arguments for the transport constructor (per-coupling options).
    transport_options: dict = field(default_factory=dict)
    #: Fine-grain block size; ``None`` inherits the pipeline default.
    block_bytes: Optional[int] = None
    producer_buffer_blocks: Optional[int] = None
    high_water_mark: Optional[int] = None
    #: Staging/link ranks allocated per 8 source ranks (DataSpaces/DIMES
    #: servers, Decaf links); ``None`` inherits the pipeline default.
    staging_ranks_per_8: Optional[int] = None
    #: Whether an elastic controller may lease this coupling's bandwidth
    #: (lend it when idle, borrow for it when starved).
    leasable: bool = True

    def __post_init__(self) -> None:
        if not self.source or not self.target:
            raise ValueError("a coupling needs non-empty source and target stages")
        if self.source == self.target:
            raise ValueError(f"coupling {self.source!r} -> itself is not allowed")
        if self.block_bytes is not None and self.block_bytes <= 0:
            raise ValueError("block_bytes must be positive")
        if self.producer_buffer_blocks is not None and self.producer_buffer_blocks <= 0:
            raise ValueError("producer_buffer_blocks must be positive")
        if self.staging_ranks_per_8 is not None and self.staging_ranks_per_8 < 0:
            raise ValueError("staging_ranks_per_8 must be non-negative")

    @property
    def name(self) -> str:
        """Stable identifier of the coupling (used for stats/trace channels)."""
        return f"{self.source}->{self.target}"

    def replace(self, **changes) -> "CouplingSpec":
        """A copy of the coupling spec with ``changes`` applied."""
        return replace(self, **changes)


@dataclass(frozen=True)
class PipelineSpec:
    """A validated stage graph plus the run-wide execution knobs.

    The stage order given here is also the node-placement order: stages get
    contiguous node ranges in declaration order, followed by each coupling's
    staging nodes in coupling order (matching the legacy sim | analysis |
    staging layout for the lowered two-stage case).
    """

    stages: Tuple[StageSpec, ...]
    couplings: Tuple[CouplingSpec, ...]
    cluster: ClusterSpec
    #: Total cores of the represented job across all stages.
    total_cores: int = 384
    ranks_per_modelled_node: int = 4
    #: Default fine-grain block size for couplings that do not override it.
    block_bytes: int = 1 * MiB
    producer_buffer_blocks: int = 64
    high_water_mark: int = 48
    concurrent_transfer: bool = True
    preserve: bool = False
    #: Override of the source stages' step count (``None`` keeps the workload values).
    steps: Optional[int] = None
    trace: bool = True
    deterministic: bool = True
    seed: int = 1
    #: Default staging ranks per 8 source ranks for couplings that do not override it.
    staging_ranks_per_8_sim: int = 1
    #: Adaptation policy; ``None`` keeps the static resource split.
    elastic: Optional[ElasticPolicy] = None
    #: Deterministic fault schedule; ``None`` (or an empty plan) injects
    #: nothing and keeps the run bit-identical to today's fault-free engine.
    faults: Optional[FaultPlan] = None
    #: Engine fast path: fast-forward pure-compute segments on guaranteed-
    #: uncontended nodes in one event (elided events are credited, results
    #: stay bit-identical — see ``docs/performance.md``).  Turn off to force
    #: the per-phase event sequence, e.g. when external processes mutate
    #: node allocations outside the elastic epoch protocol.
    coalesce: bool = True
    #: Engine event recycling: serve Store put/get and Release events from
    #: per-class free lists (bit-identical; the F501 escape analysis
    #: certifies no runner/transport code holds one past its dispatch — see
    #: ``docs/static-analysis.md``).  Turn off to keep every event a fresh
    #: allocation, e.g. when embedding custom processes that retain events.
    pool_events: bool = True
    #: Arm the :mod:`repro.sanitize` runtime determinism traps for this run.
    #: ``False`` (the default) defers to the ``REPRO_SANITIZE`` environment
    #: variable, so a whole sweep can be sanitized without editing configs.
    sanitize: bool = False
    label: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "stages", tuple(self.stages))
        object.__setattr__(self, "couplings", tuple(self.couplings))
        if not self.stages:
            raise ValueError("a pipeline needs at least one stage")
        if self.total_cores <= 1:
            raise ValueError("total_cores must be at least 2")
        if self.ranks_per_modelled_node <= 0:
            raise ValueError("ranks_per_modelled_node must be positive")
        if self.ranks_per_modelled_node > self.cluster.node.cores:
            raise ValueError("ranks_per_modelled_node cannot exceed the node's core count")
        if self.block_bytes <= 0:
            raise ValueError("block_bytes must be positive")
        if self.producer_buffer_blocks <= 0:
            raise ValueError("producer_buffer_blocks must be positive")
        if not 0 <= self.high_water_mark <= self.producer_buffer_blocks:
            raise ValueError("high_water_mark must lie in [0, producer_buffer_blocks]")
        if self.steps is not None and self.steps <= 0:
            raise ValueError("steps must be positive")
        if self.staging_ranks_per_8_sim < 0:
            raise ValueError("staging_ranks_per_8_sim must be non-negative")
        if self.elastic is not None and not isinstance(self.elastic, ElasticPolicy):
            raise ValueError("elastic must be an ElasticPolicy (or None)")
        if self.faults is not None and not isinstance(self.faults, FaultPlan):
            raise ValueError("faults must be a FaultPlan (or None)")
        self._validate_graph()

    # -- graph validation ---------------------------------------------------
    def _validate_graph(self) -> None:
        names = [s.name for s in self.stages]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate stage names in pipeline: {names}")
        known = set(names)
        seen_edges = set()
        for coupling in self.couplings:
            for endpoint in (coupling.source, coupling.target):
                if endpoint not in known:
                    raise ValueError(
                        f"coupling {coupling.name!r} references unknown stage "
                        f"{endpoint!r} (dangling endpoint)"
                    )
            edge = (coupling.source, coupling.target)
            if edge in seen_edges:
                raise ValueError(f"duplicate coupling {coupling.name!r}")
            seen_edges.add(edge)
            try:
                transport_class(coupling.transport)
            except KeyError as exc:
                raise ValueError(
                    f"coupling {coupling.name!r}: {exc.args[0]}"
                ) from None

        # Kahn's algorithm: any remaining edge after peeling means a cycle.
        indegree = {name: 0 for name in names}
        for coupling in self.couplings:
            indegree[coupling.target] += 1
        ready = [name for name in names if indegree[name] == 0]
        peeled = 0
        while ready:
            stage = ready.pop()
            peeled += 1
            for coupling in self.couplings:
                if coupling.source == stage:
                    indegree[coupling.target] -= 1
                    if indegree[coupling.target] == 0:
                        ready.append(coupling.target)
        if peeled != len(names):
            cyclic = sorted(n for n, d in indegree.items() if d > 0)
            raise ValueError(f"coupling graph contains a cycle through {cyclic}")

        # Core shares must resolve to at least one rank per stage.
        share_sum = 0.0
        for stage in self.stages:
            if stage.total_ranks is None:
                if not 0.0 < stage.core_share <= 1.0:
                    raise ValueError(
                        f"stage {stage.name!r} needs core_share in (0, 1] "
                        "(or an explicit total_ranks)"
                    )
                share_sum += stage.core_share
        if share_sum > 1.0 + 1e-9:
            raise ValueError(f"stage core shares sum to {share_sum:.3f} > 1")

        # Per-stage step counts must be well defined (fan-in must agree), and
        # per-coupling buffering policies must be coherent.
        for stage in self.stages:
            self.stage_steps(stage.name)
        for coupling in self.couplings:
            self.coupling_high_water_mark(coupling)

        for stage in self.stages:
            inbound = self.inbound(stage.name)
            outbound = self.outbound(stage.name)
            if stage.output_fraction != 1.0 and (not inbound or not outbound):
                raise ValueError(
                    f"stage {stage.name!r} output_fraction does not apply: it "
                    "only scales what a stage that both consumes and forwards "
                    "re-emits (sources always emit their workload's "
                    "output_bytes_per_step; sinks emit nothing)"
                )
            if not inbound or not outbound:
                continue
            # A forwarding stage re-emits once per fully consumed step, so a
            # rank with no producers on some inbound coupling would starve its
            # consumers downstream.
            for coupling in inbound:
                if self.modelled_ranks(stage.name) > self.modelled_ranks(coupling.source):
                    raise ValueError(
                        f"forwarding stage {stage.name!r} models more ranks than "
                        f"its producer stage {coupling.source!r}; shrink "
                        "representative_ranks so every rank has a producer"
                    )
                if issubclass(transport_class(coupling.transport), NullTransport):
                    raise ValueError(
                        f"coupling {coupling.name!r} uses the no-coupling "
                        f"transport but stage {stage.name!r} must forward "
                        "data downstream"
                    )

    # -- lookups -------------------------------------------------------------
    def stage(self, name: str) -> StageSpec:
        """The stage spec named ``name`` (KeyError when absent)."""
        for stage in self.stages:
            if stage.name == name:
                return stage
        raise KeyError(f"no stage named {name!r}")

    def inbound(self, name: str) -> List[CouplingSpec]:
        """Couplings delivering data *into* stage ``name`` (spec order)."""
        return [c for c in self.couplings if c.target == name]

    def outbound(self, name: str) -> List[CouplingSpec]:
        """Couplings carrying stage ``name``'s output (spec order)."""
        return [c for c in self.couplings if c.source == name]

    @property
    def sources(self) -> List[StageSpec]:
        """Stages with no inbound coupling (the simulations)."""
        return [s for s in self.stages if not self.inbound(s.name)]

    @property
    def sinks(self) -> List[StageSpec]:
        """Stages with no outbound coupling (the terminal analyses)."""
        return [s for s in self.stages if not self.outbound(s.name)]

    # -- derived sizes -------------------------------------------------------
    def resolved_total_ranks(self, name: str) -> int:
        """Full-job rank count of a stage (explicit, or from its core share)."""
        stage = self.stage(name)
        if stage.total_ranks is not None:
            return stage.total_ranks
        return max(1, int(round(self.total_cores * stage.core_share)))

    def modelled_ranks(self, name: str) -> int:
        """Ranks of the stage actually simulated."""
        stage = self.stage(name)
        return min(stage.representative_ranks, self.resolved_total_ranks(name))

    def _memo(self, attr: str) -> Dict[str, int]:
        """A lazily created per-instance memo.

        The spec is frozen, so derived graph walks are safe to cache for the
        instance's lifetime.
        """
        cache = self.__dict__.get(attr)
        if cache is None:
            cache = {}
            object.__setattr__(self, attr, cache)
        return cache

    def stage_steps(self, name: str) -> int:
        """Steps stage ``name`` executes (sources) or consumes (everyone else)."""
        return self._stage_steps(name, self._memo("_steps_memo"))

    def _stage_steps(self, name: str, memo: Dict[str, int]) -> int:
        # Memoised per call: the naive recursion is exponential in diamond
        # (fan-out-then-fan-in) depth.
        if name in memo:
            return memo[name]
        inbound = self.inbound(name)
        if not inbound:
            if self.steps is not None:
                result = self.steps
            else:
                result = self.stage(name).workload.steps
        else:
            steps = {self._stage_steps(c.source, memo) for c in inbound}
            if len(steps) != 1:
                raise ValueError(
                    f"inbound couplings of stage {name!r} disagree on step counts "
                    f"({sorted(steps)}); fan-in stages need matching producers"
                )
            result = steps.pop()
        memo[name] = result
        return result

    def stage_output_bytes_per_step(self, name: str) -> int:
        """Bytes one rank of stage ``name`` emits into each outbound coupling per step."""
        return self._stage_output_bytes_per_step(
            name, self._memo("_output_memo"), self.modelled_ranks
        )

    def represented_stage_output_bytes_per_step(self, name: str) -> int:
        """Like :meth:`stage_output_bytes_per_step` but for the *full* job.

        Uses the represented (total) rank counts instead of the modelled
        subset, for scale-sensitive models (e.g. Decaf's element-count
        overflow) that must size the real stream, not the simulated one.
        """
        return self._stage_output_bytes_per_step(
            name, self._memo("_total_output_memo"), self.resolved_total_ranks
        )

    def _stage_output_bytes_per_step(self, name: str, memo, ranks_of) -> int:
        if name in memo:
            return memo[name]
        inbound = self.inbound(name)
        stage = self.stage(name)
        if not inbound:
            result = stage.workload.output_bytes_per_step
        else:
            total_in = sum(
                self._stage_output_bytes_per_step(c.source, memo, ranks_of)
                * ranks_of(c.source)
                for c in inbound
            )
            result = max(1, int(stage.output_fraction * total_in / ranks_of(name)))
        memo[name] = result
        return result

    def coupling_block_bytes(self, coupling: CouplingSpec) -> int:
        """Effective block size of a coupling (never larger than one step's output)."""
        block = coupling.block_bytes if coupling.block_bytes is not None else self.block_bytes
        return min(block, self.stage_output_bytes_per_step(coupling.source))

    def stage_block_bytes(self, name: str) -> int:
        """Block size governing a stage's per-step compute cost."""
        outbound = self.outbound(name)
        if outbound:
            return min(self.coupling_block_bytes(c) for c in outbound)
        return min(self.block_bytes, self.stage_output_bytes_per_step(name))

    def coupling_staging_per_8(self, coupling: CouplingSpec) -> int:
        """Staging ranks per 8 source ranks for a coupling (with the default)."""
        if coupling.staging_ranks_per_8 is not None:
            return coupling.staging_ranks_per_8
        return self.staging_ranks_per_8_sim

    def coupling_staging_ranks(self, coupling: CouplingSpec) -> int:
        """Modelled staging/link ranks dedicated to one coupling."""
        per_8 = self.coupling_staging_per_8(coupling)
        ranks = (self.modelled_ranks(coupling.source) * per_8) // 8
        if per_8 > 0:
            ranks = max(1, ranks)
        return ranks

    def coupling_buffer_blocks(self, coupling: CouplingSpec) -> int:
        """Producer-buffer capacity of a coupling (with the pipeline default)."""
        blocks = (
            coupling.producer_buffer_blocks
            if coupling.producer_buffer_blocks is not None
            else self.producer_buffer_blocks
        )
        return blocks

    def coupling_high_water_mark(self, coupling: CouplingSpec) -> int:
        """Work-stealing high-water mark of a coupling (validated against capacity)."""
        hwm = (
            coupling.high_water_mark
            if coupling.high_water_mark is not None
            else min(self.high_water_mark, self.coupling_buffer_blocks(coupling))
        )
        if not 0 <= hwm <= self.coupling_buffer_blocks(coupling):
            raise ValueError(
                f"coupling {coupling.name!r}: high_water_mark {hwm} outside "
                f"[0, {self.coupling_buffer_blocks(coupling)}]"
            )
        return hwm

    def replace(self, **changes) -> "PipelineSpec":
        """A copy of the pipeline spec with ``changes`` applied (re-validated)."""
        return replace(self, **changes)


def lower_config(config: "WorkflowConfig") -> PipelineSpec:
    """Lower a legacy two-application :class:`WorkflowConfig` to a pipeline.

    The result is the exact two-stage, one-coupling pipeline the old runner
    hardcoded: a ``simulation`` stage feeding an ``analysis`` stage over the
    config's transport, with the config's ``extras`` becoming the coupling's
    transport options.
    """
    simulation = StageSpec(
        name="simulation",
        workload=config.workload,
        representative_ranks=config.sim_ranks,
        total_ranks=config.total_sim_ranks,
        role="producer",
    )
    analysis = StageSpec(
        name="analysis",
        workload=config.workload,
        representative_ranks=config.analysis_ranks,
        total_ranks=config.total_analysis_ranks,
        role="analysis",
    )
    coupling = CouplingSpec(
        source="simulation",
        target="analysis",
        transport=config.transport,
        transport_options=dict(config.extras),
        block_bytes=config.block_bytes,
        producer_buffer_blocks=config.producer_buffer_blocks,
        high_water_mark=config.high_water_mark,
        staging_ranks_per_8=config.staging_ranks_per_8_sim,
    )
    return PipelineSpec(
        stages=(simulation, analysis),
        couplings=(coupling,),
        cluster=config.cluster,
        total_cores=config.total_cores,
        ranks_per_modelled_node=config.ranks_per_modelled_node,
        block_bytes=config.block_bytes,
        producer_buffer_blocks=config.producer_buffer_blocks,
        high_water_mark=config.high_water_mark,
        concurrent_transfer=config.concurrent_transfer,
        preserve=config.preserve,
        steps=config.num_steps,
        trace=config.trace,
        deterministic=config.deterministic,
        seed=config.seed,
        staging_ranks_per_8_sim=config.staging_ranks_per_8_sim,
        label=config.label,
    )
