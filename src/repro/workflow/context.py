"""Shared state handed to the transport implementations during a workflow run.

Two layers:

* :class:`PipelineContext` owns everything global to one pipeline run — the
  modelled cluster, per-stage placements, per-stage communicators and rank
  statistics, the tracer and the aggregate stats; and
* :class:`CouplingContext` is the thin *endpoint adapter* a transport sees.
  It scopes the pipeline to one coupling and exposes the historical
  producer/consumer vocabulary (``sim_ranks``, ``analysis_node``,
  ``consumer_of``, ...) where "sim" means the coupling's source stage and
  "analysis" its target stage — which is exactly what those names meant in the
  hardcoded two-application runner, so every existing transport works
  unmodified on arbitrary stage graphs.

Transports are given the coupling context in every call and must not hold
global state outside it, so several workflow runs can coexist in one process.
``WorkflowContext`` remains as an alias of :class:`CouplingContext` for the
legacy two-application API.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.cluster.machine import Cluster
from repro.cluster.spec import ClusterSpec
from repro.simmpi.comm import Communicator
from repro.trace import Tracer
from repro.workflow.pipeline import CouplingSpec, PipelineSpec

__all__ = ["PipelinePlacement", "PipelineContext", "CouplingContext", "WorkflowContext"]


class PipelinePlacement:
    """Pure arithmetic: which modelled node hosts which stage/staging rank.

    Stages occupy contiguous node ranges in declaration order; each coupling's
    staging/link ranks occupy further ranges after all the stage nodes, in
    coupling order.  (For the lowered two-stage pipeline this reproduces the
    legacy ``sim | analysis | staging`` layout bit for bit.)
    """

    def __init__(self, pipeline: PipelineSpec):
        self.pipeline = pipeline
        rpn = pipeline.ranks_per_modelled_node
        self.stage_ranks: Dict[str, int] = {}
        self.stage_total_ranks: Dict[str, int] = {}
        self.stage_nodes: Dict[str, int] = {}
        self.stage_node_base: Dict[str, int] = {}
        self.stage_rank_base: Dict[str, int] = {}
        base = 0
        rank_base = 0
        for stage in pipeline.stages:
            ranks = pipeline.modelled_ranks(stage.name)
            nodes = _ceil_div(ranks, rpn)
            self.stage_ranks[stage.name] = ranks
            self.stage_total_ranks[stage.name] = pipeline.resolved_total_ranks(stage.name)
            self.stage_nodes[stage.name] = nodes
            self.stage_node_base[stage.name] = base
            self.stage_rank_base[stage.name] = rank_base
            base += nodes
            rank_base += ranks

        self.coupling_staging_ranks: Dict[str, int] = {}
        self.coupling_staging_base: Dict[str, int] = {}
        for coupling in pipeline.couplings:
            staging = pipeline.coupling_staging_ranks(coupling)
            self.coupling_staging_ranks[coupling.name] = staging
            self.coupling_staging_base[coupling.name] = base
            base += _ceil_div(staging, rpn) if staging else 0

        #: All modelled nodes: stage nodes followed by per-coupling staging nodes.
        self.num_nodes = base
        #: Modelled application ranks (staging ranks excluded, as before).
        self.modelled_ranks = sum(self.stage_ranks.values())
        #: Application ranks of the full represented job.
        self.total_ranks = sum(self.stage_total_ranks.values())

    def stage_node(self, stage: str, rank: int) -> int:
        """Modelled node hosting rank ``rank`` of stage ``stage``."""
        rpn = self.pipeline.ranks_per_modelled_node
        return self.stage_node_base[stage] + rank // rpn

    def staging_node(self, coupling: str, srank: int) -> int:
        """Modelled node hosting staging rank ``srank`` of coupling ``coupling``."""
        staging = self.coupling_staging_ranks[coupling]
        if not staging:
            raise ValueError(f"coupling {coupling!r} has no staging ranks")
        rpn = self.pipeline.ranks_per_modelled_node
        return self.coupling_staging_base[coupling] + (srank % staging) // rpn

    def ranks_per_node(self) -> Dict[int, int]:
        """How many modelled ranks (incl. staging) each node actually hosts."""
        counts: Dict[int, int] = {}
        for stage in self.pipeline.stages:
            for rank in range(self.stage_ranks[stage.name]):
                node = self.stage_node(stage.name, rank)
                counts[node] = counts.get(node, 0) + 1
        for coupling in self.pipeline.couplings:
            for srank in range(self.coupling_staging_ranks[coupling.name]):
                node = self.staging_node(coupling.name, srank)
                counts[node] = counts.get(node, 0) + 1
        return counts


@dataclass
class CouplingSettings:
    """The per-coupling slice of the run configuration transports read.

    Exactly the fields transports read off ``ctx.config`` — buffering policy,
    optimisation toggles, the cluster spec — resolved for one specific
    coupling.  Everything else a transport needs (block size, staging counts,
    steps, seeds) lives directly on the :class:`CouplingContext`.
    """

    cluster: ClusterSpec
    producer_buffer_blocks: int
    high_water_mark: int
    concurrent_transfer: bool
    preserve: bool


class PipelineContext:
    """Everything global to one pipeline run.

    Owns the cluster, the per-stage communicators/placements/statistics, the
    tracer, and one :class:`CouplingContext` per coupling (in spec order,
    available as :attr:`couplings`; each carries its own stats channel, which
    the runner merges into the result's aggregate stats).
    """

    def __init__(
        self,
        pipeline: PipelineSpec,
        cluster: Cluster,
        tracer: Tracer,
        placement: Optional[PipelinePlacement] = None,
    ):
        self.pipeline = pipeline
        self.cluster = cluster
        self.env = cluster.env
        self.tracer = tracer
        self.placement = placement if placement is not None else PipelinePlacement(pipeline)

        self.stage_steps: Dict[str, int] = {
            s.name: pipeline.stage_steps(s.name) for s in pipeline.stages
        }
        self.stage_output_bytes: Dict[str, int] = {
            s.name: pipeline.stage_output_bytes_per_step(s.name) for s in pipeline.stages
        }
        #: per-stage, per-rank statistics (stall_time, transfer_busy_time, ...)
        self.stage_rank_stats: Dict[str, Dict[int, Dict[str, float]]] = {
            s.name: {r: defaultdict(float) for r in range(self.placement.stage_ranks[s.name])}
            for s in pipeline.stages
        }
        # Stage-level communicators carry the application's own traffic (the
        # halo exchanges of the compute loop), which only source stages run;
        # coupling traffic goes through each CouplingContext's private comms.
        self.stage_comms: Dict[str, Communicator] = {
            s.name: Communicator(
                cluster,
                [
                    self.placement.stage_node(s.name, r)
                    for r in range(self.placement.stage_ranks[s.name])
                ],
                represented_size=self.placement.stage_total_ranks[s.name],
                tracer=tracer,
                name=s.name,
            )
            for s in pipeline.sources
        }
        self.couplings: List[CouplingContext] = [
            CouplingContext(self, spec) for spec in pipeline.couplings
        ]
        self._couplings_by_name: Dict[str, CouplingContext] = {
            c.name: c for c in self.couplings
        }

    # -- lookups -------------------------------------------------------------
    def coupling(self, name: str) -> "CouplingContext":
        """The coupling context named ``name`` (``"src->dst"``)."""
        return self._couplings_by_name[name]

    def inbound(self, stage: str) -> List["CouplingContext"]:
        """Coupling contexts delivering data into ``stage`` (spec order)."""
        return [c for c in self.couplings if c.spec.target == stage]

    def outbound(self, stage: str) -> List["CouplingContext"]:
        """Coupling contexts carrying ``stage``'s output (spec order)."""
        return [c for c in self.couplings if c.spec.source == stage]

    def stage_ranks(self, stage: str) -> int:
        """Modelled rank count of ``stage``."""
        return self.placement.stage_ranks[stage]

    def stage_node(self, stage: str, rank: int) -> int:
        """Modelled node hosting ``stage``'s rank ``rank``."""
        return self.placement.stage_node(stage, rank)

    # -- tracing -------------------------------------------------------------
    def trace_row(self, stage: str, rank: int) -> int:
        """Trace-row id of a stage rank (stages stacked in declaration order)."""
        return self.placement.stage_rank_base[stage] + rank

    def record_stage(self, stage: str, rank: int, category: str, start: float, **meta) -> None:
        """Record a span ending now on a stage rank's trace row."""
        self.tracer.record(self.trace_row(stage, rank), category, start, self.env.now, **meta)

    # -- scaling -------------------------------------------------------------
    @property
    def rank_scale_factor(self) -> float:
        """How many real producer ranks one modelled producer rank stands for.

        Aggregated over *all* source stages (totals over modelled counts), so
        fan-in pipelines whose sources represent differently-sized jobs get a
        modelled-rank-weighted factor; for a single source this is exactly the
        legacy ``total_sim_ranks / sim_ranks``.
        """
        sources = self.pipeline.sources  # non-empty: every DAG has a source
        total = sum(self.placement.stage_total_ranks[s.name] for s in sources)
        modelled = sum(self.placement.stage_ranks[s.name] for s in sources)
        return total / modelled


class CouplingContext:
    """One coupling's view of the pipeline — the context transports receive.

    The historical two-application vocabulary is preserved: ``sim_*`` refers
    to the coupling's *source* stage and ``analysis_*`` to its *target* stage.
    Each coupling gets its own stats dictionary and tags its trace spans with
    the coupling name, giving per-coupling stats/trace channels.
    """

    def __init__(self, pipeline_ctx: PipelineContext, spec: CouplingSpec):
        self.pipeline_ctx = pipeline_ctx
        self.spec = spec
        self.name = spec.name
        pipeline = pipeline_ctx.pipeline
        placement = pipeline_ctx.placement

        self.cluster = pipeline_ctx.cluster
        self.env = pipeline_ctx.env
        self.tracer = pipeline_ctx.tracer
        #: Source-stage workload (what the coupled data stream is made of).
        self.workload = pipeline.stage(spec.source).workload
        self.block_bytes = pipeline.coupling_block_bytes(spec)
        self.steps = pipeline_ctx.stage_steps[spec.source]

        self.sim_ranks = placement.stage_ranks[spec.source]
        self.analysis_ranks = placement.stage_ranks[spec.target]
        self.total_sim_ranks = placement.stage_total_ranks[spec.source]
        self.total_analysis_ranks = placement.stage_total_ranks[spec.target]
        self.sim_nodes = placement.stage_nodes[spec.source]
        self.analysis_nodes = placement.stage_nodes[spec.target]
        self.staging_ranks = placement.coupling_staging_ranks[spec.name]
        self.staging_nodes = (
            _ceil_div(self.staging_ranks, pipeline.ranks_per_modelled_node)
            if self.staging_ranks
            else 0
        )

        #: Per-coupling statistics channel (merged into the run's aggregate
        #: stats when the result is assembled).
        self.stats: Dict[str, float] = defaultdict(float)
        # Bandwidth lease state: the share of its fair bandwidth this
        # coupling currently drains at (1.0 = the static fair share).  Two
        # orthogonal factors compose into the observable bandwidth_share:
        # the elastic/fault lease (moved between couplings mid-run) and the
        # tenant share (the owning job's slice of the shared facility).
        self._lease_share: float = 1.0
        self._tenant_share: float = 1.0
        #: Per-source-rank producer-buffer occupancy in blocks, reported by
        #: transports through :meth:`note_buffer_level` (empty when the
        #: transport does not report occupancy).
        self._buffer_levels: Dict[int, float] = {}
        self.sim_rank_stats = pipeline_ctx.stage_rank_stats[spec.source]
        self.analysis_rank_stats = pipeline_ctx.stage_rank_stats[spec.target]
        # Private communicators per coupling: they share the stage placement
        # and represented size but not the collective state, so e.g. two
        # couplings fanning into one stage cannot corrupt each other's
        # count-based barriers (the stage-level comm stays dedicated to the
        # application's own traffic such as halo exchanges).
        self.sim_comm = Communicator(
            self.cluster,
            [self.sim_node(r) for r in range(self.sim_ranks)],
            represented_size=self.total_sim_ranks,
            tracer=self.tracer,
            name=spec.source,
        )
        self.analysis_comm = Communicator(
            self.cluster,
            [self.analysis_node(a) for a in range(self.analysis_ranks)],
            represented_size=self.total_analysis_ranks,
            tracer=self.tracer,
            name=spec.target,
        )

        self.config = CouplingSettings(
            cluster=pipeline.cluster,
            producer_buffer_blocks=pipeline.coupling_buffer_blocks(spec),
            high_water_mark=pipeline.coupling_high_water_mark(spec),
            concurrent_transfer=pipeline.concurrent_transfer,
            preserve=pipeline.preserve,
        )

    # -- placement ---------------------------------------------------------
    @property
    def total_nodes_modelled(self) -> int:
        """All modelled nodes of the run (stage nodes plus staging nodes)."""
        return self.pipeline_ctx.placement.num_nodes

    def sim_node(self, rank: int) -> int:
        """Modelled node hosting source-stage rank ``rank``."""
        return self.pipeline_ctx.placement.stage_node(self.spec.source, rank)

    def analysis_node(self, arank: int) -> int:
        """Modelled node hosting target-stage rank ``arank``."""
        return self.pipeline_ctx.placement.stage_node(self.spec.target, arank)

    def staging_node(self, srank: int) -> int:
        """Modelled node hosting this coupling's staging/server rank ``srank``."""
        if not self.staging_ranks:
            raise ValueError(f"coupling {self.name!r} has no staging ranks")
        return self.pipeline_ctx.placement.staging_node(self.spec.name, srank)

    # -- producer/consumer mapping ------------------------------------------
    def consumer_of(self, sim_rank: int) -> int:
        """Target-stage rank that consumes ``sim_rank``'s output."""
        return sim_rank % self.analysis_ranks

    def producers_of(self, arank: int) -> List[int]:
        """Source-stage ranks whose output ``arank`` consumes."""
        return [r for r in range(self.sim_ranks) if self.consumer_of(r) == arank]

    def staging_target_of(self, sim_rank: int) -> int:
        """Staging rank that serves ``sim_rank`` (round-robin)."""
        if self.staging_ranks == 0:
            raise ValueError(f"coupling {self.name!r} has no staging ranks")
        return sim_rank % self.staging_ranks

    # -- per-step data volumes -------------------------------------------------
    def step_output_bytes(self) -> int:
        """Bytes one source-stage rank emits into this coupling per step."""
        return self.pipeline_ctx.stage_output_bytes[self.spec.source]

    def represented_step_output_bytes(self) -> int:
        """Bytes one *full-job* source rank emits per step.

        For scale-sensitive fault models, where modelled and represented
        ratios can differ.
        """
        return self.pipeline_ctx.pipeline.represented_stage_output_bytes_per_step(
            self.spec.source
        )

    def blocks_per_step(self) -> int:
        """Fine-grain blocks per source rank per step."""
        return max(1, _ceil_div(self.step_output_bytes(), self.block_bytes))

    def consumer_step_bytes(self, arank: int) -> int:
        """Bytes target rank ``arank`` receives per step."""
        return self.step_output_bytes() * len(self.producers_of(arank))

    # -- tracing helpers ----------------------------------------------------
    def trace_rank_of_analysis(self, arank: int) -> int:
        """Trace-row id used for target-stage ranks."""
        return self.pipeline_ctx.trace_row(self.spec.target, arank)

    def record_sim(self, rank: int, category: str, start: float, **meta) -> None:
        """Record a span ending now on a source-stage rank's trace row.

        Spans are tagged with the coupling name so fan-in/fan-out traffic on
        shared trace rows stays attributable to its coupling.
        """
        self.tracer.record(
            self.pipeline_ctx.trace_row(self.spec.source, rank),
            category,
            start,
            self.env.now,
            coupling=self.name,
            **meta,
        )

    def record_analysis(self, arank: int, category: str, start: float, **meta) -> None:
        """Record a span ending now on a target-stage rank's trace row."""
        self.tracer.record(
            self.trace_rank_of_analysis(arank),
            category,
            start,
            self.env.now,
            coupling=self.name,
            **meta,
        )

    # -- elastic/tenant hooks ------------------------------------------------
    @property
    def bandwidth_share(self) -> float:
        """The bandwidth scale transports apply to every issued transfer.

        The product of the elastic/fault *lease* (:attr:`lease_share`) and
        the owning tenant's facility share; both default to 1.0, so a
        dedicated, unleased coupling drains at its static fair bandwidth.
        """
        return self._lease_share * self._tenant_share

    @property
    def lease_share(self) -> float:
        """The elastic/fault lease factor alone (excludes the tenant share)."""
        return self._lease_share

    def set_bandwidth_share(self, share: float) -> None:
        """Set this coupling's bandwidth lease (elastic work stealing).

        Transports consult :attr:`bandwidth_share` when issuing transfers
        (via :meth:`~repro.transports.base.Transport.transfer_sim_to_analysis`
        and the file-system ``rate_scale`` argument), so the new share takes
        effect for every operation *issued* after this call; in-flight
        operations keep the rate frozen at issue time.  Writers that scale
        the lease relatively (the fault injector's transport restarts) must
        read back :attr:`lease_share`, not :attr:`bandwidth_share` — the
        latter folds in the tenant share, which this setter does not own.
        """
        if share <= 0:
            raise ValueError("bandwidth share must be positive")
        self._lease_share = float(share)

    def set_tenant_share(self, share: float) -> None:
        """Set the owning tenant's slice of the shared facility's bandwidth.

        The tenant scheduler's counterpart to
        :meth:`~repro.cluster.machine.Cluster.set_tenant_scale`: orthogonal
        to the elastic/fault lease, composed multiplicatively into
        :attr:`bandwidth_share`, effective for operations issued after the
        call.
        """
        if share <= 0:
            raise ValueError("tenant share must be positive")
        self._tenant_share = float(share)

    def note_buffer_level(self, rank: int, level: float) -> None:
        """Report one source rank's instantaneous buffer occupancy (in blocks).

        A cheap monitor hook: transports with bounded producer buffers call
        it on every enqueue/dequeue so the elastic controller can observe
        occupancy without the cost of a full time series.  Levels are kept
        per rank; :attr:`buffer_level` aggregates them.
        """
        self._buffer_levels[rank] = float(level)

    @property
    def buffer_level(self) -> float:
        """Total instantaneous producer-buffer occupancy across source ranks.

        0 for transports that never report occupancy.
        """
        return sum(self._buffer_levels.values())

    # -- scaling ------------------------------------------------------------
    @property
    def rank_scale_factor(self) -> float:
        """How many real source ranks one modelled source rank stands for."""
        return self.total_sim_ranks / self.sim_ranks

    def __repr__(self) -> str:
        return f"<CouplingContext {self.name!r} transport={self.spec.transport!r}>"


#: Legacy name: the context the two-application API hands to transports is the
#: coupling context of its single coupling.
WorkflowContext = CouplingContext


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)
