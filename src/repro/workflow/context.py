"""Shared state handed to the transport implementations during a workflow run."""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional

from repro.cluster.machine import Cluster
from repro.simmpi.comm import Communicator
from repro.trace import Tracer
from repro.workflow.config import WorkflowConfig

__all__ = ["WorkflowContext"]


class WorkflowContext:
    """Everything a transport needs to move data between the coupled applications.

    The context owns the modelled cluster, the communicators of the two
    applications, the placement of ranks onto nodes, the producer-to-consumer
    mapping, the tracer and the statistics dictionaries.  Transports are given
    the context in every call and must not hold global state outside it, so
    several workflow runs can coexist in one process.
    """

    def __init__(self, config: WorkflowConfig, cluster: Cluster, tracer: Tracer):
        self.config = config
        self.cluster = cluster
        self.env = cluster.env
        self.workload = config.workload
        self.tracer = tracer
        self.block_bytes = config.effective_block_bytes
        self.steps = config.num_steps

        self.sim_ranks = config.sim_ranks
        self.analysis_ranks = config.analysis_ranks
        self.total_sim_ranks = config.total_sim_ranks
        self.total_analysis_ranks = config.total_analysis_ranks

        rpn = config.ranks_per_modelled_node
        self.sim_nodes = _ceil_div(self.sim_ranks, rpn)
        self.analysis_nodes = _ceil_div(self.analysis_ranks, rpn)
        self.staging_ranks = max(
            0, (self.sim_ranks * config.staging_ranks_per_8_sim) // 8
        )
        if config.staging_ranks_per_8_sim > 0:
            self.staging_ranks = max(1, self.staging_ranks)
        self.staging_nodes = _ceil_div(self.staging_ranks, rpn) if self.staging_ranks else 0

        self._sim_node_of: List[int] = [r // rpn for r in range(self.sim_ranks)]
        self._analysis_node_of: List[int] = [
            self.sim_nodes + r // rpn for r in range(self.analysis_ranks)
        ]
        self._staging_node_of: List[int] = [
            self.sim_nodes + self.analysis_nodes + r // rpn
            for r in range(self.staging_ranks)
        ]

        #: global aggregate statistics (bytes on each path, lock waits, ...)
        self.stats: Dict[str, float] = defaultdict(float)
        #: per simulation rank statistics (stall_time, transfer_busy_time, ...)
        self.sim_rank_stats: Dict[int, Dict[str, float]] = {
            r: defaultdict(float) for r in range(self.sim_ranks)
        }
        #: per analysis rank statistics
        self.analysis_rank_stats: Dict[int, Dict[str, float]] = {
            r: defaultdict(float) for r in range(self.analysis_ranks)
        }

        self.sim_comm = Communicator(
            cluster,
            [self._sim_node_of[r] for r in range(self.sim_ranks)],
            represented_size=self.total_sim_ranks,
            tracer=tracer,
            name="simulation",
        )
        self.analysis_comm = Communicator(
            cluster,
            [self._analysis_node_of[r] for r in range(self.analysis_ranks)],
            represented_size=self.total_analysis_ranks,
            tracer=tracer,
            name="analysis",
        )

    # -- placement ---------------------------------------------------------
    @property
    def total_nodes_modelled(self) -> int:
        return self.sim_nodes + self.analysis_nodes + self.staging_nodes

    def sim_node(self, rank: int) -> int:
        """Modelled node hosting simulation rank ``rank``."""
        return self._sim_node_of[rank]

    def analysis_node(self, arank: int) -> int:
        """Modelled node hosting analysis rank ``arank``."""
        return self._analysis_node_of[arank]

    def staging_node(self, srank: int) -> int:
        """Modelled node hosting staging/server rank ``srank``."""
        if not self._staging_node_of:
            raise ValueError("this workflow has no staging ranks")
        return self._staging_node_of[srank % len(self._staging_node_of)]

    # -- producer/consumer mapping ------------------------------------------
    def consumer_of(self, sim_rank: int) -> int:
        """Analysis rank that consumes ``sim_rank``'s output."""
        return sim_rank % self.analysis_ranks

    def producers_of(self, arank: int) -> List[int]:
        """Simulation ranks whose output ``arank`` analyses."""
        return [r for r in range(self.sim_ranks) if self.consumer_of(r) == arank]

    def staging_target_of(self, sim_rank: int) -> int:
        """Staging rank that serves ``sim_rank`` (round-robin)."""
        if self.staging_ranks == 0:
            raise ValueError("this workflow has no staging ranks")
        return sim_rank % self.staging_ranks

    # -- per-step data volumes -------------------------------------------------
    def step_output_bytes(self) -> int:
        """Bytes one simulation rank emits per step."""
        return self.workload.output_bytes_per_step

    def blocks_per_step(self) -> int:
        """Fine-grain blocks per simulation rank per step."""
        return max(1, _ceil_div(self.step_output_bytes(), self.block_bytes))

    def consumer_step_bytes(self, arank: int) -> int:
        """Bytes analysis rank ``arank`` receives per step."""
        return self.step_output_bytes() * len(self.producers_of(arank))

    # -- tracing helpers ----------------------------------------------------
    def trace_rank_of_analysis(self, arank: int) -> int:
        """Trace-row id used for analysis ranks (placed after the sim ranks)."""
        return self.sim_ranks + arank

    def record_sim(self, rank: int, category: str, start: float, **meta) -> None:
        """Record a span ending now on a simulation rank's trace row."""
        self.tracer.record(rank, category, start, self.env.now, **meta)

    def record_analysis(self, arank: int, category: str, start: float, **meta) -> None:
        self.tracer.record(
            self.trace_rank_of_analysis(arank), category, start, self.env.now, **meta
        )

    # -- scaling ------------------------------------------------------------
    @property
    def rank_scale_factor(self) -> float:
        """How many real simulation ranks one modelled simulation rank stands for."""
        return self.total_sim_ranks / self.sim_ranks


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)
