"""Configuration of one simulated workflow run."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Optional

from repro.apps.costs import WorkloadModel
from repro.cluster.spec import ClusterSpec

if TYPE_CHECKING:
    from repro.workflow.pipeline import PipelineSpec

__all__ = ["WorkflowConfig", "MiB"]

MiB = 1024 * 1024


@dataclass(frozen=True)
class WorkflowConfig:
    """Everything needed to run one coupled simulation + analysis workflow.

    The paper's convention for core counts is followed: of ``total_cores``,
    ``sim_core_fraction`` go to the simulation application and the rest to the
    analysis application; staging resources (DataSpaces/DIMES servers, Decaf
    link processes) are allocated *in addition*, as they are in Table 1.
    """

    workload: WorkloadModel
    cluster: ClusterSpec
    transport: str = "zipper"
    #: Total cores of the represented job (simulation + analysis).
    total_cores: int = 384
    #: Fraction of ``total_cores`` devoted to the simulation application.
    sim_core_fraction: float = 2.0 / 3.0
    #: Number of simulation ranks actually simulated (representative subset).
    representative_sim_ranks: int = 8
    #: Number of analysis ranks actually simulated.  ``None`` keeps the same
    #: producer:consumer ratio as the full job.
    representative_analysis_ranks: Optional[int] = None
    #: Modelled ranks placed per modelled node (their NIC share is scaled to
    #: this many cores of a real node).
    ranks_per_modelled_node: int = 4
    #: Fine-grain block size used by Zipper (baselines ship one step at a time).
    block_bytes: int = 1 * MiB
    #: Producer-buffer capacity in blocks, and the work-stealing high-water
    #: mark.  The buffer must comfortably hold more than one step's worth of
    #: blocks, otherwise every step ends in an artificial stall.
    producer_buffer_blocks: int = 64
    high_water_mark: int = 48
    #: Enable Zipper's concurrent message+file transfer optimisation.
    concurrent_transfer: bool = True
    #: Preserve mode (persist all computed results).
    preserve: bool = False
    #: Override the workload's number of steps (``None`` keeps the workload value).
    steps: Optional[int] = None
    #: Collect a full trace (needed for the trace figures; adds overhead).
    trace: bool = True
    #: Use deterministic service times (tests) or realistic jitter (benchmarks).
    deterministic: bool = True
    seed: int = 1
    #: Number of staging ranks per 8 simulation ranks (DataSpaces/DIMES servers,
    #: Decaf link processes); transports that need none ignore it.
    staging_ranks_per_8_sim: int = 1
    #: Free-form label carried into results.
    label: str = ""
    extras: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.total_cores <= 1:
            raise ValueError("total_cores must be at least 2")
        if not 0.0 < self.sim_core_fraction < 1.0:
            raise ValueError("sim_core_fraction must lie in (0, 1)")
        if self.representative_sim_ranks <= 0:
            raise ValueError("representative_sim_ranks must be positive")
        if (
            self.representative_analysis_ranks is not None
            and self.representative_analysis_ranks <= 0
        ):
            raise ValueError("representative_analysis_ranks must be positive")
        if self.ranks_per_modelled_node <= 0:
            raise ValueError("ranks_per_modelled_node must be positive")
        if self.ranks_per_modelled_node > self.cluster.node.cores:
            raise ValueError(
                "ranks_per_modelled_node cannot exceed the node's core count"
            )
        if self.block_bytes <= 0:
            raise ValueError("block_bytes must be positive")
        if self.producer_buffer_blocks <= 0:
            raise ValueError("producer_buffer_blocks must be positive")
        if not 0 <= self.high_water_mark <= self.producer_buffer_blocks:
            raise ValueError("high_water_mark must lie in [0, producer_buffer_blocks]")
        if self.steps is not None and self.steps <= 0:
            raise ValueError("steps must be positive")
        if self.staging_ranks_per_8_sim < 0:
            raise ValueError("staging_ranks_per_8_sim must be non-negative")

    # -- derived job sizes -------------------------------------------------
    @property
    def total_sim_ranks(self) -> int:
        """Simulation ranks of the full represented job."""
        return max(1, int(round(self.total_cores * self.sim_core_fraction)))

    @property
    def total_analysis_ranks(self) -> int:
        """Analysis ranks of the full represented job."""
        return max(1, self.total_cores - self.total_sim_ranks)

    @property
    def sim_ranks(self) -> int:
        """Modelled simulation ranks."""
        return min(self.representative_sim_ranks, self.total_sim_ranks)

    @property
    def analysis_ranks(self) -> int:
        """Modelled analysis ranks."""
        if self.representative_analysis_ranks is not None:
            return min(self.representative_analysis_ranks, self.total_analysis_ranks)
        ratio = self.total_analysis_ranks / self.total_sim_ranks
        return max(1, int(round(self.sim_ranks * ratio)))

    @property
    def num_steps(self) -> int:
        """Steps actually run (the explicit override or the workload's count)."""
        return self.steps if self.steps is not None else self.workload.steps

    @property
    def effective_block_bytes(self) -> int:
        """Block size actually used (never larger than one step's output)."""
        return min(self.block_bytes, self.workload.output_bytes_per_step)

    def replace(self, **changes) -> "WorkflowConfig":
        """A copy of the config with ``changes`` applied."""
        return replace(self, **changes)

    def to_pipeline(self) -> "PipelineSpec":
        """Lower to the equivalent two-stage :class:`~repro.workflow.pipeline.PipelineSpec`."""
        from repro.workflow.pipeline import lower_config

        return lower_config(self)
