"""Simulated scientific workflows: a producer application coupled to an analysis.

This package glues together the cluster substrate (:mod:`repro.cluster`), the
simulated MPI layer (:mod:`repro.simmpi`), a workload cost model
(:mod:`repro.apps.costs`) and an I/O transport (:mod:`repro.transports`) into
one executable workflow run — the thing every figure in the paper's evaluation
measures.

The central entry point is :func:`run_workflow` (or the underlying
:class:`WorkflowRunner`), which returns a :class:`WorkflowResult` containing
the end-to-end time, per-stage breakdowns, stall/lock/barrier accounting,
network counters and, when requested, a full trace.

Large jobs are simulated with a *representative subset* of ranks
(:class:`WorkflowConfig.representative_sim_ranks`); per-rank resource shares
and collective costs are derived from the full job size so that weak-scaling
behaviour (Figures 14–18) is preserved.
"""

from repro.workflow.config import WorkflowConfig
from repro.workflow.context import WorkflowContext
from repro.workflow.result import WorkflowResult, StageBreakdown
from repro.workflow.runner import WorkflowRunner, run_workflow, simulation_only_time

__all__ = [
    "WorkflowConfig",
    "WorkflowContext",
    "WorkflowResult",
    "StageBreakdown",
    "WorkflowRunner",
    "run_workflow",
    "simulation_only_time",
]
