"""Simulated scientific workflows: stage graphs coupled through I/O transports.

This package glues together the cluster substrate (:mod:`repro.cluster`), the
simulated MPI layer (:mod:`repro.simmpi`), workload cost models
(:mod:`repro.apps.costs`) and the I/O transports (:mod:`repro.transports`)
into one executable workflow run — the thing every figure in the paper's
evaluation measures.

Workflows are declared as a :class:`PipelineSpec`: a validated DAG of
:class:`StageSpec` nodes (one per application) joined by :class:`CouplingSpec`
edges, each edge with its own transport, block size and buffering policy.
:func:`run_pipeline` (or :class:`PipelineRunner`) executes the graph and
returns a :class:`WorkflowResult` with end-to-end time, per-stage and
per-coupling breakdowns, stall/lock/barrier accounting, network counters and,
when requested, a full trace.

The historical two-application API — :class:`WorkflowConfig`,
:class:`WorkflowRunner` and :func:`run_workflow` — remains as a shim that
lowers to a two-stage pipeline (``WorkflowConfig.to_pipeline()``).

The resource split between stages may be made *elastic* by attaching an
:class:`~repro.elastic.policy.ElasticPolicy` to the spec (``elastic=...``):
an in-simulation controller then resizes stage core allocations and leases
coupling bandwidth at policy epochs, and the decisions taken are returned on
the result as a rebalance timeline (see :mod:`repro.elastic`).

Large jobs are simulated with a *representative subset* of ranks per stage
(:class:`StageSpec.representative_ranks`); per-rank resource shares and
collective costs are derived from the full job size so that weak-scaling
behaviour (Figures 14–18) is preserved.
"""

from repro.workflow.config import WorkflowConfig
from repro.workflow.context import CouplingContext, PipelineContext, WorkflowContext
from repro.workflow.pipeline import CouplingSpec, PipelineSpec, StageSpec, lower_config
from repro.workflow.result import WorkflowResult, StageBreakdown
from repro.workflow.runner import (
    PipelineRunner,
    WorkflowRunner,
    pipeline_simulation_only_time,
    run_pipeline,
    run_workflow,
    simulation_only_time,
)

__all__ = [
    "WorkflowConfig",
    "WorkflowContext",
    "CouplingContext",
    "PipelineContext",
    "StageSpec",
    "CouplingSpec",
    "PipelineSpec",
    "lower_config",
    "WorkflowResult",
    "StageBreakdown",
    "WorkflowRunner",
    "PipelineRunner",
    "run_workflow",
    "run_pipeline",
    "simulation_only_time",
    "pipeline_simulation_only_time",
]
