"""Results of a simulated workflow run.

A :class:`WorkflowResult` carries the end-to-end time, the per-stage and
per-coupling breakdowns, the aggregate transport counters and — for elastic
runs — the *rebalance timeline*: the ordered
:class:`~repro.elastic.policy.RebalanceEvent` list of every adaptation
decision the controller took.  ``docs/sweep-format.md`` documents how the
sweep store persists all of this as JSONL.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.elastic.policy import RebalanceEvent
from repro.faults.plan import FaultEvent
from repro.trace import Tracer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.tenants.spec import JobEvent

__all__ = ["StageBreakdown", "WorkflowResult"]


@dataclass(frozen=True)
class StageBreakdown:
    """Per-rank average time spent in each pipeline stage (Figure 12/13 columns)."""

    simulation: float
    transfer: float
    analysis: float
    store: float = 0.0
    stall: float = 0.0

    def dominant(self) -> str:
        """Name of the largest stage."""
        stages = {
            "simulation": self.simulation,
            "transfer": self.transfer,
            "analysis": self.analysis,
            "store": self.store,
        }
        return max(stages, key=stages.get)

    def as_dict(self) -> Dict[str, float]:
        """The five columns as a plain dict (the persisted breakdown form)."""
        return {
            "simulation": self.simulation,
            "transfer": self.transfer,
            "analysis": self.analysis,
            "store": self.store,
            "stall": self.stall,
        }


@dataclass
class WorkflowResult:
    """Everything measured from one workflow run."""

    transport: str
    end_to_end_time: float
    simulation_only_time: float
    breakdown: StageBreakdown
    #: Aggregate counters from the transport and the runner (bytes per path,
    #: lock wait time, barrier time, blocks stolen, ...).
    stats: Dict[str, float] = field(default_factory=dict)
    #: Per-simulation-rank counters (stall_time, transfer_busy_time, ...).
    #: For multi-stage pipelines these views cover the first source stage and
    #: the last sink stage; ``stage_rank_stats`` has every stage.
    sim_rank_stats: Dict[int, Dict[str, float]] = field(default_factory=dict)
    analysis_rank_stats: Dict[int, Dict[str, float]] = field(default_factory=dict)
    #: Per-stage, per-rank counters, keyed by stage name.
    stage_rank_stats: Dict[str, Dict[int, Dict[str, float]]] = field(default_factory=dict)
    #: Per-stage breakdown (each stage's own compute/transfer/analysis/store/stall).
    stage_breakdowns: Dict[str, StageBreakdown] = field(default_factory=dict)
    #: Per-coupling statistics channels, keyed by coupling name ("src->dst").
    coupling_stats: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: Transport actually used on each coupling, keyed by coupling name.
    coupling_transports: Dict[str, str] = field(default_factory=dict)
    #: Effective block size of each coupling (``block_bytes`` holds the common
    #: value, or 0 when couplings disagree).
    coupling_block_bytes: Dict[str, int] = field(default_factory=dict)
    #: Rebalance timeline of an elastic run: every stage resize, bandwidth
    #: lease and rank spawn/retire the controller applied, in decision order
    #: (empty for static runs and for elastic policies that never triggered).
    rebalances: List[RebalanceEvent] = field(default_factory=list)
    #: Lifetime count of assist ranks spawned per rank-elastic stage (empty
    #: unless a controller exercised the runner's rank lifecycle hooks); the
    #: epoch-by-epoch counts live on the ``rebalances`` timeline.
    stage_assist_ranks: Dict[str, int] = field(default_factory=dict)
    #: Fault timeline of a fault-injected run: every injection and recovery
    #: the :class:`~repro.faults.injector.FaultInjector` applied, in time
    #: order (empty for runs without a fault plan).
    faults: List[FaultEvent] = field(default_factory=list)
    #: Job timeline of a multi-tenant run: every queued/admitted/share/
    #: completed transition the :class:`~repro.tenants.TenantScheduler`
    #: recorded, in time order (empty for single-pipeline runs).
    jobs: List["JobEvent"] = field(default_factory=list)
    #: Sum of the XmitWait counter over all ports, scaled to the full job.
    xmit_wait: float = 0.0
    #: The full trace (``None`` when tracing was disabled).
    tracer: Optional[Tracer] = None
    #: Label copied from the config (used by sweep harnesses).
    label: str = ""
    total_cores: int = 0
    block_bytes: int = 0
    failed: bool = False
    failure_reason: str = ""

    @property
    def slowdown_vs_simulation(self) -> float:
        """End-to-end time relative to the simulation-only lower bound."""
        if self.simulation_only_time <= 0:
            return float("inf")
        return self.end_to_end_time / self.simulation_only_time

    def speedup_over(self, other: "WorkflowResult") -> float:
        """How much faster this run is than ``other`` (>1 means faster)."""
        if self.end_to_end_time <= 0:
            return float("inf")
        return other.end_to_end_time / self.end_to_end_time

    @property
    def stall_time(self) -> float:
        """Average per-rank simulation stall time."""
        return self.breakdown.stall

    @property
    def steal_fraction(self) -> float:
        """Fraction of produced blocks that travelled the work-stealing file path."""
        produced = self.stats.get("blocks_produced", 0.0)
        if produced <= 0:
            return 0.0
        return self.stats.get("blocks_stolen", 0.0) / produced

    def summary(self) -> str:
        """One human-readable line, used by the benchmark harnesses."""
        parts = [
            f"{self.transport:<18s}",
            f"cores={self.total_cores:<6d}",
            f"t2s={self.end_to_end_time:8.2f}s",
            f"sim-only={self.simulation_only_time:8.2f}s",
            f"x{self.slowdown_vs_simulation:5.2f}",
        ]
        if self.failed:
            parts.append(f"FAILED({self.failure_reason})")
        return "  ".join(parts)

    def stage_summary(self) -> str:
        """One line per stage (and coupling), for multi-stage pipeline runs."""
        lines = []
        for name, b in self.stage_breakdowns.items():
            lines.append(
                f"  stage {name:<14s} compute={b.simulation:7.2f}s "
                f"transfer={b.transfer:7.2f}s analysis={b.analysis:7.2f}s "
                f"store={b.store:7.2f}s stall={b.stall:7.2f}s"
            )
        for name, transport in self.coupling_transports.items():
            stats = self.coupling_stats.get(name, {})
            lines.append(
                f"  coupling {name:<22s} via {transport:<14s} "
                f"net={stats.get('bytes_network', 0.0) / 1e6:9.1f}MB "
                f"file={stats.get('bytes_file', 0.0) / 1e6:9.1f}MB"
            )
        for event in self.rebalances:
            lines.append(
                f"  rebalance t={event.time:8.2f}s epoch={event.epoch:<4d} "
                f"{event.kind:<15s} {event.donor} -> {event.receiver} "
                f"({event.amount:.2f})"
            )
        for name, spawned in self.stage_assist_ranks.items():
            lines.append(f"  assists  {name:<14s} spawned={spawned}")
        for event in self.faults:
            lines.append(
                f"  fault    t={event.time:8.2f}s {event.kind:<18s} "
                f"{event.action:<8s} {event.target}"
            )
        return "\n".join(lines)
