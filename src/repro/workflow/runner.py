"""Execute one simulated workflow and collect its results."""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Generator, List, Optional

from repro.cluster.machine import Cluster
from repro.cluster.spec import ClusterSpec
from repro.simcore import AllOf
from repro.trace import Tracer
from repro.transports.base import Transport, TransportFault
from repro.transports.registry import create_transport
from repro.workflow.config import WorkflowConfig
from repro.workflow.context import WorkflowContext
from repro.workflow.result import StageBreakdown, WorkflowResult

__all__ = ["WorkflowRunner", "run_workflow", "simulation_only_time"]


def simulation_only_time(config: WorkflowConfig) -> float:
    """Analytic simulation-only lower bound (compute kernels on the target cores)."""
    per_step = config.workload.sim_step_seconds_for_block(config.effective_block_bytes)
    return per_step * config.num_steps / config.cluster.node.core_speed


class WorkflowRunner:
    """Builds the modelled cluster, spawns all rank processes, runs the simulation."""

    def __init__(self, config: WorkflowConfig, transport: Optional[Transport] = None):
        self.config = config
        self.transport = transport if transport is not None else self._make_transport()
        self.tracer = Tracer(enabled=config.trace)
        self.cluster = self._build_cluster()
        self.ctx = WorkflowContext(config, self.cluster, self.tracer)
        self._apply_underfill_correction()

    # -- construction -------------------------------------------------------
    def _make_transport(self) -> Transport:
        return create_transport(self.config.transport)

    def _scaled_cluster_spec(self) -> ClusterSpec:
        """Scale per-node and file-system bandwidth to the modelled fraction.

        Each modelled node hosts ``ranks_per_modelled_node`` ranks but stands
        for a full node of ``cores`` ranks, so it is entitled to that fraction
        of a real node's NIC; likewise the modelled ranks are entitled to
        their fraction of the shared file system's aggregate bandwidth.
        """
        cfg = self.config
        spec = cfg.cluster
        node_fraction = cfg.ranks_per_modelled_node / spec.node.cores
        modelled_ranks = cfg.sim_ranks + cfg.analysis_ranks
        total_ranks = cfg.total_sim_ranks + cfg.total_analysis_ranks
        job_fraction = min(1.0, modelled_ranks / total_ranks)
        network = replace(
            spec.network,
            link_bandwidth=spec.network.link_bandwidth * node_fraction,
            core_link_bandwidth=spec.network.core_link_bandwidth * node_fraction,
        )
        filesystem = replace(
            spec.filesystem,
            job_share=job_fraction,
            client_node_bandwidth=spec.filesystem.client_node_bandwidth * node_fraction,
        )
        return replace(spec, network=network, filesystem=filesystem, max_nodes=None)

    def _build_cluster(self) -> Cluster:
        cfg = self.config
        rpn = cfg.ranks_per_modelled_node
        sim_nodes = -(-cfg.sim_ranks // rpn)
        analysis_nodes = -(-cfg.analysis_ranks // rpn)
        staging_ranks = (cfg.sim_ranks * cfg.staging_ranks_per_8_sim) // 8
        if cfg.staging_ranks_per_8_sim > 0:
            staging_ranks = max(1, staging_ranks)
        staging_nodes = -(-staging_ranks // rpn) if staging_ranks else 0
        num_nodes = sim_nodes + analysis_nodes + staging_nodes
        # Nodes of the full represented job (for the fabric's scale effects).
        total_ranks = cfg.total_sim_ranks + cfg.total_analysis_ranks
        total_nodes = max(num_nodes, -(-total_ranks // cfg.cluster.node.cores))
        return Cluster(
            self._scaled_cluster_spec(),
            num_nodes=num_nodes,
            total_nodes=total_nodes,
            deterministic=cfg.deterministic,
            seed=cfg.seed,
        )

    def _apply_underfill_correction(self) -> None:
        """Shrink the NIC share of modelled nodes that host fewer ranks than assumed.

        The cluster spec was scaled for ``ranks_per_modelled_node`` ranks per
        node; nodes that actually host fewer modelled ranks (typically the
        staging/link nodes, which may host a single rank) get their port
        bandwidth reduced proportionally so per-rank shares stay faithful.
        """
        ctx = self.ctx
        rpn = self.config.ranks_per_modelled_node
        ranks_on_node: Dict[int, int] = {}
        for rank in range(ctx.sim_ranks):
            ranks_on_node[ctx.sim_node(rank)] = ranks_on_node.get(ctx.sim_node(rank), 0) + 1
        for arank in range(ctx.analysis_ranks):
            node = ctx.analysis_node(arank)
            ranks_on_node[node] = ranks_on_node.get(node, 0) + 1
        for srank in range(ctx.staging_ranks):
            node = ctx.staging_node(srank)
            ranks_on_node[node] = ranks_on_node.get(node, 0) + 1
        for node, count in ranks_on_node.items():
            if count < rpn:
                ctx.cluster.network.scale_node_bandwidth(node, count / rpn)

    # -- rank processes ----------------------------------------------------------
    def _sim_rank_process(self, rank: int) -> Generator:
        ctx = self.ctx
        cfg = self.config
        workload = ctx.workload
        node = ctx.cluster.node(ctx.sim_node(rank))
        env = ctx.env
        step_seconds = workload.sim_step_seconds_for_block(ctx.block_bytes)
        left, right = (
            (rank - 1) % ctx.sim_ranks,
            (rank + 1) % ctx.sim_ranks,
        )
        for step in range(ctx.steps):
            step_start = env.now
            compute_this_step = 0.0
            for phase, fraction in workload.phase_fractions.items():
                phase_start = env.now
                yield from node.compute(step_seconds * fraction)
                compute_this_step += env.now - phase_start
                ctx.record_sim(rank, phase, phase_start, step=step)
                if (
                    phase == "streaming"
                    and workload.halo_bytes > 0
                    and workload.halo_neighbors > 0
                    and ctx.sim_ranks > 1
                ):
                    yield from ctx.sim_comm.sendrecv(
                        rank, right, workload.halo_bytes, left
                    )
                    if workload.halo_neighbors > 1:
                        yield from ctx.sim_comm.sendrecv(
                            rank, left, workload.halo_bytes, right
                        )
            ctx.sim_rank_stats[rank]["compute_time"] += compute_this_step
            put_start = env.now
            yield from self.transport.producer_put(
                ctx, rank, step, workload.output_bytes_per_step
            )
            ctx.record_sim(rank, "put", put_start, step=step)
            ctx.sim_rank_stats[rank]["put_time"] += env.now - put_start
            ctx.record_sim(rank, "step", step_start, step=step)
        yield from self.transport.producer_finalize(ctx, rank)
        ctx.sim_rank_stats[rank]["finish_time"] = env.now

    def _analysis_rank_process(self, arank: int) -> Generator:
        ctx = self.ctx
        workload = ctx.workload
        node = ctx.cluster.node(ctx.analysis_node(arank))
        env = ctx.env

        def analyze(nbytes: int, step: int) -> Generator:
            start = env.now
            yield from node.compute(workload.analysis_seconds_per_byte * nbytes)
            ctx.record_analysis(arank, "analysis", start, step=step, nbytes=nbytes)
            ctx.analysis_rank_stats[arank]["analysis_time"] += env.now - start

        yield from self.transport.consumer_run(ctx, arank, analyze)
        ctx.analysis_rank_stats[arank]["finish_time"] = env.now

    # -- execution --------------------------------------------------------------
    def run(self) -> WorkflowResult:
        ctx = self.ctx
        cfg = self.config
        env = ctx.env
        failed = False
        failure_reason = ""
        try:
            self.transport.setup(ctx)
            processes = [
                env.process(self._sim_rank_process(r)) for r in range(ctx.sim_ranks)
            ]
            processes += [
                env.process(self._analysis_rank_process(a))
                for a in range(ctx.analysis_ranks)
            ]
            env.run(until=AllOf(env, processes))
            end_to_end = max(
                [s.get("finish_time", 0.0) for s in ctx.sim_rank_stats.values()]
                + [s.get("finish_time", 0.0) for s in ctx.analysis_rank_stats.values()]
            )
        except TransportFault as fault:
            failed = True
            failure_reason = fault.reason
            end_to_end = float("nan")
        finally:
            self.transport.teardown(ctx)
        ctx.cluster.counters.query(env.now)

        breakdown = self._breakdown()
        stats = dict(ctx.stats)
        stats["events_processed"] = env.events_processed
        xmit_wait = ctx.cluster.counters.total("XmitWait") * ctx.rank_scale_factor
        return WorkflowResult(
            transport=self.transport.name,
            end_to_end_time=end_to_end,
            simulation_only_time=simulation_only_time(cfg),
            breakdown=breakdown,
            stats=stats,
            sim_rank_stats={k: dict(v) for k, v in ctx.sim_rank_stats.items()},
            analysis_rank_stats={k: dict(v) for k, v in ctx.analysis_rank_stats.items()},
            xmit_wait=xmit_wait,
            tracer=self.tracer if cfg.trace else None,
            label=cfg.label,
            total_cores=cfg.total_cores,
            block_bytes=ctx.block_bytes,
            failed=failed,
            failure_reason=failure_reason,
        )

    def _breakdown(self) -> StageBreakdown:
        ctx = self.ctx
        sim = _mean(s.get("compute_time", 0.0) for s in ctx.sim_rank_stats.values())
        stall = _mean(s.get("stall_time", 0.0) for s in ctx.sim_rank_stats.values())
        transfer = _mean(
            s.get("transfer_busy_time", 0.0) + s.get("io_write_time", 0.0)
            for s in ctx.sim_rank_stats.values()
        )
        analysis = _mean(
            s.get("analysis_time", 0.0) for s in ctx.analysis_rank_stats.values()
        )
        store = _mean(
            s.get("writer_busy_time", 0.0) for s in ctx.sim_rank_stats.values()
        ) + _mean(
            s.get("output_busy_time", 0.0) for s in ctx.analysis_rank_stats.values()
        )
        return StageBreakdown(
            simulation=sim, transfer=transfer, analysis=analysis, store=store, stall=stall
        )


def _mean(values) -> float:
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / len(values)


def run_workflow(config: WorkflowConfig, transport: Optional[Transport] = None) -> WorkflowResult:
    """Convenience wrapper: build a :class:`WorkflowRunner` and run it."""
    return WorkflowRunner(config, transport).run()
