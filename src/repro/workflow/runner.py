"""Execute one simulated workflow (a stage/coupling pipeline) and collect results.

:class:`PipelineRunner` is the general engine: it builds the modelled cluster
from the union of the stage placements, instantiates one transport per
coupling, spawns one rank-process family per stage and runs the discrete-event
simulation to completion.  Stage processes come in two shapes:

* *source* stages (no inbound coupling) run the simulation compute loop —
  phase kernels, halo exchanges — and put each step's output into every
  outbound coupling;
* *consuming* stages run each inbound coupling's ``consumer_run`` loop,
  charging their workload's per-byte analysis cost for every delivery, and —
  when they also have outbound couplings — forward each fully-consumed step
  downstream, which is how sim → analysis → visualization chains pipeline.

:class:`WorkflowRunner` is the legacy two-application API, now a thin shim
that lowers its :class:`~repro.workflow.config.WorkflowConfig` to a two-stage
pipeline and delegates.

When the pipeline carries an :class:`~repro.elastic.policy.ElasticPolicy`
(or a :class:`~repro.elastic.model_driven.ModelDrivenPolicy`), the runner
also spawns the policy's controller, which rebalances stage core
allocations and coupling bandwidth at policy epochs; its decision timeline
lands on the result's ``rebalances`` field.  For rank-elastic stages the
runner additionally exposes the *rank lifecycle hooks*
(:meth:`PipelineRunner.spawn_rank` / :meth:`PipelineRunner.retire_rank`):
a spawned rank is a real simulation process placed on the least-loaded node
of the stage's range that absorbs an offloaded slice of every primary
rank's compute through the stage's assist pool, so grown capacity shows up
as genuine added parallelism (with node placement, queueing and jitter)
rather than a bare rate multiplier.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import replace
from typing import Dict, Generator, Iterable, List, Optional

from repro.cluster.machine import Cluster
from repro.cluster.spec import ClusterSpec
from repro.elastic.controller import ElasticControllerBase
from repro.faults.injector import FaultInjector
from repro.simcore import AllOf, Container, Environment, OneShotSignal, Store
from repro.trace import Tracer
from repro.transports.base import Transport, TransportFault
from repro.transports.registry import create_transport
from repro.workflow.config import WorkflowConfig
from repro.workflow.context import CouplingContext, PipelineContext, PipelinePlacement
from repro.workflow.pipeline import PipelineSpec, lower_config
from repro.workflow.result import StageBreakdown, WorkflowResult

__all__ = [
    "PipelineRunner",
    "WorkflowRunner",
    "run_pipeline",
    "run_workflow",
    "simulation_only_time",
    "pipeline_simulation_only_time",
]


def simulation_only_time(config: WorkflowConfig) -> float:
    """Analytic simulation-only lower bound (compute kernels on the target cores)."""
    per_step = config.workload.sim_step_seconds_for_block(config.effective_block_bytes)
    return per_step * config.num_steps / config.cluster.node.core_speed


def pipeline_simulation_only_time(pipeline: PipelineSpec) -> float:
    """Analytic lower bound of a pipeline: the slowest source stage's kernels."""
    core_speed = pipeline.cluster.node.core_speed
    times = [0.0]
    for stage in pipeline.sources:
        per_step = stage.workload.sim_step_seconds_for_block(
            pipeline.stage_block_bytes(stage.name)
        )
        times.append(per_step * pipeline.stage_steps(stage.name) / core_speed)
    return max(times)


class _RetireSentinel:
    """Queue marker telling one assist rank to finish and leave its node."""


_RETIRE = _RetireSentinel()


class _AssistUnit:
    """One offloaded slice of a primary rank's compute (seconds + done latch)."""

    __slots__ = ("seconds", "done")

    def __init__(self, seconds: float, done: OneShotSignal):
        self.seconds = seconds
        self.done = done


class _AssistPool:
    """Work queue and census of one stage's spawned assist ranks."""

    __slots__ = ("queue", "active", "spawned_total", "busy_time")

    def __init__(self, env: Environment):
        self.queue = Store(env)
        #: Assist ranks currently serving (decremented at retire time, so
        #: offloads issued after a retire are sized for the smaller pool).
        self.active = 0
        #: Lifetime spawn count (for the result's rank-count census).
        self.spawned_total = 0
        #: Wall seconds the assists spent computing offloaded work.
        self.busy_time = 0.0


class PipelineRunner:
    """Builds the modelled cluster, spawns every stage's ranks, runs the pipeline.

    Parameters
    ----------
    pipeline:
        The validated stage/coupling graph to execute.
    transports:
        Optional pre-built transports keyed by coupling name (``"src->dst"``);
        couplings without an entry get ``create_transport(spec.transport,
        **spec.transport_options)``.
    """

    def __init__(
        self,
        pipeline: PipelineSpec,
        transports: Optional[Dict[str, Transport]] = None,
    ):
        self.pipeline = pipeline
        self.placement = PipelinePlacement(pipeline)
        self.tracer = Tracer(enabled=pipeline.trace)
        self.cluster = self._build_cluster()
        self.ctx = PipelineContext(pipeline, self.cluster, self.tracer, self.placement)
        overrides = dict(transports) if transports else {}
        unknown = set(overrides) - {spec.name for spec in pipeline.couplings}
        if unknown:
            raise ValueError(
                f"transport overrides for unknown couplings {sorted(unknown)}; "
                f"couplings are {[spec.name for spec in pipeline.couplings]}"
            )
        self.transports: Dict[str, Transport] = {
            spec.name: (
                overrides[spec.name]
                if spec.name in overrides
                else create_transport(spec.transport, **spec.transport_options)
            )
            for spec in pipeline.couplings
        }
        self._apply_underfill_correction()
        # Seed the per-node hosting bookkeeping from the static placement so
        # elastic rank spawns can pick the least-loaded node of a stage.
        for node_id, count in self.placement.ranks_per_node().items():
            self.cluster.node(node_id).hosted_ranks = count
        if pipeline.coalesce:
            # Declare every node's worst-case compute concurrency (one slot
            # per potential concurrent compute() of each hosted rank: a
            # consuming rank runs one consumer process per inbound coupling).
            # Nodes whose claims fit their core count can never queue a
            # compute and take the simcore uncontended fast path; elastic
            # assist spawns claim additional slots as they land.
            for stage in pipeline.stages:
                concurrency = max(1, len(pipeline.inbound(stage.name)))
                for rank in range(self.placement.stage_ranks[stage.name]):
                    self.cluster.node(
                        self.placement.stage_node(stage.name, rank)
                    ).claim_compute_slots(concurrency)
        #: Assist pools of rank-elastic stages, created on first spawn.
        self._assist_pools: Dict[str, _AssistPool] = {}
        #: The elastic adaptation loop (None for static runs).  Exposed so
        #: tests and tools can inspect allocations and the decision timeline.
        self.elastic_controller: Optional[ElasticControllerBase] = (
            pipeline.elastic.build_controller(self.ctx, runner=self)
            if pipeline.elastic is not None
            else None
        )
        #: Deterministic fault injector (None when the spec carries no fault
        #: plan or an empty one, so fault-free runs schedule zero extra
        #: events and stay bit-identical to the pre-fault engine).
        self.fault_injector: Optional[FaultInjector] = (
            FaultInjector(self.ctx, pipeline.faults, runner=self)
            if pipeline.faults is not None and pipeline.faults.specs
            else None
        )
        #: Earliest instant an *external* co-scheduler (the tenant layer) may
        #: next change this run's rates.  ``inf`` for dedicated runs — the
        #: coalescing fast path then ignores it entirely, so a run that is
        #: never contended stays bit-identical to the pre-tenant engine.
        #: Owners must express the instant in this run's local clock.
        self.next_external_change: float = float("inf")
        # Segmented-execution state (see start/advance/finish): the pending
        # all-stages completion event and the failure latch.
        self._completion: Optional[AllOf] = None
        self._run_failed = False
        self._failure_reason = ""

    # -- construction -------------------------------------------------------
    def _scaled_cluster_spec(self) -> ClusterSpec:
        """Scale per-node and file-system bandwidth to the modelled fraction.

        Each modelled node hosts ``ranks_per_modelled_node`` ranks but stands
        for a full node of ``cores`` ranks, so it is entitled to that fraction
        of a real node's NIC; likewise the modelled ranks are entitled to
        their fraction of the shared file system's aggregate bandwidth.
        """
        spec = self.pipeline.cluster
        node_fraction = self.pipeline.ranks_per_modelled_node / spec.node.cores
        job_fraction = min(1.0, self.placement.modelled_ranks / self.placement.total_ranks)
        network = replace(
            spec.network,
            link_bandwidth=spec.network.link_bandwidth * node_fraction,
            core_link_bandwidth=spec.network.core_link_bandwidth * node_fraction,
        )
        filesystem = replace(
            spec.filesystem,
            job_share=job_fraction,
            client_node_bandwidth=spec.filesystem.client_node_bandwidth * node_fraction,
        )
        return replace(spec, network=network, filesystem=filesystem, max_nodes=None)

    def _build_cluster(self) -> Cluster:
        pipeline = self.pipeline
        num_nodes = self.placement.num_nodes
        # Nodes of the full represented job (for the fabric's scale effects).
        total_nodes = max(
            num_nodes, -(-self.placement.total_ranks // pipeline.cluster.node.cores)
        )
        return Cluster(
            self._scaled_cluster_spec(),
            num_nodes=num_nodes,
            total_nodes=total_nodes,
            deterministic=pipeline.deterministic,
            seed=pipeline.seed,
            pool_events=pipeline.pool_events,
            # False defers to REPRO_SANITIZE so a whole run can be sanitized
            # from the environment; True forces the traps on for this spec.
            sanitize=pipeline.sanitize or None,
        )

    def _apply_underfill_correction(self) -> None:
        """Shrink the NIC share of modelled nodes that host fewer ranks than assumed.

        The cluster spec was scaled for ``ranks_per_modelled_node`` ranks per
        node; nodes that actually host fewer modelled ranks (typically the
        staging/link nodes, which may host a single rank) get their port
        bandwidth reduced proportionally so per-rank shares stay faithful.
        """
        rpn = self.pipeline.ranks_per_modelled_node
        for node, count in self.placement.ranks_per_node().items():
            if count < rpn:
                self.cluster.network.scale_node_bandwidth(node, count / rpn)

    # -- elastic rank lifecycle --------------------------------------------------
    def stage_assists(self, stage_name: str) -> int:
        """Assist ranks currently spawned for a stage (0 when none ever were)."""
        pool = self._assist_pools.get(stage_name)
        return pool.active if pool is not None else 0

    def spawn_rank(self, stage_name: str) -> int:
        """Spawn one assist rank for a stage; returns the new assist count.

        The rank is a real simulation process placed on the least-loaded
        node of the stage's node range (ties break towards lower node ids,
        keeping placement deterministic).  From the next compute call on,
        every primary rank of the stage offloads the ``k / (n + k)`` slice
        of its work to the pool of ``k`` assists, so the stage's delivered
        capacity grows by ``(n + k) / n`` through genuine added parallelism.
        """
        self.pipeline.stage(stage_name)  # raises KeyError for unknown stages
        pool = self._assist_pools.get(stage_name)
        if pool is None:
            pool = _AssistPool(self.ctx.env)
            self._assist_pools[stage_name] = pool
        base = self.placement.stage_node_base[stage_name]
        nodes = [
            self.cluster.node(base + offset)
            for offset in range(self.placement.stage_nodes[stage_name])
        ]
        node = min(nodes, key=lambda n: (n.hosted_ranks, n.node_id))
        node.host_rank()
        if self.pipeline.coalesce:
            node.claim_compute_slots(1)
        self.ctx.env.process(self._assist_rank_process(stage_name, node, pool))
        pool.active += 1
        pool.spawned_total += 1
        return pool.active

    def retire_rank(self, stage_name: str) -> int:
        """Retire one assist rank of a stage; returns the remaining count.

        The census shrinks immediately (offloads issued after this call are
        sized for the smaller pool); the retiring process drains queued work
        ahead of the sentinel before leaving its node, so no offloaded unit
        is ever lost.
        """
        pool = self._assist_pools.get(stage_name)
        if pool is None or pool.active <= 0:
            raise ValueError(f"stage {stage_name!r} has no assist ranks to retire")
        pool.active -= 1
        pool.queue.put(_RETIRE)
        return pool.active

    def set_assist_ranks(self, stage_name: str, count: int) -> int:
        """Spawn/retire until the stage holds ``count`` assists; returns the count."""
        if count < 0:
            raise ValueError("assist count must be non-negative")
        while self.stage_assists(stage_name) < count:
            self.spawn_rank(stage_name)
        while self.stage_assists(stage_name) > count:
            self.retire_rank(stage_name)
        return self.stage_assists(stage_name)

    def _assist_rank_process(self, stage_name: str, node, pool: _AssistPool) -> Generator:
        env = self.ctx.env
        while True:
            unit = yield pool.queue.get()
            if unit is _RETIRE:
                node.release_rank()
                if self.pipeline.coalesce:
                    node.release_compute_slots(1)
                return
            start = env.now
            yield from node.compute(unit.seconds)
            pool.busy_time += env.now - start
            unit.done.set()

    def _stage_compute(self, stage_name: str, node, reference_seconds: float) -> Generator:
        """One primary rank's compute, offloading a slice to any assist ranks.

        With no assists active this is exactly ``node.compute`` (no extra
        events — static and threshold-elastic runs are untouched).  With
        ``k`` assists behind ``n`` primaries, the primary computes the
        ``n / (n + k)`` slice locally while one assist computes the rest
        concurrently; the primary waits for both, so its recorded busy time
        is the sped-up wall time.
        """
        pool = self._assist_pools.get(stage_name)
        if pool is None or pool.active <= 0 or reference_seconds <= 0:
            yield from node.compute(reference_seconds)
            return
        ranks = self.ctx.stage_ranks(stage_name)
        offload = reference_seconds * pool.active / (ranks + pool.active)
        unit = _AssistUnit(offload, OneShotSignal(self.ctx.env))
        yield pool.queue.put(unit)
        yield from node.compute(reference_seconds - offload)
        yield unit.done.wait()

    # -- rank processes ----------------------------------------------------------
    def _source_rank_process(self, stage_name: str, rank: int) -> Generator:
        """One rank of a source stage: compute phases, halos, per-step puts.

        Per-step constants (phase chunks, halo topology, outbound transport
        bindings) are hoisted out of the step/phase loops.  When the stage's
        steps are pure compute — no mid-step halo exchange, no tracing, no
        active assist offload — runs of compute calls between coupling
        interactions are coalesced through
        :meth:`~repro.cluster.node.ComputeNode.compute_batch`: one event per
        step when every step ends in transport puts, one event for the whole
        remaining run when there are no outbound couplings.  A pending
        elastic epoch bounds every fast-forward so mid-run reallocations
        still land exactly between the same steps as on the slow path.
        """
        ctx = self.ctx
        env = ctx.env
        stage = self.pipeline.stage(stage_name)
        workload = stage.workload
        node = ctx.cluster.node(ctx.stage_node(stage_name, rank))
        comm = ctx.stage_comms[stage_name]
        stats = ctx.stage_rank_stats[stage_name][rank]
        outbound = ctx.outbound(stage_name)
        steps = ctx.stage_steps[stage_name]
        nranks = ctx.stage_ranks(stage_name)
        step_seconds = workload.sim_step_seconds_for_block(
            self.pipeline.stage_block_bytes(stage_name)
        )
        left, right = (rank - 1) % nranks, (rank + 1) % nranks
        # Hoisted per-step constants.
        phases = tuple(workload.phase_fractions.items())
        chunks = tuple(step_seconds * fraction for _phase, fraction in phases)
        halo_bytes = workload.halo_bytes
        halo_active = halo_bytes > 0 and workload.halo_neighbors > 0 and nranks > 1
        double_halo = halo_active and workload.halo_neighbors > 1
        out_bytes = ctx.stage_output_bytes[stage_name]
        puts = tuple((cctx, self.transports[cctx.name]) for cctx in outbound)
        coalescable = (
            self.pipeline.coalesce and not self.tracer.enabled and not halo_active
        )
        controller = self.elastic_controller
        injector = self.fault_injector
        pools = self._assist_pools

        step = 0
        while step < steps:
            step_start = env.now
            pool = pools.get(stage_name)
            if coalescable and node.can_batch and (pool is None or pool.active <= 0):
                # With no outbound couplings there is no interaction until the
                # end of the run, so the whole remaining step range coalesces
                # — unless a controller, fault injector or external tenant
                # scheduler may intervene, in which case segments stay one
                # step long and bounded by the next epoch/fault/share instant.
                external = self.next_external_change
                window = (
                    1
                    if (
                        puts
                        or controller is not None
                        or injector is not None
                        or external != float("inf")
                    )
                    else steps - step
                )
                deadline = (
                    controller.next_epoch_time
                    if controller is not None
                    else float("inf")
                )
                if injector is not None:
                    fault_deadline = injector.next_fault_time
                    if fault_deadline < deadline:
                        deadline = fault_deadline
                if external < deadline:
                    deadline = external
                elapsed = yield from node.compute_batch(
                    chunks, steps=window, deadline=deadline
                )
                if elapsed is not None:
                    for span in elapsed:
                        stats["compute_time"] += span
                        stats["steps_done"] += 1.0
                        put_start = env.now
                        for cctx, transport in puts:
                            yield from transport.producer_put(
                                cctx, rank, step, out_bytes
                            )
                        ctx.record_stage(stage_name, rank, "put", put_start, step=step)
                        stats["put_time"] += env.now - put_start
                        ctx.record_stage(stage_name, rank, "step", step_start, step=step)
                        step += 1
                        step_start = env.now
                    continue
                # The batch declined (an epoch decision lands inside this
                # step): run the exact per-phase sequence below, which sees
                # any mid-step reallocation or assist spawn chunk by chunk.
            compute_this_step = 0.0
            for (phase, _fraction), chunk in zip(phases, chunks):
                phase_start = env.now
                yield from self._stage_compute(stage_name, node, chunk)
                compute_this_step += env.now - phase_start
                ctx.record_stage(stage_name, rank, phase, phase_start, step=step)
                if phase == "streaming" and halo_active:
                    yield from comm.sendrecv(rank, right, halo_bytes, left)
                    if double_halo:
                        yield from comm.sendrecv(rank, left, halo_bytes, right)
            stats["compute_time"] += compute_this_step
            # Per-stage progress counter for the elastic monitor/perf model:
            # unlike coupling byte flow (which measures the *transfer*, not
            # the stage), this advances only when the stage itself does.
            stats["steps_done"] += 1.0
            put_start = env.now
            for cctx, transport in puts:
                yield from transport.producer_put(cctx, rank, step, out_bytes)
            ctx.record_stage(stage_name, rank, "put", put_start, step=step)
            stats["put_time"] += env.now - put_start
            ctx.record_stage(stage_name, rank, "step", step_start, step=step)
            step += 1
        for cctx, transport in puts:
            yield from transport.producer_finalize(cctx, rank)
        stats["finish_time"] = env.now

    def _consumer_rank_process(self, stage_name: str, rank: int) -> Generator:
        """One rank of a consuming stage.

        Drives every inbound coupling's consumer loop and forwards
        fully-consumed steps into the outbound couplings.
        """
        ctx = self.ctx
        env = ctx.env
        stage = self.pipeline.stage(stage_name)
        workload = stage.workload
        node = ctx.cluster.node(ctx.stage_node(stage_name, rank))
        stats = ctx.stage_rank_stats[stage_name][rank]
        inbound = ctx.inbound(stage_name)
        outbound = ctx.outbound(stage_name)
        out_bytes = ctx.stage_output_bytes[stage_name]
        out_pairs = tuple((oc, self.transports[oc.name]) for oc in outbound)
        expected_per_step = sum(
            self.transports[cctx.name].consumer_deliveries_per_step(cctx, rank)
            for cctx in inbound
        )
        step_progress: Dict[int, int] = {}
        # Steps can *complete* out of order (fine-grain inbound blocks arrive
        # interleaved across steps), but downstream producer contracts assume
        # in-order per-rank puts (MPI-IO visibility bookkeeping, DIMES's
        # circular step window) — so hold completed steps back and flush them
        # in step order.
        ready_steps: set = set()
        forward_state = {"next": 0}
        # With several inbound couplings, two consumer processes of this rank
        # can flush concurrently; serialise them so transports with collective
        # producer sync (e.g. MPI-IO barriers) never see two concurrent calls
        # from one rank.
        forward_mutex = (
            Container(env, capacity=1, init=1)
            if outbound and len(inbound) > 1
            else None
        )

        pools = self._assist_pools
        tracing = self.tracer.enabled
        cost_at = workload.analysis_seconds_per_byte_at

        def analyze(nbytes: int, step: int) -> Generator:
            """Charge the analysis cost for one delivery; forward complete steps."""
            start = env._now
            # One delivery per fine-grain block makes this the consumer hot
            # path: with no assist pool active, _stage_compute is exactly
            # node.compute, so the extra generator frame is skipped.
            pool = pools.get(stage_name)
            if pool is None or pool.active <= 0:
                yield from node.compute(cost_at(step) * nbytes)
            else:
                yield from self._stage_compute(stage_name, node, cost_at(step) * nbytes)
            if tracing:
                ctx.record_stage(
                    stage_name, rank, "analysis", start, step=step, nbytes=nbytes
                )
            stats["analysis_time"] += env._now - start
            # Consumption progress (bytes actually analysed), the consuming
            # stages' equivalent of the sources' steps_done counter.
            stats["bytes_done"] += nbytes
            if outbound:
                step_progress[step] = step_progress.get(step, 0) + 1
                if step_progress[step] == expected_per_step:
                    ready_steps.add(step)
                    if forward_mutex is not None:
                        yield forward_mutex.get(1)
                    while forward_state["next"] in ready_steps:
                        flush = forward_state["next"]
                        put_start = env.now
                        for oc, transport in out_pairs:
                            yield from transport.producer_put(oc, rank, flush, out_bytes)
                        ctx.record_stage(stage_name, rank, "put", put_start, step=flush)
                        stats["put_time"] += env.now - put_start
                        ready_steps.discard(flush)
                        forward_state["next"] += 1
                    if forward_mutex is not None:
                        yield forward_mutex.put(1)
                elif step_progress[step] > expected_per_step:
                    # A transport whose consumer_run delivers more often than
                    # its consumer_deliveries_per_step hook reports would
                    # silently duplicate data downstream; fail loudly instead.
                    raise RuntimeError(
                        f"stage {stage_name!r} rank {rank} received "
                        f"{step_progress[step]} deliveries for step {step} but "
                        f"the inbound transports reported {expected_per_step} "
                        "per step; fix consumer_deliveries_per_step"
                    )

        if len(inbound) == 1:
            cctx = inbound[0]
            yield from self.transports[cctx.name].consumer_run(cctx, rank, analyze)
        else:
            consumers = [
                env.process(self.transports[cctx.name].consumer_run(cctx, rank, analyze))
                for cctx in inbound
            ]
            yield AllOf(env, consumers)
        if outbound and forward_state["next"] < ctx.stage_steps[stage_name]:
            # The mirror of the over-delivery guard in analyze(): a transport
            # that delivered fewer calls per step than its hook reported (or
            # none at all for some step) left steps unforwarded, which would
            # starve the downstream stages.
            raise RuntimeError(
                f"stage {stage_name!r} rank {rank} only forwarded "
                f"{forward_state['next']} of {ctx.stage_steps[stage_name]} steps "
                f"({expected_per_step} deliveries per step expected); fix "
                "consumer_deliveries_per_step"
            )
        for oc, transport in out_pairs:
            yield from transport.producer_finalize(oc, rank)
        stats["finish_time"] = env.now

    def _stage_rank_process(self, stage_name: str, rank: int) -> Generator:
        if not self.ctx.inbound(stage_name):
            return self._source_rank_process(stage_name, rank)
        return self._consumer_rank_process(stage_name, rank)

    # -- execution --------------------------------------------------------------
    def run(self) -> WorkflowResult:
        """Execute the pipeline to completion and assemble the result."""
        try:
            self.start()
            self.advance(float("inf"))
        except BaseException:
            # Mirror the pre-segmentation behaviour: any error other than a
            # TransportFault (which advance() latches) still tears the
            # transports down before propagating.
            for cctx in self.ctx.couplings:
                self.transports[cctx.name].teardown(cctx)
            raise
        return self.finish()

    def start(self) -> None:
        """Set up every transport and spawn every simulated process.

        The first third of a segmented run (used by the tenant scheduler to
        co-schedule many runners): after ``start()`` the run is live but no
        event has been processed; drive it with :meth:`advance` and collect
        the result with :meth:`finish`.  ``run()`` composes the three for
        the ordinary dedicated case.
        """
        ctx = self.ctx
        env = ctx.env
        try:
            for cctx in ctx.couplings:
                self.transports[cctx.name].setup(cctx)
        except TransportFault as fault:
            # A modelled setup-time failure (e.g. Decaf's overflow check) is
            # a *result*, not a crash: latch it so finish() reports it.
            self._run_failed = True
            self._failure_reason = fault.reason
            return
        processes = [
            env.process(self._stage_rank_process(stage.name, rank))
            for stage in self.pipeline.stages
            for rank in range(ctx.stage_ranks(stage.name))
        ]
        if self.elastic_controller is not None:
            self.elastic_controller.start()
        if self.fault_injector is not None:
            self.fault_injector.start()
        self._completion = AllOf(env, processes)

    @property
    def finished(self) -> bool:
        """True once every stage process completed (or the run failed)."""
        return self._run_failed or (
            self._completion is not None and self._completion.callbacks is None
        )

    def advance(self, until: float = float("inf")) -> bool:
        """Advance the run until it completes or the clock reaches ``until``.

        Returns True when the run is finished (all stage processes done, or
        a transport fault latched the failure), False when it stopped at the
        time bound with work still pending.  On completion the environment
        clock is the actual completion instant; at a bound it is exactly
        ``until`` — both via :meth:`~repro.simcore.Environment.run_bounded`,
        so a single unbounded ``advance`` is bit-identical to the
        pre-segmentation ``env.run(until=AllOf(...))``.
        """
        if self.finished:
            return True
        if self._completion is None:
            raise RuntimeError("PipelineRunner.advance() called before start()")
        try:
            return self.ctx.env.run_bounded(self._completion, until)
        except TransportFault as fault:
            self._run_failed = True
            self._failure_reason = fault.reason
            return True

    def finish(self) -> WorkflowResult:
        """Tear the transports down and assemble the :class:`WorkflowResult`."""
        ctx = self.ctx
        env = ctx.env
        pipeline = self.pipeline
        failed = self._run_failed
        failure_reason = self._failure_reason
        if failed:
            end_to_end = float("nan")
        else:
            end_to_end = max(
                stats.get("finish_time", 0.0)
                for per_stage in ctx.stage_rank_stats.values()
                for stats in per_stage.values()
            )
        for cctx in ctx.couplings:
            self.transports[cctx.name].teardown(cctx)
        ctx.cluster.counters.query(env.now)

        stats: Dict[str, float] = defaultdict(float)
        for cctx in ctx.couplings:
            for key, value in cctx.stats.items():
                # Rank-identity keys (consumer_<n>_...) from different
                # couplings describe different stages' ranks; summing them
                # would be meaningless, so namespace them instead.  Additive
                # counters (bytes, blocks, waits) aggregate as before.
                if key.startswith("consumer_") and len(ctx.couplings) > 1:
                    stats[f"{cctx.name}/{key}"] += value
                else:
                    stats[key] += value
        stats = dict(stats)
        for name, pool in self._assist_pools.items():
            # Rank-elastic runs surface what the spawned assists contributed;
            # static runs never create pools, so their stats are unchanged.
            if pool.spawned_total > 0:
                stats[f"{name}/assist_busy_time"] = pool.busy_time
        # The elastic controller's wake-ups are instrumentation, not modelled
        # workload; subtracting them keeps a never-triggering policy's event
        # count bit-identical to the equivalent static run.
        controller_events = (
            self.elastic_controller.events_consumed
            if self.elastic_controller is not None
            else 0
        )
        stats["events_processed"] = env.events_processed - controller_events
        xmit_wait = ctx.cluster.counters.total("XmitWait") * ctx.rank_scale_factor

        stage_rank_stats = {
            name: {rank: dict(v) for rank, v in per_stage.items()}
            for name, per_stage in ctx.stage_rank_stats.items()
        }
        sources = [s.name for s in pipeline.sources]
        sinks = [s.name for s in pipeline.sinks]
        sim_stats = stage_rank_stats.get(sources[0], {}) if sources else {}
        analysis_stats = stage_rank_stats.get(sinks[-1], {}) if sinks else {}
        return WorkflowResult(
            transport=self._transport_label(),
            end_to_end_time=end_to_end,
            simulation_only_time=pipeline_simulation_only_time(pipeline),
            breakdown=self._breakdown(),
            stats=stats,
            sim_rank_stats=sim_stats,
            analysis_rank_stats=analysis_stats,
            xmit_wait=xmit_wait,
            tracer=self.tracer if pipeline.trace else None,
            label=pipeline.label,
            total_cores=pipeline.total_cores,
            block_bytes=self._common_block_bytes(),
            failed=failed,
            failure_reason=failure_reason,
            stage_rank_stats=stage_rank_stats,
            stage_breakdowns=self._stage_breakdowns(),
            coupling_stats={c.name: dict(c.stats) for c in ctx.couplings},
            coupling_transports={
                c.name: self.transports[c.name].name for c in ctx.couplings
            },
            coupling_block_bytes={c.name: c.block_bytes for c in ctx.couplings},
            rebalances=(
                list(self.elastic_controller.timeline)
                if self.elastic_controller is not None
                else []
            ),
            # Injector events stay in events_processed: faults are modelled
            # workload (unlike the controller's instrumentation wake-ups);
            # fault-free runs create no injector at all.
            faults=(
                list(self.fault_injector.timeline)
                if self.fault_injector is not None
                else []
            ),
            stage_assist_ranks={
                name: pool.spawned_total
                for name, pool in self._assist_pools.items()
                if pool.spawned_total > 0
            },
        )

    def _common_block_bytes(self) -> int:
        """The block size shared by every coupling, or 0 when they disagree."""
        sizes = {c.block_bytes for c in self.ctx.couplings}
        if not sizes:
            return self.pipeline.block_bytes
        return sizes.pop() if len(sizes) == 1 else 0

    def _transport_label(self) -> str:
        if not self.pipeline.couplings:
            return "none"
        if len(self.pipeline.couplings) == 1:
            return self.transports[self.pipeline.couplings[0].name].name
        return ",".join(
            f"{spec.name}:{self.transports[spec.name].name}"
            for spec in self.pipeline.couplings
        )

    # -- result assembly ---------------------------------------------------------
    def _stage_values(self, stage_names: Iterable[str], *keys: str) -> List[float]:
        """Per-rank sums of ``keys`` over every rank of the given stages."""
        return [
            sum(stats.get(key, 0.0) for key in keys)
            for name in stage_names
            for stats in self.ctx.stage_rank_stats[name].values()
        ]

    def _breakdown_for(
        self,
        sources: List[str],
        producers: List[str],
        consumers: List[str],
    ) -> StageBreakdown:
        """The stat-key -> breakdown-field mapping, shared by both views."""
        return StageBreakdown(
            simulation=_mean(self._stage_values(sources, "compute_time")),
            transfer=_mean(
                self._stage_values(producers, "transfer_busy_time", "io_write_time")
            ),
            analysis=_mean(self._stage_values(consumers, "analysis_time")),
            store=_mean(self._stage_values(producers, "writer_busy_time"))
            + _mean(self._stage_values(consumers, "output_busy_time")),
            stall=_mean(self._stage_values(sources, "stall_time")),
        )

    def _breakdown(self) -> StageBreakdown:
        pipeline = self.pipeline
        sources = [s.name for s in pipeline.sources]
        producers = [s.name for s in pipeline.stages if pipeline.outbound(s.name)]
        consumers = [s.name for s in pipeline.stages if pipeline.inbound(s.name)]
        return self._breakdown_for(sources, producers, consumers)

    def _stage_breakdowns(self) -> Dict[str, StageBreakdown]:
        return {
            stage.name: self._breakdown_for(
                [stage.name], [stage.name], [stage.name]
            )
            for stage in self.pipeline.stages
        }


class WorkflowRunner:
    """Legacy two-application API: lowers the config to a two-stage pipeline.

    Keeps the historical surface — ``config``, ``transport``, ``cluster``,
    ``ctx`` (the single coupling's context) and :meth:`run` — while all
    execution happens in :class:`PipelineRunner`.
    """

    def __init__(self, config: WorkflowConfig, transport: Optional[Transport] = None):
        self.config = config
        pipeline = lower_config(config)
        overrides: Optional[Dict[str, Transport]] = None
        if transport is not None:
            overrides = {pipeline.couplings[0].name: transport}
        self._runner = PipelineRunner(pipeline, transports=overrides)
        self.pipeline = pipeline
        self.transport = self._runner.transports[pipeline.couplings[0].name]
        self.tracer = self._runner.tracer
        self.cluster = self._runner.cluster
        self.ctx: CouplingContext = self._runner.ctx.couplings[0]

    def run(self) -> WorkflowResult:
        """Run the lowered pipeline and return the legacy-shaped result."""
        result = self._runner.run()
        # The legacy analytic lower bound is defined on the config (identical
        # for faithful lowerings, but keep the historical code path).
        result.simulation_only_time = simulation_only_time(self.config)
        return result


def _mean(values) -> float:
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / len(values)


def run_workflow(config: WorkflowConfig, transport: Optional[Transport] = None) -> WorkflowResult:
    """Convenience wrapper: build a :class:`WorkflowRunner` and run it."""
    return WorkflowRunner(config, transport).run()


def run_pipeline(
    pipeline: PipelineSpec, transports: Optional[Dict[str, Transport]] = None
) -> WorkflowResult:
    """Convenience wrapper: build a :class:`PipelineRunner` and run it."""
    return PipelineRunner(pipeline, transports).run()
