"""Co-schedule many pipelines on one shared facility, epoch by epoch.

The :class:`TenantScheduler` is an ordinary simulated process in its own
*facility* :class:`~repro.simcore.Environment`: it sleeps from epoch
boundary to epoch boundary, admits arriving jobs per the configured policy,
partitions the facility's cores and network bandwidth across the active
jobs, and records every transition as a
:class:`~repro.tenants.spec.JobEvent`.  Each admitted job keeps its **own**
:class:`~repro.workflow.runner.PipelineRunner` — private event queue,
private cluster model — advanced segment by segment through
:meth:`~repro.workflow.runner.PipelineRunner.advance` (a job's local clock
is facility time minus its admit time).  Shares change *only* at epoch
boundaries, through the third orthogonal rate factor
(:meth:`~repro.cluster.machine.Cluster.set_tenant_scale` and
:meth:`~repro.workflow.context.CouplingContext.set_tenant_share`), so a
contended run is deterministic, replayable from its timeline, and composes
cleanly with the elastic controller's allocation scale and the fault
injector's fault scale.

Two policies (see :data:`~repro.tenants.spec.POLICIES`):

* ``fcfs`` — dedicated FCFS: a job is admitted only when its full core
  demand fits the free capacity (head-of-line blocking) and then runs at
  scale 1.0 throughout, which makes every FCFS job bit-identical to its
  dedicated run, just time-shifted by its admission wait;
* ``fair`` — weighted fair share: every waiting job is admitted at the next
  boundary and the capacity is water-filled across the active set by
  weight, each job's compute *and* coupling bandwidth scaled to
  ``grant/demand``.

The facility environment's own events (the scheduler's boundary sleeps)
are instrumentation, not modelled workload — exactly like the elastic
controller's wake-ups — so the facility result's ``events_processed`` is
the sum of the *jobs'* counts, and a solo, arrival-at-zero job reproduces
its dedicated payload byte for byte.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, Dict, Generator, List, Optional

from repro.simcore import Environment
from repro.tenants.spec import JobEvent, JobSpec, TenantSpec
from repro.workflow.pipeline import PipelineSpec
from repro.workflow.result import StageBreakdown, WorkflowResult
from repro.workflow.runner import (
    PipelineRunner,
    pipeline_simulation_only_time,
    run_pipeline,
)

__all__ = ["TenantScheduler", "run_tenants", "water_fill", "jain_index"]


def water_fill(
    demands: Dict[str, float], weights: Dict[str, float], capacity: float
) -> Dict[str, float]:
    """Weighted max-min grants: water-fill ``capacity`` across the demands.

    Each job is offered ``capacity * weight / total_weight``; jobs whose
    offer covers their demand are capped at the demand and their surplus is
    redistributed across the rest, repeated until no offer is capped.  The
    grants therefore sum to ``min(capacity, total demand)`` (up to float
    rounding) — the conservation invariant the property harness replays.
    """
    grants = {name: 0.0 for name in demands}
    remaining = float(capacity)
    live = sorted(demands)
    while live:
        total_weight = sum(weights[name] for name in live)
        offers = {
            name: remaining * weights[name] / total_weight for name in live
        }
        capped = [name for name in live if offers[name] >= demands[name]]
        if not capped:
            for name in live:
                grants[name] = offers[name]
            break
        for name in capped:
            grants[name] = demands[name]
            remaining = max(0.0, remaining - demands[name])
        live = [name for name in live if name not in capped]
    return grants


def jain_index(values: List[float]) -> float:
    """Jain's fairness index of ``values``: 1.0 is perfectly fair, 1/n worst."""
    if not values:
        return 1.0
    total = sum(values)
    squares = sum(v * v for v in values)
    if squares <= 0:
        return 1.0
    return (total * total) / (len(values) * squares)


class _JobRun:
    """One admitted job's live state: runner, admit time, current share."""

    __slots__ = ("job", "runner", "admit", "share", "finish")

    def __init__(self, job: JobSpec, runner: PipelineRunner, admit: float):
        self.job = job
        self.runner = runner
        self.admit = admit
        self.share = 1.0
        self.finish = float("nan")


class TenantScheduler:
    """Runs a :class:`~repro.tenants.spec.TenantSpec` to completion."""

    def __init__(self, spec: TenantSpec, env: Optional[Environment] = None):
        self.spec = spec
        #: The facility clock (instrumentation only; see the module docs).
        self.env = env if env is not None else Environment()
        #: Every recorded job transition, time-ordered once the run ends.
        self.timeline: List[JobEvent] = []
        #: Per-job :class:`WorkflowResult`, keyed by job name.
        self.job_results: Dict[str, WorkflowResult] = {}
        #: Dedicated (solo-run) end-to-end time per job name, the slowdown
        #: denominator; filled lazily and cached per pipeline object.
        self.baseline_times: Dict[str, float] = {}
        self._finished: List[_JobRun] = []
        self._baseline_cache: Dict[int, float] = {}

    # -- recording -----------------------------------------------------------
    def _record(
        self, when: float, kind: str, job: JobSpec, detail: Dict[str, float]
    ) -> None:
        self.timeline.append(
            JobEvent(time=when, kind=kind, job=job.name, tenant=job.tenant, detail=detail)
        )

    # -- the scheduler process ----------------------------------------------
    def start(self) -> None:
        """Spawn the scheduler process (call once, before ``env.run``)."""
        self.env.process(self._run())

    def _run(self) -> Generator:
        env = self.env
        spec = self.spec
        epoch = spec.epoch_seconds
        capacity = float(spec.capacity)
        pending: Deque[JobSpec] = deque(
            sorted(spec.jobs, key=lambda job: (job.arrival, job.name))
        )
        waiting: Deque[JobSpec] = deque()
        active: Dict[str, _JobRun] = {}
        boundary = 0  # epoch index: decisions happen only at boundary * epoch
        while pending or waiting or active:
            if not waiting and not active and pending:
                # Idle facility: jump to the first boundary at/after the
                # next arrival instead of sleeping through empty epochs.
                jump = int(math.ceil(pending[0].arrival / epoch - 1e-12))
                boundary = max(boundary, jump)
            now = boundary * epoch
            if now > env.now:
                yield env.sleep_until(now)
            while pending and pending[0].arrival <= now:
                job = pending.popleft()
                waiting.append(job)
                self._record(job.arrival, "queued", job, {"arrival": job.arrival})
            if not waiting and not active:
                # Float guard: the jump boundary can land one ulp short of
                # the arrival; the next boundary certainly covers it.
                boundary += 1
                continue
            self._admit(waiting, active, now, capacity)
            contended = self._apply_shares(
                active, now, capacity, more_jobs_coming=bool(waiting or pending)
            )
            horizon = (boundary + 1) * epoch
            for name in sorted(active):
                run = active[name]
                # A job alone in the facility with nothing queued or still
                # to arrive can never be preempted: run it to completion in
                # one unbounded segment (bit-identical to a dedicated run).
                solo = (
                    not contended
                    and len(active) == 1
                    and not waiting
                    and not pending
                )
                bound = float("inf") if solo else horizon - run.admit
                if run.runner.advance(bound):
                    self._complete(run)
                    del active[name]
            boundary += 1

    def _admit(
        self,
        waiting: Deque[JobSpec],
        active: Dict[str, _JobRun],
        now: float,
        capacity: float,
    ) -> None:
        """Admit waiting jobs in arrival order, per the configured policy."""
        spec = self.spec
        used = sum(run.job.demand for run in active.values())
        while waiting:
            job = waiting[0]
            if spec.policy == "fcfs" and used + job.demand > capacity:
                # Dedicated admission is strict FCFS: the head of the queue
                # blocks everything behind it until capacity frees up.
                break
            waiting.popleft()
            pipeline: PipelineSpec = (
                job.pipeline.replace(trace=True) if spec.trace else job.pipeline
            )
            runner = PipelineRunner(pipeline)
            runner.start()
            active[job.name] = _JobRun(job, runner, now)
            used += job.demand
            self._record(
                now,
                "admitted",
                job,
                {
                    "wait": now - job.arrival,
                    "demand": float(job.demand),
                    "weight": job.weight,
                    "share": 1.0,
                },
            )

    def _apply_shares(
        self,
        active: Dict[str, _JobRun],
        now: float,
        capacity: float,
        more_jobs_coming: bool,
    ) -> bool:
        """Partition the facility across the active jobs; returns contention."""
        spec = self.spec
        if spec.policy == "fcfs":
            # Admission guaranteed the active demands fit: every job runs
            # dedicated, shares never move, coalescing stays unbounded.
            for run in active.values():
                run.runner.next_external_change = float("inf")
            return False
        demands = {name: float(run.job.demand) for name, run in active.items()}
        weights = {name: run.job.weight for name, run in active.items()}
        grants = water_fill(demands, weights, capacity)
        contended = sum(demands.values()) > capacity
        for name in sorted(active):
            run = active[name]
            share = grants[name] / demands[name]
            if share != run.share:
                self._apply_share(run, share, grants[name], demands[name], now)
            # Shares can move again only while the facility is contended or
            # more jobs may join; otherwise the coalescing fast path may
            # batch freely (the run is indistinguishable from dedicated).
            run.runner.next_external_change = (
                (now + spec.epoch_seconds) - run.admit
                if (contended or more_jobs_coming)
                else float("inf")
            )
        return contended

    def _apply_share(
        self, run: _JobRun, share: float, grant: float, demand: float, now: float
    ) -> None:
        """Apply one job's new facility share to its cluster and couplings."""
        run.runner.cluster.set_tenant_scale(share)
        for cctx in run.runner.ctx.couplings:
            cctx.set_tenant_share(share)
        self._record(
            now,
            "share",
            run.job,
            {
                "share": share,
                "previous": run.share,
                "grant": grant,
                "demand": demand,
            },
        )
        run.share = share

    def _complete(self, run: _JobRun) -> None:
        """Collect a finished job's result and record its completion."""
        result = run.runner.finish()
        finish = run.admit + run.runner.ctx.env.now
        run.finish = finish
        self.job_results[run.job.name] = result
        self._finished.append(run)
        self._record(
            finish,
            "completed",
            run.job,
            {
                "wait": run.admit - run.job.arrival,
                "turnaround": finish - run.job.arrival,
                "run": finish - run.admit,
                "failed": 1.0 if result.failed else 0.0,
            },
        )

    # -- results -------------------------------------------------------------
    def _baseline_time(self, job: JobSpec) -> float:
        """Dedicated end-to-end time of a job's pipeline (cached per object)."""
        key = id(job.pipeline)
        if key not in self._baseline_cache:
            self._baseline_cache[key] = run_pipeline(job.pipeline).end_to_end_time
        self.baseline_times[job.name] = self._baseline_cache[key]
        return self._baseline_cache[key]

    def run(self) -> WorkflowResult:
        """Execute the facility to completion and assemble the result."""
        self.start()
        self.env.run()
        self.timeline.sort(key=lambda event: event.time)  # stable: ties keep order
        return self._facility_result()

    def _facility_result(self) -> WorkflowResult:
        spec = self.spec
        runs = self._finished
        results = [self.job_results[run.job.name] for run in runs]
        failed = [run for run in runs if self.job_results[run.job.name].failed]
        slowdowns: List[float] = []
        per_job_slowdown: Dict[str, float] = {}
        waits: List[float] = []
        for run in runs:
            waits.append(run.admit - run.job.arrival)
            if self.job_results[run.job.name].failed:
                continue
            baseline = self._baseline_time(run.job)
            if baseline > 0:
                slowdown = (run.finish - run.job.arrival) / baseline
                slowdowns.append(slowdown)
                per_job_slowdown[run.job.name] = slowdown
        stats: Dict[str, float] = {
            "events_processed": sum(
                int(result.stats.get("events_processed", 0)) for result in results
            ),
            "jobs": float(len(runs)),
            "jobs_failed": float(len(failed)),
            "scheduler_events": float(self.env.events_processed),
            "mean_wait": (sum(waits) / len(waits)) if waits else 0.0,
            "aggregate_slowdown": (
                sum(slowdowns) / len(slowdowns) if slowdowns else float("nan")
            ),
            "fairness_jain": jain_index(slowdowns),
        }
        for tenant in spec.tenants:
            tenant_runs = [run for run in runs if run.job.tenant == tenant]
            if not tenant_runs:
                continue
            tenant_slow = [
                per_job_slowdown[run.job.name]
                for run in tenant_runs
                if run.job.name in per_job_slowdown
            ]
            stats[f"tenant/{tenant}/jobs"] = float(len(tenant_runs))
            stats[f"tenant/{tenant}/mean_wait"] = sum(
                run.admit - run.job.arrival for run in tenant_runs
            ) / len(tenant_runs)
            stats[f"tenant/{tenant}/makespan"] = max(
                run.finish for run in tenant_runs
            ) - min(run.job.arrival for run in tenant_runs)
            if tenant_slow:
                stats[f"tenant/{tenant}/mean_slowdown"] = sum(tenant_slow) / len(
                    tenant_slow
                )
        breakdown = StageBreakdown(
            simulation=sum(result.breakdown.simulation for result in results),
            transfer=sum(result.breakdown.transfer for result in results),
            analysis=sum(result.breakdown.analysis for result in results),
            store=sum(result.breakdown.store for result in results),
            stall=sum(result.breakdown.stall for result in results),
        )
        return WorkflowResult(
            transport="tenants",
            end_to_end_time=max(run.finish for run in runs) if runs else 0.0,
            simulation_only_time=max(
                pipeline_simulation_only_time(job.pipeline) for job in spec.jobs
            ),
            breakdown=breakdown,
            stats=stats,
            xmit_wait=sum(result.xmit_wait for result in results),
            label=spec.label,
            total_cores=spec.capacity,
            failed=bool(failed),
            failure_reason=(
                f"job {failed[0].job.name}: "
                f"{self.job_results[failed[0].job.name].failure_reason}"
                if failed
                else ""
            ),
            jobs=list(self.timeline),
        )


def run_tenants(spec: TenantSpec) -> WorkflowResult:
    """Run a multi-tenant facility and return the facility-level result.

    The one-call entry point the sweep engine dispatches
    :class:`~repro.tenants.spec.TenantSpec` configs to; build a
    :class:`TenantScheduler` directly to additionally inspect the per-job
    :class:`~repro.workflow.result.WorkflowResult`\\ s and dedicated
    baselines.
    """
    return TenantScheduler(spec).run()
