"""Multi-tenant vocabulary: jobs, arrival processes, and the job timeline.

A :class:`JobSpec` names one unit of facility work (a tenant's pipeline plus
its arrival time and fair-share weight); a :class:`TenantSpec` is the
immutable facility configuration the sweep engine executes — a job queue, a
co-scheduling policy, the shared core capacity and the scheduling epoch.
Job queues are either hand-written or generated from a seeded
:class:`ArrivalProcess` (fixed schedule, Poisson, or bursty) through
:func:`job_queue`, which draws every arrival instant from a label-derived
:class:`~repro.simcore.rng.RandomStreams` stream so the same label and seed
always reproduce the same queue.

:class:`JobEvent` is the recorded timeline — one entry per queued / admitted
/ share-change / completed transition the
:class:`~repro.tenants.scheduler.TenantScheduler` applied — mirroring the
fault layer's :class:`~repro.faults.plan.FaultEvent`
(``as_dict``/``from_dict`` round-trip through the sweep's JSONL store).

This module depends only on the stdlib and the simcore RNG helper so the
workflow layer can reference it without cycles (the pipeline type is only
checked lazily, at job construction time).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace
from typing import TYPE_CHECKING, Any, Dict, Mapping, Tuple

from repro.simcore.rng import RandomStreams

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.workflow.pipeline import PipelineSpec

__all__ = [
    "POLICIES",
    "EVENT_KINDS",
    "ArrivalProcess",
    "JobSpec",
    "TenantSpec",
    "JobEvent",
    "job_queue",
]

#: Co-scheduling policies the :class:`~repro.tenants.scheduler.TenantScheduler`
#: understands.  ``fcfs`` admits jobs in arrival order only while their full
#: core demand fits the free capacity (dedicated rates, head-of-line
#: blocking); ``fair`` admits every waiting job and water-fills the capacity
#: across the active set by weight.
POLICIES: Tuple[str, ...] = ("fcfs", "fair")

#: Every transition kind the scheduler records on the job timeline.
EVENT_KINDS: Tuple[str, ...] = ("queued", "admitted", "share", "completed")


@dataclass(frozen=True)
class ArrivalProcess:
    """A seeded generator of job arrival instants.

    Three kinds: ``fixed`` replays the explicit ``times`` tuple; ``poisson``
    draws ``count`` exponential inter-arrival gaps with mean ``1/rate``;
    ``bursty`` groups ``count`` jobs into bursts of ``burst_size``
    simultaneous arrivals whose burst gaps average ``burst_size/rate`` (so
    the long-run rate matches the Poisson process it contends against).
    Use the :meth:`fixed` / :meth:`poisson` / :meth:`bursty` constructors;
    the dataclass fields exist so specs hash and replicate like every other
    sweep config.
    """

    kind: str
    times: Tuple[float, ...] = ()
    count: int = 0
    rate: float = 1.0
    burst_size: int = 1
    start: float = 0.0

    def __post_init__(self) -> None:
        """Validate the process eagerly so bad queues fail at build time."""
        if self.kind not in ("fixed", "poisson", "bursty"):
            raise ValueError(
                f"unknown arrival kind {self.kind!r}; "
                "expected fixed, poisson or bursty"
            )
        if not isinstance(self.times, tuple):
            object.__setattr__(self, "times", tuple(self.times))
        if self.kind == "fixed":
            if not self.times:
                raise ValueError("fixed arrivals need at least one time")
            if any(t < 0 for t in self.times):
                raise ValueError("arrival times must be >= 0")
            if list(self.times) != sorted(self.times):
                raise ValueError("fixed arrival times must be sorted")
        else:
            if self.count <= 0:
                raise ValueError(f"{self.kind} arrivals need count > 0")
            if self.rate <= 0:
                raise ValueError(f"{self.kind} arrivals need rate > 0")
        if self.kind == "bursty" and self.burst_size <= 0:
            raise ValueError("burst_size must be positive")
        if self.start < 0:
            raise ValueError(f"start must be >= 0, got {self.start}")

    @classmethod
    def fixed(cls, *times: float) -> "ArrivalProcess":
        """An explicit, deterministic arrival schedule."""
        return cls(kind="fixed", times=tuple(float(t) for t in times))

    @classmethod
    def poisson(cls, count: int, rate: float, start: float = 0.0) -> "ArrivalProcess":
        """``count`` Poisson arrivals at ``rate`` jobs per simulated second."""
        return cls(kind="poisson", count=int(count), rate=float(rate), start=float(start))

    @classmethod
    def bursty(
        cls, count: int, rate: float, burst_size: int, start: float = 0.0
    ) -> "ArrivalProcess":
        """``count`` jobs arriving in simultaneous bursts of ``burst_size``."""
        return cls(
            kind="bursty",
            count=int(count),
            rate=float(rate),
            burst_size=int(burst_size),
            start=float(start),
        )

    def arrival_times(self, label: str, seed: int = 1) -> Tuple[float, ...]:
        """The arrival instants, drawn from the label-derived seeded stream.

        The same ``label``/``seed`` pair always yields the identical
        schedule; changing either decorrelates every draw, exactly like the
        engine's per-purpose RNG streams.  ``fixed`` processes ignore the
        seed entirely.
        """
        if self.kind == "fixed":
            return self.times
        rng = RandomStreams(int(seed)).stream(f"arrivals/{label}")
        out = []
        if self.kind == "poisson":
            t = self.start
            for _ in range(self.count):
                t += float(rng.exponential(1.0 / self.rate))
                out.append(t)
        else:  # bursty: first burst at start, burst gaps keep the mean rate
            t = self.start
            remaining = self.count
            while remaining > 0:
                burst = min(self.burst_size, remaining)
                out.extend([t] * burst)
                remaining -= burst
                t += float(rng.exponential(self.burst_size / self.rate))
        return tuple(out)


@dataclass(frozen=True)
class JobSpec:
    """One facility job: a tenant's named pipeline plus arrival and weight.

    ``name`` must be unique within a :class:`TenantSpec`; ``tenant`` groups
    jobs for the per-tenant fairness metrics; ``weight`` is the tenant's
    fair-share weight (only the ``fair`` policy reads it).  The pipeline is
    executed verbatim — the tenant layer never rewrites a job's
    :class:`~repro.workflow.pipeline.PipelineSpec`, which is what makes a
    solo, uncontended job bit-identical to a dedicated run.
    """

    name: str
    tenant: str
    pipeline: "PipelineSpec"
    arrival: float = 0.0
    weight: float = 1.0

    def __post_init__(self) -> None:
        """Validate the job eagerly so bad queues fail at build time."""
        from repro.workflow.pipeline import PipelineSpec

        if not self.name:
            raise ValueError("job name must be non-empty")
        if not self.tenant:
            raise ValueError("job tenant must be non-empty")
        if not isinstance(self.pipeline, PipelineSpec):
            raise ValueError(
                f"JobSpec.pipeline must be a PipelineSpec, got {type(self.pipeline)!r}"
            )
        if self.arrival < 0:
            raise ValueError(f"arrival must be >= 0, got {self.arrival}")
        if self.weight <= 0:
            raise ValueError(f"weight must be positive, got {self.weight}")

    @property
    def demand(self) -> int:
        """Cores the job needs to run at full (dedicated) rate."""
        return self.pipeline.total_cores

    def replace(self, **changes: Any) -> "JobSpec":
        """A copy of the job with ``changes`` applied (re-validated)."""
        return replace(self, **changes)


def job_queue(
    tenant: str,
    pipeline: "PipelineSpec",
    arrivals: ArrivalProcess,
    *,
    weight: float = 1.0,
    seed: int = 1,
) -> Tuple[JobSpec, ...]:
    """One tenant's job queue: the arrival process applied to one pipeline.

    Jobs are named ``tenant/0``, ``tenant/1``, … in arrival order, and the
    arrival draws come from the stream labelled by the tenant name, so two
    tenants with identical processes still get decorrelated schedules.
    """
    times = arrivals.arrival_times(tenant, seed=seed)
    return tuple(
        JobSpec(
            name=f"{tenant}/{index}",
            tenant=tenant,
            pipeline=pipeline,
            arrival=when,
            weight=weight,
        )
        for index, when in enumerate(times)
    )


@dataclass(frozen=True)
class TenantSpec:
    """An immutable multi-tenant facility configuration.

    The sweep-facing config type of the tenant layer: a job queue, the
    co-scheduling ``policy``, the shared ``capacity_cores`` (0 means "just
    fits the largest job"), and the scheduling ``epoch_seconds`` — shares
    change only at epoch boundaries, which is what keeps contended runs
    deterministic and replayable.  Carries ``label``/``seed``/``trace`` and
    :meth:`replace` so the sweep runner treats it exactly like a
    :class:`~repro.workflow.pipeline.PipelineSpec`.
    """

    jobs: Tuple[JobSpec, ...] = ()
    policy: str = "fair"
    capacity_cores: int = 0
    epoch_seconds: float = 0.25
    label: str = ""
    seed: int = 1
    trace: bool = False

    def __post_init__(self) -> None:
        """Coerce ``jobs`` to a tuple and validate the facility eagerly."""
        if not isinstance(self.jobs, tuple):
            object.__setattr__(self, "jobs", tuple(self.jobs))
        if not self.jobs:
            raise ValueError("TenantSpec needs at least one job")
        for job in self.jobs:
            if not isinstance(job, JobSpec):
                raise ValueError(f"TenantSpec.jobs must hold JobSpec, got {job!r}")
        names = [job.name for job in self.jobs]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ValueError(f"duplicate job names {dupes}")
        if self.policy not in POLICIES:
            raise ValueError(
                f"unknown policy {self.policy!r}; expected one of {POLICIES}"
            )
        if self.capacity_cores < 0:
            raise ValueError(f"capacity_cores must be >= 0, got {self.capacity_cores}")
        if self.capacity_cores and self.capacity_cores < max(
            job.demand for job in self.jobs
        ):
            raise ValueError(
                "capacity_cores must fit the largest job "
                f"({max(job.demand for job in self.jobs)} cores)"
            )
        if self.epoch_seconds <= 0:
            raise ValueError(f"epoch_seconds must be positive, got {self.epoch_seconds}")

    @property
    def capacity(self) -> int:
        """The facility's shared core capacity (defaults to the largest job)."""
        if self.capacity_cores:
            return self.capacity_cores
        return max(job.demand for job in self.jobs)

    @property
    def tenants(self) -> Tuple[str, ...]:
        """Tenant names in first-appearance order."""
        seen: Dict[str, None] = {}
        for job in self.jobs:
            seen.setdefault(job.tenant, None)
        return tuple(seen)

    def replace(self, **changes: Any) -> "TenantSpec":
        """A copy of the spec with ``changes`` applied (re-validated)."""
        return replace(self, **changes)


@dataclass(frozen=True)
class JobEvent:
    """One applied job transition in a facility run's recorded timeline.

    ``kind`` walks the job lifecycle: ``queued`` at the arrival instant,
    ``admitted`` when the scheduler starts the job (detail carries the wait
    and the initial share), ``share`` whenever an epoch boundary changes the
    job's facility share mid-run (the preempted-share transition; detail
    carries the new and previous share plus the grant/demand pair the
    conservation replay checks), and ``completed`` at the exact finish
    instant.  ``detail`` holds the numeric facts as floats so the record
    survives a JSON round trip exactly.
    """

    time: float
    kind: str
    job: str
    tenant: str
    detail: Dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form, as stored in the sweep's JSONL records."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "JobEvent":
        """Rebuild an event from :meth:`as_dict` output (or a JSONL record)."""
        return cls(
            time=float(payload["time"]),
            kind=str(payload["kind"]),
            job=str(payload["job"]),
            tenant=str(payload["tenant"]),
            detail={str(k): float(v) for k, v in dict(payload.get("detail", {})).items()},
        )
