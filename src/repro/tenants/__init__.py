"""Multi-tenant co-scheduling: a tenant/job layer above the pipeline engine.

Everything below this package runs **one** pipeline on a dedicated cluster;
this layer co-schedules **many** pipelines on one shared facility — the
paper's cross-job interference setting, and the ROADMAP's
millions-of-users framing made concrete (a facility serving a queue of
coupled workflows).  The vocabulary lives in :mod:`repro.tenants.spec`
(:class:`JobSpec`, :class:`TenantSpec`, :class:`ArrivalProcess`,
:class:`JobEvent`), the co-scheduler in :mod:`repro.tenants.scheduler`
(:class:`TenantScheduler`, :func:`run_tenants`), and the evaluation grid in
:func:`repro.bench.experiments.tenant_contention_spec` (``python -m
repro.sweep tenants``).  See ``docs/tenants.md`` for the model.
"""

from repro.tenants.spec import (
    EVENT_KINDS,
    POLICIES,
    ArrivalProcess,
    JobEvent,
    JobSpec,
    TenantSpec,
    job_queue,
)
from repro.tenants.scheduler import (
    TenantScheduler,
    jain_index,
    run_tenants,
    water_fill,
)

__all__ = [
    "POLICIES",
    "EVENT_KINDS",
    "ArrivalProcess",
    "JobSpec",
    "TenantSpec",
    "JobEvent",
    "job_queue",
    "TenantScheduler",
    "run_tenants",
    "water_fill",
    "jain_index",
]
