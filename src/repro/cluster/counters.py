"""Per-port network performance counters.

The paper verifies the cause of the concurrent-transfer speedup with the
Omni-Path ``XmitWait`` hardware counter ("the number of events, in FLITs, when
any virtual lane had data but was unable to transmit").  The network model
maintains the same counter per NIC port: whenever a message sits in a port's
transmit queue unable to progress, the waiting time is converted into FLIT
times at the port's line rate and accumulated into ``xmit_wait``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

__all__ = ["PortCounters", "CounterRegistry"]


@dataclass
class PortCounters:
    """Counters of a single NIC port, mirroring the OPA per-port counters."""

    port_id: str
    xmit_data: int = 0  #: bytes transmitted
    xmit_pkts: int = 0  #: messages transmitted
    rcv_data: int = 0  #: bytes received
    rcv_pkts: int = 0  #: messages received
    xmit_wait: int = 0  #: FLIT-times spent with data queued but not transmitting

    def record_send(self, nbytes: int) -> None:
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        self.xmit_data += int(nbytes)
        self.xmit_pkts += 1

    def record_receive(self, nbytes: int) -> None:
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        self.rcv_data += int(nbytes)
        self.rcv_pkts += 1

    def record_wait(self, wait_seconds: float, line_rate: float, flit_bytes: int) -> None:
        """Convert ``wait_seconds`` of blocked-with-data time into FLIT counts."""
        if wait_seconds < 0:
            raise ValueError("wait_seconds must be non-negative")
        if wait_seconds == 0:
            return
        flits_per_second = line_rate / float(flit_bytes)
        self.xmit_wait += int(round(wait_seconds * flits_per_second))

    def snapshot(self) -> Dict[str, int]:
        """A plain-dict copy, as ``opapmaquery -o getportstatus`` would report."""
        return {
            "XmitData": self.xmit_data,
            "XmitPkts": self.xmit_pkts,
            "RcvData": self.rcv_data,
            "RcvPkts": self.rcv_pkts,
            "XmitWait": self.xmit_wait,
        }


class CounterRegistry:
    """All port counters of a cluster plus periodic-query support.

    The paper's sender thread queries the counters every time 10% of the total
    blocks have been generated and looks at successive differences; the
    :meth:`query` / :meth:`deltas` pair reproduces that workflow.
    """

    def __init__(self) -> None:
        self._ports: Dict[str, PortCounters] = {}
        self._queries: List[Tuple[float, Dict[str, Dict[str, int]]]] = []

    def port(self, port_id: str) -> PortCounters:
        """Return (creating if needed) the counters for ``port_id``."""
        if port_id not in self._ports:
            self._ports[port_id] = PortCounters(port_id)
        return self._ports[port_id]

    def ports(self) -> Iterable[PortCounters]:
        return self._ports.values()

    def total(self, counter: str) -> int:
        """Sum of one counter (e.g. ``"XmitWait"``) over every port."""
        return sum(p.snapshot()[counter] for p in self._ports.values())

    def query(self, now: float) -> Dict[str, Dict[str, int]]:
        """Record and return a timestamped snapshot of all ports."""
        snap = {pid: port.snapshot() for pid, port in self._ports.items()}
        self._queries.append((float(now), snap))
        return snap

    @property
    def queries(self) -> List[Tuple[float, Dict[str, Dict[str, int]]]]:
        return list(self._queries)

    def deltas(self, counter: str) -> List[Tuple[float, int]]:
        """Per-query increases of ``counter`` summed over all ports."""
        out: List[Tuple[float, int]] = []
        prev_total = 0
        for when, snap in self._queries:
            total = sum(port[counter] for port in snap.values())
            out.append((when, total - prev_total))
            prev_total = total
        return out
