"""Parallel file system model (Lustre-like shared, striped storage).

The file system is shared by the whole machine (and, on production systems, by
other users — modelled as ``background_load``), has a fixed aggregate
bandwidth determined by the number of object storage targets, a per-operation
metadata latency, and service-time variability.  On Bridges and Stampede2 the
storage traffic traverses the same Omni-Path fabric as MPI messages, so file
operations also place (down-weighted) load on the issuing node's NIC port —
exactly the coupling the paper discusses when explaining why the concurrent
dual-path optimisation still helps on machines without a separate I/O network.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, Optional

from repro.simcore import Environment, RandomStreams, TallyMonitor
from repro.cluster.network import Network
from repro.cluster.spec import FileSystemSpec

__all__ = ["ParallelFileSystem", "IOResult"]


@dataclass
class IOResult:
    """Outcome of a single file read or write."""

    node: int
    nbytes: int
    op: str  #: "write" or "read"
    start: float
    finish: float

    @property
    def duration(self) -> float:
        return self.finish - self.start

    @property
    def bandwidth(self) -> float:
        if self.duration <= 0:
            return float("inf")
        return self.nbytes / self.duration


class ParallelFileSystem:
    """Shared striped file system with processor-sharing bandwidth allocation."""

    def __init__(
        self,
        env: Environment,
        spec: FileSystemSpec,
        network: Optional[Network] = None,
        rng: Optional[RandomStreams] = None,
    ):
        self.env = env
        self.spec = spec
        self.network = network
        self.rng = rng if rng is not None else RandomStreams(1)

        #: weighted number of in-flight requests sharing the aggregate bandwidth
        self._active = 0.0
        self.bytes_written = 0
        self.bytes_read = 0
        self.write_stats = TallyMonitor("pfs_write_time")
        self.read_stats = TallyMonitor("pfs_read_time")
        #: per-"file" record of how many bytes exist, keyed by file name
        self._files: Dict[str, int] = {}

    # -- capacity ---------------------------------------------------------
    @property
    def aggregate_bandwidth(self) -> float:
        """Bandwidth available to this job after background load, bytes/second."""
        return self.spec.aggregate_bandwidth

    def effective_rate(self) -> float:
        """Rate a new request would see given the current in-flight load."""
        return self.aggregate_bandwidth / max(1.0, self._active + 1.0)

    @property
    def active_requests(self) -> float:
        return self._active

    # -- data path --------------------------------------------------------
    def write(
        self,
        node: int,
        nbytes: int,
        filename: Optional[str] = None,
        rate_scale: float = 1.0,
    ) -> Generator:
        """Write ``nbytes`` from ``node``.  Simulation process returning :class:`IOResult`.

        ``rate_scale`` scales this one request's achieved rate — the
        bandwidth-lease hook lets a coupling that borrowed file-path
        bandwidth drain faster (> 1) and the lender drain slower (< 1).
        """
        return self._io(node, nbytes, "write", filename, rate_scale)

    def read(
        self,
        node: int,
        nbytes: int,
        filename: Optional[str] = None,
        rate_scale: float = 1.0,
    ) -> Generator:
        """Read ``nbytes`` into ``node``.  Simulation process returning :class:`IOResult`.

        See :meth:`write` for the meaning of ``rate_scale``.
        """
        return self._io(node, nbytes, "read", filename, rate_scale)

    def _io(
        self,
        node: int,
        nbytes: int,
        op: str,
        filename: Optional[str],
        rate_scale: float = 1.0,
    ) -> Generator:
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if rate_scale <= 0:
            raise ValueError("rate_scale must be positive")
        env = self.env
        start = env.now

        # Metadata round trip (open/create/stat).  Shared metadata servers are
        # modelled as a fixed latency plus variability.
        md = self.rng.jitter("pfs.metadata", self.spec.metadata_latency, self.spec.service_cv)
        if md > 0:
            yield env.sleep(md)

        if nbytes > 0:
            stripes = max(1, -(-nbytes // self.spec.stripe_size))
            parallel_osts = min(stripes, self.spec.num_osts)
            # A single client cannot exceed what its stripes' OSTs provide
            # (after background load, but not the job-share scaling, which
            # only applies to the aggregate pool), nor what its own node can
            # drive towards the file system.
            client_cap = min(
                parallel_osts * self.spec.ost_bandwidth * (1.0 - self.spec.background_load),
                self.spec.client_node_bandwidth,
            )
            rate = min(self.effective_rate(), client_cap)
            if rate_scale != 1.0:
                rate *= rate_scale
            duration = nbytes / rate
            duration = self.rng.jitter("pfs.data", duration, self.spec.service_cv)

            self._active += 1.0
            fabric_loaded = False
            if self.network is not None and self.spec.shares_fabric:
                # File traffic rides the same fabric, at reduced weight because
                # it fans out across OST server links.
                self.network.add_background_load(node, self.spec.fabric_weight)
                fabric_loaded = True
            try:
                yield env.sleep(duration)
            finally:
                self._active = max(0.0, self._active - 1.0)
                if fabric_loaded:
                    self.network.remove_background_load(node, self.spec.fabric_weight)

        if op == "write":
            self.bytes_written += int(nbytes)
            self.write_stats.observe(env.now - start)
            if filename is not None:
                self._files[filename] = self._files.get(filename, 0) + int(nbytes)
        else:
            self.bytes_read += int(nbytes)
            self.read_stats.observe(env.now - start)

        return IOResult(node, nbytes, op, start, env.now)

    # -- namespace --------------------------------------------------------
    def file_size(self, filename: str) -> int:
        """Bytes written so far under ``filename`` (0 if never written)."""
        return self._files.get(filename, 0)

    def exists(self, filename: str) -> bool:
        return filename in self._files

    def files(self) -> Dict[str, int]:
        """Snapshot of the namespace: filename -> size in bytes."""
        return dict(self._files)
