"""The :class:`Cluster` facade assembling nodes, network, file system and counters."""

from __future__ import annotations

from typing import Any, Iterable, List, Optional

from repro.simcore import Environment, RandomStreams
from repro.cluster.counters import CounterRegistry
from repro.cluster.network import Network
from repro.cluster.node import ComputeNode
from repro.cluster.pfs import ParallelFileSystem
from repro.cluster.spec import ClusterSpec

__all__ = ["Cluster"]


class Cluster:
    """A simulated allocation of ``num_nodes`` nodes on a machine.

    Parameters
    ----------
    spec:
        Machine description (see :mod:`repro.cluster.presets`).
    num_nodes:
        Number of *modelled* nodes in this allocation.
    total_nodes:
        Size of the full job being represented (defaults to ``num_nodes``).
        Used for the fabric's scale-dependent behaviour; see
        :class:`repro.cluster.spec.ScalingModel`.
    env:
        Optionally share an existing simulation environment.
    deterministic:
        When ``True`` (the default) all jitter is disabled so results are
        exactly reproducible; benchmarks that want realistic variability pass
        ``False``.
    pool_events:
        Forwarded to :class:`Environment` when the cluster creates its own:
        recycle Store/Release events through free lists (bit-identical; see
        the F501 escape certificate in ``docs/static-analysis.md``).
        Ignored when ``env`` is supplied.
    sanitize:
        Forwarded to :class:`Environment` when the cluster creates its own:
        arm the :mod:`repro.sanitize` determinism traps.  ``None`` defers to
        ``REPRO_SANITIZE``.  Ignored when ``env`` is supplied.
    """

    def __init__(
        self,
        spec: ClusterSpec,
        num_nodes: int,
        total_nodes: Optional[int] = None,
        env: Optional[Environment] = None,
        deterministic: bool = True,
        seed: Optional[int] = None,
        pool_events: bool = False,
        sanitize: Optional[bool] = None,
    ):
        if num_nodes <= 0:
            raise ValueError("num_nodes must be positive")
        if spec.max_nodes is not None and (total_nodes or num_nodes) > spec.max_nodes:
            raise ValueError(
                f"{spec.name} allows at most {spec.max_nodes} nodes per job, "
                f"requested {total_nodes or num_nodes}"
            )
        self.spec = spec
        self.env = (
            env
            if env is not None
            else Environment(pool_events=pool_events, sanitize=sanitize)
        )
        self.num_nodes = num_nodes
        self.total_nodes = int(total_nodes) if total_nodes else num_nodes
        self.deterministic = deterministic
        self.rng = RandomStreams(seed if seed is not None else spec.seed)
        jitter_cv = 0.0 if deterministic else 0.05

        self.counters = CounterRegistry()
        self.network = Network(
            self.env,
            spec.network,
            num_nodes=num_nodes,
            total_nodes=self.total_nodes,
            counters=self.counters,
            rng=self.rng,
            jitter_cv=jitter_cv,
        )
        self.filesystem = ParallelFileSystem(
            self.env, spec.filesystem, network=self.network, rng=self.rng
        )
        self.nodes: List[ComputeNode] = [
            ComputeNode(self.env, i, spec.node, rng=self.rng, jitter_cv=jitter_cv)
            for i in range(num_nodes)
        ]

    # -- convenience -------------------------------------------------------
    @property
    def now(self) -> float:
        return self.env.now

    @property
    def cores_per_node(self) -> int:
        return self.spec.node.cores

    @property
    def total_cores(self) -> int:
        """Cores in the full represented job."""
        return self.total_nodes * self.spec.node.cores

    @property
    def modelled_cores(self) -> int:
        return self.num_nodes * self.spec.node.cores

    def node(self, node_id: int) -> ComputeNode:
        return self.nodes[node_id]

    def set_node_allocation(self, node_ids: Iterable[int], scale: float) -> None:
        """Re-scale the effective compute rate of a group of nodes.

        The single entry point elastic controllers use to apply a stage
        resize: every node hosting the stage's ranks gets the same
        allocation scale (cores now backing each rank relative to the static
        plan).  Delegates to
        :meth:`~repro.cluster.node.ComputeNode.set_allocation_scale`, which
        owns the cached-rate invalidation.
        """
        for node_id in node_ids:
            self.nodes[node_id].set_allocation_scale(scale)

    def set_tenant_scale(self, scale: float) -> None:
        """Scale every node's compute rate to the owning tenant's share.

        The tenant scheduler's entry point: a job's whole (private) cluster
        runs at the slice of the shared facility its tenant currently
        holds.  Delegates to
        :meth:`~repro.cluster.node.ComputeNode.set_tenant_scale`, which
        composes the factor with the elastic and fault scales.
        """
        for node in self.nodes:
            node.set_tenant_scale(scale)

    def node_of_rank(self, rank: int, ranks_per_node: Optional[int] = None) -> int:
        """Map a rank to a modelled node using block placement."""
        if ranks_per_node is not None and ranks_per_node <= 0:
            raise ValueError("ranks_per_node must be positive")
        rpn = ranks_per_node if ranks_per_node is not None else self.spec.node.cores
        return (rank // rpn) % self.num_nodes

    def run(self, until: Optional[Any] = None) -> Any:
        """Run the underlying simulation environment."""
        return self.env.run(until)

    def __repr__(self) -> str:
        return (
            f"<Cluster {self.spec.name!r} nodes={self.num_nodes} "
            f"(representing {self.total_nodes}) t={self.env.now:.3f}>"
        )
