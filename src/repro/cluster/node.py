"""Compute-node model: cores and memory of one node."""

from __future__ import annotations

from typing import Generator, Optional

from repro.simcore import Container, Environment, RandomStreams, Resource, Timeout
from repro.cluster.spec import NodeSpec

__all__ = ["ComputeNode"]


class ComputeNode:
    """One compute node: a pool of cores and a memory capacity.

    Application cost models express work in *seconds on one reference core*;
    :meth:`compute` converts that into simulated time on this node's cores
    (accounting for the node's relative core speed and optional jitter) while
    holding a core slot, so that oversubscription of a node is visible as
    queueing.

    The effective compute rate is *mutable*: an elastic controller can shift
    core share between stages mid-run by scaling the allocation of the nodes
    hosting each stage (:meth:`set_allocation_scale`).  The rate is cached
    (it sits on the per-phase hot path) and the setter is the single
    invalidation point, so any layer that changes allocations must go through
    it — never mutate ``spec.core_speed`` directly.
    """

    def __init__(
        self,
        env: Environment,
        node_id: int,
        spec: NodeSpec,
        rng: Optional[RandomStreams] = None,
        jitter_cv: float = 0.0,
    ):
        self.env = env
        self.node_id = node_id
        self.spec = spec
        self.rng = rng if rng is not None else RandomStreams(node_id)
        self.jitter_cv = float(jitter_cv)
        self.cores = Resource(env, capacity=spec.cores)
        self.memory = Container(env, capacity=float(spec.memory_bytes), init=0.0)
        self.busy_core_seconds = 0.0
        self._allocation_scale = 1.0
        # Cached effective rate (reference seconds per simulated second);
        # invalidated only by set_allocation_scale.
        self._rate = spec.core_speed
        #: Modelled ranks currently hosted on this node.  Seeded from the
        #: static placement by the pipeline runner and updated when elastic
        #: rank spawns/retires place assist ranks, so spawn-time placement
        #: can pick the least-loaded node of a stage's range.
        self.hosted_ranks = 0

    @property
    def allocation_scale(self) -> float:
        """How many real cores back each modelled rank, relative to the static plan."""
        return self._allocation_scale

    def set_allocation_scale(self, scale: float) -> None:
        """Re-scale this node's effective compute rate to ``scale`` × nominal.

        A modelled rank normally stands for a fixed slice of the represented
        job's cores; when an elastic controller moves cores between stages,
        each rank of the grown stage is backed by proportionally more cores
        (``scale`` > 1, faster) and each rank of the shrunk stage by fewer
        (``scale`` < 1, slower).  Only work *started* after the call runs at
        the new rate — in-flight compute keeps the duration frozen when it
        was issued, exactly like a real reallocation at an epoch boundary.
        """
        if scale <= 0:
            raise ValueError("allocation scale must be positive")
        self._allocation_scale = float(scale)
        self._rate = self.spec.core_speed * self._allocation_scale

    def host_rank(self) -> int:
        """Account one more modelled rank living on this node.

        Pure bookkeeping — hosting does not reserve a core; the rank's work
        contends for cores through :meth:`compute` like everyone else's.
        """
        self.hosted_ranks += 1
        return self.hosted_ranks

    def release_rank(self) -> int:
        """Account one modelled rank leaving this node (a retire)."""
        if self.hosted_ranks <= 0:
            raise ValueError(f"node {self.node_id} hosts no ranks to release")
        self.hosted_ranks -= 1
        return self.hosted_ranks

    def compute(self, reference_seconds: float) -> Generator:
        """Occupy one core for ``reference_seconds`` of reference-core work."""
        if reference_seconds < 0:
            raise ValueError("reference_seconds must be non-negative")
        duration = reference_seconds / self._rate
        if self.jitter_cv > 0:
            duration = self.rng.jitter(
                f"node{self.node_id}.compute", duration, self.jitter_cv
            )
        req = self.cores.request()
        yield req
        try:
            if duration > 0:
                yield Timeout(self.env, duration)
            self.busy_core_seconds += duration
        finally:
            self.cores.release(req)
        return duration

    def allocate_memory(self, nbytes: float):
        """Reserve ``nbytes`` of node memory (blocks while unavailable)."""
        return self.memory.put(nbytes)

    def free_memory(self, nbytes: float):
        """Release ``nbytes`` of node memory."""
        return self.memory.get(nbytes)

    @property
    def memory_in_use(self) -> float:
        return self.memory.level

    @property
    def memory_free(self) -> float:
        return self.memory.capacity - self.memory.level

    def __repr__(self) -> str:
        return (
            f"<ComputeNode {self.node_id} cores={self.spec.cores} "
            f"in_use={self.cores.count}>"
        )
