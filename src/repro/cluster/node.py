"""Compute-node model: cores and memory of one node."""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, List, Optional, Sequence, Union

from repro import sanitize
from repro.simcore import Container, Environment, RandomStreams, Resource, Timeout
from repro.cluster.spec import NodeSpec

if TYPE_CHECKING:
    from repro.simcore.resources import ContainerGet, ContainerPut

__all__ = ["ComputeNode"]


class _FastHolder:
    """Phantom core-slot holder used by the compute fast path.

    Occupies an entry in the core resource's user list (so occupancy stays
    visible to slow-path contenders) without any event machinery.  One
    instance per slot is never needed — list entries may alias because
    removal is positional over identical objects.
    """

    __slots__ = ()


_FAST_HOLDER = _FastHolder()


class ComputeNode:
    """One compute node: a pool of cores and a memory capacity.

    Application cost models express work in *seconds on one reference core*;
    :meth:`compute` converts that into simulated time on this node's cores
    (accounting for the node's relative core speed and optional jitter) while
    holding a core slot, so that oversubscription of a node is visible as
    queueing.

    The effective compute rate is *mutable*: an elastic controller can shift
    core share between stages mid-run by scaling the allocation of the nodes
    hosting each stage (:meth:`set_allocation_scale`).  The rate is cached
    (it sits on the per-phase hot path) and the setter is the single
    invalidation point, so any layer that changes allocations must go through
    it — never mutate ``spec.core_speed`` directly.
    """

    def __init__(
        self,
        env: Environment,
        node_id: int,
        spec: NodeSpec,
        rng: Optional[RandomStreams] = None,
        jitter_cv: float = 0.0,
    ):
        self.env = env
        self.node_id = node_id
        self.spec = spec
        self.rng = rng if rng is not None else RandomStreams(node_id)
        self.jitter_cv = float(jitter_cv)
        self.cores = Resource(env, capacity=spec.cores)
        self.memory = Container(env, capacity=float(spec.memory_bytes), init=0.0)
        self.busy_core_seconds = 0.0
        self._allocation_scale = 1.0
        self._fault_scale = 1.0
        self._tenant_scale = 1.0
        # Cached effective rate (reference seconds per simulated second);
        # invalidated only by the set_*_scale setters.
        self._rate = spec.core_speed
        #: Whether a fault (crash in progress, straggler window) currently
        #: impairs this node.  Pure observation for monitors and elastic
        #: controllers; only the fault injector sets it.
        self.degraded = False
        #: Modelled ranks currently hosted on this node.  Seeded from the
        #: static placement by the pipeline runner and updated when elastic
        #: rank spawns/retires place assist ranks, so spawn-time placement
        #: can pick the least-loaded node of a stage's range.
        self.hosted_ranks = 0
        # Uncontended-compute fast path: claimed concurrency bound and the
        # derived flag (see claim_compute_slots).  Off until an owner that
        # knows the node's whole workload declares the bound.
        self._claimed_slots = 0
        self._fast_path = False

    @property
    def allocation_scale(self) -> float:
        """How many real cores back each modelled rank, relative to the static plan."""
        return self._allocation_scale

    def set_allocation_scale(self, scale: float) -> None:
        """Re-scale this node's effective compute rate to ``scale`` × nominal.

        A modelled rank normally stands for a fixed slice of the represented
        job's cores; when an elastic controller moves cores between stages,
        each rank of the grown stage is backed by proportionally more cores
        (``scale`` > 1, faster) and each rank of the shrunk stage by fewer
        (``scale`` < 1, slower).  Only work *started* after the call runs at
        the new rate — in-flight compute keeps the duration frozen when it
        was issued, exactly like a real reallocation at an epoch boundary.
        """
        if scale <= 0:
            raise ValueError("allocation scale must be positive")
        self._allocation_scale = float(scale)
        self._rate = (
            self.spec.core_speed
            * self._allocation_scale
            * self._fault_scale
            * self._tenant_scale
        )

    @property
    def fault_scale(self) -> float:
        """Fault-induced compute derating (1.0 when the node is healthy)."""
        return self._fault_scale

    def set_fault_scale(self, scale: float) -> None:
        """Derate (or restore) this node's compute rate for a fault window.

        Orthogonal to :meth:`set_allocation_scale`: the elastic layer owns
        the allocation scale, the fault injector owns this one, and the
        cached rate composes both.  A straggler window sets ``1/slowdown``;
        recovery restores ``1.0``.  As with allocation changes, only work
        started after the call runs at the new rate.
        """
        if scale <= 0:
            raise ValueError("fault scale must be positive")
        self._fault_scale = float(scale)
        self._rate = (
            self.spec.core_speed
            * self._allocation_scale
            * self._fault_scale
            * self._tenant_scale
        )

    @property
    def tenant_scale(self) -> float:
        """Share of this node's compute granted to the hosting job's tenant."""
        return self._tenant_scale

    def set_tenant_scale(self, scale: float) -> None:
        """Scale this node's compute rate to the tenant's facility share.

        The third orthogonal rate factor: the elastic layer owns the
        allocation scale, the fault injector owns the fault scale, and the
        tenant scheduler owns this one (a job's slice of a *shared*
        facility, ``scale`` ≤ 1 under contention, 1.0 when dedicated).  The
        cached rate composes all three, and as with the other factors only
        work started after the call runs at the new rate.
        """
        if scale <= 0:
            raise ValueError("tenant scale must be positive")
        self._tenant_scale = float(scale)
        self._rate = (
            self.spec.core_speed
            * self._allocation_scale
            * self._fault_scale
            * self._tenant_scale
        )

    def claim_compute_slots(self, count: int = 1) -> None:
        """Declare up to ``count`` additional concurrent :meth:`compute` callers.

        The uncontended fast path: when the *total* claimed concurrency fits
        in the node's core count, no compute call can ever queue, so the
        per-call core request/release bookkeeping has no observable effect —
        :meth:`compute` then skips it (crediting the elided events), and
        :meth:`compute_batch` may fast-forward whole segments.  Owners that
        know the node's complete workload (the pipeline runner claims one
        slot per potential concurrent compute of every hosted rank) must
        route every claim through here; a node with no claims stays on the
        exact slow path.
        """
        if count < 0:
            raise ValueError("claimed slot count must be non-negative")
        self._claimed_slots += count
        self._fast_path = 0 < self._claimed_slots <= self.spec.cores

    def release_compute_slots(self, count: int = 1) -> None:
        """Withdraw previously claimed concurrency (e.g. a retired assist rank)."""
        if count < 0:
            raise ValueError("released slot count must be non-negative")
        self._claimed_slots = max(0, self._claimed_slots - count)
        self._fast_path = 0 < self._claimed_slots <= self.spec.cores

    @property
    def uncontended(self) -> bool:
        """Whether the claimed concurrency guarantees compute never queues."""
        return self._fast_path

    @property
    def can_batch(self) -> bool:
        """Whether :meth:`compute_batch` may fast-forward on this node.

        Requires the uncontended guarantee and jitter-free compute (each
        jittered call draws from the node's random stream *in event order*,
        which a single batched event could not reproduce).
        """
        return self._fast_path and self.jitter_cv == 0.0

    def host_rank(self) -> int:
        """Account one more modelled rank living on this node.

        Pure bookkeeping — hosting does not reserve a core; the rank's work
        contends for cores through :meth:`compute` like everyone else's.
        """
        self.hosted_ranks += 1
        return self.hosted_ranks

    def release_rank(self) -> int:
        """Account one modelled rank leaving this node (a retire)."""
        if self.hosted_ranks <= 0:
            raise ValueError(f"node {self.node_id} hosts no ranks to release")
        self.hosted_ranks -= 1
        return self.hosted_ranks

    def compute(self, reference_seconds: float) -> Generator:
        """Occupy one core for ``reference_seconds`` of reference-core work."""
        if reference_seconds < 0:
            raise ValueError("reference_seconds must be non-negative")
        duration = reference_seconds / self._rate
        if self.jitter_cv > 0:
            duration = self.rng.jitter(
                f"node{self.node_id}.compute", duration, self.jitter_cv
            )
        cores = self.cores
        if self._fast_path and not cores._waiters and len(cores.users) < cores._capacity:
            # Guaranteed-uncontended: the grant would be immediate and both
            # queue trips are elided and credited — the clock advances by the
            # identical duration and events_processed stays bit-identical.
            # The call still *holds a slot* (a phantom entry in the user
            # list), so if an elastic assist spawn pushes the node's claims
            # past its cores mid-flight, later slow-path computes observe
            # the true occupancy and queue exactly as the slow path would.
            holder = _FAST_HOLDER
            cores.users.append(holder)
            try:
                if duration > 0:
                    yield self.env.sleep(duration)
                self.busy_core_seconds += duration
            finally:
                cores.users.remove(holder)
                # The synchronous half of Resource.release: grant any waiter
                # that queued behind this phantom slot, at exactly the
                # instant the slow path's Release would have granted it.
                while cores._waiters and len(cores.users) < cores._capacity:
                    cores._grant(cores._pop_waiter())
            self.env.credit_events(2)
            return duration
        req = cores.request()
        yield req
        try:
            if duration > 0:
                yield Timeout(self.env, duration)
            self.busy_core_seconds += duration
        finally:
            cores.release(req)
        return duration

    def compute_batch(
        self,
        seconds: Union[float, Sequence[float]],
        steps: int = 1,
        deadline: float = float("inf"),
    ) -> Generator:
        """Fast-forward ``steps`` repetitions of a compute segment in one event.

        ``seconds`` is the reference-core work of one segment — a float for a
        uniform segment or a sequence of per-call chunks (e.g. one entry per
        workload phase).  The batch is exactly equivalent to calling
        :meth:`compute` for every chunk of every repetition, but when the
        node :attr:`can_batch` it advances the clock with a single absolute
        timeout and credits the elided events; the end time, the busy-seconds
        accumulator and the returned per-repetition elapsed times are folded
        with the same float operations the per-call path performs, so results
        are bit-identical.

        ``deadline`` invalidates the fast-forward: if the folded end time
        would pass it (an elastic epoch boundary, after which
        :meth:`set_allocation_scale` may change the rate or an assist rank
        may spawn mid-segment), the batch *declines* — it returns ``None``
        without consuming any event or simulated time, and the caller runs
        its exact per-call sequence, which observes control decisions chunk
        by chunk.  The batch likewise declines when the node cannot
        fast-forward at all (:attr:`can_batch` false, or a transient core
        holder).

        Returns the list of per-repetition elapsed simulated seconds (one
        entry per ``steps``), matching what a caller timing each repetition
        with ``env.now`` differences would have measured — or ``None`` when
        the batch declined.
        """
        if steps <= 0:
            raise ValueError("steps must be positive")
        if self.env.sanitize:
            # The chunk order is folded into the absolute end time below;
            # a set-valued ``seconds`` would schedule in hash-salted order.
            sanitize.check_ordered(seconds, "compute_batch(seconds=...)")
        chunks = (
            (float(seconds),)
            if isinstance(seconds, (int, float))
            else tuple(float(chunk) for chunk in seconds)
        )
        if not chunks:
            raise ValueError("compute_batch needs at least one chunk")
        for chunk in chunks:
            if chunk < 0:
                raise ValueError("reference_seconds must be non-negative")
        env = self.env
        cores = self.cores
        if not (
            self._fast_path
            and self.jitter_cv == 0.0
            and not cores._waiters
            and len(cores.users) < cores._capacity
        ):
            return None
        rate = self._rate
        end = env.now
        busy = self.busy_core_seconds
        credit = 0
        any_timeout = False
        elapsed: List[float] = []
        for _ in range(steps):
            rep = 0.0
            for chunk in chunks:
                duration = chunk / rate
                prev = end
                end = prev + duration
                rep += end - prev
                busy += duration
                if duration > 0:
                    credit += 3
                    any_timeout = True
                else:
                    credit += 2
            elapsed.append(rep)
        if end > deadline:
            return None
        if any_timeout:
            # One absolute-time event stands in for the whole segment.  The
            # phantom slot keeps the node's occupancy visible for the whole
            # fast-forward, exactly like the per-call fast path.
            holder = _FAST_HOLDER
            cores.users.append(holder)
            try:
                yield env.sleep_until(end)
            finally:
                cores.users.remove(holder)
                while cores._waiters and len(cores.users) < cores._capacity:
                    cores._grant(cores._pop_waiter())
            credit -= 1
        # An all-zero segment consumes no event in the per-call path
        # (compute() returns without yielding), so none is consumed here
        # either — the process continues synchronously.
        self.busy_core_seconds = busy
        env.credit_events(credit)
        return elapsed

    def allocate_memory(self, nbytes: float) -> "ContainerPut":
        """Reserve ``nbytes`` of node memory (blocks while unavailable)."""
        return self.memory.put(nbytes)

    def free_memory(self, nbytes: float) -> "ContainerGet":
        """Release ``nbytes`` of node memory."""
        return self.memory.get(nbytes)

    @property
    def memory_in_use(self) -> float:
        return self.memory.level

    @property
    def memory_free(self) -> float:
        return self.memory.capacity - self.memory.level

    def __repr__(self) -> str:
        return (
            f"<ComputeNode {self.node_id} cores={self.spec.cores} "
            f"in_use={self.cores.count}>"
        )
