"""HPC cluster substrate: nodes, network fabric, congestion counters, parallel file system.

This package models the two machines used in the paper's evaluation — Bridges
(Intel Haswell + Omni-Path + Lustre) and Stampede2 (KNL + Omni-Path + Lustre) —
at the level of detail the paper's analysis actually exercises:

* per-node NIC injection/ejection bandwidth and a two-level (leaf/core) switch
  fabric with FIFO link queueing, multi-path core links and a congestion
  penalty, all instrumented with ``XmitWait``-style counters
  (:mod:`repro.cluster.network`, :mod:`repro.cluster.counters`);
* a striped parallel file system with a shared aggregate bandwidth pool,
  metadata-operation latency and optional background load
  (:mod:`repro.cluster.pfs`);
* compute nodes with cores and memory (:mod:`repro.cluster.node`);
* machine presets (:mod:`repro.cluster.presets`).

Because simulating 13,056 real ranks event-by-event is not feasible in pure
Python, large-scale experiments are run with a *representative subset* of
ranks whose resource shares are derived from the full machine size (see
:class:`repro.cluster.spec.ScalingModel`); collective costs and fabric taper
are still computed from the full process count, which is what produces the
scale-dependent behaviour in the paper's Figures 14–18.
"""

from repro.cluster.spec import (
    NodeSpec,
    NetworkSpec,
    FileSystemSpec,
    ClusterSpec,
    ScalingModel,
)
from repro.cluster.counters import PortCounters, CounterRegistry
from repro.cluster.network import Network, TransferResult
from repro.cluster.pfs import ParallelFileSystem, IOResult
from repro.cluster.node import ComputeNode
from repro.cluster.machine import Cluster
from repro.cluster.presets import bridges, stampede2, laptop

__all__ = [
    "NodeSpec",
    "NetworkSpec",
    "FileSystemSpec",
    "ClusterSpec",
    "ScalingModel",
    "PortCounters",
    "CounterRegistry",
    "Network",
    "TransferResult",
    "ParallelFileSystem",
    "IOResult",
    "ComputeNode",
    "Cluster",
    "bridges",
    "stampede2",
    "laptop",
]
