"""Specification dataclasses describing a cluster and its scaling model."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

__all__ = [
    "NodeSpec",
    "NetworkSpec",
    "FileSystemSpec",
    "ScalingModel",
    "ClusterSpec",
    "GiB",
    "MiB",
    "KiB",
]

KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB


@dataclass(frozen=True)
class NodeSpec:
    """Static description of one compute node."""

    cores: int = 28
    memory_bytes: int = 128 * GiB
    #: Relative per-core compute speed used to scale application cost models
    #: (1.0 = one Bridges Haswell core; KNL cores are individually slower).
    core_speed: float = 1.0

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ValueError("cores must be positive")
        if self.memory_bytes <= 0:
            raise ValueError("memory_bytes must be positive")
        if self.core_speed <= 0:
            raise ValueError("core_speed must be positive")


@dataclass(frozen=True)
class NetworkSpec:
    """Static description of the interconnect fabric.

    The model is a two-level fat tree in the spirit of Omni-Path deployments:
    every node has one NIC port attached to a leaf switch; leaf switches are
    connected by a pool of core links.  The ratio of core-link capacity to
    aggregate injection capacity (the *taper*) is what makes congestion grow
    with scale in the large experiments.
    """

    #: Injection (and ejection) bandwidth of one node's NIC port, bytes/second.
    link_bandwidth: float = 12.5e9
    #: One-way small-message latency in seconds.
    latency: float = 2.0e-6
    #: Number of node ports per leaf switch.
    ports_per_leaf: int = 42
    #: Number of core (spine) links available per leaf switch uplink group.
    core_links_per_leaf: int = 16
    #: Bandwidth of a single core link, bytes/second.
    core_link_bandwidth: float = 12.5e9
    #: Per-message software/protocol overhead in seconds (matching, rendezvous).
    per_message_overhead: float = 5.0e-6
    #: Congestion penalty strength: effective bandwidth of a link is divided by
    #: ``1 + congestion_alpha * max(0, flows_in_flight - 1)`` capped by
    #: ``max_congestion_penalty``.  This models the throughput loss produced by
    #: credit stalls and HOL blocking under incast, which is what the dual-path
    #: optimisation relieves.
    congestion_alpha: float = 0.08
    max_congestion_penalty: float = 4.0
    #: Size of one FLIT in bytes (Omni-Path: 64-bit FLITs); used to convert
    #: waiting time into XmitWait counts as the paper's hardware counter does.
    flit_bytes: int = 8

    def __post_init__(self) -> None:
        for name in (
            "link_bandwidth",
            "core_link_bandwidth",
            "latency",
            "per_message_overhead",
        ):
            if getattr(self, name) <= 0 and name not in ("latency", "per_message_overhead"):
                raise ValueError(f"{name} must be positive")
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.ports_per_leaf <= 0 or self.core_links_per_leaf <= 0:
            raise ValueError("switch port counts must be positive")
        if self.congestion_alpha < 0:
            raise ValueError("congestion_alpha must be non-negative")
        if self.max_congestion_penalty < 1:
            raise ValueError("max_congestion_penalty must be >= 1")
        if self.flit_bytes <= 0:
            raise ValueError("flit_bytes must be positive")


@dataclass(frozen=True)
class FileSystemSpec:
    """Static description of the parallel file system (Lustre-like)."""

    #: Number of object storage targets data is striped across.
    num_osts: int = 64
    #: Sustained bandwidth of one OST available to this job, bytes/second.
    #: (Production Lustre file systems deliver far less per job than their
    #: peak: the paper's Preserve-mode experiment stores 3,136 GB in ~135 s,
    #: i.e. ≈ 23 GB/s for an 84-node job on Bridges.)
    ost_bandwidth: float = 0.5e9
    #: Maximum file-system bandwidth one client node can drive, bytes/second.
    client_node_bandwidth: float = 2.0e9
    #: Metadata operation latency (open/create/stat), seconds.
    metadata_latency: float = 1.0e-3
    #: Stripe size in bytes.
    stripe_size: int = 1 * MiB
    #: Fraction of aggregate bandwidth consumed on average by other users of
    #: the shared file system (0 = dedicated machine).
    background_load: float = 0.3
    #: Coefficient of variation of per-request service time, modelling the
    #: variability of a shared production file system (drives the MPI-IO error
    #: bars in Figure 2).
    service_cv: float = 0.25
    #: Whether file-system traffic shares the compute fabric (true on Bridges
    #: and Stampede2, where there is no separate I/O network).
    shares_fabric: bool = True
    #: Fraction of the aggregate bandwidth available to the modelled clients
    #: (used by representative-rank simulations: the modelled ranks are only a
    #: fraction of the job and are entitled to the same fraction of the job's
    #: file-system bandwidth).  Per-OST and per-client caps are not scaled.
    job_share: float = 1.0
    #: Weight of file traffic on fabric congestion relative to message traffic;
    #: < 1 because striped I/O spreads over many OST links and switch paths.
    fabric_weight: float = 0.35

    def __post_init__(self) -> None:
        if self.num_osts <= 0:
            raise ValueError("num_osts must be positive")
        if self.ost_bandwidth <= 0:
            raise ValueError("ost_bandwidth must be positive")
        if self.client_node_bandwidth <= 0:
            raise ValueError("client_node_bandwidth must be positive")
        if self.metadata_latency < 0:
            raise ValueError("metadata_latency must be non-negative")
        if self.stripe_size <= 0:
            raise ValueError("stripe_size must be positive")
        if not 0.0 <= self.background_load < 1.0:
            raise ValueError("background_load must be in [0, 1)")
        if self.service_cv < 0:
            raise ValueError("service_cv must be non-negative")
        if not 0.0 <= self.fabric_weight <= 1.0:
            raise ValueError("fabric_weight must be in [0, 1]")
        if not 0.0 < self.job_share <= 1.0:
            raise ValueError("job_share must lie in (0, 1]")

    @property
    def aggregate_bandwidth(self) -> float:
        """Total file-system bandwidth available to the modelled clients, bytes/second."""
        return (
            self.num_osts
            * self.ost_bandwidth
            * (1.0 - self.background_load)
            * self.job_share
        )


@dataclass(frozen=True)
class ScalingModel:
    """How a representative-rank simulation maps onto a full-size job.

    ``modelled_processes`` ranks are actually simulated; ``total_processes``
    is the size of the job being represented.  Per-node resources are
    unaffected (weak scaling keeps per-rank work constant); what changes with
    the full job size is:

    * the effective share of core-fabric bandwidth per simulated flow (the
      fabric taper), and
    * the cost of collective operations, which grow with ``total_processes``.
    """

    total_processes: int
    modelled_processes: int

    def __post_init__(self) -> None:
        if self.total_processes <= 0 or self.modelled_processes <= 0:
            raise ValueError("process counts must be positive")
        if self.modelled_processes > self.total_processes:
            raise ValueError("modelled_processes cannot exceed total_processes")

    @property
    def scale_factor(self) -> float:
        """How many real ranks one simulated rank stands for."""
        return self.total_processes / self.modelled_processes


@dataclass(frozen=True)
class ClusterSpec:
    """Full machine description used to instantiate a :class:`~repro.cluster.machine.Cluster`."""

    name: str
    node: NodeSpec = field(default_factory=NodeSpec)
    network: NetworkSpec = field(default_factory=NetworkSpec)
    filesystem: FileSystemSpec = field(default_factory=FileSystemSpec)
    #: Maximum number of nodes a single job may use (Bridges: 168 ≈ 4704/28).
    max_nodes: Optional[int] = None
    #: Seed for the cluster's random streams.
    seed: int = 20180611

    def with_seed(self, seed: int) -> "ClusterSpec":
        """Return a copy of this spec with a different random seed."""
        return replace(self, seed=seed)

    def cores_per_node(self) -> int:
        return self.node.cores

    def nodes_for_cores(self, cores: int) -> int:
        """Number of nodes needed to host ``cores`` cores (ceiling division)."""
        if cores <= 0:
            raise ValueError("cores must be positive")
        return -(-cores // self.node.cores)
