"""Interconnect fabric model with port queueing, congestion and counters.

The model is intentionally lightweight — one simulation event per message —
but captures the phenomena the paper's analysis rests on:

* **Port serialisation.**  Each node has one NIC; messages leaving (entering)
  a node queue FIFO behind earlier messages at that port.  Time spent queued
  with data ready is accumulated into the ``XmitWait`` counter exactly as the
  Omni-Path counter does.
* **Fabric taper and scale.**  Traffic between nodes on different leaf
  switches passes through a per-node share of core-fabric bandwidth.  The
  share shrinks (mildly) as the *full* job size grows, which is what makes
  congestion, and therefore the benefit of Zipper's dual-path transfer, grow
  with scale (paper Figures 14/15).
* **Congestion penalty.**  The effective rate of a port degrades with the
  number of flows concurrently using it, modelling credit stalls and
  head-of-line blocking under incast.  Flows may carry a weight: parallel
  file-system traffic is spread over many OSTs and therefore loads the fabric
  with a weight < 1, which is why offloading blocks to the file path relieves
  congestion on the message path.
* **Backpressure.**  A transfer holds its source port until the data has been
  drained by the slowest stage on its path, so a congested receiver slows its
  senders — the mechanism behind the inflated ``MPI_Sendrecv`` times the paper
  observes once a staging library shares the fabric with the simulation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Generator, Optional

from repro.simcore import Environment, RandomStreams, TallyMonitor
from repro.cluster.counters import CounterRegistry
from repro.cluster.spec import NetworkSpec

__all__ = ["Network", "TransferResult", "PortState"]

#: Default bandwidth of an intra-node (shared-memory) copy, bytes/second.
DEFAULT_INTRA_NODE_BANDWIDTH = 20e9


@dataclass(slots=True)
class TransferResult:
    """Outcome of a single message transfer."""

    src: int
    dst: int
    nbytes: int
    start: float
    finish: float
    queued: float  #: seconds spent waiting for the source port
    stalled: float  #: seconds the source was backpressured by downstream stages
    flow: str = "msg"

    @property
    def duration(self) -> float:
        return self.finish - self.start

    @property
    def bandwidth(self) -> float:
        """Achieved end-to-end bandwidth in bytes/second."""
        if self.duration <= 0:
            return float("inf")
        return self.nbytes / self.duration


class PortState:
    """Mutable per-port bookkeeping: FIFO availability and weighted load."""

    __slots__ = ("name", "bandwidth", "busy_until", "load", "counters_id", "counter")

    def __init__(self, name: str, bandwidth: float, counters_id: Optional[str] = None):
        self.name = name
        self.bandwidth = float(bandwidth)
        self.busy_until = 0.0
        self.load = 0.0  # weighted number of flows currently using the port
        self.counters_id = counters_id
        #: The port's counter record, bound once by the owning Network (the
        #: registry lookup sits on the per-transfer hot path).
        self.counter = None

class Network:
    """The fabric connecting the modelled compute nodes.

    Parameters
    ----------
    env:
        Simulation environment.
    spec:
        Static fabric description.
    num_nodes:
        Number of *modelled* nodes (each gets an injection and an ejection
        port).
    total_nodes:
        Number of nodes in the full job being represented; drives the
        scale-dependent core-fabric share.  Defaults to ``num_nodes``.
    counters:
        Registry receiving per-port traffic and ``XmitWait`` counts.
    rng:
        Random streams (used only when ``jitter_cv`` > 0).
    """

    def __init__(
        self,
        env: Environment,
        spec: NetworkSpec,
        num_nodes: int,
        total_nodes: Optional[int] = None,
        counters: Optional[CounterRegistry] = None,
        rng: Optional[RandomStreams] = None,
        intra_node_bandwidth: float = DEFAULT_INTRA_NODE_BANDWIDTH,
        scale_penalty: float = 0.12,
        jitter_cv: float = 0.0,
    ):
        if num_nodes <= 0:
            raise ValueError("num_nodes must be positive")
        self.env = env
        self.spec = spec
        self.num_nodes = num_nodes
        self.total_nodes = int(total_nodes) if total_nodes else num_nodes
        if self.total_nodes < num_nodes:
            raise ValueError("total_nodes cannot be smaller than num_nodes")
        self.counters = counters if counters is not None else CounterRegistry()
        self.rng = rng if rng is not None else RandomStreams(0)
        self.intra_node_bandwidth = float(intra_node_bandwidth)
        self.scale_penalty = float(scale_penalty)
        self.jitter_cv = float(jitter_cv)

        # The scale-dependent factors depend only on spec and total_nodes, both
        # fixed after construction, so they are computed once: congestion_scale
        # sits on the per-transfer hot path.
        self._flits_per_second = spec.link_bandwidth / float(spec.flit_bytes)
        leaves = self.total_nodes / spec.ports_per_leaf
        self._congestion_scale = 1.0 + 0.45 * max(0.0, math.log2(max(1.0, leaves)))
        self._fabric_efficiency = 1.0 / (
            1.0 + self.scale_penalty * math.log2(max(1.0, leaves) + 1.0)
        )
        nominal_core_share = (
            spec.core_link_bandwidth * spec.core_links_per_leaf / spec.ports_per_leaf
        )
        self._core_share = (
            min(spec.link_bandwidth, nominal_core_share) * self._fabric_efficiency
        )

        self._inject: Dict[int, PortState] = {}
        self._eject: Dict[int, PortState] = {}
        self._core: Dict[int, PortState] = {}
        core_share = self._core_share
        for node in range(num_nodes):
            self._inject[node] = PortState(
                f"node{node}.tx", spec.link_bandwidth, counters_id=f"node{node}"
            )
            self._eject[node] = PortState(
                f"node{node}.rx", spec.link_bandwidth, counters_id=f"node{node}"
            )
            self._core[node] = PortState(f"node{node}.core", core_share)
            self._inject[node].counter = self.counters.port(f"node{node}")
            self._eject[node].counter = self.counters.port(f"node{node}")
        #: Leaf switch of each modelled node (static — see node_leaf), cached
        #: off the per-transfer hot path.
        self._leaf = [self.node_leaf(node) for node in range(num_nodes)]

        self.transfer_stats = TallyMonitor("transfer_time")
        self.bytes_moved = 0
        self.messages_sent = 0

    # -- derived quantities ------------------------------------------------
    def congestion_scale(self) -> float:
        """Scale factor applied to the congestion penalty for large jobs.

        Grows with the number of leaf switches the represented job spans;
        jobs confined to a single leaf see no amplification.
        """
        return self._congestion_scale

    def fabric_efficiency(self) -> float:
        """Scale-dependent efficiency of the core fabric (1.0 for tiny jobs).

        Larger jobs span more leaf switches; adaptive-routing collisions and
        longer paths reduce the usable fraction of the nominal core bandwidth.
        """
        return self._fabric_efficiency

    def core_share_per_node(self) -> float:
        """Per-node share of core-fabric bandwidth, after taper and scale effects."""
        return self._core_share

    def node_leaf(self, node: int) -> int:
        """Leaf switch index hosting ``node``.

        Modelled nodes stand for a job of ``total_nodes`` nodes; they are
        mapped onto leaf switches as if spread evenly across the full job's
        allocation, so that a representative-rank simulation exercises the
        core fabric the way the full job would.
        """
        stride = self.total_nodes / self.num_nodes
        real_node = int(node * stride)
        return real_node // self.spec.ports_per_leaf

    # -- traffic -------------------------------------------------------------
    def transfer(
        self,
        src: int,
        dst: int,
        nbytes: int,
        flow: str = "msg",
        congestion_weight: float = 1.0,
        rate_scale: float = 1.0,
    ) -> Generator:
        """Simulate moving ``nbytes`` from node ``src`` to node ``dst``.

        This is a simulation process: ``yield from`` it (or wrap it with
        ``env.process``).  Returns a :class:`TransferResult`.

        ``rate_scale`` scales the bottleneck drain rate of this one transfer:
        the bandwidth-lease hook of the elastic layer uses it to let a
        coupling holding a lease of ``s`` drain at ``s`` × its fair-share
        rate (``s`` < 1 for a lender, > 1 for a borrower).  The default of
        1.0 leaves the arithmetic bit-identical to an unleased transfer.
        """
        if rate_scale <= 0:
            raise ValueError("rate_scale must be positive")
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        num_nodes = self.num_nodes
        if not (0 <= src < num_nodes and 0 <= dst < num_nodes):
            self._check_node(src)
            self._check_node(dst)
        env = self.env
        spec = self.spec
        start = env.now
        self.messages_sent += 1
        self.bytes_moved += int(nbytes)

        if nbytes == 0:
            # Pure synchronisation message: latency only.
            yield env.sleep(spec.latency + spec.per_message_overhead)
            result = TransferResult(src, dst, 0, start, env.now, 0.0, 0.0, flow)
            self.transfer_stats.observe(result.duration)
            return result

        if src == dst:
            duration = spec.per_message_overhead + nbytes / self.intra_node_bandwidth
            if self.jitter_cv > 0:
                duration = self.rng.jitter("network.intra", duration, self.jitter_cv)
            yield env.sleep(duration)
            result = TransferResult(src, dst, nbytes, start, env.now, 0.0, 0.0, flow)
            self.transfer_stats.observe(result.duration)
            return result

        tx = self._inject[src]
        rx = self._eject[dst]
        leaf = self._leaf
        if leaf[src] == leaf[dst]:
            stages = (tx, rx)
        else:
            stages = (tx, self._core[src], rx)

        # Effective rates are frozen at issue time from the current loads;
        # the loads are then raised for the duration of the transfer so that
        # later flows see this one.  Per stage, a new flow sees
        # bandwidth / penalty where penalty = 1 + alpha·scale·(concurrency−1)
        # capped at max_congestion_penalty: the same instantaneous contention
        # produces more credit stalls when the job spans more leaf switches,
        # which is the scale-dependent congestion the paper measures through
        # XmitWait.
        cscale = self._congestion_scale
        alpha = spec.congestion_alpha * cscale
        max_penalty = spec.max_congestion_penalty
        bottleneck = float("inf")
        tx_rate = 0.0
        for stage in stages:
            concurrency = stage.load + congestion_weight
            penalty = 1.0 + alpha * (concurrency - 1.0) if concurrency > 1.0 else 1.0
            if penalty > max_penalty:
                penalty = max_penalty
            rate = stage.bandwidth / penalty
            if stage is tx:
                tx_rate = rate
            if rate < bottleneck:
                bottleneck = rate
        if rate_scale != 1.0:
            bottleneck *= rate_scale

        now = start
        latency = spec.latency
        tx_busy = tx.busy_until
        t_tx_start = tx_busy if tx_busy > now else now
        queued = t_tx_start - now
        t_arrive = t_tx_start + latency
        rx_busy = rx.busy_until
        t_rx_start = rx_busy if rx_busy > t_arrive else t_arrive
        # Jitter is applied to the *service* portion only, before the finish
        # time is frozen: the queueing delay is set by when the ports free, so
        # jittering it too could move finish before the predecessor's finish
        # and break the FIFO invariant.  With the jittered service folded in
        # here, busy_until, the yielded duration and the TransferResult all
        # agree on the same completion time.
        service = spec.per_message_overhead + nbytes / bottleneck
        if self.jitter_cv > 0:
            service = self.rng.jitter("network.fabric", service, self.jitter_cv)
        finish = t_rx_start + service
        duration = finish - now
        # Backpressure: the source cannot consider the message "sent" before
        # the slowest stage has drained it.
        stalled = finish - (t_tx_start + nbytes / tx_rate) - latency
        if stalled < 0.0:
            stalled = 0.0

        for stage in stages:
            stage.busy_until = finish
            stage.load += congestion_weight

        # Counters for the source and destination NIC ports (inlined
        # PortCounters.record_send/record_receive/record_wait — one message
        # each, values already validated above).
        tx_counter = tx.counter
        rx_counter = rx.counter
        tx_counter.xmit_data += int(nbytes)
        tx_counter.xmit_pkts += 1
        rx_counter.rcv_data += int(nbytes)
        rx_counter.rcv_pkts += 1
        wait = queued + stalled
        if wait > 0:
            tx_counter.xmit_wait += int(round(wait * self._flits_per_second))

        try:
            yield env.sleep(duration)
        finally:
            # Runs even when the transfer's process is interrupted or killed,
            # otherwise the port keeps phantom congestion load forever.
            for stage in stages:
                load = stage.load - congestion_weight
                stage.load = load if load > 0.0 else 0.0

        result = TransferResult(
            src, dst, nbytes, start, env.now, queued, stalled, flow
        )
        self.transfer_stats.observe(result.duration)
        return result

    def scale_node_bandwidth(self, node: int, factor: float) -> None:
        """Scale one node's port bandwidths (used for under-filled modelled nodes).

        A modelled node normally stands for ``ranks_per_modelled_node`` ranks
        of a real node; when it actually hosts fewer ranks (e.g. a single
        staging rank), its share of the real node's NIC must shrink
        accordingly, otherwise the modelled staging/link nodes would enjoy
        several times the per-rank bandwidth they have on the real machine.
        """
        if factor <= 0:
            raise ValueError("factor must be positive")
        self._check_node(node)
        for ports in (self._inject, self._eject, self._core):
            ports[node].bandwidth *= factor

    def add_background_load(self, node: int, weight: float) -> None:
        """Register standing load on a node's ports (e.g. file traffic share)."""
        self._check_node(node)
        self._inject[node].load += weight
        self._eject[node].load += weight

    def remove_background_load(self, node: int, weight: float) -> None:
        self._check_node(node)
        self._inject[node].load = max(0.0, self._inject[node].load - weight)
        self._eject[node].load = max(0.0, self._eject[node].load - weight)

    # -- introspection ---------------------------------------------------
    def port_load(self, node: int) -> float:
        """Current weighted load on a node's injection port."""
        self._check_node(node)
        return self._inject[node].load

    def xmit_wait_total(self) -> int:
        """Sum of ``XmitWait`` over every modelled port."""
        return self.counters.total("XmitWait")

    # -- helpers ----------------------------------------------------------
    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise ValueError(f"node {node} out of range [0, {self.num_nodes})")
