"""Machine presets for the systems used in the paper plus a laptop-scale preset."""

from __future__ import annotations

from repro.cluster.spec import (
    ClusterSpec,
    FileSystemSpec,
    GiB,
    NetworkSpec,
    NodeSpec,
)

__all__ = ["bridges", "stampede2", "laptop"]


def bridges() -> ClusterSpec:
    """Bridges (Pittsburgh Supercomputing Center), as described in Sections 3 and 6.

    752 regular nodes, 2x Intel Haswell 14-core 3.3 GHz (28 cores), 128 GB of
    memory per node, 100 Gb/s Omni-Path (leaf switches with 42 ports at
    12.5 GB/s), 10 PB Lustre file system.  Jobs are limited to 4,704 cores
    (168 nodes).  The file-system numbers describe the bandwidth a *job*
    obtains on the shared production system (calibrated from the paper's
    Preserve-mode experiment, ≈ 23 GB/s aggregate), not the hardware peak.
    """
    return ClusterSpec(
        name="bridges",
        node=NodeSpec(cores=28, memory_bytes=128 * GiB, core_speed=1.0),
        network=NetworkSpec(
            link_bandwidth=12.5e9,
            latency=2.0e-6,
            ports_per_leaf=42,
            core_links_per_leaf=16,
            core_link_bandwidth=12.5e9,
            per_message_overhead=5.0e-6,
            congestion_alpha=0.08,
            max_congestion_penalty=4.0,
        ),
        filesystem=FileSystemSpec(
            num_osts=64,
            ost_bandwidth=0.5e9,
            client_node_bandwidth=2.0e9,
            metadata_latency=1.0e-3,
            background_load=0.28,
            service_cv=0.25,
            shares_fabric=True,
        ),
        max_nodes=168,
        seed=20180611,
    )


def stampede2() -> ClusterSpec:
    """Stampede2 (TACC): 4,200 KNL nodes, 68 cores each, Omni-Path, 30 PB Lustre.

    Individual KNL cores are considerably slower than Haswell cores (the paper
    reports longer per-step times for the same per-process workload), which is
    captured by ``core_speed`` < 1.
    """
    return ClusterSpec(
        name="stampede2",
        node=NodeSpec(cores=68, memory_bytes=96 * GiB, core_speed=0.8),
        network=NetworkSpec(
            link_bandwidth=12.5e9,
            latency=2.5e-6,
            ports_per_leaf=48,
            core_links_per_leaf=28,
            core_link_bandwidth=12.5e9,
            per_message_overhead=6.0e-6,
            congestion_alpha=0.10,
            max_congestion_penalty=8.0,
        ),
        filesystem=FileSystemSpec(
            num_osts=128,
            ost_bandwidth=0.5e9,
            client_node_bandwidth=2.0e9,
            metadata_latency=1.2e-3,
            background_load=0.3,
            service_cv=0.3,
            shares_fabric=True,
        ),
        max_nodes=4200,
        seed=20170801,
    )


def laptop() -> ClusterSpec:
    """A small, fast-to-simulate machine used by tests and the quickstart example."""
    return ClusterSpec(
        name="laptop",
        node=NodeSpec(cores=4, memory_bytes=16 * GiB, core_speed=1.0),
        network=NetworkSpec(
            link_bandwidth=5.0e9,
            latency=5.0e-6,
            ports_per_leaf=8,
            core_links_per_leaf=4,
            core_link_bandwidth=5.0e9,
            per_message_overhead=10.0e-6,
        ),
        filesystem=FileSystemSpec(
            num_osts=4,
            ost_bandwidth=1.0e9,
            client_node_bandwidth=2.0e9,
            metadata_latency=0.5e-3,
            background_load=0.0,
            service_cv=0.0,
        ),
        max_nodes=64,
        seed=7,
    )
