"""Decaf: dataflow coupling through dedicated link ranks.

Decaf describes the workflow as producer → link → consumer dataflow inside a
single ``MPI_COMM_WORLD``.  The behaviours that matter for performance (and
that the traces in Figures 6, 17 and 19 expose) are:

* the producer's ``put`` posts sends to the link ranks and then calls
  ``MPI_Waitall`` — the simulation stalls until the link has safely received
  the whole step;
* the link may hold only a small number of outstanding steps, and all data of
  a step must arrive at the link before any of it is forwarded, so a slow
  consumer back-pressures the producer;
* the redistribution between producer and link is described by element counts
  in 32-bit integers, which overflow for the large CFD runs (the segmentation
  faults the paper reports at 6,528+ cores) — modelled here as a
  :class:`~repro.transports.base.TransportFault`;
* being one MPI world, there is a single failure domain.
"""

from __future__ import annotations

from typing import Callable, Dict, Generator

from repro.simcore import Container, Store
from repro.transports.base import Transport, TransportFault
from repro.transports.registry import register_transport

__all__ = ["DecafTransport"]

#: Aggregated element count (8-byte elements per step across the producer
#: application) above which Decaf's 32-bit redistribution counts overflow.
#: Chosen so the CFD workflow fails at 6,528+ cores while the LAMMPS workflow
#: (fewer elements per byte of payload) still runs at 13,056 cores, matching
#: the paper's observations.
INT_OVERFLOW_ELEMENTS = 2 ** 33


@register_transport("decaf")
class DecafTransport(Transport):
    """Producer → link → consumer dataflow with a per-step Waitall interlock."""

    name = "decaf"
    multiple_failure_domains = False
    uses_staging_ranks = True

    def __init__(
        self,
        link_buffer_steps: int = 2,
        element_bytes: int | None = None,
        serialization_seconds_per_byte: float = 1.2e-8,
    ):
        if link_buffer_steps <= 0:
            raise ValueError("link_buffer_steps must be positive")
        if element_bytes is not None and element_bytes <= 0:
            raise ValueError("element_bytes must be positive")
        if serialization_seconds_per_byte < 0:
            raise ValueError("serialization_seconds_per_byte must be non-negative")
        #: How many outstanding steps a link rank may buffer per producer.
        self.link_buffer_steps = link_buffer_steps
        #: Size of one redistribution element; ``None`` takes the value from
        #: the workload model (8-byte doubles for grid fields, whole atom
        #: records for molecular dynamics).
        self.element_bytes = element_bytes
        #: Per-byte cost of Decaf's (Boost) serialisation of the put payload —
        #: the inline calls that made the TAU traces explode in Section 3.
        self.serialization_seconds_per_byte = serialization_seconds_per_byte
        self._credits: Dict[int, Container] = {}
        self._link_inbox: Dict[int, Store] = {}
        self._delivery: Dict[int, Store] = {}

    # -- fault model -----------------------------------------------------------
    def _check_overflow(self, ctx) -> None:
        element_bytes = (
            self.element_bytes
            if self.element_bytes is not None
            else getattr(ctx.workload, "element_bytes", 8)
        )
        # Size the redistribution from what the coupling actually carries per
        # step in the *full* job (mid-pipeline stages may forward a reduced or
        # aggregated stream), not from the raw workload output.
        elements_per_step = (
            ctx.total_sim_ranks * ctx.represented_step_output_bytes() / element_bytes
        )
        if elements_per_step > INT_OVERFLOW_ELEMENTS:
            raise TransportFault(
                "integer overflow in Decaf redistribution counts "
                f"({elements_per_step:.3g} elements/step)"
            )

    def setup(self, ctx) -> None:
        self._check_overflow(ctx)
        env = ctx.env
        self._credits = {
            rank: Container(env, capacity=self.link_buffer_steps, init=self.link_buffer_steps)
            for rank in range(ctx.sim_ranks)
        }
        self._delivery = {arank: Store(env) for arank in range(ctx.analysis_ranks)}
        self._link_inbox = {}
        if ctx.staging_ranks > 0:
            for link in range(ctx.staging_ranks):
                self._link_inbox[link] = Store(env)
                env.process(self._link_process(ctx, link))

    def _link_of(self, ctx, rank: int) -> int:
        return rank % max(1, ctx.staging_ranks)

    # -- producer ----------------------------------------------------------------
    def producer_put(self, ctx, rank: int, step: int, nbytes: int) -> Generator:
        env = ctx.env
        node = ctx.sim_node(rank)
        # Back-pressure: wait for a free slot in the link's buffer for this
        # producer (slow consumers therefore block the producers, as the paper
        # notes for Decaf).
        credit_start = env.now
        yield self._credits[rank].get(1)
        credit_wait = env.now - credit_start
        if credit_wait > 0:
            ctx.sim_rank_stats[rank]["stall_time"] += credit_wait
            ctx.stats["stall_time"] += credit_wait
            ctx.record_sim(rank, "stall", credit_start, step=step)

        # PUT: serialise the payload, send it to the link node, then
        # MPI_Waitall until it has fully arrived there.
        link = self._link_of(ctx, rank)
        link_node = ctx.staging_node(link)
        put_start = env.now
        serialization = self.serialization_seconds_per_byte * nbytes
        if serialization > 0:
            yield from ctx.cluster.node(node).compute(serialization)
        yield from ctx.cluster.network.transfer(
            node, link_node, nbytes, flow="decaf-put",
            rate_scale=ctx.bandwidth_share,
        )
        ctx.sim_rank_stats[rank]["transfer_busy_time"] += env.now - put_start
        ctx.stats["bytes_network"] += nbytes
        yield self._link_inbox[link].put((rank, step, nbytes))
        # The redistribution between the producer communicator and the link
        # communicator is a collective over the single MPI world: the step is
        # complete for everyone only when it is complete for the slowest
        # producer-to-link path.
        yield from ctx.sim_comm.barrier(rank)
        ctx.sim_rank_stats[rank]["waitall_time"] += env.now - put_start
        ctx.record_sim(rank, "waitall", put_start, step=step)

    # -- link ranks ------------------------------------------------------------------
    def _link_process(self, ctx, link: int) -> Generator:
        """One Decaf link rank: gather a full step from its producers, forward it."""
        env = ctx.env
        my_producers = [
            r for r in range(ctx.sim_ranks) if self._link_of(ctx, r) == link
        ]
        if not my_producers:
            return
        pending: Dict[int, Dict[int, int]] = {}
        expected = len(my_producers)
        total_items = ctx.steps * expected
        received = 0
        while received < total_items:
            rank, step, nbytes = yield self._link_inbox[link].get()
            received += 1
            pending.setdefault(step, {})[rank] = nbytes
            if len(pending[step]) < expected:
                continue
            # The whole step arrived at the link: forward each producer's data
            # to its consumer, then release the producers' buffer slots.
            link_node = ctx.staging_node(link)
            for prank, pbytes in sorted(pending[step].items()):
                arank = ctx.consumer_of(prank)
                yield from ctx.cluster.network.transfer(
                    link_node, ctx.analysis_node(arank), pbytes,
                    flow="decaf-forward", rate_scale=ctx.bandwidth_share,
                )
                yield self._delivery[arank].put((prank, step, pbytes))
            for prank in pending[step]:
                self._credits[prank].put(1)
            del pending[step]

    # -- consumer -----------------------------------------------------------------------
    def consumer_run(self, ctx, arank: int, analyze: Callable[[int, int], Generator]) -> Generator:
        env = ctx.env
        producers = ctx.producers_of(arank)
        expected_per_step = len(producers)
        for step in range(ctx.steps):
            got = 0
            step_bytes = 0
            wait_start = env.now
            while got < expected_per_step:
                _rank, _step, nbytes = yield self._delivery[arank].get()
                got += 1
                step_bytes += nbytes
            ctx.analysis_rank_stats[arank]["wait_time"] += env.now - wait_start
            yield from analyze(step_bytes, step)

    def teardown(self, ctx) -> None:
        self._credits.clear()
        self._link_inbox.clear()
        self._delivery.clear()
