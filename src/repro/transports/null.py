"""The no-coupling transport: simulation-only and analysis-only lower bounds."""

from __future__ import annotations

from typing import Callable, Generator

from repro.transports.base import Transport, empty_generator
from repro.transports.registry import register_transport

__all__ = ["NullTransport"]


@register_transport("none", "null")
class NullTransport(Transport):
    """Discard all output: used to measure the standalone simulation time.

    The paper's "Simulation-only time is the time spent only by the simulation
    program's computational kernels (excluding any I/O, idle time, and data
    staging related cost). It works as a lower bound of the workflow
    end-to-end time."  Running a workflow with this transport gives exactly
    that lower bound; the analysis ranks finish immediately.
    """

    name = "none"

    def producer_put(self, ctx, rank: int, step: int, nbytes: int) -> Generator:
        ctx.stats["bytes_discarded"] += nbytes
        return empty_generator()

    def consumer_run(self, ctx, arank: int, analyze: Callable[[int, int], Generator]) -> Generator:
        return empty_generator()

    def consumer_deliveries_per_step(self, ctx, arank: int) -> int:
        """Nothing is ever delivered, so nothing can be forwarded downstream."""
        return 0
