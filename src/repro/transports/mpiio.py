"""File-based coupling through collective MPI-IO (the slowest method in Figure 2).

The simulation writes every step collectively into a shared file on the
parallel file system; the analysis discovers new steps by polling, then reads
its portion collectively.  The costs this model charges are exactly the ones
the paper identifies: the shared (and variable) file system, the N-to-1
shared-file penalty, the per-step collective synchronisation of the writers
and readers, the polling latency of the consumer, and the contention between
the ongoing writes of step ``s+1`` and the reads of step ``s``.
"""

from __future__ import annotations

from typing import Callable, Generator

from repro.simcore import Timeout
from repro.transports.base import Transport
from repro.transports.registry import register_transport

__all__ = ["MPIIOTransport"]


@register_transport("mpiio")
class MPIIOTransport(Transport):
    """Shared-file collective writes plus consumer-side polling."""

    name = "mpiio"
    multiple_failure_domains = True
    uses_staging_ranks = False

    def __init__(
        self,
        shared_file_penalty: float = 0.25,
        poll_interval: float = 0.05,
        collective_sync: bool = True,
    ):
        if not 0 < shared_file_penalty <= 1:
            raise ValueError("shared_file_penalty must lie in (0, 1]")
        if poll_interval <= 0:
            raise ValueError("poll_interval must be positive")
        #: Fraction of the file system's nominal rate an N-to-1 shared file
        #: achieves (extent-lock contention on the OSTs).
        self.shared_file_penalty = shared_file_penalty
        self.poll_interval = poll_interval
        self.collective_sync = collective_sync
        self._steps_visible = 0
        self._writers_done_step = {}

    def setup(self, ctx) -> None:
        self._steps_visible = 0
        self._writers_done_step = {r: -1 for r in range(ctx.sim_ranks)}

    # -- producer --------------------------------------------------------------
    def producer_put(self, ctx, rank: int, step: int, nbytes: int) -> Generator:
        env = ctx.env
        fs = ctx.cluster.filesystem
        node = ctx.sim_node(rank)
        if self.collective_sync:
            barrier_start = env.now
            yield from ctx.sim_comm.barrier(rank)
            ctx.sim_rank_stats[rank]["barrier_time"] += env.now - barrier_start
        # The N-to-1 shared-file penalty is applied by inflating the volume the
        # file system has to serve for this logical write.
        effective_bytes = int(nbytes / self.shared_file_penalty)
        io_start = env.now
        yield from fs.write(
            node,
            effective_bytes,
            filename="mpiio_shared",
            rate_scale=ctx.bandwidth_share,
        )
        ctx.sim_rank_stats[rank]["io_write_time"] += env.now - io_start
        ctx.stats["bytes_file"] += nbytes
        ctx.record_sim(rank, "io_write", io_start, step=step)
        if self.collective_sync:
            barrier_start = env.now
            yield from ctx.sim_comm.barrier(rank)
            ctx.sim_rank_stats[rank]["barrier_time"] += env.now - barrier_start
        # Rank bookkeeping: once every writer finished step ``step`` the step
        # becomes visible to the readers (close + flush semantics).
        self._writers_done_step[rank] = step
        if all(done >= step for done in self._writers_done_step.values()):
            self._steps_visible = max(self._steps_visible, step + 1)

    # -- consumer --------------------------------------------------------------
    def consumer_run(self, ctx, arank: int, analyze: Callable[[int, int], Generator]) -> Generator:
        env = ctx.env
        fs = ctx.cluster.filesystem
        node = ctx.analysis_node(arank)
        step_bytes = ctx.consumer_step_bytes(arank)
        effective_bytes = int(step_bytes / self.shared_file_penalty)
        for step in range(ctx.steps):
            poll_start = env.now
            while self._steps_visible <= step:
                yield Timeout(env, self.poll_interval)
            ctx.analysis_rank_stats[arank]["poll_time"] += env.now - poll_start
            if self.collective_sync:
                yield from ctx.analysis_comm.barrier(arank)
            read_start = env.now
            yield from fs.read(
                node,
                effective_bytes,
                filename="mpiio_shared",
                rate_scale=ctx.bandwidth_share,
            )
            ctx.analysis_rank_stats[arank]["io_read_time"] += env.now - read_start
            ctx.record_analysis(arank, "io_read", read_start, step=step)
            yield from analyze(step_bytes, step)
