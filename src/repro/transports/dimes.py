"""DIMES: staging in the simulation nodes' own RDMA buffers.

Unlike DataSpaces there are no data servers: a ``put`` is a local memory copy
into the registered RDMA buffer, and the consumer pulls the data straight from
the simulation node.  Metadata servers are still required to locate data and
to provide the locking service, and the type-2 collective lock enforces strict
synchronisation between the producer and consumer groups through a circular
window of ``num_slots`` lock names — which is why Figure 4 shows the
simulation stalled for roughly one full step whenever the analysis is slower.

The ``adios`` flavour again loses the customised multi-lock strategy behind
the uniform interface (single slot + per-operation overhead), reproducing the
≈ 1.5x gap between ADIOS/DIMES and native DIMES in Figure 2.
"""

from __future__ import annotations

from typing import Callable, Generator

from repro.transports.base import Transport
from repro.transports.registry import register_transport
from repro.transports.staging import ArrivalBoard, StagingLockService, StepWindow

__all__ = ["DIMESTransport"]


class _BaseDIMES(Transport):
    multiple_failure_domains = True
    uses_staging_ranks = True

    num_slots = 4
    interface_overhead = 0.0

    def __init__(self, lock_service: StagingLockService | None = None):
        self.locks = lock_service if lock_service is not None else StagingLockService()
        self._window: StepWindow | None = None
        self._board: ArrivalBoard | None = None

    def setup(self, ctx) -> None:
        self._window = StepWindow(ctx.env, self.num_slots, ctx.analysis_ranks)
        self._board = ArrivalBoard(ctx.env, ctx.analysis_ranks)

    # -- producer ----------------------------------------------------------
    def producer_put(self, ctx, rank: int, step: int, nbytes: int) -> Generator:
        env = ctx.env
        node = ctx.sim_node(rank)
        assert self._window is not None

        # Collective lock_on_write: every producer synchronises with the
        # metadata servers and waits for the circular slot to be released.
        yield from self._window.wait_for_write(ctx, rank, step)
        lock_start = env.now
        yield from self.locks.request(ctx, node, kind="lock")
        if self.interface_overhead > 0:
            yield env.timeout(self.interface_overhead)
        ctx.sim_rank_stats[rank]["lock_time"] += env.now - lock_start

        # Insert the results into the local RDMA buffer (a node-local copy;
        # also subject to the coupling's bandwidth lease, like the remote
        # pulls below).
        put_start = env.now
        yield from ctx.cluster.network.transfer(
            node, node, nbytes, flow="dimes-put", rate_scale=ctx.bandwidth_share
        )
        ctx.sim_rank_stats[rank]["transfer_busy_time"] += env.now - put_start

        # Register the block's location with the metadata server + unlock.
        yield from self.locks.request(ctx, node, kind="metadata")
        if self.interface_overhead > 0:
            yield env.timeout(self.interface_overhead)
        assert self._board is not None
        self._board.deposit(ctx.consumer_of(rank), step)

    # -- consumer ------------------------------------------------------------
    def consumer_run(self, ctx, arank: int, analyze: Callable[[int, int], Generator]) -> Generator:
        env = ctx.env
        node = ctx.analysis_node(arank)
        assert self._window is not None and self._board is not None
        producers = ctx.producers_of(arank)
        for step in range(ctx.steps):
            yield from self._board.wait_until_ready(ctx, arank, step, len(producers))
            yield from self.locks.request(ctx, node, kind="read-poll")

            lock_start = env.now
            yield from self.locks.request(ctx, node, kind="lock")
            if self.interface_overhead > 0:
                yield env.timeout(self.interface_overhead)
            ctx.analysis_rank_stats[arank]["lock_time"] += env.now - lock_start

            # Pull directly from each producer's RDMA buffer.
            for rank in producers:
                get_start = env.now
                yield from ctx.cluster.network.transfer(
                    ctx.sim_node(rank),
                    node,
                    ctx.step_output_bytes(),
                    flow="dimes-get",
                    rate_scale=ctx.bandwidth_share,
                )
                ctx.analysis_rank_stats[arank]["get_time"] += env.now - get_start
                ctx.stats["bytes_network"] += ctx.step_output_bytes()
            yield from self.locks.request(ctx, node, kind="unlock")

            yield from analyze(ctx.consumer_step_bytes(arank), step)
            self._window.mark_consumed(arank, step)


@register_transport("dimes")
class DIMESTransport(_BaseDIMES):
    """Native DIMES with the customised multi-slot collective lock (lock_type=2)."""

    name = "dimes"
    num_slots = 4
    interface_overhead = 0.0


@register_transport("adios+dimes")
class ADIOSDIMESTransport(_BaseDIMES):
    """DIMES driven through the ADIOS uniform interface."""

    name = "adios+dimes"
    num_slots = 1
    interface_overhead = 3.0e-2
