"""I/O transport methods coupling the simulation to the analysis.

One implementation per method evaluated in the paper:

====================  =====================================================
``mpiio``             shared-file collective writes + consumer polling
``dataspaces``        native DataSpaces: dedicated staging servers, per-slot
                      reader/writer locks
``adios+dataspaces``  the same servers behind the ADIOS uniform interface
                      (coarser, global locking)
``dimes``             native DIMES: data kept in simulation-node RDMA
                      buffers, metadata servers, collective per-step locks
``adios+dimes``       DIMES behind ADIOS
``flexpath``          publisher/subscriber event channels over a socket
                      interface (no shared-memory fast path)
``decaf``             dataflow through dedicated link ranks with a per-step
                      ``MPI_Waitall`` interlock and a single MPI world
``zipper``            the paper's contribution: fine-grain blocks,
                      asynchronous pipelining, work-stealing dual-channel
                      transfers, no interlocks
``none``              no coupling at all (simulation-only lower bound)
====================  =====================================================

Every transport implements :class:`repro.transports.base.Transport` and is
registered in :mod:`repro.transports.registry` so workflow configurations can
select it by name.
"""

from repro.transports.base import Transport, TransportFault
from repro.transports.registry import (
    available_transports,
    canonical_name,
    create_transport,
    register_transport,
    transport_class,
)
from repro.transports.null import NullTransport
from repro.transports.mpiio import MPIIOTransport
from repro.transports.dataspaces import DataSpacesTransport
from repro.transports.dimes import DIMESTransport
from repro.transports.flexpath import FlexpathTransport
from repro.transports.decaf import DecafTransport
from repro.transports.zipper import ZipperTransport

__all__ = [
    "Transport",
    "TransportFault",
    "available_transports",
    "canonical_name",
    "create_transport",
    "register_transport",
    "transport_class",
    "NullTransport",
    "MPIIOTransport",
    "DataSpacesTransport",
    "DIMESTransport",
    "FlexpathTransport",
    "DecafTransport",
    "ZipperTransport",
]
