"""Registry mapping transport names to their implementations."""

from __future__ import annotations

from typing import Callable, Dict, List, Type

from repro.transports.base import Transport

__all__ = [
    "register_transport",
    "create_transport",
    "transport_class",
    "available_transports",
    "canonical_name",
]

_REGISTRY: Dict[str, Callable[..., Transport]] = {}

#: Accepted aliases -> canonical registry names (the paper uses both the
#: "ADIOS/<method>" and the "native <method>" phrasing).
_ALIASES: Dict[str, str] = {
    "adios/dataspaces": "adios+dataspaces",
    "adios-dataspaces": "adios+dataspaces",
    "native dataspaces": "dataspaces",
    "native-dataspaces": "dataspaces",
    "adios/dimes": "adios+dimes",
    "adios-dimes": "adios+dimes",
    "native dimes": "dimes",
    "native-dimes": "dimes",
    "adios/mpi-io": "mpiio",
    "mpi-io": "mpiio",
    "adios/flexpath": "flexpath",
    "simulation-only": "none",
    "sim-only": "none",
}


def register_transport(name: str, *extra_names: str):
    """Class decorator registering a :class:`Transport` under one or more names."""

    def decorator(cls: Type[Transport]) -> Type[Transport]:
        for key in (name, *extra_names):
            canonical = key.lower()
            if canonical in _REGISTRY:
                raise ValueError(f"transport {canonical!r} is already registered")
            _REGISTRY[canonical] = cls
        return cls

    return decorator


def canonical_name(name: str) -> str:
    key = name.strip().lower()
    return _ALIASES.get(key, key)


def transport_class(name: str) -> Callable[..., Transport]:
    """The implementation registered under ``name`` (aliases accepted)."""
    key = canonical_name(name)
    if key not in _REGISTRY:
        raise KeyError(
            f"unknown transport {name!r}; available: {', '.join(sorted(_REGISTRY))}"
        )
    return _REGISTRY[key]


def create_transport(name: str, **kwargs) -> Transport:
    """Instantiate the transport registered under ``name`` (aliases accepted)."""
    return transport_class(name)(**kwargs)


def available_transports(include_aliases: bool = False) -> List[str]:
    """Sorted list of canonical transport names (optionally with aliases)."""
    if include_aliases:
        return sorted(set(_REGISTRY) | set(_ALIASES))
    return sorted(_REGISTRY)
