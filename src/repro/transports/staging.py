"""Shared building blocks of the staging-based baselines (DataSpaces and DIMES).

Both libraries coordinate the producer and consumer applications through a
lock service hosted on dedicated server ranks and bound the number of
outstanding time steps by a circular window of lock "slots" (the paper's
``step % num_slots`` construction).  The two classes here model those pieces:

* :class:`StagingLockService` — the metadata/lock server round trips, whose
  cost grows with the number of clients per server in the full job;
* :class:`StepWindow` — the reader/writer interlock: a producer may not write
  step ``s`` before the consumers have finished reading step ``s - num_slots``,
  which is precisely why the simulation stalls for about one step when the
  analysis is slower (Figure 4).
"""

from __future__ import annotations

from typing import Dict, Generator

from repro.simcore import ConditionVar

__all__ = ["StagingLockService", "StepWindow", "ArrivalBoard"]


class StagingLockService:
    """Lock/metadata service hosted on the staging ranks."""

    def __init__(self, per_request_service: float = 2.0e-5, request_bytes: int = 256):
        if per_request_service < 0:
            raise ValueError("per_request_service must be non-negative")
        self.per_request_service = per_request_service
        self.request_bytes = request_bytes

    def _clients_per_server(self, ctx) -> float:
        servers = max(1, ctx.staging_ranks) * ctx.rank_scale_factor
        clients = ctx.total_sim_ranks + ctx.total_analysis_ranks
        return clients / servers

    def request(self, ctx, node: int, kind: str = "lock") -> Generator:
        """One round trip to the lock/metadata server from ``node``.

        The server-side service time is multiplied by the number of clients
        each server handles in the *full* job, modelling the serialisation at
        the centralised service that the paper lists among the performance
        inefficiencies.
        """
        server_node = ctx.staging_node(0) if ctx.staging_ranks else node
        # Request to the server and response back.
        yield from ctx.cluster.network.transfer(
            node, server_node, self.request_bytes, flow=f"staging-{kind}"
        )
        service = self.per_request_service * self._clients_per_server(ctx)
        if service > 0:
            yield ctx.env.timeout(service)
        yield from ctx.cluster.network.transfer(
            server_node, node, self.request_bytes, flow=f"staging-{kind}"
        )
        ctx.stats[f"{kind}_requests"] += 1


class StepWindow:
    """Reader/writer interlock over a circular window of ``num_slots`` steps."""

    def __init__(self, env, num_slots: int, num_consumers: int):
        if num_slots <= 0:
            raise ValueError("num_slots must be positive")
        if num_consumers <= 0:
            raise ValueError("num_consumers must be positive")
        self.num_slots = num_slots
        self.num_consumers = num_consumers
        self._consumer_progress: Dict[int, int] = {c: 0 for c in range(num_consumers)}
        self._released = ConditionVar(env)

    @property
    def steps_consumed(self) -> int:
        """Number of steps every consumer has completely analysed."""
        return min(self._consumer_progress.values())

    def can_write(self, step: int) -> bool:
        """Whether the slot for ``step`` is free for writing."""
        return step < self.steps_consumed + self.num_slots

    def wait_for_write(self, ctx, rank: int, step: int) -> Generator:
        """Block the producer until the slot for ``step`` has been released."""
        env = ctx.env
        start = env.now
        while not self.can_write(step):
            yield self._released.wait()
        waited = env.now - start
        if waited > 0:
            ctx.sim_rank_stats[rank]["lock_wait_time"] += waited
            ctx.sim_rank_stats[rank]["stall_time"] += waited
            ctx.stats["stall_time"] += waited
            ctx.record_sim(rank, "lock", start, step=step)

    def mark_consumed(self, arank: int, step: int) -> None:
        """Record that consumer ``arank`` finished analysing ``step``."""
        self._consumer_progress[arank] = max(self._consumer_progress[arank], step + 1)
        self._released.notify_all()


class ArrivalBoard:
    """Tracks which producers have deposited each step, per consumer.

    Consumers wait on a condition variable instead of busy-polling the
    metadata service; the polling cost itself (one service round trip per
    wake-up) is charged by the caller.
    """

    def __init__(self, env, num_consumers: int):
        if num_consumers <= 0:
            raise ValueError("num_consumers must be positive")
        self._counts: Dict[int, Dict[int, int]] = {c: {} for c in range(num_consumers)}
        self._ready = {c: ConditionVar(env) for c in range(num_consumers)}

    def deposit(self, arank: int, step: int) -> None:
        """One producer finished depositing ``step`` for consumer ``arank``."""
        step_map = self._counts[arank]
        step_map[step] = step_map.get(step, 0) + 1
        self._ready[arank].notify_all()

    def arrivals(self, arank: int, step: int) -> int:
        return self._counts[arank].get(step, 0)

    def is_ready(self, arank: int, step: int, expected: int) -> bool:
        return self.arrivals(arank, step) >= expected

    def wait_until_ready(self, ctx, arank: int, step: int, expected: int) -> Generator:
        """Block consumer ``arank`` until all ``expected`` producers deposited ``step``."""
        env = ctx.env
        start = env.now
        while not self.is_ready(arank, step, expected):
            yield self._ready[arank].wait()
        waited = env.now - start
        if waited > 0:
            ctx.analysis_rank_stats[arank]["wait_time"] += waited
