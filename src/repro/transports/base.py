"""Common interface of the simulated I/O transport methods."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Any, Callable, Generator

if TYPE_CHECKING:
    from repro.simcore.events import Event
    from repro.workflow.context import CouplingContext

#: The generator type of every transport hook: yields simulation events and
#: may return a result to its ``yield from`` caller.
TransportGenerator = Generator["Event", Any, Any]

__all__ = ["Transport", "TransportFault", "TransportGenerator", "empty_generator"]


class TransportFault(RuntimeError):
    """A software fault of a transport (e.g. Decaf's integer overflow).

    The paper reports that several baselines crash at large scale; the
    corresponding transport models raise this exception so the workflow runner
    can record the failure exactly as the paper does (and plot the "ideal"
    dotted continuation instead).
    """

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


def empty_generator() -> TransportGenerator:
    """A generator that finishes immediately (for no-op transport hooks)."""
    return
    yield  # pragma: no cover - makes this function a generator


class Transport(ABC):
    """Behavioural model of one I/O transport method.

    A transport is instantiated once per workflow run.  The workflow runner
    calls, in order:

    1. :meth:`setup` — create staging/link server processes and per-rank state;
    2. :meth:`producer_put` from every simulation rank, once per time step;
    3. :meth:`producer_finalize` from every simulation rank after its last step;
    4. :meth:`consumer_run` once per analysis rank — the transport drives the
       whole consumer loop, invoking the supplied ``analyze(nbytes, step)``
       sub-generator for every piece of data it delivers;
    5. :meth:`teardown` after all ranks finished.

    All generator hooks run inside the discrete-event simulation; they must
    ``yield`` only simulation events (typically via ``yield from`` on cluster,
    communicator or file-system operations).

    The context object (``ctx``) is a
    :class:`repro.workflow.context.CouplingContext` — one coupling's view of
    the stage graph, in which ``sim_*`` names address the coupling's source
    stage and ``analysis_*`` names its target stage.  Transports use its
    placement, mapping, statistics and tracing helpers and must not keep
    state outside ``self`` and ``ctx``, so one transport instance serves
    exactly one coupling of one run.
    """

    #: Registry name (overridden by subclasses).
    name: str = "abstract"
    #: Whether the paper classifies the method as having multiple failure
    #: domains (each application launched by its own mpirun/aprun).
    multiple_failure_domains: bool = True
    #: Whether dedicated staging resources (servers/link ranks) are required.
    uses_staging_ranks: bool = False

    def setup(self, ctx: "CouplingContext") -> None:
        """Create per-run state and spawn any server processes."""

    @abstractmethod
    def producer_put(self, ctx: "CouplingContext", rank: int, step: int, nbytes: int) -> TransportGenerator:
        """Ship one step's output (``nbytes``) from simulation rank ``rank``."""

    def producer_finalize(self, ctx: "CouplingContext", rank: int) -> TransportGenerator:
        """Flush buffered data and signal end-of-stream for ``rank``."""
        return empty_generator()

    @abstractmethod
    def consumer_run(
        self,
        ctx: "CouplingContext",
        arank: int,
        analyze: Callable[[int, int], TransportGenerator],
    ) -> TransportGenerator:
        """Run the whole consumer loop of analysis rank ``arank``.

        ``analyze(nbytes, step)`` is a sub-generator provided by the runner
        that charges the analysis compute time for one delivered piece of
        data; the transport decides when and how often to call it (per step
        for the coarse-grain baselines, per fine-grain block for Zipper).
        """

    def teardown(self, ctx: "CouplingContext") -> None:
        """Release any resources created in :meth:`setup`."""

    def consumer_deliveries_per_step(self, ctx: "CouplingContext", arank: int) -> int:
        """How many times :meth:`consumer_run` calls ``analyze`` per step.

        Forwarding stages of a multi-stage pipeline use this to detect when a
        step has been fully consumed and may be re-emitted downstream.  The
        coarse-grain baselines deliver one aggregated payload per step (the
        default); fine-grain transports override it.
        """
        return 1

    # -- helpers shared by implementations ---------------------------------
    def transfer_sim_to_analysis(
        self,
        ctx: "CouplingContext",
        sim_rank: int,
        arank: int,
        nbytes: int,
        flow: str = "msg",
        congestion_weight: float = 1.0,
    ) -> TransportGenerator:
        """Move ``nbytes`` from a simulation rank's node to an analysis rank's node.

        Honours the coupling's bandwidth lease: the transfer drains at
        ``ctx.bandwidth_share`` × its fair-share rate, which is how an
        elastic controller lets a starved coupling borrow bandwidth from an
        idle one (see :mod:`repro.elastic`).
        """
        result = yield from ctx.cluster.network.transfer(
            ctx.sim_node(sim_rank),
            ctx.analysis_node(arank),
            nbytes,
            flow=flow,
            congestion_weight=congestion_weight,
            rate_scale=getattr(ctx, "bandwidth_share", 1.0),
        )
        return result

    def __repr__(self) -> str:
        return f"<{type(self).__name__} name={self.name!r}>"
