"""The simulated distributed Zipper transport.

This is the same algorithm as the threaded runtime in :mod:`repro.core`, but
expressed as discrete-event processes so it can run inside the cluster
simulator at the paper's scales:

* every simulation rank owns a bounded producer buffer, a *sender* process and
  (when the concurrent-transfer optimisation is enabled) a *writer* process
  executing Algorithm 1's work stealing;
* every analysis rank owns a delivery queue fed by the senders (message path)
  and by a *reader* process that loads work-stolen blocks from the parallel
  file system (file path);
* there are no per-step barriers or producer/consumer interlocks — the
  analysis is driven purely by block availability, and the producer stalls
  only when its bounded buffer is completely full.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Generator, Optional

from repro.simcore import ConditionVar, OneShotSignal, Store
from repro.transports.base import Transport
from repro.transports.registry import register_transport

__all__ = ["ZipperTransport", "BlockDescriptor"]


@dataclass(slots=True)
class BlockDescriptor:
    """Metadata of one fine-grain block travelling through the simulated runtime."""

    source_rank: int
    step: int
    index: int
    nbytes: int
    via: str = "network"  #: "network" or "file"
    eof: bool = False


class _ProducerState:
    """Per-simulation-rank runtime state (buffer + helper-process bookkeeping)."""

    def __init__(self, env, capacity: int):
        self.buffer = Store(env, capacity=capacity)
        self.above_watermark = ConditionVar(env)
        self.closed = False
        self.blocks_enqueued = 0


class _ConsumerState:
    """Per-analysis-rank runtime state (delivery, disk-read and output queues)."""

    def __init__(self, env):
        self.delivery = Store(env)
        self.disk_queue = Store(env)
        self.output_queue = Store(env)
        self.output_done = OneShotSignal(env)


@register_transport("zipper")
class ZipperTransport(Transport):
    """Fine-grain, fully asynchronous, dual-channel pipelining runtime."""

    name = "zipper"
    multiple_failure_domains = True
    uses_staging_ranks = False

    def __init__(
        self,
        concurrent_transfer: Optional[bool] = None,
        preserve: Optional[bool] = None,
        counter_queries: int = 10,
    ):
        #: ``None`` means "take the value from the workflow config".
        self._concurrent_override = concurrent_transfer
        self._preserve_override = preserve
        self.counter_queries = counter_queries
        self._producers: Dict[int, _ProducerState] = {}
        self._consumers: Dict[int, _ConsumerState] = {}
        self._expected_blocks: Dict[int, int] = {}

    # -- configuration -------------------------------------------------------
    def _concurrent(self, ctx) -> bool:
        if self._concurrent_override is not None:
            return self._concurrent_override
        return ctx.config.concurrent_transfer

    def _preserve(self, ctx) -> bool:
        if self._preserve_override is not None:
            return self._preserve_override
        return ctx.config.preserve

    # -- setup -----------------------------------------------------------------
    def setup(self, ctx) -> None:
        env = ctx.env
        capacity = ctx.config.producer_buffer_blocks
        for rank in range(ctx.sim_ranks):
            state = _ProducerState(env, capacity)
            self._producers[rank] = state
            env.process(self._sender_process(ctx, rank, state))
            if self._concurrent(ctx):
                env.process(self._writer_process(ctx, rank, state))
        for arank in range(ctx.analysis_ranks):
            cstate = _ConsumerState(env)
            self._consumers[arank] = cstate
            env.process(self._reader_process(ctx, arank, cstate))
            if self._preserve(ctx):
                env.process(self._output_process(ctx, arank, cstate))
            else:
                cstate.output_done.set()
            self._expected_blocks[arank] = (
                len(ctx.producers_of(arank)) * ctx.steps * ctx.blocks_per_step()
            )
        # Periodic network-counter queries, mirroring the paper's
        # "whenever 10% of the total number of blocks are generated".
        total_blocks = ctx.sim_ranks * ctx.steps * ctx.blocks_per_step()
        self._query_every = max(1, total_blocks // max(1, self.counter_queries))
        self._blocks_sent_global = 0

    # -- producer side -----------------------------------------------------------
    def producer_put(self, ctx, rank: int, step: int, nbytes: int) -> Generator:
        state = self._producers[rank]
        blocks = max(1, -(-nbytes // ctx.block_bytes))
        block_bytes = nbytes // blocks
        stall_start = None
        env = ctx.env
        rank_stats = ctx.sim_rank_stats[rank]
        stats = ctx.stats
        buffer = state.buffer
        items = buffer.items
        hwm = ctx.config.high_water_mark
        note_level = ctx.note_buffer_level
        for index in range(blocks):
            desc = BlockDescriptor(rank, step, index, block_bytes)
            start = env._now
            yield buffer.put(desc)
            waited = env._now - start
            if waited > 0:
                rank_stats["stall_time"] += waited
                stats["stall_time"] += waited
                if stall_start is None:
                    stall_start = start
            state.blocks_enqueued += 1
            stats["blocks_produced"] += 1
            note_level(rank, len(items))
            if len(items) > hwm:
                state.above_watermark.notify_all()
        if stall_start is not None:
            ctx.record_sim(rank, "stall", stall_start, step=step)

    def producer_finalize(self, ctx, rank: int) -> Generator:
        state = self._producers[rank]
        state.closed = True
        yield state.buffer.put(BlockDescriptor(rank, -1, -1, 0, eof=True))
        state.above_watermark.notify_all()

    def _sender_process(self, ctx, rank: int, state: _ProducerState) -> Generator:
        env = ctx.env
        buffer = state.buffer
        items = buffer.items
        rank_stats = ctx.sim_rank_stats[rank]
        stats = ctx.stats
        arank = ctx.consumer_of(rank)
        delivery = self._consumers[arank].delivery
        network = ctx.cluster.network
        src = ctx.sim_node(rank)
        dst = ctx.analysis_node(arank)
        note_level = ctx.note_buffer_level
        while True:
            idle_start = env._now
            desc = yield buffer.get()
            note_level(rank, len(items))
            rank_stats["sender_idle_time"] += env._now - idle_start
            if desc.eof:
                yield delivery.put(desc)
                return
            busy_start = env._now
            yield from network.transfer(
                src,
                dst,
                desc.nbytes,
                flow="zipper",
                congestion_weight=1.0,
                rate_scale=ctx.bandwidth_share,
            )
            rank_stats["transfer_busy_time"] += env._now - busy_start
            stats["blocks_sent_network"] += 1
            stats["bytes_network"] += desc.nbytes
            self._blocks_sent_global += 1
            if self._blocks_sent_global % self._query_every == 0:
                ctx.cluster.counters.query(env._now)
            yield delivery.put(desc)

    def _writer_process(self, ctx, rank: int, state: _ProducerState) -> Generator:
        """Algorithm 1: steal blocks onto the file path while above the high-water mark."""
        env = ctx.env
        hwm = ctx.config.high_water_mark
        fs = ctx.cluster.filesystem
        node = ctx.sim_node(rank)
        while True:
            if len(state.buffer.items) <= hwm:
                if state.closed:
                    return
                yield state.above_watermark.wait()
                continue
            # Steal the first (oldest) block in the buffer.
            desc = yield state.buffer.get()
            ctx.note_buffer_level(rank, len(state.buffer.items))
            if desc.eof:
                # Never consume the end-of-stream marker: hand it back for the
                # sender and stop stealing.
                yield state.buffer.put(desc)
                ctx.note_buffer_level(rank, len(state.buffer.items))
                return
            busy_start = env.now
            yield from fs.write(
                node,
                desc.nbytes,
                filename=f"zipper_r{rank}",
                rate_scale=ctx.bandwidth_share,
            )
            desc.via = "file"
            elapsed = env.now - busy_start
            ctx.sim_rank_stats[rank]["writer_busy_time"] += elapsed
            ctx.stats["blocks_stolen"] += 1
            ctx.stats["bytes_file"] += desc.nbytes
            arank = ctx.consumer_of(rank)
            # The block ID reaches the consumer piggybacked on the next mixed
            # message; the metadata itself is negligible, so enqueue directly.
            yield self._consumers[arank].disk_queue.put(desc)

    # -- consumer side --------------------------------------------------------------
    def _reader_process(self, ctx, arank: int, cstate: _ConsumerState) -> Generator:
        env = ctx.env
        fs = ctx.cluster.filesystem
        node = ctx.analysis_node(arank)
        while True:
            desc = yield cstate.disk_queue.get()
            if desc.eof:
                return
            start = env.now
            yield from fs.read(
                node,
                desc.nbytes,
                filename=f"zipper_r{desc.source_rank}",
                rate_scale=ctx.bandwidth_share,
            )
            ctx.analysis_rank_stats[arank]["reader_busy_time"] += env.now - start
            yield cstate.delivery.put(desc)

    def _output_process(self, ctx, arank: int, cstate: _ConsumerState) -> Generator:
        """Preserve-mode output thread: persist blocks that are not on disk yet."""
        env = ctx.env
        fs = ctx.cluster.filesystem
        node = ctx.analysis_node(arank)
        while True:
            desc = yield cstate.output_queue.get()
            if desc.eof:
                cstate.output_done.set()
                return
            start = env.now
            yield from fs.write(
                node,
                desc.nbytes,
                filename=f"preserve_a{arank}",
                rate_scale=ctx.bandwidth_share,
            )
            ctx.analysis_rank_stats[arank]["output_busy_time"] += env.now - start
            ctx.stats["blocks_preserved"] += 1
            ctx.stats["bytes_preserved"] += desc.nbytes

    def consumer_run(self, ctx, arank: int, analyze: Callable[[int, int], Generator]) -> Generator:
        cstate = self._consumers[arank]
        expected = self._expected_blocks[arank]
        preserve = self._preserve(ctx)
        analyzed = 0
        env = ctx.env
        rank_stats = ctx.analysis_rank_stats[arank]
        delivery = cstate.delivery
        while analyzed < expected:
            wait_start = env._now
            desc = yield delivery.get()
            rank_stats["wait_time"] += env._now - wait_start
            if desc.eof:
                continue
            if preserve and desc.via != "file":
                # Blocks that did not already reach the file system through the
                # work-stealing path are persisted by the output process,
                # overlapped with the analysis.
                yield cstate.output_queue.put(desc)
            yield from analyze(desc.nbytes, desc.step)
            analyzed += 1
        # Stop the reader and output processes, then wait for the Preserve-mode
        # output to be safely on storage (a block may be freed only once it has
        # been analysed *and* stored).
        yield cstate.disk_queue.put(BlockDescriptor(-1, -1, -1, 0, eof=True))
        yield cstate.output_queue.put(BlockDescriptor(-1, -1, -1, 0, eof=True))
        yield cstate.output_done.wait()
        ctx.stats[f"consumer_{arank}_blocks"] = analyzed

    def consumer_deliveries_per_step(self, ctx, arank: int) -> int:
        """Zipper delivers per fine-grain block, not per aggregated step."""
        return len(ctx.producers_of(arank)) * ctx.blocks_per_step()

    def teardown(self, ctx) -> None:
        self._producers.clear()
        self._consumers.clear()
        self._expected_blocks.clear()

    # -- introspection ---------------------------------------------------------------
    def _total_stolen_fraction(self, ctx) -> float:
        produced = ctx.stats.get("blocks_produced", 0.0)
        if produced <= 0:
            return 0.0
        return ctx.stats.get("blocks_stolen", 0.0) / produced
