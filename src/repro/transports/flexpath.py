"""Flexpath: type-based publish/subscribe event channels.

Each simulation rank is a publisher, each analysis rank a subscriber.  A step
is published through an output epoch (open/write/close) into the publisher's
local buffer; the subscriber then sends every publisher a fetch request and
pulls the data.  Two properties drive the measured behaviour:

* all communication goes through a socket interface with no shared-memory
  fast path, so the per-node socket machinery is shared (and increasingly
  contended) by every rank on the node — the reason Flexpath collapses on
  Stampede2's 68-core KNL nodes and recovers when run one-process-per-node;
* the event-channel traffic competes directly with the simulation's own
  ``MPI_Sendrecv`` halo exchanges, inflating them (Figure 5).
"""

from __future__ import annotations

from typing import Callable, Dict, Generator

from repro.simcore import Timeout
from repro.transports.base import Transport
from repro.transports.registry import register_transport
from repro.transports.staging import ArrivalBoard

__all__ = ["FlexpathTransport"]


@register_transport("flexpath")
class FlexpathTransport(Transport):
    """Publisher/subscriber coupling over a contended per-node socket path."""

    name = "flexpath"
    multiple_failure_domains = True
    uses_staging_ranks = False

    def __init__(
        self,
        socket_node_bandwidth: float = 4.0e9,
        socket_contention: float = 0.08,
        epoch_overhead: float = 1.0e-3,
        fetch_request_bytes: int = 512,
    ):
        if socket_node_bandwidth <= 0:
            raise ValueError("socket_node_bandwidth must be positive")
        if socket_contention < 0:
            raise ValueError("socket_contention must be non-negative")
        if epoch_overhead < 0:
            raise ValueError("epoch_overhead must be non-negative")
        #: Aggregate socket throughput of one node with a single active rank.
        self.socket_node_bandwidth = socket_node_bandwidth
        #: How quickly the per-node socket path degrades as more ranks share it.
        self.socket_contention = socket_contention
        #: Cost of one output epoch (open/write/close bookkeeping).
        self.epoch_overhead = epoch_overhead
        self.fetch_request_bytes = fetch_request_bytes
        self._board: ArrivalBoard | None = None
        self._buffered: Dict[int, Dict[int, int]] = {}

    # -- derived -------------------------------------------------------------
    def socket_rank_bandwidth(self, ctx) -> float:
        """Effective socket bandwidth available to one rank of the full job.

        The node's socket throughput is divided among the ranks per node of
        the *real* job and further degraded by the contention factor; this is
        the "no optimized support for multiple processes per node" effect the
        paper identified.
        """
        ranks_per_node = ctx.config.cluster.node.cores
        node_rate = self.socket_node_bandwidth / (
            1.0 + self.socket_contention * max(0, ranks_per_node - 1)
        )
        return node_rate / ranks_per_node

    def setup(self, ctx) -> None:
        self._board = ArrivalBoard(ctx.env, ctx.analysis_ranks)
        self._buffered = {r: {} for r in range(ctx.sim_ranks)}

    # -- producer -------------------------------------------------------------
    def producer_put(self, ctx, rank: int, step: int, nbytes: int) -> Generator:
        env = ctx.env
        node = ctx.sim_node(rank)
        # Output epoch: open, write into the local event buffer, close.
        start = env.now
        if self.epoch_overhead > 0:
            yield Timeout(env, self.epoch_overhead)
        yield from ctx.cluster.network.transfer(
            node, node, nbytes, flow="flexpath-buffer", rate_scale=ctx.bandwidth_share
        )
        ctx.sim_rank_stats[rank]["buffer_time"] += env.now - start
        self._buffered[rank][step] = nbytes
        assert self._board is not None
        self._board.deposit(ctx.consumer_of(rank), step)
        ctx.stats["events_published"] += 1

    # -- consumer ---------------------------------------------------------------
    def consumer_run(self, ctx, arank: int, analyze: Callable[[int, int], Generator]) -> Generator:
        env = ctx.env
        node = ctx.analysis_node(arank)
        assert self._board is not None
        producers = ctx.producers_of(arank)
        rank_socket_bw = self.socket_rank_bandwidth(ctx)
        for step in range(ctx.steps):
            yield from self._board.wait_until_ready(ctx, arank, step, len(producers))
            for rank in producers:
                nbytes = self._buffered[rank].pop(step, ctx.step_output_bytes())
                # Fetch request to the publisher...
                yield from ctx.cluster.network.transfer(
                    node, ctx.sim_node(rank), self.fetch_request_bytes,
                    flow="flexpath-fetch", rate_scale=ctx.bandwidth_share,
                )
                # ...followed by the data reply.  The transfer crosses the
                # fabric *and* is bounded by the publisher's share of its
                # node's socket path; event-channel traffic interferes more
                # aggressively with the application's MPI traffic than native
                # RDMA transports do, hence the higher congestion weight.
                get_start = env.now
                yield from ctx.cluster.network.transfer(
                    ctx.sim_node(rank), node, nbytes, flow="flexpath-data",
                    congestion_weight=1.5, rate_scale=ctx.bandwidth_share,
                )
                socket_time = nbytes / rank_socket_bw
                fabric_time = env.now - get_start
                if socket_time > fabric_time:
                    yield Timeout(env, socket_time - fabric_time)
                ctx.analysis_rank_stats[arank]["get_time"] += env.now - get_start
                ctx.sim_rank_stats[rank]["transfer_busy_time"] += env.now - get_start
                ctx.stats["bytes_network"] += nbytes
            yield from analyze(ctx.consumer_step_bytes(arank), step)
