"""DataSpaces: a virtual shared space hosted on dedicated staging servers.

Every ``put`` acquires a write lock from the lock service, pushes the step's
data to a staging-server node over RDMA and updates the server-side metadata;
every ``get`` acquires a read lock, queries the metadata and pulls the data
from the server node.  The extra network hop (simulation node → server node →
analysis node) and the reader/writer interlock through the lock slots are what
place DataSpaces behind DIMES in Figure 2.

The ``adios`` flavour models the same library driven through the ADIOS uniform
interface: the native fine-grained multi-lock strategy is not reachable
through that interface, so the window degrades to a single slot and every
operation pays an additional interface/metadata overhead — the ≈ 1.3x gap the
paper measured between ADIOS/DataSpaces and native DataSpaces.
"""

from __future__ import annotations

from typing import Callable, Generator

from repro.transports.base import Transport
from repro.transports.registry import register_transport
from repro.transports.staging import ArrivalBoard, StagingLockService, StepWindow

__all__ = ["DataSpacesTransport"]


class _BaseDataSpaces(Transport):
    """Shared implementation of the native and ADIOS-driven flavours."""

    multiple_failure_domains = True
    uses_staging_ranks = True

    #: Number of circular lock slots (overridden by the flavours).
    num_slots = 4
    #: Extra per-operation overhead of the uniform ADIOS interface, seconds.
    interface_overhead = 0.0

    def __init__(self, lock_service: StagingLockService | None = None):
        self.locks = lock_service if lock_service is not None else StagingLockService()
        self._window: StepWindow | None = None
        self._board: ArrivalBoard | None = None

    def setup(self, ctx) -> None:
        self._window = StepWindow(ctx.env, self.num_slots, ctx.analysis_ranks)
        self._board = ArrivalBoard(ctx.env, ctx.analysis_ranks)

    # -- producer -----------------------------------------------------------
    def producer_put(self, ctx, rank: int, step: int, nbytes: int) -> Generator:
        env = ctx.env
        node = ctx.sim_node(rank)
        assert self._window is not None

        # dspaces_lock_on_write(step % num_slots): wait for the slot, then the
        # lock-service round trip itself.
        yield from self._window.wait_for_write(ctx, rank, step)
        lock_start = env.now
        yield from self.locks.request(ctx, node, kind="lock")
        if self.interface_overhead > 0:
            yield env.timeout(self.interface_overhead)
        ctx.sim_rank_stats[rank]["lock_time"] += env.now - lock_start

        # Push the data to this rank's staging server node.  The bulk
        # transfer honours the coupling's elastic bandwidth lease (the tiny
        # lock/metadata round trips stay unleased — they are latency-, not
        # bandwidth-bound).
        server_node = ctx.staging_node(ctx.staging_target_of(rank))
        put_start = env.now
        yield from ctx.cluster.network.transfer(
            node,
            server_node,
            nbytes,
            flow="dataspaces-put",
            rate_scale=ctx.bandwidth_share,
        )
        ctx.sim_rank_stats[rank]["transfer_busy_time"] += env.now - put_start
        ctx.stats["bytes_network"] += nbytes

        # Metadata update + unlock.
        yield from self.locks.request(ctx, node, kind="unlock")
        if self.interface_overhead > 0:
            yield env.timeout(self.interface_overhead)
        assert self._board is not None
        self._board.deposit(ctx.consumer_of(rank), step)

    # -- consumer -------------------------------------------------------------
    def consumer_run(self, ctx, arank: int, analyze: Callable[[int, int], Generator]) -> Generator:
        env = ctx.env
        node = ctx.analysis_node(arank)
        assert self._window is not None and self._board is not None
        producers = ctx.producers_of(arank)
        for step in range(ctx.steps):
            # lock_on_read: wait (with one metadata query when woken) until
            # every producer of this consumer deposited its data for the step.
            yield from self._board.wait_until_ready(ctx, arank, step, len(producers))
            yield from self.locks.request(ctx, node, kind="read-poll")

            lock_start = env.now
            yield from self.locks.request(ctx, node, kind="lock")
            if self.interface_overhead > 0:
                yield env.timeout(self.interface_overhead)
            ctx.analysis_rank_stats[arank]["lock_time"] += env.now - lock_start

            # Pull every producer's data from the staging servers.
            for rank in producers:
                server_node = ctx.staging_node(ctx.staging_target_of(rank))
                get_start = env.now
                yield from ctx.cluster.network.transfer(
                    server_node,
                    node,
                    ctx.step_output_bytes(),
                    flow="dataspaces-get",
                    rate_scale=ctx.bandwidth_share,
                )
                ctx.analysis_rank_stats[arank]["get_time"] += env.now - get_start
            yield from self.locks.request(ctx, node, kind="unlock")

            yield from analyze(ctx.consumer_step_bytes(arank), step)
            self._window.mark_consumed(arank, step)


@register_transport("dataspaces")
class DataSpacesTransport(_BaseDataSpaces):
    """Native DataSpaces: customised multi-slot lock strategy (lock_type=2)."""

    name = "dataspaces"
    num_slots = 4
    interface_overhead = 0.0


@register_transport("adios+dataspaces")
class ADIOSDataSpacesTransport(_BaseDataSpaces):
    """DataSpaces driven through the ADIOS uniform interface (lock_type=1)."""

    name = "adios+dataspaces"
    num_slots = 1
    interface_overhead = 3.0e-2
