"""Elastic stage scheduling: mid-run core resize and coupling work stealing.

The paper answers its central question — how to split cores and bandwidth
between coupled simulation and analytics — *statically*.  This package makes
the split time-varying: a controller monitors per-stage stall/idle time and
per-coupling buffer occupancy during a
:class:`~repro.workflow.runner.PipelineRunner` run and rebalances at policy
epochs, by (1) shifting core share from an over-provisioned stage to a
stalled one, (2) letting a starved coupling borrow file-path/staging
bandwidth from an idle one, and (3) spawning/retiring modelled ranks of
rank-elastic stages.

Two decision layers share those mechanisms: the threshold
:class:`ElasticController` (bang-bang triggers, PR 3) and the predictive
:class:`ModelDrivenController`, which calibrates a
:class:`~repro.perfmodel.pipeline.PipelinePerfModel` online and approaches
the model's optimal split through PID smoothing with a hysteresis dead band
(see ``docs/elastic.md`` and ``docs/perf-model.md``).

Attach an :class:`ElasticPolicy` (threshold) or :class:`ModelDrivenPolicy`
to a :class:`~repro.workflow.pipeline.PipelineSpec` (``elastic=...``) to
enable adaptation; the decisions taken are returned as the result's
rebalance timeline (a list of :class:`RebalanceEvent`).  See
``docs/pipelines.md`` for a cookbook and ``docs/sweep-format.md`` for the
persisted schema.
"""

from repro.elastic.controller import ElasticController, ElasticControllerBase
from repro.elastic.model_driven import ModelDrivenController, ModelDrivenPolicy
from repro.elastic.monitor import CouplingHealth, EpochHealth, EpochMonitor, StageHealth
from repro.elastic.policy import ElasticPolicy, RebalanceEvent

__all__ = [
    "ElasticController",
    "ElasticControllerBase",
    "ModelDrivenController",
    "ModelDrivenPolicy",
    "ElasticPolicy",
    "RebalanceEvent",
    "EpochMonitor",
    "EpochHealth",
    "StageHealth",
    "CouplingHealth",
]
