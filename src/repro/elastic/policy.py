"""Declarative adaptation policies and the rebalance timeline records.

An :class:`ElasticPolicy` describes *when* and *how aggressively* the elastic
controller reacts to observed stall/idle time — it carries no mechanism.  The
mechanisms (stage core resize, coupling bandwidth leases) live in
:mod:`repro.elastic.controller`; the observation layer lives in
:mod:`repro.elastic.monitor`.

Every adaptation decision the controller takes is recorded as a
:class:`RebalanceEvent`; the ordered list of those events is the run's
*rebalance timeline*, carried on
:class:`~repro.workflow.result.WorkflowResult` and persisted by the sweep
store (see ``docs/sweep-format.md`` for the JSONL schema).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace
from typing import TYPE_CHECKING, Dict, Optional

if TYPE_CHECKING:
    from repro.elastic.controller import ElasticControllerBase
    from repro.workflow.context import PipelineContext
    from repro.workflow.runner import PipelineRunner

__all__ = ["ElasticPolicy", "RebalanceEvent"]


@dataclass(frozen=True)
class ElasticPolicy:
    """Thresholds and step sizes of one run's adaptation loop.

    All fractions are relative quantities: busy/stall fractions are time
    fractions of one epoch, ``resize_fraction``/``lease_step`` are fractions
    of the donor's current holding, and the floors are fractions of a
    stage's baseline core allocation (resp. of a coupling's fair bandwidth
    share of 1.0).
    """

    #: Simulated seconds between controller wake-ups.
    epoch_seconds: float = 1.0
    #: Source-stage stall fraction of an epoch above which the coupling's
    #: target stage receives cores from the stalled stage.
    stall_threshold: float = 0.05
    #: Busy fraction below which a stage holding more than its baseline
    #: gives cores back towards the static plan — and below which a stage
    #: counts as over-provisioned (a donor) for the saturation trigger.
    idle_threshold: float = 0.5
    #: Busy fraction above which a stage counts as the pipeline bottleneck:
    #: when some other stage idles below ``idle_threshold`` at the same
    #: time, cores move from the idle stage to the saturated one.
    saturated_threshold: float = 0.9
    #: Fraction of the donor's current cores moved per resize decision.
    resize_fraction: float = 0.25
    #: No stage is ever resized below this fraction of its baseline cores
    #: (a per-stage ``min_core_fraction`` on the StageSpec overrides it).
    min_stage_fraction: float = 0.25
    #: Enable the stage-resize mechanism.
    stage_resize: bool = True
    #: Enable coupling-level bandwidth work stealing.
    work_stealing: bool = True
    #: Coupling stall fraction of an epoch above which the coupling borrows
    #: bandwidth from the idlest leasable coupling.
    starved_threshold: float = 0.05
    #: Aggregate producer-buffer occupancy (fraction of total capacity)
    #: above which a coupling also counts as starved — backpressure that is
    #: building but has not yet stalled the producers.
    starved_occupancy: float = 0.75
    #: Share moved per lease decision.
    lease_step: float = 0.25
    #: A lender's bandwidth share never drops below this floor.
    min_bandwidth_share: float = 0.5
    #: A borrower's bandwidth share never grows above this cap.
    max_bandwidth_share: float = 2.0

    def __post_init__(self) -> None:
        if self.epoch_seconds <= 0:
            raise ValueError("epoch_seconds must be positive")
        if (
            self.stall_threshold < 0
            or self.starved_threshold < 0
            or self.starved_occupancy < 0
        ):
            raise ValueError("thresholds must be non-negative")
        if not 0.0 <= self.idle_threshold <= 1.0:
            raise ValueError("idle_threshold must lie in [0, 1]")
        if self.saturated_threshold < self.idle_threshold:
            raise ValueError("saturated_threshold must be >= idle_threshold")
        if not 0.0 < self.resize_fraction <= 1.0:
            raise ValueError("resize_fraction must lie in (0, 1]")
        if not 0.0 < self.min_stage_fraction <= 1.0:
            raise ValueError("min_stage_fraction must lie in (0, 1]")
        if not 0.0 < self.lease_step <= 1.0:
            raise ValueError("lease_step must lie in (0, 1]")
        if not 0.0 < self.min_bandwidth_share <= 1.0:
            raise ValueError("min_bandwidth_share must lie in (0, 1]")
        if self.max_bandwidth_share < 1.0:
            raise ValueError("max_bandwidth_share must be at least 1")

    @classmethod
    def never(cls, epoch_seconds: float = 1.0) -> "ElasticPolicy":
        """A policy whose thresholds can never trigger.

        The controller still wakes every epoch and observes, but takes no
        decision — results are bit-identical to a run without a policy
        (the acceptance contract tested in ``tests/test_elastic.py``).
        """
        return cls(
            epoch_seconds=epoch_seconds,
            stall_threshold=float("inf"),
            idle_threshold=0.0,
            saturated_threshold=float("inf"),
            starved_threshold=float("inf"),
            starved_occupancy=float("inf"),
        )

    def replace(self, **changes) -> "ElasticPolicy":
        """A copy of the policy with ``changes`` applied."""
        return replace(self, **changes)

    def build_controller(
        self, ctx: "PipelineContext", runner: Optional["PipelineRunner"] = None
    ) -> "ElasticControllerBase":
        """Instantiate the controller that executes this policy.

        The base policy builds the threshold
        :class:`~repro.elastic.controller.ElasticController`; subclasses
        (e.g. :class:`~repro.elastic.model_driven.ModelDrivenPolicy`) return
        their own decision layer.  ``runner`` is the owning
        :class:`~repro.workflow.runner.PipelineRunner`, forwarded so
        controllers can reach its rank-lifecycle hooks.
        """
        from repro.elastic.controller import ElasticController

        return ElasticController(ctx, self, runner=runner)


@dataclass(frozen=True)
class RebalanceEvent:
    """One adaptation decision taken by the elastic controller.

    ``kind`` is ``"stage_resize"`` (cores moved between stages; ``amount``
    in represented cores) or ``"bandwidth_lease"`` (bandwidth share moved
    between couplings; ``amount`` in share units).  ``detail`` carries the
    holdings *after* the decision, keyed by stage/coupling name.
    """

    time: float
    epoch: int
    kind: str
    donor: str
    receiver: str
    amount: float
    detail: Dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        """The JSON-safe form persisted in the sweep store's JSONL records."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "RebalanceEvent":
        """Rebuild an event from :meth:`as_dict` output (store round-trip)."""
        return cls(
            time=float(payload["time"]),
            epoch=int(payload["epoch"]),
            kind=str(payload["kind"]),
            donor=str(payload["donor"]),
            receiver=str(payload["receiver"]),
            amount=float(payload["amount"]),
            detail={str(k): float(v) for k, v in dict(payload.get("detail", {})).items()},
        )
