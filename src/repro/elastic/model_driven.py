"""Model-driven elastic control: predictive targets, PID smoothing, rank counts.

The threshold :class:`~repro.elastic.controller.ElasticController` reacts to
symptoms (stall/idle fractions crossing fixed thresholds) with fixed-size
steps — a bang-bang loop that oscillates mildly around balance.  The
:class:`ModelDrivenController` instead *predicts*: every epoch it

1. re-calibrates a :class:`~repro.perfmodel.pipeline.PipelinePerfModel` from
   the epoch's :class:`~repro.elastic.monitor.EpochMonitor` counters,
2. solves the model's inverse problem for the predicted-optimal core split
   (``a_s ∝ w_s``) and bandwidth shares (``β_c ∝ d_c / b_c``), and
3. moves the current holdings *towards* those targets through one
   :class:`~repro.simcore.control.PIDSmoother` per stage/coupling, with a
   dead band (hysteresis) suppressing moves smaller than
   ``deadband_fraction`` of the pool — which is what removes the threshold
   controller's oscillation and its steady drip of tiny corrective events.

Stages declared rank-elastic (``StageSpec.elastic_ranks=True``) receive
grown capacity as *spawned modelled ranks*: the controller converts the
above-baseline part of the stage's allocation into whole assist ranks and
drives the :class:`~repro.workflow.runner.PipelineRunner` spawn/retire hooks
at the epoch boundary; only the sub-rank remainder is applied as a node
re-rate.  Spawn/retire decisions appear on the rebalance timeline as
``"rank_spawn"``/``"rank_retire"`` events next to the usual
``"stage_resize"``/``"bandwidth_lease"`` kinds.

A :meth:`ModelDrivenPolicy.never` policy (infinite dead band) observes and
calibrates but never moves anything — such a run stays bit-identical to a
static run, exactly like the threshold controller's never-triggering policy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.elastic.controller import ElasticControllerBase, MIN_TRANSFER
from repro.elastic.monitor import EpochHealth
from repro.elastic.policy import ElasticPolicy, RebalanceEvent
from repro.perfmodel.pipeline import PipelinePerfModel
from repro.simcore import PIDSmoother

if TYPE_CHECKING:
    from repro.workflow.context import PipelineContext
    from repro.workflow.runner import PipelineRunner

__all__ = ["ModelDrivenPolicy", "ModelDrivenController"]


@dataclass(frozen=True)
class ModelDrivenPolicy(ElasticPolicy):
    """Tuning of the model-driven adaptation loop.

    Inherits the mechanism toggles (``stage_resize``, ``work_stealing``),
    the epoch cadence and the floors/caps from
    :class:`~repro.elastic.policy.ElasticPolicy`; the threshold fields are
    ignored (the model, not a threshold, decides when to move).
    """

    #: EWMA weight of each epoch's estimates in the model calibration.
    smoothing: float = 0.5
    #: PID gains shaping how fast holdings approach the model's targets.
    proportional_gain: float = 0.6
    integral_gain: float = 0.05
    derivative_gain: float = 0.0
    #: Hysteresis dead band: core moves smaller than this fraction of the
    #: total cores (resp. bandwidth moves smaller than this many share
    #: units) are suppressed.  ``float("inf")`` turns the controller into a
    #: pure observer (see :meth:`never`).
    deadband_fraction: float = 0.02
    #: Cap on assist ranks spawned per rank-elastic stage.
    max_assist_ranks: int = 8
    #: Epochs advancing fewer workflow steps than this teach the model nothing.
    min_progress_steps: float = 1e-3

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 < self.smoothing <= 1.0:
            raise ValueError("smoothing must lie in (0, 1]")
        if min(self.proportional_gain, self.integral_gain, self.derivative_gain) < 0:
            raise ValueError("PID gains must be non-negative")
        if self.deadband_fraction < 0:
            raise ValueError("deadband_fraction must be non-negative")
        if self.max_assist_ranks < 0:
            raise ValueError("max_assist_ranks must be non-negative")
        if self.min_progress_steps < 0:
            raise ValueError("min_progress_steps must be non-negative")

    @classmethod
    def never(cls, epoch_seconds: float = 1.0) -> "ModelDrivenPolicy":
        """A policy that observes and calibrates but can never move anything.

        The infinite dead band suppresses every transfer, so the run is
        bit-identical to a static run (the acceptance contract tested in
        ``tests/test_elastic_model.py``).
        """
        return cls(epoch_seconds=epoch_seconds, deadband_fraction=float("inf"))

    def build_controller(
        self, ctx: "PipelineContext", runner: Optional["PipelineRunner"] = None
    ) -> "ModelDrivenController":
        """Instantiate the model-driven controller for one run."""
        return ModelDrivenController(ctx, self, runner=runner)


class ModelDrivenController(ElasticControllerBase):
    """Predictive adaptation of one run's core split and bandwidth shares.

    Shares the mechanism layer (conserved allocations/shares, floors, the
    decision timeline) with the threshold controller; only the decision rule
    differs — see the module docstring for the three-step epoch loop.
    """

    def __init__(
        self,
        ctx: "PipelineContext",
        policy: ModelDrivenPolicy,
        runner: Optional["PipelineRunner"] = None,
    ):
        super().__init__(ctx, policy, runner=runner)
        self.model = PipelinePerfModel(
            ctx.pipeline,
            smoothing=policy.smoothing,
            min_progress_steps=policy.min_progress_steps,
        )
        kwargs = dict(
            kp=policy.proportional_gain,
            ki=policy.integral_gain,
            kd=policy.derivative_gain,
        )
        self._pids: Dict[str, PIDSmoother] = {
            s.name: PIDSmoother(integral_limit=self.total_cores, **kwargs)
            for s in ctx.pipeline.stages
        }
        self._share_pids: Dict[str, PIDSmoother] = {
            c.name: PIDSmoother(integral_limit=float(len(self.bandwidth_shares)), **kwargs)
            for c in ctx.pipeline.couplings
        }

    # -- epoch decision ------------------------------------------------------
    def _decide(self, now: float, health: EpochHealth) -> None:
        self.model.observe(health, self.allocations, self.bandwidth_shares)
        if self.policy.stage_resize:
            self._decide_resize(now)
        if self.policy.work_stealing:
            self._decide_lease(now)

    def _paired_transfers(
        self, moves: Dict[str, float], deadband: float
    ) -> List[tuple]:
        """Decompose a zero-sum move vector into (donor, receiver, amount) pairs.

        Numeric drift is recentred out first so pairing can never create or
        destroy holdings; moves below the dead band are dropped.
        """
        if not moves:
            return []
        mean = sum(moves.values()) / len(moves)
        centred = {n: m - mean for n, m in moves.items()}
        donors = sorted((n for n, m in centred.items() if m < 0), key=lambda n: centred[n])
        receivers = sorted(
            (n for n, m in centred.items() if m > 0), key=lambda n: -centred[n]
        )
        transfers = []
        for donor in donors:
            need = -centred[donor]
            for receiver in receivers:
                if need <= MIN_TRANSFER:
                    break
                give = min(need, centred[receiver])
                if give >= deadband and give > MIN_TRANSFER:
                    transfers.append((donor, receiver, give))
                    centred[receiver] -= give
                need -= give
        return transfers

    def _decide_resize(self, now: float) -> None:
        resizable = [n for n in self.allocations if self._resizable(n)]
        if len(resizable) < 2:
            return
        floors = {n: self._stage_floor(n) for n in resizable}
        target = self.model.optimal_core_split(self.allocations, resizable, floors)
        dt = self.policy.epoch_seconds
        moves = {
            n: self._pids[n].update(target[n] - self.allocations[n], dt)
            for n in resizable
        }
        deadband = self.policy.deadband_fraction * self.total_cores
        for donor, receiver, amount in self._paired_transfers(moves, deadband):
            # The inherited resize_fraction bounds how much a donor may lose
            # in one epoch, so one noisy calibration epoch cannot swing the
            # split violently.
            amount = min(amount, self.policy.resize_fraction * self.allocations[donor])
            if amount > MIN_TRANSFER:
                self._transfer_cores(now, donor, receiver, amount=amount)

    def _decide_lease(self, now: float) -> None:
        shares = self.bandwidth_shares
        leasable = [n for n in shares if self._leasable(n)]
        if len(leasable) < 2:
            return
        target = self.model.optimal_bandwidth_shares(
            shares,
            leasable,
            self.policy.min_bandwidth_share,
            self.policy.max_bandwidth_share,
        )
        dt = self.policy.epoch_seconds
        moves = {
            n: self._share_pids[n].update(target[n] - shares[n], dt) for n in leasable
        }
        for donor, receiver, amount in self._paired_transfers(
            moves, self.policy.deadband_fraction
        ):
            amount = min(
                amount,
                shares[donor] - self.policy.min_bandwidth_share,
                self.policy.max_bandwidth_share - shares[receiver],
            )
            if amount > MIN_TRANSFER:
                self._transfer_share(now, donor, receiver, amount)

    # -- elastic rank counts -------------------------------------------------
    def _apply_allocation(self, name: str) -> None:
        stage = self.ctx.pipeline.stage(name)
        if self.runner is None or not stage.elastic_ranks:
            super()._apply_allocation(name)
            return
        # Deliver the above-baseline part of the grant as whole spawned
        # ranks; the sub-rank remainder (and any below-baseline deficit)
        # stays a node re-rate.
        modelled = self.ctx.stage_ranks(name)
        scale = self.allocations[name] / self.baseline[name]
        target = int(round((scale - 1.0) * modelled))
        target = max(0, min(self.policy.max_assist_ranks, target))
        current = self.runner.stage_assists(name)
        if target != current:
            actual = self.runner.set_assist_ranks(name, target)
            kind = "rank_spawn" if actual > current else "rank_retire"
            self.timeline.append(
                RebalanceEvent(
                    time=self.ctx.env.now,
                    epoch=self.epoch,
                    kind=kind,
                    donor=name if kind == "rank_retire" else "reserve",
                    receiver=name if kind == "rank_spawn" else "reserve",
                    amount=float(abs(actual - current)),
                    detail={
                        "assist_ranks": float(actual),
                        "modelled_ranks": float(modelled),
                    },
                )
            )
            target = actual
        delivered = (modelled + target) / modelled
        # The sub-rank remainder routes around degraded nodes like any
        # other re-rate, so model-driven policies keep rerouting cores
        # during crash/straggler windows on rank-elastic stages too.
        self._spread_allocation(name, scale / delivered)
