"""Per-epoch health observation of a running pipeline.

The :class:`EpochMonitor` turns the monotonically growing per-stage rank
statistics and per-coupling counters of a
:class:`~repro.workflow.context.PipelineContext` into per-epoch *fractions*
the controller can compare against policy thresholds:

* a stage's **busy fraction** — time its ranks spent computing, analysing or
  putting data, as a fraction of the epoch's rank-seconds;
* a stage's **stall fraction** — time its ranks spent blocked on a full
  producer buffer (the transports' ``stall_time`` counter);
* a stage's **work fraction** and **progress** — core-bound work only and
  the workflow steps the stage itself advanced, the two signals the
  performance-model calibration consumes (see ``docs/perf-model.md``);
* a coupling's **stall fraction** and **bytes moved** — the same signals
  scoped to one coupling's stats channel, plus the instantaneous producer
  buffer occupancy reported through the coupling context's buffer hook.

The monitor is read-only with respect to the simulation: it never schedules
events and never mutates model state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict

from repro.simcore import CounterDeltas

if TYPE_CHECKING:
    from repro.workflow.context import PipelineContext

__all__ = ["StageHealth", "CouplingHealth", "EpochHealth", "EpochMonitor"]

#: Rank-stat keys counted as "the rank was doing useful work".
BUSY_KEYS = ("compute_time", "analysis_time", "put_time")
#: Rank-stat keys counted as "the rank was blocked by backpressure".
STALL_KEYS = ("stall_time",)
#: Rank-stat keys counted as core-bound work (compute only, no transfer/put)
#: — the share of the epoch that scales with the stage's core allocation,
#: which is what the performance model's ``w_s`` coefficient measures.
WORK_KEYS = ("compute_time", "analysis_time")
#: Rank-stat keys carrying the stages' own progress counters.
PROGRESS_KEYS = ("steps_done", "bytes_done")


@dataclass(frozen=True)
class StageHealth:
    """One stage's observed load over one epoch."""

    stage: str
    #: Fraction of the epoch's rank-seconds spent in compute/analysis/put.
    busy_fraction: float
    #: Fraction of the epoch's rank-seconds spent stalled on backpressure.
    stall_fraction: float
    #: Fraction of the epoch's rank-seconds spent in core-bound work only
    #: (compute/analysis, excluding puts — which can overlap backpressure
    #: waits and are bounded by the coupling, not the stage's cores).
    work_fraction: float = 0.0
    #: Workflow steps the stage itself advanced during the epoch: sources
    #: count completed steps directly, consuming stages convert analysed
    #: bytes.  Unlike coupling byte flow this cannot run ahead of the stage
    #: (unbounded delivery queues make transfers complete long before slow
    #: consumers catch up).
    progress_steps: float = 0.0
    #: Fraction of the stage's nodes currently impaired by a fault (crash
    #: in progress or straggler window) at the epoch instant — the signal
    #: controllers use to reroute cores around degraded nodes.
    degraded_fraction: float = 0.0


@dataclass(frozen=True)
class CouplingHealth:
    """One coupling's observed load over one epoch."""

    coupling: str
    #: Fraction of the epoch's source-rank-seconds stalled on this coupling.
    stall_fraction: float
    #: Bytes this coupling moved during the epoch (network + file paths).
    bytes_moved: float
    #: Instantaneous producer-buffer occupancy in blocks, summed over the
    #: source ranks (transports that do not report occupancy leave this at 0).
    buffer_level: float
    #: ``buffer_level`` as a fraction of the coupling's aggregate buffer
    #: capacity — the controller's "backpressure is building" signal.
    occupancy_fraction: float = 0.0


@dataclass(frozen=True)
class EpochHealth:
    """The full health report the controller receives each epoch."""

    time: float
    duration: float
    stages: Dict[str, StageHealth] = field(default_factory=dict)
    couplings: Dict[str, CouplingHealth] = field(default_factory=dict)


class EpochMonitor:
    """Snapshot the pipeline's counters and emit per-epoch health reports."""

    def __init__(self, ctx: "PipelineContext"):
        self.ctx = ctx
        self._deltas = CounterDeltas()
        self._last_time = float(ctx.env.now)
        #: Bytes a consuming stage must analyse to complete one workflow step
        #: (all inbound couplings' per-step payloads; 0 for source stages).
        self._stage_step_bytes: Dict[str, float] = {
            s.name: float(
                sum(c.step_output_bytes() * c.sim_ranks for c in ctx.inbound(s.name))
            )
            for s in ctx.pipeline.stages
        }

    def _stage_sums(self, stage: str) -> Dict[str, float]:
        sums: Dict[str, float] = {}
        for stats in self.ctx.stage_rank_stats[stage].values():
            for key in BUSY_KEYS + STALL_KEYS + PROGRESS_KEYS:
                value = stats.get(key)
                if value:
                    sums[key] = sums.get(key, 0.0) + value
        return sums

    def _degraded_fraction(self, stage: str) -> float:
        """Fraction of the stage's nodes flagged degraded right now.

        An instantaneous read of the fault injector's ``degraded`` flags —
        pure observation, like the buffer-occupancy hook.
        """
        placement = self.ctx.placement
        base = placement.stage_node_base[stage]
        count = placement.stage_nodes[stage]
        if count <= 0:
            return 0.0
        degraded = sum(
            1
            for node_id in range(base, base + count)
            if self.ctx.cluster.node(node_id).degraded
        )
        return degraded / count

    def _stage_progress(self, stage: str, delta: Dict[str, float]) -> float:
        """Workflow steps the stage advanced, from its own progress counters."""
        step_bytes = self._stage_step_bytes[stage]
        if step_bytes > 0:
            return delta.get("bytes_done", 0.0) / step_bytes
        ranks = self.ctx.stage_ranks(stage)
        return delta.get("steps_done", 0.0) / ranks if ranks > 0 else 0.0

    def advance(self, now: float) -> EpochHealth:
        """Consume the counters accumulated since the last call.

        Returns the health report of the elapsed epoch.  The first call
        covers the interval from the monitor's construction time.
        """
        duration = float(now) - self._last_time
        self._last_time = float(now)
        stages: Dict[str, StageHealth] = {}
        for stage in self.ctx.pipeline.stages:
            name = stage.name
            delta = self._deltas.advance(f"stage:{name}", self._stage_sums(name))
            rank_seconds = duration * self.ctx.stage_ranks(name)
            if rank_seconds <= 0:
                busy = stall = work = 0.0
            else:
                busy = sum(delta.get(key, 0.0) for key in BUSY_KEYS) / rank_seconds
                stall = sum(delta.get(key, 0.0) for key in STALL_KEYS) / rank_seconds
                work = sum(delta.get(key, 0.0) for key in WORK_KEYS) / rank_seconds
            stages[name] = StageHealth(
                name,
                busy_fraction=busy,
                stall_fraction=stall,
                work_fraction=work,
                progress_steps=self._stage_progress(name, delta),
                degraded_fraction=self._degraded_fraction(name),
            )

        couplings: Dict[str, CouplingHealth] = {}
        for cctx in self.ctx.couplings:
            delta = self._deltas.advance(f"coupling:{cctx.name}", cctx.stats)
            rank_seconds = duration * cctx.sim_ranks
            stall = (
                delta.get("stall_time", 0.0) / rank_seconds if rank_seconds > 0 else 0.0
            )
            moved = delta.get("bytes_network", 0.0) + delta.get("bytes_file", 0.0)
            level = float(getattr(cctx, "buffer_level", 0.0))
            capacity = cctx.config.producer_buffer_blocks * cctx.sim_ranks
            couplings[cctx.name] = CouplingHealth(
                cctx.name,
                stall_fraction=stall,
                bytes_moved=moved,
                buffer_level=level,
                occupancy_fraction=level / capacity if capacity > 0 else 0.0,
            )
        return EpochHealth(
            time=float(now), duration=duration, stages=stages, couplings=couplings
        )
