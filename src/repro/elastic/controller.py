"""The elastic controllers: epoch-driven stage resize and bandwidth leases.

Two controllers share one mechanism layer:

* :class:`ElasticControllerBase` owns the *mechanisms* and their invariants —
  the epoch clock (one :class:`~repro.simcore.control.PeriodicController`
  wake-up per policy epoch), the :class:`~repro.elastic.monitor.EpochMonitor`,
  the per-stage core allocations (conserved, floored, applied through
  :meth:`~repro.cluster.machine.Cluster.set_node_allocation`), the
  per-coupling bandwidth shares (conserved, applied through
  :meth:`~repro.workflow.context.CouplingContext.set_bandwidth_share`) and the
  :class:`~repro.elastic.policy.RebalanceEvent` timeline;
* :class:`ElasticController` is the PR 3 *threshold* (bang-bang) decision
  layer on top of it, and
  :class:`~repro.elastic.model_driven.ModelDrivenController` the predictive
  one driven by :mod:`repro.perfmodel` with PID smoothing and elastic rank
  counts.

**Threshold decisions.**  *Stage resize* has two triggers.  *Backpressure*: a
coupling's source stage spent more than ``stall_threshold`` of the epoch
stalled, so its cores are wasted while the coupling's target is the
bottleneck — move ``resize_fraction`` of the source's cores to the target.
*Saturation*: one stage ran busier than ``saturated_threshold`` while another
idled below ``idle_threshold`` (transports with unbounded delivery queues
never stall the producer; the imbalance shows up as idle time on whichever
stage ran ahead) — move cores from the idle stage to the saturated one.  When
a grown stage later idles below ``idle_threshold``, cores drift back towards
the static plan.  *Bandwidth lease (coupling work stealing)*: when a coupling
is *starved* (stalled above ``starved_threshold``, or its aggregate producer
buffers filled past ``starved_occupancy`` of capacity) while another leasable
coupling is idle, the starved coupling borrows ``lease_step`` of bandwidth
share from the idlest lender (never driving the lender below
``min_bandwidth_share``).

A controller whose policy never triggers observes but never mutates model
state; such a run is bit-identical to a static run (the controller's own
wake-up events are subtracted from the reported event totals).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

from repro.elastic.monitor import EpochHealth, EpochMonitor
from repro.elastic.policy import ElasticPolicy, RebalanceEvent
from repro.perfmodel.pipeline import baseline_cores
from repro.simcore import PeriodicController

if TYPE_CHECKING:
    from repro.workflow.context import PipelineContext
    from repro.workflow.runner import PipelineRunner

__all__ = ["ElasticControllerBase", "ElasticController", "MIN_TRANSFER"]

#: Transfers smaller than this (cores or share units) are dropped as noise.
MIN_TRANSFER = 1e-9


class ElasticControllerBase:
    """Mechanism layer shared by every elastic controller.

    Owns the epoch clock, the monitor, the conserved core/bandwidth holdings
    and the decision timeline; concrete controllers implement
    :meth:`_decide` to turn an epoch's health report into transfers.

    Parameters
    ----------
    ctx:
        The run's :class:`~repro.workflow.context.PipelineContext`.
    policy:
        The :class:`~repro.elastic.policy.ElasticPolicy` (or subclass)
        governing epochs, step sizes and floors.
    runner:
        The owning :class:`~repro.workflow.runner.PipelineRunner`, when the
        controller needs its rank-lifecycle hooks (``None`` otherwise).
    """

    def __init__(
        self,
        ctx: "PipelineContext",
        policy: ElasticPolicy,
        runner: Optional["PipelineRunner"] = None,
    ):
        self.ctx = ctx
        self.policy = policy
        self.runner = runner
        self.monitor = EpochMonitor(ctx)
        self.timeline: List[RebalanceEvent] = []
        self.epoch = 0

        pipeline = ctx.pipeline
        placement = ctx.placement
        #: Represented cores each stage holds under the static plan — the
        #: stage's explicit grant when given, else its full-job rank count.
        #: Allocations (and the conservation invariant) are in these units,
        #: so scenario families with uneven grants still move real cores.
        #: The same rule seeds the perf model, so model targets and
        #: controller holdings always share units.
        self.baseline: Dict[str, float] = baseline_cores(pipeline)
        #: Current core holdings; the sum is invariant across resizes.
        self.allocations: Dict[str, float] = dict(self.baseline)
        self.total_cores = sum(self.baseline.values())
        self._stage_nodes: Dict[str, List[int]] = {
            s.name: list(
                range(
                    placement.stage_node_base[s.name],
                    placement.stage_node_base[s.name] + placement.stage_nodes[s.name],
                )
            )
            for s in pipeline.stages
        }
        #: Current bandwidth shares per coupling; the sum is invariant.
        self.bandwidth_shares: Dict[str, float] = {
            c.name: 1.0 for c in pipeline.couplings
        }
        self._clock: Optional[PeriodicController] = None

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> None:
        """Spawn the periodic controller process in the run's environment."""
        self._clock = PeriodicController(
            self.ctx.env, self.policy.epoch_seconds, self._on_epoch, name="elastic"
        )
        self._clock.start()

    @property
    def events_consumed(self) -> int:
        """Simulation events this controller's instrumentation consumed."""
        return self._clock.events_consumed if self._clock is not None else 0

    @property
    def next_epoch_time(self) -> float:
        """Simulated time of the next epoch decision (``inf`` when idle).

        Everything a controller may mutate mid-run — allocation scales,
        bandwidth shares, assist-rank census — changes only at these
        instants, so the runner's compute coalescing uses this as the
        deadline beyond which a fast-forwarded segment may not reach.
        """
        return self._clock.next_wakeup if self._clock is not None else float("inf")

    # -- epoch loop ---------------------------------------------------------
    def _on_epoch(self, now: float) -> None:
        self.epoch += 1
        health = self.monitor.advance(now)
        if health.duration <= 0:
            # A zero-length epoch carries no information (all fractions and
            # progress are zero by construction); deciding on it would act on
            # pure noise.
            return
        self._decide(now, health)

    def _decide(self, now: float, health: EpochHealth) -> None:
        raise NotImplementedError

    # -- stage-resize mechanism ---------------------------------------------
    def _stage_floor(self, name: str) -> float:
        stage = self.ctx.pipeline.stage(name)
        fraction = stage.min_core_fraction
        if fraction is None:
            fraction = self.policy.min_stage_fraction
        return fraction * self.baseline[name]

    def _resizable(self, name: str) -> bool:
        return self.ctx.pipeline.stage(name).resizable

    def _transfer_cores(
        self, now: float, donor: str, receiver: str, amount: Optional[float] = None
    ) -> bool:
        if amount is None:
            amount = self.policy.resize_fraction * self.allocations[donor]
        amount = min(amount, self.allocations[donor] - self._stage_floor(donor))
        if amount <= MIN_TRANSFER:
            return False
        self.allocations[donor] -= amount
        self.allocations[receiver] += amount
        self._apply_allocation(donor)
        self._apply_allocation(receiver)
        self.timeline.append(
            RebalanceEvent(
                time=now,
                epoch=self.epoch,
                kind="stage_resize",
                donor=donor,
                receiver=receiver,
                amount=amount,
                detail={name: self.allocations[name] for name in (donor, receiver)},
            )
        )
        return True

    def _apply_allocation(self, name: str) -> None:
        scale = self.allocations[name] / self.baseline[name]
        self._spread_allocation(name, scale)

    def _spread_allocation(self, name: str, scale: float) -> None:
        """Re-rate a stage's nodes, routing the grant around degraded ones.

        Healthy nodes absorb the share a degraded (crashed or straggling)
        node cannot use: with ``d`` of ``n`` nodes degraded, healthy nodes
        run at ``scale * n / (n - d)`` while degraded nodes keep the plain
        ``scale`` (a crashed node's cores are seized anyway; a straggler
        stays derated through its fault scale).  With no degraded nodes
        this is exactly the uniform re-rate, so fault-free runs are
        bit-identical to the pre-fault engine.
        """
        nodes = self._stage_nodes[name]
        cluster = self.ctx.cluster
        degraded = [node_id for node_id in nodes if cluster.node(node_id).degraded]
        if degraded and len(degraded) < len(nodes):
            healthy = [
                node_id for node_id in nodes if not cluster.node(node_id).degraded
            ]
            cluster.set_node_allocation(healthy, scale * len(nodes) / len(healthy))
            cluster.set_node_allocation(degraded, scale)
        else:
            cluster.set_node_allocation(nodes, scale)

    # -- bandwidth-lease mechanism -------------------------------------------
    def _leasable(self, name: str) -> bool:
        for coupling in self.ctx.pipeline.couplings:
            if coupling.name == name:
                return coupling.leasable
        return False

    def _transfer_share(
        self, now: float, donor: str, receiver: str, amount: float
    ) -> None:
        self.bandwidth_shares[donor] -= amount
        self.bandwidth_shares[receiver] += amount
        self.ctx.coupling(donor).set_bandwidth_share(self.bandwidth_shares[donor])
        self.ctx.coupling(receiver).set_bandwidth_share(self.bandwidth_shares[receiver])
        self.timeline.append(
            RebalanceEvent(
                time=now,
                epoch=self.epoch,
                kind="bandwidth_lease",
                donor=donor,
                receiver=receiver,
                amount=amount,
                detail={n: self.bandwidth_shares[n] for n in (donor, receiver)},
            )
        )


class ElasticController(ElasticControllerBase):
    """The threshold (bang-bang) adaptation loop of PR 3.

    Applies at most one decision per mechanism per epoch, triggered by the
    policy's stall/idle/saturation thresholds (see the module docstring for
    the trigger semantics).
    """

    def _decide(self, now: float, health: EpochHealth) -> None:
        if self.policy.stage_resize:
            self._decide_resize(now, health)
        if self.policy.work_stealing:
            self._decide_lease(now, health)

    # -- stage resize -------------------------------------------------------
    def _decide_resize(self, now: float, health: EpochHealth) -> None:
        # A stalled source is idling its cores while its coupling's target is
        # the bottleneck: hand the idle cores to the target.
        for coupling in self.ctx.pipeline.couplings:
            src, dst = coupling.source, coupling.target
            if not (self._resizable(src) and self._resizable(dst)):
                continue
            if health.stages[src].stall_fraction > self.policy.stall_threshold:
                if self._transfer_cores(now, src, dst):
                    return
        # Saturation: a stage running flat out while another idles marks an
        # over-provisioned/bottleneck pair even without explicit backpressure
        # (unbounded delivery queues never stall the producer — the idle time
        # simply shows up on whichever stage ran ahead).
        resizable = [n for n in self.allocations if self._resizable(n)]
        saturated = sorted(
            (n for n in resizable
             if health.stages[n].busy_fraction > self.policy.saturated_threshold),
            key=lambda n: -health.stages[n].busy_fraction,
        )
        idle = sorted(
            (n for n in resizable
             if health.stages[n].busy_fraction < self.policy.idle_threshold),
            key=lambda n: health.stages[n].busy_fraction,
        )
        if saturated and idle and saturated[0] != idle[0]:
            if self._transfer_cores(now, idle[0], saturated[0]):
                return
        # Recovery: a grown stage that idles gives cores back to the most
        # starved below-baseline stage, drifting towards the static plan.
        overfull = [
            name
            for name in self.allocations
            if self._resizable(name)
            and self.allocations[name] > self.baseline[name] + MIN_TRANSFER
            and health.stages[name].busy_fraction < self.policy.idle_threshold
        ]
        deficits = sorted(
            (
                (self.baseline[name] - self.allocations[name], name)
                for name in self.allocations
                if self._resizable(name)
                and self.allocations[name] < self.baseline[name] - MIN_TRANSFER
            ),
            reverse=True,
        )
        if overfull and deficits:
            donor = overfull[0]
            receiver = deficits[0][1]
            surplus = self.allocations[donor] - self.baseline[donor]
            amount = min(
                self.policy.resize_fraction * self.allocations[donor],
                surplus,
                deficits[0][0],
            )
            self._transfer_cores(now, donor, receiver, amount=amount)

    # -- bandwidth leases ---------------------------------------------------
    def _decide_lease(self, now: float, health: EpochHealth) -> None:
        shares = self.bandwidth_shares
        leasable = [n for n in shares if self._leasable(n)]
        if len(leasable) < 2:
            return
        def _is_starved(name: str) -> bool:
            # Explicit producer stalls, or buffer occupancy approaching
            # capacity (backpressure building before anyone blocks).
            coupling = health.couplings[name]
            return (
                coupling.stall_fraction > self.policy.starved_threshold
                or coupling.occupancy_fraction > self.policy.starved_occupancy
            )

        starved = [
            name
            for name in leasable
            if _is_starved(name)
            and shares[name] < self.policy.max_bandwidth_share - MIN_TRANSFER
        ]
        if starved:
            borrower = starved[0]
            # The idlest other coupling lends: least stalled, then least traffic.
            lenders = sorted(
                (n for n in leasable if n != borrower),
                key=lambda n: (
                    health.couplings[n].stall_fraction,
                    health.couplings[n].bytes_moved,
                ),
            )
            for lender in lenders:
                amount = min(
                    self.policy.lease_step,
                    shares[lender] - self.policy.min_bandwidth_share,
                    self.policy.max_bandwidth_share - shares[borrower],
                )
                if amount > MIN_TRANSFER:
                    self._transfer_share(now, lender, borrower, amount)
                    return
            return
        # Recovery: an unstarved borrower returns share towards the fair 1.0.
        for name in leasable:
            if shares[name] > 1.0 + MIN_TRANSFER and not _is_starved(name):
                lenders_below = sorted(
                    (n for n in leasable if shares[n] < 1.0 - MIN_TRANSFER),
                    key=lambda n: shares[n],
                )
                if not lenders_below:
                    return
                receiver = lenders_below[0]
                amount = min(
                    self.policy.lease_step,
                    shares[name] - 1.0,
                    1.0 - shares[receiver],
                )
                if amount > MIN_TRANSFER:
                    self._transfer_share(now, name, receiver, amount)
                return
