"""Runtime determinism sanitizer: the dynamic counterpart of ``repro.lint``.

The static analyses in :mod:`repro.lint` prove determinism and event-pooling
invariants where the dataflow lattice can see them; this module traps, *at
run time*, the violations it cannot — an unseeded global :mod:`random` draw
reached through a callback the call graph over-approximates, a wall-clock
read behind an alias, a recycled event touched by a holder the escape
analysis never saw.  It is the simulation analogue of AddressSanitizer:
cheap enough to run the CI smoke sweep under, precise enough that every trap
names the violated contract.

Enable it per environment (``Environment(sanitize=True)``) or globally for a
whole run with ``REPRO_SANITIZE=1``.  Under sanitize the engine:

* installs guards on the global :mod:`random` module and the :mod:`time`
  clock readers that raise :class:`SanitizerTrap` whenever they are called
  *while a sanitized environment is executing an event* (instance-based
  :class:`~repro.simcore.rng.RandomStreams` generators are untouched — they
  are the sanctioned randomness);
* **poisons** recyclable events instead of pooling them: the free lists stay
  empty, every allocation is fresh, and a processed event is marked failed
  with a :class:`SanitizerTrap` carrying a bumped generation counter — any
  holder that touches it after recycling has the trap thrown into its frame
  instead of silently observing the event's next incarnation;
* validates :meth:`~repro.simcore.engine.Environment.credit_events` calls
  (positive integer counts, only while an event is executing) so a fast
  path cannot quietly corrupt the machine-independent event count;
* rejects ``set``/``frozenset`` arguments at the order-sensitive engine
  boundaries (condition events, batch coalescing) where hash-salted
  iteration order would silently break bit-identity.

This module lives *outside* the model packages on purpose: it reads
``os.environ`` (banned in model code by rule D204) and monkey-patches
wall-clock functions (banned by D202) — it is measurement infrastructure,
not model.
"""

from __future__ import annotations

import os
import random
import time
from typing import Any, Callable, Dict, Tuple

__all__ = [
    "SanitizerTrap",
    "check_ordered",
    "default_enabled",
    "guards_installed",
    "in_sanitized_step",
    "install_guards",
    "poison_event",
    "uninstall_guards",
]


class SanitizerTrap(RuntimeError):
    """A determinism contract was violated at run time.

    Raised (or delivered through the event-failure machinery) by the hooks
    this module installs.  The message always names the violated contract
    and, for use-after-recycle traps, the event's generation counter.
    """


def default_enabled() -> bool:
    """Whether ``REPRO_SANITIZE`` asks for sanitized environments by default.

    Any value other than the empty string or ``"0"`` enables it, so
    ``REPRO_SANITIZE=1 python -m repro.sweep ...`` sanitizes a whole run
    without touching any config object.
    """
    return os.environ.get("REPRO_SANITIZE", "") not in ("", "0")


# -- the sanitized-step window -------------------------------------------
#: Depth of sanitized ``Environment.step`` frames currently executing.  The
#: clock/random guards only trap while this is positive, so harness code
#: (pytest, the sweep runner, the bench timer) keeps its wall clock.
_stepping = 0


def enter_step() -> None:
    """Mark the start of a sanitized event execution window."""
    global _stepping
    _stepping += 1


def exit_step() -> None:
    """Mark the end of a sanitized event execution window."""
    global _stepping
    _stepping -= 1


def in_sanitized_step() -> bool:
    """``True`` while a sanitized environment is executing an event."""
    return _stepping > 0


# -- wall-clock and global-RNG guards ------------------------------------
#: ``(module, attribute)`` pairs patched by :func:`install_guards`.
_CLOCK_FUNCTIONS: Tuple[str, ...] = (
    "time",
    "perf_counter",
    "perf_counter_ns",
    "monotonic",
    "monotonic_ns",
    "process_time",
    "process_time_ns",
    "time_ns",
)
_RANDOM_FUNCTIONS: Tuple[str, ...] = (
    "random",
    "randint",
    "randrange",
    "uniform",
    "choice",
    "choices",
    "shuffle",
    "sample",
    "gauss",
    "normalvariate",
    "expovariate",
    "betavariate",
    "gammavariate",
    "lognormvariate",
    "paretovariate",
    "triangular",
    "vonmisesvariate",
    "weibullvariate",
    "getrandbits",
)

#: Original callables saved by :func:`install_guards`, keyed by
#: ``("time"|"random", attribute)``.
_saved: Dict[Tuple[str, str], Callable[..., Any]] = {}


def _guard(kind: str, name: str, original: Callable[..., Any]) -> Callable[..., Any]:
    """Wrap ``original`` to trap calls made from inside a sanitized step."""

    def guarded(*args: Any, **kwargs: Any) -> Any:
        """Call ``original``, or trap inside a sanitized step."""
        if _stepping > 0:
            raise SanitizerTrap(
                f"sanitizer: {kind}.{name}() called during event execution — "
                + (
                    "model randomness must flow through a seeded "
                    "RandomStreams generator (rule D201)"
                    if kind == "random"
                    else "simulated time is env.now; wall-clock reads make "
                    "results machine-dependent (rule D202)"
                )
            )
        return original(*args, **kwargs)

    guarded.__name__ = getattr(original, "__name__", name)
    return guarded


def install_guards() -> None:
    """Patch global clock/RNG entry points with sanitized-step traps.

    Idempotent; installed once per process and left in place (the wrappers
    are transparent pass-throughs outside sanitized steps).  Callers that
    bound the originals before installation (``from time import time``) are
    not intercepted — the linter's D201/D202 rules cover model code
    statically, and model code receives its modules by attribute lookup.
    """
    if _saved:
        return
    for name in _CLOCK_FUNCTIONS:
        original = getattr(time, name, None)
        if callable(original):
            _saved[("time", name)] = original
            setattr(time, name, _guard("time", name, original))
    for name in _RANDOM_FUNCTIONS:
        original = getattr(random, name, None)
        if callable(original):
            _saved[("random", name)] = original
            setattr(random, name, _guard("random", name, original))


def uninstall_guards() -> None:
    """Restore the original clock/RNG functions (test teardown helper)."""
    for (kind, name), original in _saved.items():
        module = time if kind == "time" else random
        setattr(module, name, original)
    _saved.clear()


def guards_installed() -> bool:
    """Whether :func:`install_guards` is currently in effect."""
    return bool(_saved)


# -- event poisoning (use-after-recycle) ---------------------------------
def poison_event(event: Any) -> None:
    """Mark a would-be-recycled event so any later touch traps.

    Under sanitize the engine calls this *instead of* returning the event to
    a free list, at exactly the points recycling would happen.  The event is
    left processed-and-failed with a :class:`SanitizerTrap` value and a
    bumped ``_generation`` counter: a holder that yields it has the trap
    thrown into its generator frame; a holder that reads ``.value`` sees the
    trap object.  Because nothing is actually pooled, every allocation stays
    fresh and the trap is a pure detector — it never changes which object a
    correct program observes.
    """
    generation = getattr(event, "_generation", 0) + 1
    event._generation = generation
    event.callbacks = None
    event._ok = False
    event._defused = False
    event._value = SanitizerTrap(
        f"sanitizer: use of {type(event).__name__} after recycling "
        f"(generation {generation}) — pooled events must not outlive their "
        "step() dispatch; see docs/static-analysis.md"
    )


# -- order-sensitive boundaries ------------------------------------------
def check_ordered(values: Any, where: str) -> None:
    """Trap ``set``/``frozenset`` inputs at an order-sensitive boundary.

    Set iteration order varies across processes (hash salting); feeding one
    into anything that schedules events bakes that order into the event
    heap.  The engine calls this from its order-sensitive entry points when
    sanitizing (the static rule D203 catches the literal cases).
    """
    if isinstance(values, (set, frozenset)):
        raise SanitizerTrap(
            f"sanitizer: {where} received a {type(values).__name__}; "
            "iteration order of sets is not deterministic across processes — "
            "pass a list or tuple (rule D203)"
        )
