"""Analytical throughput model of an arbitrary stage/coupling pipeline.

This generalizes the Section 4.4 two-application estimator
(:mod:`repro.perfmodel.zipper`) to the declarative
:class:`~repro.workflow.pipeline.PipelineSpec` graphs: every stage ``s`` is
summarized by one coefficient ``w_s`` — the *granted-core-seconds of work one
workflow step costs the stage* — and every coupling ``c`` by its per-step
payload ``d_c`` (bytes) and a *unit bandwidth* ``b_c`` (bytes/second drained
at bandwidth share 1.0).  With core allocation ``a_s``, assist-rank factor
``r_s`` and bandwidth share ``β_c`` the model predicts

* per-stage step time      ``t_s(a, r) = w_s / (a_s · r_s)``  (throughput ``1/t_s``),
* per-coupling step time   ``t_c(β)    = d_c / (β_c · b_c)``,
* pipeline step time       ``T = max(max_s t_s, max_c t_c)`` — the bottleneck
  ``max`` of the paper's ``T_t2s`` estimate, applied per step.

``w_s`` and ``b_c`` start from priors derived from the workload cost models
and the cluster spec, and are re-estimated every controller epoch from the
:class:`~repro.elastic.monitor.EpochMonitor` counters through the EWMA rule
in :mod:`repro.perfmodel.calibration`.  The inverse problem — *which* core
split and bandwidth shares minimize ``T`` — has the closed form "allocate
proportionally to ``w``" (resp. ``d/b``), implemented with floor-aware
water-filling in :meth:`PipelinePerfModel.optimal_core_split` and
:meth:`PipelinePerfModel.optimal_bandwidth_shares`.  Every equation is
documented symbol-by-symbol in ``docs/perf-model.md``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, Mapping, Optional

from repro.perfmodel.calibration import CalibrationBank

if TYPE_CHECKING:
    from repro.elastic.monitor import EpochHealth
    from repro.workflow.pipeline import PipelineSpec

__all__ = ["PipelinePerfModel", "baseline_cores", "proportional_fill"]

#: Progress (in workflow steps per epoch) below which an epoch teaches the
#: calibration nothing: the per-step estimates would divide by ~0.
MIN_PROGRESS_STEPS = 0.1

#: Stage busy fraction below which an epoch's work estimate is discarded —
#: a stage that barely ran (pipeline fill/drain, a stalled upstream) says
#: nothing about its steady per-step cost.
MIN_BUSY_FRACTION = 0.02


def baseline_cores(pipeline: "PipelineSpec") -> Dict[str, float]:
    """Represented cores each stage holds under the static plan.

    The stage's explicit ``granted_cores`` when given, else its resolved
    full-job rank count — the same accounting rule the elastic controllers
    use, so model targets and controller allocations share units.
    """
    return {
        stage.name: float(
            stage.granted_cores
            if stage.granted_cores is not None
            else pipeline.resolved_total_ranks(stage.name)
        )
        for stage in pipeline.stages
    }


def proportional_fill(
    total: float,
    weights: Mapping[str, float],
    floors: Mapping[str, float],
    ceilings: Optional[Mapping[str, float]] = None,
) -> Dict[str, float]:
    """Split ``total`` proportionally to ``weights`` subject to per-key floors.

    Floor-aware water-filling: keys whose proportional share falls below
    their floor are pinned at the floor and removed from the pool, and the
    remainder is re-split among the others (symmetrically for ceilings).
    With all weights zero the split degenerates to the floors plus an even
    share of the slack.
    """
    names = list(weights)
    if not names:
        return {}
    floor_sum = sum(floors.get(n, 0.0) for n in names)
    if total < floor_sum - 1e-9:
        raise ValueError(f"total {total} cannot satisfy floors summing to {floor_sum}")
    pinned: Dict[str, float] = {}
    free = list(names)
    while free:
        pool = total - sum(pinned.values())
        weight_sum = sum(weights[n] for n in free)
        if weight_sum <= 0:
            share = pool / len(free)
            shares = {n: share for n in free}
        else:
            shares = {n: pool * weights[n] / weight_sum for n in free}
        # Pin only the single worst violator per pass: every other key's
        # share is recomputed against the remaining pool, which is what
        # keeps the split conserved (pinning several at once would judge
        # later keys by shares that the earlier pins already invalidated).
        worst_name = None
        worst_excess = 1e-12
        worst_bound = 0.0
        for name in free:
            floor = floors.get(name, 0.0)
            ceiling = ceilings.get(name, float("inf")) if ceilings else float("inf")
            if floor - shares[name] > worst_excess:
                worst_name, worst_excess, worst_bound = name, floor - shares[name], floor
            if shares[name] - ceiling > worst_excess:
                worst_name, worst_excess, worst_bound = name, shares[name] - ceiling, ceiling
        if worst_name is None:
            pinned.update(shares)
            return pinned
        pinned[worst_name] = worst_bound
        free.remove(worst_name)
    return pinned


class PipelinePerfModel:
    """Per-stage/per-coupling throughput predictor with online calibration.

    Parameters
    ----------
    pipeline:
        The :class:`~repro.workflow.pipeline.PipelineSpec` being executed.
    smoothing:
        EWMA weight of each epoch's estimates (see
        :mod:`repro.perfmodel.calibration`).
    min_progress_steps:
        Epochs that advanced fewer workflow steps than this teach the
        calibration nothing (guards the per-step divisions; also makes
        zero-length epochs a no-op).
    """

    def __init__(
        self,
        pipeline: "PipelineSpec",
        smoothing: float = 0.5,
        min_progress_steps: float = MIN_PROGRESS_STEPS,
    ):
        self.pipeline = pipeline
        self.min_progress_steps = float(min_progress_steps)
        self.baseline = baseline_cores(pipeline)
        self.epochs_observed = 0

        cluster = pipeline.cluster
        core_speed = cluster.node.core_speed
        rpn = pipeline.ranks_per_modelled_node

        #: Modelled ranks per stage (the simulated subset).
        self.stage_ranks: Dict[str, int] = {
            s.name: pipeline.modelled_ranks(s.name) for s in pipeline.stages
        }
        #: Bytes every coupling carries per workflow step (all source ranks).
        self.coupling_bytes_per_step: Dict[str, float] = {
            c.name: float(
                pipeline.stage_output_bytes_per_step(c.source)
                * pipeline.modelled_ranks(c.source)
            )
            for c in pipeline.couplings
        }

        # -- priors ---------------------------------------------------------
        # Stage work per step, in granted-core-seconds: the wall seconds one
        # step takes at the static grant times the granted cores (the grant
        # is what the scenario's rate factors already encode).
        work_priors: Dict[str, float] = {}
        for stage in pipeline.stages:
            name = stage.name
            inbound = pipeline.inbound(name)
            if not inbound:
                wall = stage.workload.sim_step_seconds_for_block(
                    pipeline.stage_block_bytes(name)
                ) / core_speed
            else:
                per_rank_bytes = sum(
                    pipeline.stage_output_bytes_per_step(c.source)
                    * pipeline.modelled_ranks(c.source)
                    for c in inbound
                ) / max(1, self.stage_ranks[name])
                wall = stage.workload.analysis_seconds_per_byte * per_rank_bytes / core_speed
            work_priors[name] = self.baseline[name] * wall
        # Coupling unit bandwidth: the aggregate NIC share of the source
        # stage's modelled nodes (each modelled node is entitled to the
        # rpn/cores fraction of a real node's link, exactly as the runner
        # scales the cluster spec).
        node_fraction = rpn / cluster.node.cores
        bandwidth_priors: Dict[str, float] = {}
        for coupling in pipeline.couplings:
            source_nodes = -(-self.stage_ranks[coupling.source] // rpn)
            bandwidth_priors[coupling.name] = max(
                1.0, cluster.network.link_bandwidth * node_fraction * source_nodes
            )

        self.work_per_step = CalibrationBank(work_priors, smoothing)
        self.unit_bandwidth = CalibrationBank(bandwidth_priors, smoothing)

    # -- calibration ---------------------------------------------------------
    def coupling_progress(self, health: "EpochHealth") -> Dict[str, float]:
        """Workflow steps each coupling moved during ``health``'s epoch."""
        progress: Dict[str, float] = {}
        for name, coupling in health.couplings.items():
            per_step = self.coupling_bytes_per_step.get(name, 0.0)
            progress[name] = coupling.bytes_moved / per_step if per_step > 0 else 0.0
        return progress

    def observe(
        self,
        health: "EpochHealth",
        allocations: Mapping[str, float],
        shares: Mapping[str, float],
    ) -> None:
        """Re-estimate the model coefficients from one epoch's health report.

        ``allocations`` and ``shares`` are the holdings that were in force
        *during* the epoch.  Epochs of zero duration, or with less than
        ``min_progress_steps`` of step progress for a stage/coupling, leave
        the corresponding coefficients untouched.
        """
        duration = health.duration
        if duration <= 0:
            return
        progress = self.coupling_progress(health)
        for name, coupling in health.couplings.items():
            if name not in self.unit_bandwidth:
                continue
            share = float(shares.get(name, 1.0))
            if progress.get(name, 0.0) >= self.min_progress_steps and share > 0:
                self.unit_bandwidth.observe(name, coupling.bytes_moved / (duration * share))
        for name, stage in health.stages.items():
            if name not in self.work_per_step:
                continue
            steps = stage.progress_steps
            if steps < self.min_progress_steps or stage.work_fraction < MIN_BUSY_FRACTION:
                continue
            work_core_seconds = stage.work_fraction * duration * float(
                allocations.get(name, self.baseline[name])
            )
            self.work_per_step.observe(name, work_core_seconds / steps)
        self.epochs_observed += 1

    # -- predictions ---------------------------------------------------------
    def stage_step_time(
        self,
        name: str,
        cores: Optional[float] = None,
        rank_factor: float = 1.0,
    ) -> float:
        """Predicted wall seconds one workflow step costs stage ``name``.

        ``cores`` defaults to the stage's baseline grant; ``rank_factor``
        scales the delivered capacity for elastic rank counts (a stage whose
        ``n`` modelled ranks gained ``k`` assists delivers
        ``(n + k) / n`` × the capacity of the same grant).
        """
        capacity = (self.baseline[name] if cores is None else float(cores)) * rank_factor
        if capacity <= 0:
            return float("inf")
        return self.work_per_step.value(name) / capacity

    def stage_throughput(
        self,
        name: str,
        cores: Optional[float] = None,
        rank_factor: float = 1.0,
    ) -> float:
        """Predicted steps/second of stage ``name`` (inverse of the step time)."""
        step_time = self.stage_step_time(name, cores, rank_factor)
        return 1.0 / step_time if step_time > 0 else float("inf")

    def coupling_step_time(self, name: str, share: Optional[float] = None) -> float:
        """Predicted wall seconds one step's payload occupies coupling ``name``."""
        share = 1.0 if share is None else float(share)
        bandwidth = self.unit_bandwidth.value(name) * share
        if bandwidth <= 0:
            return float("inf")
        return self.coupling_bytes_per_step[name] / bandwidth

    def predicted_step_time(
        self,
        allocations: Optional[Mapping[str, float]] = None,
        shares: Optional[Mapping[str, float]] = None,
        rank_factors: Optional[Mapping[str, float]] = None,
    ) -> float:
        """Bottleneck step time of the whole pipeline — ``max`` over stages and couplings."""
        allocations = allocations or {}
        shares = shares or {}
        rank_factors = rank_factors or {}
        times = [
            self.stage_step_time(
                s.name, allocations.get(s.name), rank_factors.get(s.name, 1.0)
            )
            for s in self.pipeline.stages
        ]
        times.extend(
            self.coupling_step_time(c.name, shares.get(c.name))
            for c in self.pipeline.couplings
        )
        return max(times) if times else 0.0

    def bottleneck(
        self,
        allocations: Optional[Mapping[str, float]] = None,
        shares: Optional[Mapping[str, float]] = None,
    ) -> str:
        """Name of the stage or coupling predicted to bind the pipeline."""
        allocations = allocations or {}
        shares = shares or {}
        candidates: Dict[str, float] = {
            s.name: self.stage_step_time(s.name, allocations.get(s.name))
            for s in self.pipeline.stages
        }
        for c in self.pipeline.couplings:
            candidates[c.name] = self.coupling_step_time(c.name, shares.get(c.name))
        return max(candidates, key=candidates.get)

    # -- inverse problems ----------------------------------------------------
    def optimal_core_split(
        self,
        allocations: Mapping[str, float],
        resizable: Iterable[str],
        floors: Mapping[str, float],
    ) -> Dict[str, float]:
        """Core split predicted to minimize the pipeline's bottleneck step time.

        Minimizing ``max_s w_s / a_s`` under ``Σ a_s = const`` equalizes the
        predicted stage step times, i.e. allocates ``a_s ∝ w_s`` — restricted
        to the ``resizable`` stages (the others keep their current holding)
        and clamped to the per-stage ``floors`` by water-filling.
        """
        resizable = [n for n in resizable]
        target = {n: float(a) for n, a in allocations.items()}
        if not resizable:
            return target
        pool = sum(target[n] for n in resizable)
        weights = {n: self.work_per_step.value(n) for n in resizable}
        target.update(proportional_fill(pool, weights, floors))
        return target

    def optimal_bandwidth_shares(
        self,
        shares: Mapping[str, float],
        leasable: Iterable[str],
        min_share: float,
        max_share: float,
    ) -> Dict[str, float]:
        """Bandwidth shares predicted to equalize per-coupling transfer times.

        Same proportional argument as the core split with weights
        ``d_c / b_c`` (per-step transfer seconds at unit share); the sum over
        the leasable couplings is conserved and every share is clamped into
        ``[min_share, max_share]``.
        """
        leasable = [n for n in leasable]
        target = {n: float(v) for n, v in shares.items()}
        if len(leasable) < 2:
            return target
        pool = sum(target[n] for n in leasable)
        weights = {n: self.coupling_step_time(n, share=1.0) for n in leasable}
        floors = {n: min_share for n in leasable}
        ceilings = {n: max_share for n in leasable}
        target.update(proportional_fill(pool, weights, floors, ceilings))
        return target
