"""Analytical performance models of the coupled workflows.

Two layers:

* :mod:`repro.perfmodel.zipper` — the paper's Section 4.4 two-application
  estimator (``T_t2s = max(T_comp, T_transfer, T_analysis[, T_store])``) and
  the Figure 11 makespan/schedule helpers, formerly
  ``repro.core.perf_model``;
* :mod:`repro.perfmodel.pipeline` — the generalization to arbitrary
  :class:`~repro.workflow.pipeline.PipelineSpec` stage graphs: per-stage
  throughput and per-coupling transfer time as a function of core split,
  bandwidth share and rank count, with priors from the workload cost models
  and online EWMA calibration (:mod:`repro.perfmodel.calibration`) from the
  elastic monitor's epoch counters.

The model-driven elastic policies (:mod:`repro.elastic.model_driven`) are
built on the pipeline layer; ``docs/perf-model.md`` maps every equation to
its symbol here.
"""

from repro.perfmodel.calibration import CalibrationBank, EwmaEstimate
from repro.perfmodel.pipeline import PipelinePerfModel, baseline_cores, proportional_fill
from repro.perfmodel.zipper import (
    PerformanceModel,
    StageTimes,
    pipeline_makespan,
    pipeline_schedule,
    sequential_makespan,
)

__all__ = [
    "StageTimes",
    "PerformanceModel",
    "sequential_makespan",
    "pipeline_makespan",
    "pipeline_schedule",
    "EwmaEstimate",
    "CalibrationBank",
    "PipelinePerfModel",
    "baseline_cores",
    "proportional_fill",
]
