"""The two-application analytical performance model of Section 4.4.

With ``P`` simulation cores, ``Q`` analysis cores, ``D`` bytes of total
simulation output split into ``nb = D / B`` fine-grain blocks, and per-block
times ``tc`` (compute), ``tm`` (transfer) and ``ta`` (analyse), the pipelined
Zipper workflow's end-to-end time is

    ``T_t2s = max(T_comp, T_transfer, T_analysis)``

with ``T_comp = tc * nb / P``, ``T_transfer = tm * nb / P`` and
``T_analysis = ta * nb / Q``; the pipeline start-up and drain times are
ignored because ``nb`` is much larger than the number of stages.  In Preserve
mode an additional store stage ``T_store`` (bounded by the parallel file
system's aggregate bandwidth) joins the ``max``.

The module also provides the makespans of the *non-integrated* and
*integrated* designs of Figure 11, and a per-block schedule generator used by
the pipeline benchmark and the documentation figures.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "StageTimes",
    "PerformanceModel",
    "sequential_makespan",
    "pipeline_makespan",
    "pipeline_schedule",
]


@dataclass(frozen=True)
class StageTimes:
    """Per-block stage times (seconds per block on one core)."""

    compute: float
    transfer: float
    analysis: float
    store: float = 0.0

    def __post_init__(self) -> None:
        for name in ("compute", "transfer", "analysis", "store"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    def as_tuple(self) -> Tuple[float, float, float, float]:
        """The four per-block times as a ``(tc, tm, ta, ts)`` tuple."""
        return (self.compute, self.transfer, self.analysis, self.store)


@dataclass(frozen=True)
class PerformanceModel:
    """End-to-end time estimator for a Zipper workflow."""

    #: Simulation processor cores.
    P: int
    #: Analysis processor cores.
    Q: int
    #: Total simulation output in bytes.
    total_data: float
    #: Fine-grain block size in bytes.
    block_size: float
    #: Per-block stage times on one core.
    stage: StageTimes
    #: Aggregate file-system bandwidth in bytes/second (only used in Preserve
    #: mode when it is the binding constraint on the store stage).
    filesystem_bandwidth: Optional[float] = None
    #: Whether the Preserve mode's store stage participates.
    preserve: bool = False

    def __post_init__(self) -> None:
        if self.P <= 0 or self.Q <= 0:
            raise ValueError("P and Q must be positive")
        if self.total_data <= 0:
            raise ValueError("total_data must be positive")
        if self.block_size <= 0:
            raise ValueError("block_size must be positive")
        if self.filesystem_bandwidth is not None and self.filesystem_bandwidth <= 0:
            raise ValueError("filesystem_bandwidth must be positive when given")

    # -- block accounting ----------------------------------------------------
    @property
    def num_blocks(self) -> int:
        """Total number of fine-grain blocks ``nb = ceil(D / B)``."""
        return int(math.ceil(self.total_data / self.block_size))

    @property
    def blocks_per_simulation_core(self) -> float:
        """Blocks each of the ``P`` simulation cores handles, ``nb / P``."""
        return self.num_blocks / self.P

    @property
    def blocks_per_analysis_core(self) -> float:
        """Blocks each of the ``Q`` analysis cores handles, ``nb / Q``."""
        return self.num_blocks / self.Q

    # -- stage times -----------------------------------------------------------
    @property
    def computation_time(self) -> float:
        """``T_comp = tc * nb / P``."""
        return self.stage.compute * self.blocks_per_simulation_core

    @property
    def transfer_time(self) -> float:
        """``T_transfer = tm * nb / P``."""
        return self.stage.transfer * self.blocks_per_simulation_core

    @property
    def analysis_time(self) -> float:
        """``T_analysis = ta * nb / Q``."""
        return self.stage.analysis * self.blocks_per_analysis_core

    @property
    def store_time(self) -> float:
        """Preserve-mode store stage: per-block store cost or PFS-bandwidth bound."""
        if not self.preserve:
            return 0.0
        per_core = self.stage.store * self.blocks_per_simulation_core
        if self.filesystem_bandwidth is None:
            return per_core
        bandwidth_bound = self.total_data / self.filesystem_bandwidth
        return max(per_core, bandwidth_bound)

    def breakdown(self) -> Dict[str, float]:
        """All stage times plus the resulting end-to-end estimate."""
        stages = {
            "simulation": self.computation_time,
            "transfer": self.transfer_time,
            "analysis": self.analysis_time,
        }
        if self.preserve:
            stages["store"] = self.store_time
        stages["end_to_end"] = self.time_to_solution()
        return stages

    def dominant_stage(self) -> str:
        """Name of the stage the pipeline is bound by."""
        stages = {
            "simulation": self.computation_time,
            "transfer": self.transfer_time,
            "analysis": self.analysis_time,
        }
        if self.preserve:
            stages["store"] = self.store_time
        return max(stages, key=stages.get)

    def time_to_solution(self) -> float:
        """``T_t2s = max(T_comp, T_transfer, T_analysis[, T_store])``."""
        t = max(self.computation_time, self.transfer_time, self.analysis_time)
        if self.preserve:
            t = max(t, self.store_time)
        return t

    def relative_error(self, measured: float) -> float:
        """|model - measured| / measured, used by the model-validation bench."""
        if measured <= 0:
            raise ValueError("measured time must be positive")
        return abs(self.time_to_solution() - measured) / measured


def sequential_makespan(num_blocks: int, stage_times: Sequence[float]) -> float:
    """Makespan of the *non-integrated* design (upper half of Figure 11).

    Every stage processes all ``num_blocks`` blocks before the next stage
    starts (simulate everything, write everything, read everything, analyse
    everything).
    """
    if num_blocks <= 0:
        raise ValueError("num_blocks must be positive")
    return float(num_blocks) * float(sum(stage_times))


def pipeline_makespan(num_blocks: int, stage_times: Sequence[float]) -> float:
    """Makespan of the *integrated* (pipelined) design (lower half of Figure 11).

    ``sum(stage_times)`` start-up plus ``(num_blocks - 1)`` iterations of the
    slowest stage.
    """
    if num_blocks <= 0:
        raise ValueError("num_blocks must be positive")
    times = [float(t) for t in stage_times]
    if not times:
        return 0.0
    return sum(times) + (num_blocks - 1) * max(times)


def pipeline_schedule(
    num_blocks: int, stage_times: Sequence[float], stage_names: Optional[Sequence[str]] = None
) -> List[Dict[str, Tuple[float, float]]]:
    """Start/end times of every (block, stage) pair in the pipelined design.

    Block ``i`` may begin stage ``s`` once block ``i`` finished stage ``s-1``
    *and* block ``i-1`` finished stage ``s`` (one block in flight per stage).
    Returns one dict per block mapping stage name to ``(start, end)``.
    """
    if num_blocks <= 0:
        raise ValueError("num_blocks must be positive")
    times = [float(t) for t in stage_times]
    names = list(stage_names) if stage_names is not None else [
        f"stage{i}" for i in range(len(times))
    ]
    if len(names) != len(times):
        raise ValueError("stage_names must match stage_times in length")
    schedule: List[Dict[str, Tuple[float, float]]] = []
    stage_free = [0.0] * len(times)
    for _block in range(num_blocks):
        entry: Dict[str, Tuple[float, float]] = {}
        prev_end = 0.0
        for s, (name, t) in enumerate(zip(names, times)):
            start = max(prev_end, stage_free[s])
            end = start + t
            stage_free[s] = end
            prev_end = end
            entry[name] = (start, end)
        schedule.append(entry)
    return schedule
