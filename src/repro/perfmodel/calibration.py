"""Online calibration primitives for the analytical pipeline model.

The predictions of :class:`~repro.perfmodel.pipeline.PipelinePerfModel` start
from *priors* derived from the workload cost models and the cluster spec, and
are then corrected from the counters each controller epoch observes.  The
correction is a plain exponentially-weighted moving average: given a new
per-epoch estimate ``x`` of a model coefficient whose current belief is
``x̄``, the update rule is

    ``x̄ ← (1 - α) * x̄ + α * x``

with smoothing weight ``α`` (``smoothing``).  The EWMA deliberately trades
responsiveness against noise: a small ``α`` rides out one-epoch bursts (the
bursty-analytics scenarios), a large ``α`` tracks genuine drift quickly.
``docs/perf-model.md`` documents the rule and its assumptions next to the
equations it feeds.
"""

from __future__ import annotations

from typing import Dict, Mapping

__all__ = ["EwmaEstimate", "CalibrationBank"]


class EwmaEstimate:
    """One exponentially smoothed model coefficient with a prior.

    The estimate starts at ``prior`` and folds every observation in with
    weight ``smoothing``; :attr:`observations` counts how many epochs have
    actually contributed, so callers can distinguish a cold prior from a
    calibrated value.
    """

    __slots__ = ("value", "smoothing", "observations")

    def __init__(self, prior: float, smoothing: float = 0.5):
        if prior < 0:
            raise ValueError("prior must be non-negative")
        if not 0.0 < smoothing <= 1.0:
            raise ValueError("smoothing must lie in (0, 1]")
        self.value = float(prior)
        self.smoothing = float(smoothing)
        self.observations = 0

    def observe(self, value: float) -> float:
        """Fold one per-epoch estimate into the belief and return the new value.

        The prior participates in the blend like any earlier observation
        (it is derived from the actual workload cost models, so it anchors
        the estimate against noisy start-up epochs while the EWMA converges
        to the measured value geometrically).
        """
        if value < 0:
            raise ValueError("observed value must be non-negative")
        self.value = (1.0 - self.smoothing) * self.value + self.smoothing * float(value)
        self.observations += 1
        return self.value

    @property
    def calibrated(self) -> bool:
        """Whether at least one epoch has corrected the prior."""
        return self.observations > 0

    def __repr__(self) -> str:
        return (
            f"<EwmaEstimate {self.value:.6g} "
            f"({'calibrated' if self.calibrated else 'prior'}, n={self.observations})>"
        )


class CalibrationBank:
    """A named family of :class:`EwmaEstimate` coefficients.

    Convenience wrapper used by the pipeline model for its per-stage and
    per-coupling coefficient tables; exposes the current values as a plain
    dict for logging and tests.
    """

    def __init__(self, priors: Mapping[str, float], smoothing: float = 0.5):
        self._estimates: Dict[str, EwmaEstimate] = {
            name: EwmaEstimate(prior, smoothing) for name, prior in priors.items()
        }

    def __getitem__(self, name: str) -> EwmaEstimate:
        return self._estimates[name]

    def __contains__(self, name: str) -> bool:
        return name in self._estimates

    def value(self, name: str) -> float:
        """Current belief for coefficient ``name``."""
        return self._estimates[name].value

    def values(self) -> Dict[str, float]:
        """Every coefficient's current belief, keyed by name."""
        return {name: est.value for name, est in self._estimates.items()}

    def observe(self, name: str, value: float) -> float:
        """Fold one observation into coefficient ``name``."""
        return self._estimates[name].observe(value)

    def __repr__(self) -> str:
        return f"<CalibrationBank {self.values()}>"
