"""Shared AST helpers for the rule implementations."""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional

__all__ = [
    "canonical_call",
    "dotted_name",
    "function_defs",
    "import_aliases",
    "walk_shallow",
]

#: Statement types that open a new namespace: shallow walks stop here so a
#: nested function's yields/reads are never attributed to its enclosing one.
_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for an attribute chain rooted at a plain name, else ``None``."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def import_aliases(tree: ast.Module) -> Dict[str, str]:
    """Map local names to the canonical dotted path they import.

    ``import time as t`` maps ``t -> time``; ``from time import perf_counter
    as pc`` maps ``pc -> time.perf_counter``; ``from datetime import
    datetime`` maps ``datetime -> datetime.datetime``.  Used to resolve call
    targets to canonical names regardless of import style.
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                aliases[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                if alias.name == "*":
                    continue
                aliases[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return aliases


def canonical_call(node: ast.Call, aliases: Dict[str, str]) -> Optional[str]:
    """The canonical dotted target of a call, resolved through the imports."""
    name = dotted_name(node.func)
    if name is None:
        return None
    head, _, rest = name.partition(".")
    resolved = aliases.get(head)
    if resolved is None:
        return name
    return f"{resolved}.{rest}" if rest else resolved


def walk_shallow(node: ast.AST, include_root: bool = True) -> Iterator[ast.AST]:
    """Walk ``node`` without descending into nested scopes (defs/lambdas)."""
    if include_root:
        yield node
    for child in ast.iter_child_nodes(node):
        if isinstance(child, _SCOPE_NODES):
            continue
        yield from walk_shallow(child)


def function_defs(tree: ast.Module) -> Iterator[ast.FunctionDef]:
    """Every (sync or async) function definition in the module, any depth."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node
