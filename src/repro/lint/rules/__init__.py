"""Rule catalogue of ``repro.lint``.

Importing this package registers every rule with the framework registry
(each rule module applies the :func:`repro.lint.framework.register`
decorator at import time).  Rules come in three families:

* ``D`` — determinism (:mod:`repro.lint.rules.determinism`): model results
  must be a pure function of configuration and seeds.
* ``E`` — event contract (:mod:`repro.lint.rules.events`): the engine's
  fast-path crediting and allocation invariants.
* ``H`` — hygiene (:mod:`repro.lint.rules.hygiene`): general hazards scoped
  to where they corrupt simulations.
* ``F`` — interprocedural flow (:mod:`repro.lint.flow`): whole-program
  escape analysis behind the event-pooling certificate (F501) and crediting
  conservation across call boundaries (F502).

See ``docs/static-analysis.md`` for the full catalogue with rationale and
the suppression syntax.
"""

from repro.lint.rules import determinism, events, hygiene  # noqa: F401
