"""Determinism rules (``D``): model results must be a function of config + seeds.

Every transport comparison this reproduction makes assumes two runs with the
same configuration and seeds produce bit-identical results.  These rules ban
the three classic ways that property silently erodes: process-global RNGs,
wall-clock reads leaking into model time, and iteration over containers whose
order is not defined by the model.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.framework import Finding, MODEL_PACKAGES, Module, Rule, register
from repro.lint.rules._helpers import canonical_call, dotted_name, import_aliases

__all__ = ["UnseededRandom", "WallClock", "UnorderedIteration", "EnvironInModel"]

#: Wall-clock reads that must never appear in model code: they make model
#: behaviour depend on the machine instead of the configuration.
_WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: ``numpy.random`` members that are seeded-constructor machinery rather than
#: draws from the process-global generator.
_NUMPY_SEEDED_OK = frozenset({"SeedSequence", "Generator", "BitGenerator", "PCG64"})


@register
class UnseededRandom(Rule):
    """D201: no process-global RNG draws in model code."""

    id = "D201"
    name = "unseeded-random"
    rationale = (
        "Draws from the process-global `random` / `numpy.random` state depend "
        "on import order and whatever ran before; model code must draw from "
        "`repro.simcore.rng.RandomStreams`, whose streams are derived from "
        "the scenario label and seed."
    )
    scope = MODEL_PACKAGES

    def check(self, module: Module) -> Iterator[Finding]:
        """Flag calls into the global `random` module or `numpy.random` state."""
        aliases = import_aliases(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            target = canonical_call(node, aliases)
            if target is None:
                continue
            if target == "random" or target.startswith("random."):
                yield self.finding(
                    module,
                    node,
                    f"`{target}()` draws from the process-global RNG; use a "
                    "seeded RandomStreams stream instead",
                )
                continue
            if ".random." in target or target.endswith(".random"):
                root, _, member = target.rpartition(".")
                if root in ("numpy.random", "np.random") or target in (
                    "numpy.random",
                    "np.random",
                ):
                    if member in _NUMPY_SEEDED_OK:
                        continue
                    if member == "default_rng" and (node.args or node.keywords):
                        continue  # explicitly seeded generator construction
                    yield self.finding(
                        module,
                        node,
                        f"`{target}()` uses numpy's process-global RNG (or an "
                        "unseeded generator); construct via "
                        "`np.random.default_rng(seed)` or RandomStreams",
                    )


@register
class WallClock(Rule):
    """D202: no wall-clock reads in model code."""

    id = "D202"
    name = "wall-clock"
    rationale = (
        "Model time is `env.now`; reading the host clock inside model code "
        "couples simulated results to machine speed.  Wall-clock timing "
        "belongs in the measurement layers (`repro.bench`, `repro.trace`, "
        "`repro.sweep`, the threaded `repro.core` runtime), which are outside "
        "this rule's scope."
    )
    scope = MODEL_PACKAGES

    def check(self, module: Module) -> Iterator[Finding]:
        """Flag `time.time()`, `perf_counter()`, `datetime.now()` and kin."""
        aliases = import_aliases(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            target = canonical_call(node, aliases)
            if target in _WALL_CLOCK_CALLS:
                yield self.finding(
                    module,
                    node,
                    f"`{target}()` reads the wall clock inside model code; "
                    "model time must come from `env.now`",
                )


@register
class UnorderedIteration(Rule):
    """D203: no iteration over sets (or dict.popitem) in model code."""

    id = "D203"
    name = "unordered-iter"
    rationale = (
        "Set iteration order depends on insertion history and hash seeds; "
        "when it feeds event scheduling, two identical runs schedule in "
        "different orders.  Iterate lists/dicts (insertion-ordered) or wrap "
        "in `sorted(...)`."
    )
    scope = MODEL_PACKAGES

    def check(self, module: Module) -> Iterator[Finding]:
        """Flag `for x in {a set}` / comprehensions over sets / `popitem()`."""
        for node in ast.walk(module.tree):
            iters = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            elif isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Attribute) and func.attr == "popitem":
                    yield self.finding(
                        module,
                        node,
                        "`popitem()` removes an arbitrary end of the dict; pop "
                        "an explicit key so removal order is part of the model",
                    )
                continue
            for it in iters:
                if isinstance(it, (ast.Set, ast.SetComp)) or (
                    isinstance(it, ast.Call)
                    and isinstance(it.func, ast.Name)
                    and it.func.id in ("set", "frozenset")
                ):
                    yield self.finding(
                        module,
                        it,
                        "iterating a set feeds undefined order into the model; "
                        "iterate a list/dict or wrap in `sorted(...)`",
                    )


@register
class EnvironInModel(Rule):
    """D204: no environment-variable reads in model code."""

    id = "D204"
    name = "environ-in-model"
    rationale = (
        "`os.environ` is invisible ambient state: two runs with identical "
        "configs can diverge because of the shell they started from.  "
        "Configuration must flow through specs (and be captured in the "
        "sweep's config hash); driver layers may read the environment."
    )
    scope = MODEL_PACKAGES

    def check(self, module: Module) -> Iterator[Finding]:
        """Flag `os.environ` accesses and `os.getenv()` calls."""
        aliases = import_aliases(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                target = canonical_call(node, aliases)
                if target == "os.getenv":
                    yield self.finding(
                        module,
                        node,
                        "`os.getenv()` reads ambient state inside model code; "
                        "pass configuration through the spec instead",
                    )
            elif isinstance(node, ast.Attribute) and node.attr == "environ":
                base = dotted_name(node.value)
                if base is not None and aliases.get(base, base) == "os":
                    yield self.finding(
                        module,
                        node,
                        "`os.environ` reads ambient state inside model code; "
                        "pass configuration through the spec instead",
                    )
