"""Hygiene rules (``H``): failure modes that corrupt results silently.

These are general Python hazards, scoped to where they bite this code base:
mutable default arguments leak state between simulation runs that share a
process (the sweep's persistent worker pool), bare excepts swallow
``Interrupt``/``BufferClosed`` control flow in consumer loops, and
sleep-polling in the threaded runtime both burns CPU and makes measured
stall times scheduler-dependent.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Optional

from repro.lint.framework import Finding, LineFix, Module, Rule, register
from repro.lint.rules._helpers import canonical_call, import_aliases, walk_shallow

__all__ = ["MutableDefaultArg", "BareExcept", "SleepPolling"]


@register
class MutableDefaultArg(Rule):
    """H401: no mutable default argument values."""

    id = "H401"
    name = "mutable-default"
    rationale = (
        "A mutable default is created once per process and shared by every "
        "call; under the sweep's persistent worker pool that leaks state "
        "between scenarios, breaking run-to-run reproducibility.  Default to "
        "`None` and create the container in the body."
    )

    _MUTABLE_CALLS = frozenset({"list", "dict", "set", "defaultdict", "OrderedDict"})

    def check(self, module: Module) -> Iterator[Finding]:
        """Flag list/dict/set literals (or constructors) used as defaults."""
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                mutable = isinstance(
                    default, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
                ) or (
                    isinstance(default, ast.Call)
                    and isinstance(default.func, ast.Name)
                    and default.func.id in self._MUTABLE_CALLS
                )
                if mutable:
                    name = getattr(node, "name", "<lambda>")
                    yield self.finding(
                        module,
                        default,
                        f"mutable default argument in `{name}` is shared "
                        "across calls (and across scenarios in a pooled "
                        "worker); default to None and build it in the body",
                    )


@register
class BareExcept(Rule):
    """H402: no bare ``except:`` clauses."""

    id = "H402"
    name = "bare-except"
    rationale = (
        "`except:` catches `KeyboardInterrupt`, `SystemExit` and the "
        "simulator's own control-flow exceptions (`Interrupt`, "
        "`BufferClosed`), silently eating shutdown and interrupt delivery "
        "in consumer loops.  Catch `Exception` — or the specific type — "
        "instead."
    )
    fixable = True

    _BARE_RE = re.compile(r"(^\s*)except(\s*):")

    def check(self, module: Module) -> Iterator[Finding]:
        """Flag ``except:`` handlers with no exception type."""
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.finding(
                    module,
                    node,
                    "bare `except:` also catches KeyboardInterrupt/SystemExit "
                    "and simulator control-flow exceptions; catch `Exception` "
                    "or the specific type",
                    fix=self._fix(module, node),
                )

    def _fix(self, module: Module, node: ast.ExceptHandler) -> Optional[LineFix]:
        """Rewrite ``except:`` to ``except Exception:`` on the handler line."""
        if not (1 <= node.lineno <= len(module.lines)):
            return None
        line = module.lines[node.lineno - 1]
        new_line, n = self._BARE_RE.subn(r"\1except Exception:", line, count=1)
        if n != 1:
            return None
        return LineFix(line=node.lineno, new_lines=(new_line,))


@register
class SleepPolling(Rule):
    """H403: threads in the runtime must not poll with ``time.sleep``."""

    id = "H403"
    name = "sleep-poll"
    rationale = (
        "A `while ...: time.sleep(...)` poll burns CPU, adds up to one poll "
        "interval of latency per hand-off, and makes measured stall times "
        "scheduler-dependent.  The runtime's buffers expose "
        "`threading.Condition`/`Event` primitives — block on those instead "
        "(emulated transfer *durations* outside loops are fine)."
    )
    scope = ("repro.core",)

    def check(self, module: Module) -> Iterator[Finding]:
        """Flag ``time.sleep`` calls inside ``while`` loops."""
        aliases = import_aliases(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.While):
                continue
            for inner in walk_shallow(node, include_root=False):
                if (
                    isinstance(inner, ast.Call)
                    and canonical_call(inner, aliases) == "time.sleep"
                ):
                    yield self.finding(
                        module,
                        inner,
                        "`time.sleep` inside a while loop is a poll; block on "
                        "the buffer's Condition/Event primitive instead",
                    )
