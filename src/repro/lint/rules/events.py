"""Event-contract rules (``E``): the engine's fast-path and allocation invariants.

PR 5's speedups rest on a bookkeeping contract: every fast path that elides
queue trips must credit exactly the events it skipped, so
``Environment.events_processed`` stays a machine-independent *model* count
(``tests/test_fastpath.py`` asserts bit-identity dynamically; E301 catches the
omission at review time).  E302 keeps the event hierarchy allocation-lean and
E303 catches the classic stale-clock bug in process generators.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.framework import Finding, LineFix, MODEL_PACKAGES, Module, Rule, register
from repro.lint.rules._helpers import function_defs, walk_shallow

__all__ = ["UncreditedFastPath", "EventSlots", "StaleNowAcrossYield"]

#: Resource internals whose access from *outside* the owning object marks a
#: fast path: only code that bypasses the evented request/release protocol
#: reaches into another object's slot and waiter lists.
_FASTPATH_INTERNALS = frozenset({"users", "_waiters", "_grant", "_pop_waiter"})

#: Calls that satisfy the crediting contract (each either credits elided
#: events directly or is an engine primitive that self-credits).
_CREDITING_CALLS = frozenset({"credit_events", "trigger_inplace", "complete"})

#: Class names of the ``repro.simcore.events`` / ``resources`` hierarchy; a
#: subclass of any of these is an event type and must declare ``__slots__``.
_EVENT_BASES = frozenset(
    {
        "Event",
        "Timeout",
        "PooledTimeout",
        "Initialize",
        "Interruption",
        "Process",
        "ConditionEvent",
        "AllOf",
        "AnyOf",
        "Request",
        "Release",
        "StorePut",
        "StoreGet",
        "ContainerPut",
        "ContainerGet",
    }
)


def _attr_tail(node: ast.expr) -> Optional[str]:
    """The final attribute/name segment of an expression (``a.b.C`` → ``C``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


@register
class UncreditedFastPath(Rule):
    """E301: a function that bypasses the evented resource protocol must credit."""

    id = "E301"
    name = "uncredited-fastpath"
    rationale = (
        "A fast path that reaches into a resource's `users`/`_waiters` lists "
        "elides the request/release queue trips; unless it calls "
        "`Environment.credit_events` (or the self-crediting `trigger_inplace`"
        "/`complete`) in the same function, `events_processed` diverges "
        "between the fast and slow paths and bit-identity is lost."
    )
    # The kernel itself (repro.simcore) is the audited mechanism layer where
    # these lists live; the rule polices everyone reaching in from outside.
    scope = tuple(p for p in MODEL_PACKAGES if p != "repro.simcore")

    def check(self, module: Module) -> Iterator[Finding]:
        """Flag functions touching foreign resource internals without crediting."""
        for func in function_defs(module.tree):
            touches: List[ast.AST] = []
            credits = False
            for node in walk_shallow(func, include_root=False):
                if isinstance(node, ast.Attribute) and node.attr in _FASTPATH_INTERNALS:
                    base = node.value
                    if not (isinstance(base, ast.Name) and base.id == "self"):
                        touches.append(node)
                if isinstance(node, ast.Call):
                    tail = _attr_tail(node.func)
                    if tail in _CREDITING_CALLS:
                        credits = True
            if touches and not credits:
                yield self.finding(
                    module,
                    func,
                    f"`{func.name}` reaches into resource internals (a "
                    "fast path eliding queue trips) but never calls "
                    "`credit_events`/`trigger_inplace`/`complete`; "
                    "`events_processed` will diverge from the slow path",
                )


@register
class EventSlots(Rule):
    """E302: every Event subclass must declare ``__slots__``."""

    id = "E302"
    name = "event-slots"
    rationale = (
        "Events are allocated on every timeout, message and process step; a "
        "single slotless subclass re-introduces a per-instance `__dict__` "
        "for the whole chain below it, costing memory and speed on the "
        "hottest allocation path in the simulator."
    )
    fixable = True

    def check(self, module: Module) -> Iterator[Finding]:
        """Flag Event-derived classes without a ``__slots__`` declaration."""
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not any(_attr_tail(base) in _EVENT_BASES for base in node.bases):
                continue
            has_slots = any(
                (
                    isinstance(stmt, ast.Assign)
                    and any(
                        isinstance(t, ast.Name) and t.id == "__slots__"
                        for t in stmt.targets
                    )
                )
                or (
                    isinstance(stmt, ast.AnnAssign)
                    and isinstance(stmt.target, ast.Name)
                    and stmt.target.id == "__slots__"
                )
                for stmt in node.body
            )
            if not has_slots:
                yield self.finding(
                    module,
                    node,
                    f"event subclass `{node.name}` has no `__slots__`; it "
                    "re-introduces a per-instance `__dict__` on the event "
                    "allocation hot path",
                    fix=self._insert_slots_fix(module, node),
                )

    def _insert_slots_fix(self, module: Module, node: ast.ClassDef) -> Optional[LineFix]:
        """Insert ``__slots__ = ()`` after the class docstring (or header)."""
        first = node.body[0]
        indent = " " * first.col_offset
        if (
            isinstance(first, ast.Expr)
            and isinstance(first.value, ast.Constant)
            and isinstance(first.value.value, str)
        ):
            anchor = first.end_lineno or first.lineno
            return LineFix(
                line=anchor, new_lines=("", indent + "__slots__ = ()"), insert_after=True
            )
        header_end = first.lineno - 1
        return LineFix(
            line=header_end, new_lines=(indent + "__slots__ = ()", ""), insert_after=True
        )


class _StaleNowScanner:
    """Order-aware scan of one generator function for stale ``.now`` reads.

    Tracks variables assigned *directly* from a ``.now`` attribute read (a
    pure alias of the clock, e.g. ``start = env.now``).  After the function
    yields, such an alias no longer equals the current model time; using it
    in a statement that does not also re-read ``.now`` treats a stale
    timestamp as current.  Statements that *do* re-read the clock — the
    ubiquitous ``stats += env.now - start`` elapsed-time idiom — are exempt,
    because the fresh read anchors the arithmetic to current time.

    Two deliberate allowances beyond the fresh-read exemption:

    * statements calling a trace recorder (`record*`, `tracer.record`,
      `observe`) may pass captured timestamps — recorders take an interval
      *start* by contract, so a past value is exactly what they want;
    * a yield inside a branch that terminates (returns/raises/breaks) does
      not poison the paths that never took it — branch states are forked and
      only live branches merge back.

    Loop bodies are scanned twice so a use at the top of a loop sees the
    yields and captures of the previous iteration.
    """

    def __init__(self) -> None:
        self.pending: Dict[str, int] = {}
        self.stale: Dict[str, int] = {}
        self.reported: Set[Tuple[int, str]] = set()
        self.findings: List[Tuple[ast.AST, str, int]] = []

    # -- statement classification ---------------------------------------
    @staticmethod
    def _is_now_read(node: ast.AST) -> bool:
        return isinstance(node, ast.Attribute) and node.attr == "now"

    def _contains_now(self, stmt: ast.AST) -> bool:
        return any(self._is_now_read(n) for n in walk_shallow(stmt))

    def _contains_yield(self, stmt: ast.AST) -> bool:
        return any(
            isinstance(n, (ast.Yield, ast.YieldFrom)) for n in walk_shallow(stmt)
        )

    def _is_recording(self, stmt: ast.AST) -> bool:
        """Whether the statement hands timestamps to a trace recorder."""
        for node in walk_shallow(stmt):
            if isinstance(node, ast.Call):
                tail = _attr_tail(node.func)
                if tail is not None and (tail.startswith("record") or tail == "observe"):
                    return True
        return False

    @staticmethod
    def _terminates(body: List[ast.stmt]) -> bool:
        """Whether a branch body unconditionally leaves the enclosing flow."""
        return bool(body) and isinstance(
            body[-1], (ast.Return, ast.Raise, ast.Break, ast.Continue)
        )

    def _assigned_names(self, stmt: ast.AST) -> List[Tuple[str, bool]]:
        """``(name, is_pure_now_alias)`` for simple assignments in ``stmt``."""
        results: List[Tuple[str, bool]] = []
        if isinstance(stmt, ast.Assign) and len(stmt.targets) >= 1:
            pure = self._is_now_read(stmt.value)
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    results.append((target.id, pure))
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            results.append(
                (stmt.target.id, stmt.value is not None and self._is_now_read(stmt.value))
            )
        elif isinstance(stmt, ast.AugAssign) and isinstance(stmt.target, ast.Name):
            results.append((stmt.target.id, False))
        return results

    # -- the scan ---------------------------------------------------------
    def scan(self, body: List[ast.stmt]) -> None:
        """Scan a statement sequence in source order."""
        for stmt in body:
            if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
                self._visit_leaf(stmt.iter if isinstance(stmt, (ast.For, ast.AsyncFor)) else stmt.test)
                for _ in range(2):
                    self.scan(stmt.body)
                self.scan(stmt.orelse)
            elif isinstance(stmt, ast.If):
                self._visit_leaf(stmt.test)
                self._scan_branches([stmt.body, stmt.orelse])
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    self._visit_leaf(item.context_expr)
                self.scan(stmt.body)
            elif isinstance(stmt, ast.Try):
                self.scan(stmt.body)
                for handler in stmt.handlers:
                    self.scan(handler.body)
                self.scan(stmt.orelse)
                self.scan(stmt.finalbody)
            else:
                self._visit_leaf(stmt)

    def _scan_branches(self, branches: List[List[ast.stmt]]) -> None:
        """Scan exclusive branches on forked state; merge only live exits.

        A branch whose last statement returns/raises/breaks never reaches
        the code after the conditional, so its yields and captures must not
        leak there.  Staleness from the live branches merges as a union
        (conservative for divergent assignments).
        """
        base = (dict(self.pending), dict(self.stale))
        merged_pending: Dict[str, int] = {}
        merged_stale: Dict[str, int] = {}
        for body in branches:
            self.pending, self.stale = dict(base[0]), dict(base[1])
            self.scan(body)
            if not self._terminates(body):
                merged_pending.update(self.pending)
                merged_stale.update(self.stale)
        self.pending, self.stale = merged_pending, merged_stale

    def _visit_leaf(self, stmt: Optional[ast.AST]) -> None:
        """Process one non-compound statement (or a compound head expression)."""
        if stmt is None:
            return
        fresh = self._contains_now(stmt) or self._is_recording(stmt)
        assigned = dict(self._assigned_names(stmt))
        # Uses of stale aliases (skip names being reassigned in this statement).
        if not fresh:
            for node in walk_shallow(stmt):
                if (
                    isinstance(node, ast.Name)
                    and isinstance(node.ctx, ast.Load)
                    and node.id in self.stale
                    and node.id not in assigned
                ):
                    key = (node.lineno, node.id)
                    if key not in self.reported:
                        self.reported.add(key)
                        self.findings.append((node, node.id, self.stale[node.id]))
        # Assignments update the alias tracking.
        for name, pure in self._assigned_names(stmt):
            if pure:
                self.pending[name] = stmt.lineno
                self.stale.pop(name, None)
            else:
                self.pending.pop(name, None)
                self.stale.pop(name, None)
        # A yield invalidates every alias captured so far.
        if self._contains_yield(stmt):
            self.stale.update(self.pending)
            self.pending.clear()


@register
class StaleNowAcrossYield(Rule):
    """E303: a captured ``env.now`` must not be treated as current after a yield."""

    id = "E303"
    name = "stale-now"
    rationale = (
        "`yield` suspends a process for an unknown amount of model time; a "
        "variable holding a pre-yield `env.now` read is a *timestamp*, not "
        "the current time.  Elapsed-time arithmetic that re-reads `.now` in "
        "the same statement (`env.now - start`) is the sanctioned idiom; any "
        "other post-yield use treats a stale clock as fresh."
    )
    scope = MODEL_PACKAGES

    def check(self, module: Module) -> Iterator[Finding]:
        """Flag post-yield uses of now-aliases in statements with no fresh read."""
        for func in function_defs(module.tree):
            if not any(
                isinstance(n, (ast.Yield, ast.YieldFrom))
                for n in walk_shallow(func, include_root=False)
            ):
                continue
            scanner = _StaleNowScanner()
            scanner.scan(func.body)
            for node, name, captured_line in scanner.findings:
                yield self.finding(
                    module,
                    node,
                    f"`{name}` holds `env.now` captured at line {captured_line}, "
                    "before a yield; model time has advanced — re-read "
                    "`env.now` (or combine with a fresh `.now` read in the "
                    "same statement for elapsed-time maths)",
                )
