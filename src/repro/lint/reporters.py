"""Finding reporters: human-readable text and machine-readable JSON."""

from __future__ import annotations

import json
from typing import List

from repro.lint.framework import LintReport

__all__ = ["render_text", "render_json"]


def render_text(report: LintReport) -> str:
    """One line per finding plus a summary, byte-stable for golden tests.

    Applied fixes are listed in the same ``(path, line, col, rule)`` order as
    findings, so the printed edit list reads like the report that produced
    it.
    """
    lines: List[str] = [finding.render() for finding in report.findings]
    for finding in report.applied:
        lines.append(f"fixed: {finding.render()}")
    for path, error in report.errors:
        lines.append(f"{path}: {error}")
    noun = "finding" if len(report.findings) == 1 else "findings"
    summary = f"{len(report.findings)} {noun} in {report.files_checked} file(s)"
    if report.fixes_applied:
        summary += f"; {report.fixes_applied} fix(es) applied"
    lines.append(summary)
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    """The full report as a sorted, indented JSON document."""
    payload = {
        "files_checked": report.files_checked,
        "fixes_applied": report.fixes_applied,
        "applied": [finding.as_dict() for finding in report.applied],
        "findings": [finding.as_dict() for finding in report.findings],
        "errors": [{"path": path, "error": error} for path, error in report.errors],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
