"""Core of the ``repro.lint`` static-analysis framework.

The framework is deliberately small: a :class:`Module` wraps one parsed
source file (AST, lines, suppression comments), a :class:`Rule` inspects a
module and yields :class:`Finding` objects, and :func:`lint_paths` walks a
tree, runs every registered rule and returns the combined, sorted findings.

Three properties matter more than generality:

* **Determinism** — findings are sorted by ``(path, line, col, rule id)`` and
  rules are run in id order, so output is byte-stable across runs and
  machines (the linter lints itself, after all).
* **Suppression is explicit and auditable** — a finding can only be silenced
  by a trailing ``# lint: allow=<rule>`` comment on the offending line (or a
  file-level ``# lint: skip-file``), so every accepted exception is visible
  in the diff that introduced it.
* **Fixes are mechanical or absent** — a rule may attach a :class:`LineFix`
  only when the rewrite is provably behaviour-preserving (e.g. ``except:`` →
  ``except Exception:``); everything else is a human's job.
"""

from __future__ import annotations

import ast
import io
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    ClassVar,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Type,
)

if TYPE_CHECKING:
    from repro.lint.flow.project import Project

__all__ = [
    "Finding",
    "LineFix",
    "Module",
    "ProjectRule",
    "Rule",
    "all_rules",
    "apply_fixes",
    "lint_module",
    "lint_paths",
    "lint_source",
    "register",
]

#: Packages whose code defines *model* behaviour: simulation results must be a
#: pure function of the configuration and seeds, so the determinism (``D``)
#: and event-contract (``E``) rules apply here.  The measurement and driver
#: layers (``repro.bench``, ``repro.trace``, ``repro.sweep``, the threaded
#: ``repro.core`` runtime and the numeric ``repro.apps`` kernels) are
#: deliberately outside this set: wall-clock reads are their whole point.
MODEL_PACKAGES: Tuple[str, ...] = (
    "repro.simcore",
    "repro.cluster",
    "repro.workflow",
    "repro.transports",
    "repro.elastic",
    "repro.perfmodel",
    "repro.simmpi",
    "repro.faults",
)


@dataclass(frozen=True)
class LineFix:
    """A mechanical, line-oriented rewrite attached to a finding.

    ``insert_after`` is ``True`` to insert ``new_lines`` after ``line``
    (1-based), ``False`` to replace ``line`` with ``new_lines``.
    """

    line: int
    new_lines: Tuple[str, ...]
    insert_after: bool = False


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location."""

    rule: str
    name: str
    path: str
    line: int
    col: int
    message: str
    fix: Optional[LineFix] = None

    def render(self) -> str:
        """The canonical one-line text form (``path:line:col: ID name: msg``)."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.name}: {self.message}"

    def as_dict(self) -> Dict[str, object]:
        """JSON-safe form (the fix is summarised as a boolean)."""
        return {
            "rule": self.rule,
            "name": self.name,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "fixable": self.fix is not None,
        }


class Module:
    """One source file under analysis: AST, lines and suppression comments."""

    def __init__(self, path: str, source: str, module_name: str) -> None:
        self.path = path
        self.source = source
        self.module_name = module_name
        self.lines: List[str] = source.splitlines()
        self.tree: ast.Module = ast.parse(source, filename=path)
        self.suppressions: Dict[int, Set[str]] = {}
        self.skip_file = False
        self._parse_suppressions()

    def _parse_suppressions(self) -> None:
        """Collect ``# lint: allow=...`` / ``# lint: skip-file`` comments.

        Comments are found with :mod:`tokenize` so directives inside string
        literals are never mistaken for suppressions.
        """
        try:
            tokens = tokenize.generate_tokens(io.StringIO(self.source).readline)
            for tok in tokens:
                if tok.type != tokenize.COMMENT:
                    continue
                text = tok.string.lstrip("#").strip()
                if not text.startswith("lint:"):
                    continue
                directive = text[len("lint:") :].strip()
                if directive == "skip-file":
                    self.skip_file = True
                elif directive.startswith("allow="):
                    names = {n.strip() for n in directive[len("allow=") :].split(",")}
                    self.suppressions.setdefault(tok.start[0], set()).update(
                        n for n in names if n
                    )
        except tokenize.TokenError:  # pragma: no cover - ast.parse already passed
            pass

    def in_packages(self, prefixes: Sequence[str]) -> bool:
        """Whether this module lives under any of the dotted ``prefixes``."""
        name = self.module_name
        return any(name == p or name.startswith(p + ".") for p in prefixes)

    def suppressed(self, finding: Finding) -> bool:
        """Whether ``finding`` is silenced by an ``allow`` comment on its line."""
        allowed = self.suppressions.get(finding.line)
        if not allowed:
            return False
        return bool({finding.rule, finding.name, "*"} & allowed)

class Rule:
    """Base class of one static-analysis rule.

    Subclasses set the class attributes and implement :meth:`check`.  An
    empty :attr:`scope` means the rule applies to every module; otherwise it
    is a tuple of dotted package prefixes (see :data:`MODEL_PACKAGES`).
    """

    #: Stable identifier, e.g. ``"D201"`` (``D`` determinism, ``E`` event
    #: contract, ``H`` hygiene).
    id: ClassVar[str] = ""
    #: Human-readable kebab-case name, usable in ``allow=`` comments.
    name: ClassVar[str] = ""
    #: One-paragraph rationale (rendered by ``--list-rules`` and the docs).
    rationale: ClassVar[str] = ""
    #: Dotted package prefixes the rule applies to (empty: everywhere).
    scope: ClassVar[Tuple[str, ...]] = ()
    #: Whether the rule can attach mechanical :class:`LineFix` rewrites.
    fixable: ClassVar[bool] = False

    def applies_to(self, module: Module) -> bool:
        """Whether ``module`` is inside this rule's scope."""
        if not self.scope:
            return True
        return module.in_packages(self.scope)

    def check(self, module: Module) -> Iterator[Finding]:
        """Yield every violation of this rule in ``module``."""
        raise NotImplementedError

    def finding(
        self,
        module: Module,
        node: ast.AST,
        message: str,
        fix: Optional[LineFix] = None,
    ) -> Finding:
        """Build a :class:`Finding` for ``node`` in ``module``."""
        return Finding(
            rule=self.id,
            name=self.name,
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
            fix=fix,
        )


class ProjectRule(Rule):
    """Base class of whole-program rules (the interprocedural ``F5xx`` set).

    A project rule sees every in-scope module at once through a
    ``repro.lint.flow.project.Project`` and yields findings anchored in any
    of them; :func:`lint_paths` builds one shared project per run (and
    :func:`lint_module` a single-module project, so source fixtures exercise
    these rules too).  Suppression comments apply exactly as for per-module
    rules: the finding is matched against the ``allow`` set of the module it
    lands in.
    """

    def check(self, module: Module) -> Iterator[Finding]:
        """Project rules never run per-module."""
        return iter(())

    def check_project(self, project: "Project") -> Iterator[Finding]:
        """Yield every violation over the whole ``project``."""
        raise NotImplementedError


_REGISTRY: Dict[str, Rule] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry (keyed by id)."""
    rule = cls()
    if not rule.id or not rule.name:
        raise ValueError(f"rule {cls.__name__} must define id and name")
    if rule.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.id}")
    _REGISTRY[rule.id] = rule
    return cls


def all_rules() -> List[Rule]:
    """Every registered rule, sorted by id (imports the rule modules)."""
    import repro.lint.flow.crediting  # noqa: F401  - registration side effect
    import repro.lint.flow.escape  # noqa: F401  - registration side effect
    import repro.lint.rules  # noqa: F401  - registration side effect

    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def select_rules(
    select: Optional[Sequence[str]] = None, ignore: Optional[Sequence[str]] = None
) -> List[Rule]:
    """The active rule set after ``--select`` / ``--ignore`` filtering.

    Entries match either the rule id or its kebab-case name; unknown entries
    raise ``ValueError`` so typos fail loudly instead of silently linting
    nothing.
    """
    rules = all_rules()
    known = {r.id for r in rules} | {r.name for r in rules}
    for entry in list(select or []) + list(ignore or []):
        if entry not in known:
            raise ValueError(f"unknown rule {entry!r}; known: {sorted(known)}")
    if select:
        rules = [r for r in rules if r.id in select or r.name in select]
    if ignore:
        rules = [r for r in rules if r.id not in ignore and r.name not in ignore]
    return rules


def _run_project_rules(
    rules: Sequence["ProjectRule"], modules: Sequence[Module]
) -> List[Finding]:
    """Run whole-program rules over ``modules``, honouring suppressions.

    The flow package is imported lazily: it depends on this module, and a
    plain per-module lint should not pay for building a project.
    """
    from repro.lint.flow.project import Project

    scoped = [m for m in modules if any(r.applies_to(m) for r in rules)]
    if not scoped:
        return []
    project = Project(scoped)
    by_path = {m.path: m for m in scoped}
    findings: List[Finding] = []
    for rule in rules:
        for finding in rule.check_project(project):
            module = by_path.get(finding.path)
            if module is None or not rule.applies_to(module):
                continue
            if not module.suppressed(finding):
                findings.append(finding)
    return findings


def lint_module(module: Module, rules: Optional[Sequence[Rule]] = None) -> List[Finding]:
    """Run ``rules`` (default: all) over one module, honouring suppressions.

    Project-wide rules run against a single-module project, so source
    fixtures (and single-file CLI invocations) still exercise them.
    """
    if module.skip_file:
        return []
    active = list(rules) if rules is not None else all_rules()
    findings: List[Finding] = []
    for rule in active:
        if isinstance(rule, ProjectRule) or not rule.applies_to(module):
            continue
        for finding in rule.check(module):
            if not module.suppressed(finding):
                findings.append(finding)
    project_rules = [r for r in active if isinstance(r, ProjectRule)]
    if project_rules:
        findings.extend(_run_project_rules(project_rules, [module]))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def lint_source(
    source: str,
    module_name: str = "repro.simcore._fixture",
    path: str = "<fixture>",
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Lint a source string (the test-fixture entry point).

    ``module_name`` controls which package-scoped rules apply; the default
    places the fixture inside the model scope so every rule is active.
    """
    return lint_module(Module(path, source, module_name), rules)


def module_name_for(path: Path) -> str:
    """Derive the dotted module name from the package layout on disk.

    Walks up while ``__init__.py`` files are present, so ``src/repro/x/y.py``
    maps to ``repro.x.y`` regardless of where the walk started.  A namespace
    package directly under a ``src`` directory (this repo's ``repro``) has no
    ``__init__.py`` but still contributes its name.
    """
    parts: List[str] = [] if path.name == "__init__.py" else [path.stem]
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.insert(0, parent.name)
        parent = parent.parent
    if parent.name not in ("", "src") and parent.parent.name == "src":
        parts.insert(0, parent.name)
    return ".".join(parts) if parts else path.stem


def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    """Yield every ``.py`` file under ``paths`` (sorted, skipping caches)."""
    for path in paths:
        if path.is_file():
            if path.suffix == ".py":
                yield path
            continue
        for file in sorted(path.rglob("*.py")):
            if any(part.startswith(".") or part == "__pycache__" for part in file.parts):
                continue
            yield file


def apply_fixes(source: str, findings: Iterable[Finding]) -> Tuple[str, List[Finding]]:
    """Apply the :class:`LineFix` of every fixable finding to ``source``.

    Which fix wins a line is decided *in report order* — ``(path, line, col,
    rule)``, the order findings are printed — and only then are the survivors
    applied bottom-up so earlier line numbers stay valid.  That makes the
    returned list of applied findings (also in report order) match what a
    reader of the report expects, instead of depending on the application
    sweep's direction.  A line with two competing fixes applies the first
    reported one and drops the rest; the next lint run re-reports whatever
    remains.  Returns ``(new_source, applied_findings)``.
    """
    ordered = sorted(
        (f for f in findings if f.fix is not None),
        key=lambda f: (f.path, f.line, f.col, f.rule),
    )
    applied: List[Finding] = []
    seen_lines: Set[int] = set()
    line_count = len(source.splitlines())
    for finding in ordered:
        fix = finding.fix
        assert fix is not None
        if fix.line in seen_lines or not (1 <= fix.line <= line_count):
            continue
        seen_lines.add(fix.line)
        applied.append(finding)
    if not applied:
        return source, []
    trailing_newline = source.endswith("\n")
    lines = source.splitlines()
    for finding in sorted(applied, key=lambda f: f.fix.line, reverse=True):  # type: ignore[union-attr]
        fix = finding.fix
        assert fix is not None
        if fix.insert_after:
            lines[fix.line : fix.line] = list(fix.new_lines)
        else:
            lines[fix.line - 1 : fix.line] = list(fix.new_lines)
    new_source = "\n".join(lines) + ("\n" if trailing_newline else "")
    return new_source, applied


@dataclass
class LintReport:
    """Outcome of a :func:`lint_paths` run."""

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    fixes_applied: int = 0
    #: The findings whose fixes were written back, in report order — what a
    #: ``--fix`` run shows so the printed list matches the edits made.
    applied: List[Finding] = field(default_factory=list)
    #: Files that failed to parse, as ``(path, error)`` pairs.
    errors: List[Tuple[str, str]] = field(default_factory=list)


def lint_paths(
    paths: Sequence[Path],
    rules: Optional[Sequence[Rule]] = None,
    fix: bool = False,
) -> LintReport:
    """Lint every Python file under ``paths``.

    Per-module rules run file by file; whole-program rules run once over a
    project built from every in-scope module.  With ``fix=True``, mechanical
    fixes are written back and the file is re-linted so the report only
    contains what remains for a human; the applied fixes are listed in
    report order (see :func:`apply_fixes`).
    """
    report = LintReport()
    active = list(rules) if rules is not None else all_rules()
    module_rules = [r for r in active if not isinstance(r, ProjectRule)]
    project_rules = [r for r in active if isinstance(r, ProjectRule)]
    modules: List[Module] = []
    for file in iter_python_files(paths):
        source = file.read_text(encoding="utf-8")
        try:
            module = Module(str(file), source, module_name_for(file))
        except SyntaxError as exc:
            report.errors.append((str(file), f"syntax error: {exc}"))
            continue
        findings = lint_module(module, module_rules)
        if fix and any(f.fix is not None for f in findings):
            new_source, applied = apply_fixes(source, findings)
            if applied:
                file.write_text(new_source, encoding="utf-8")
                report.fixes_applied += len(applied)
                report.applied.extend(applied)
                module = Module(str(file), new_source, module.module_name)
                findings = lint_module(module, module_rules)
        report.findings.extend(findings)
        report.files_checked += 1
        modules.append(module)
    if project_rules:
        report.findings.extend(_run_project_rules(project_rules, modules))
    report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return report
