"""Static analysis for the simulator's determinism and event contracts.

``repro.lint`` is an AST-based linter with rules specific to this code base:
it proves, at review time, invariants the test suite can only spot-check
dynamically — no wall-clock or global-RNG reads in model code (``D`` rules),
the fast-path event-crediting and ``__slots__`` contracts of the engine
(``E`` rules), and hygiene hazards that corrupt simulations silently
(``H`` rules).

Run it with::

    PYTHONPATH=src python -m repro.lint src/          # lint the tree
    PYTHONPATH=src python -m repro.lint --list-rules  # rule catalogue
    PYTHONPATH=src python -m repro.lint --fix src/    # apply mechanical fixes

A finding is silenced only by a trailing ``# lint: allow=<rule>`` comment on
the offending line (``<rule>`` is the id or the kebab-case name), or a
file-level ``# lint: skip-file``.  See ``docs/static-analysis.md`` for the
rule catalogue, the determinism contract it enforces, and how to add a rule.
"""

from repro.lint.framework import (
    MODEL_PACKAGES,
    Finding,
    LineFix,
    LintReport,
    Module,
    ProjectRule,
    Rule,
    all_rules,
    apply_fixes,
    lint_module,
    lint_paths,
    lint_source,
    register,
    select_rules,
)
from repro.lint.reporters import render_json, render_text

__all__ = [
    "MODEL_PACKAGES",
    "Finding",
    "LineFix",
    "LintReport",
    "Module",
    "ProjectRule",
    "Rule",
    "all_rules",
    "apply_fixes",
    "lint_module",
    "lint_paths",
    "lint_source",
    "register",
    "render_json",
    "render_text",
    "select_rules",
]
