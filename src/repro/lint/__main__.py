"""Command-line driver: ``python -m repro.lint [paths...]``.

Exit codes: 0 — clean; 1 — findings (or unparsable files); 2 — usage error.
CI runs ``python -m repro.lint src/`` and gates on a clean exit; see
``docs/static-analysis.md``.
"""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import List, Optional

from repro.lint.framework import all_rules, lint_paths, select_rules
from repro.lint.reporters import render_json, render_text

__all__ = ["main"]


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Determinism & simulation-invariant static analysis.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--fix",
        action="store_true",
        help="apply mechanical fixes in place (bare-except, event-slots)",
    )
    parser.add_argument(
        "--select",
        action="append",
        default=None,
        metavar="RULE",
        help="run only these rules (id or name; repeatable)",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        default=None,
        metavar="RULE",
        help="skip these rules (id or name; repeatable)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--flow-report",
        action="store_true",
        help=(
            "print the machine-readable escape/crediting certificate "
            "(JSON) instead of linting"
        ),
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of ``python -m repro.lint``; returns the exit code."""
    args = _parser().parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            scope = ", ".join(rule.scope) if rule.scope else "all code"
            fix = " (fixable)" if rule.fixable else ""
            print(f"{rule.id} {rule.name}{fix} [{scope}]")
            print(f"    {rule.rationale}")
        return 0

    try:
        rules = select_rules(args.select, args.ignore)
    except ValueError as exc:
        print(f"error: {exc}")
        return 2

    paths = [Path(p) for p in args.paths]
    missing = [str(p) for p in paths if not p.exists()]
    if missing:
        print(f"error: no such path(s): {', '.join(missing)}")
        return 2

    if args.flow_report:
        import json

        from repro.lint.flow.report import flow_report

        print(json.dumps(flow_report(paths), indent=2, sort_keys=True))
        return 0

    report = lint_paths(paths, rules=rules, fix=args.fix)
    print(render_json(report) if args.format == "json" else render_text(report))
    return 1 if (report.findings or report.errors) else 0


if __name__ == "__main__":
    raise SystemExit(main())
