"""Rule F502: interprocedural crediting conservation for fast paths.

E301 checks one function at a time: touching another object's fast-path
internals (``users``, ``_waiters``, ``_grant``, ``_pop_waiter``) without a
crediting call in the *same* function is a finding.  That forces every fast
path to credit locally — but it cannot see a fast path split across
helpers, and it cannot check the *amount* credited.

F502 closes both gaps over the whole-program call graph:

* **reachability** — a function touching foreign fast-path internals is
  discharged if a crediting call (``credit_events`` / ``trigger_inplace`` /
  ``complete``) appears in the function itself or in any function reachable
  within a few name-call-graph hops (callers or callees — the credit may
  live in the orchestrating caller or in a shared helper);
* **conservation** — when a function's crediting is a literal
  ``credit_events(<int>)``, the literals must sum to the number of elided
  queue trips, counted as the foreign ``users.append`` / ``users.remove``
  mutations in the function (each stands for one grant or release event the
  slow path would have scheduled).  Dynamically computed credits (e.g.
  ``compute_batch`` folding a whole segment) are exempt from the literal
  check — the runtime sanitizer validates those instead.

Like E301 the rule applies to the model packages *outside* ``repro.simcore``
(the engine's own resource layer maintains those lists as its normal job).
"""

from __future__ import annotations

from typing import Iterator, List, Set

from repro.lint.framework import MODEL_PACKAGES, Finding, ProjectRule, register
from repro.lint.flow.project import FunctionInfo, Project

__all__ = ["CreditingConservation"]

#: Name-call-graph radius searched for a discharging crediting call.
_DISCHARGE_DEPTH = 3


def _has_credit(func: FunctionInfo) -> bool:
    return func.summary is not None and func.summary.credits_local


def _discharged(project: Project, func: FunctionInfo) -> bool:
    """Breadth-first search for crediting evidence near ``func``."""
    if _has_credit(func):
        return True
    seen: Set[str] = {func.qualname}
    frontier: List[FunctionInfo] = [func]
    for _ in range(_DISCHARGE_DEPTH):
        neighbours: List[FunctionInfo] = []
        for current in frontier:
            # Callees: functions this one names.
            for name in sorted(current.callees):
                for callee in project.candidates(name):
                    if callee.qualname not in seen:
                        seen.add(callee.qualname)
                        neighbours.append(callee)
            # Callers: functions naming this one.
            for qualname in sorted(project.functions):
                caller = project.functions[qualname]
                if caller.qualname not in seen and current.name in caller.callees:
                    seen.add(caller.qualname)
                    neighbours.append(caller)
        if any(_has_credit(n) for n in neighbours):
            return True
        if not neighbours:
            return False
        frontier = neighbours
    return False


@register
class CreditingConservation(ProjectRule):
    """Fast paths must credit exactly the queue trips they elide."""

    id = "F502"
    name = "crediting-conservation"
    rationale = (
        "A fast path that elides queue trips must credit them so "
        "events_processed stays bit-identical with the slow path. F502 "
        "verifies this across function boundaries: every function touching "
        "foreign fast-path internals needs a crediting call reachable in the "
        "call graph, and literal credit_events() amounts must equal the "
        "elided grant/release mutations they stand for."
    )
    scope = MODEL_PACKAGES

    def check_project(self, project: Project) -> Iterator[Finding]:
        """Yield reachability and conservation findings over the project."""
        project.analyze()
        for qualname in sorted(project.functions):
            func = project.functions[qualname]
            if func.module.startswith("repro.simcore"):
                continue
            summary = func.summary
            if summary is None or not summary.foreign_touch_lines:
                continue
            line = min(summary.foreign_touch_lines)
            if not _discharged(project, func):
                yield Finding(
                    rule=self.id,
                    name=self.name,
                    path=func.path,
                    line=line,
                    col=0,
                    message=(
                        f"{func.name}() touches fast-path internals but no "
                        f"crediting call is reachable within "
                        f"{_DISCHARGE_DEPTH} call-graph hops; elided events "
                        f"would desynchronise events_processed "
                        f"(docs/performance.md)"
                    ),
                )
                continue
            if (
                summary.credit_literals
                and not summary.dynamic_credit
                and not summary.credits_inplace
                and summary.elide_count > 0
                and sum(summary.credit_literals) != summary.elide_count
            ):
                yield Finding(
                    rule=self.id,
                    name=self.name,
                    path=func.path,
                    line=line,
                    col=0,
                    message=(
                        f"{func.name}() credits "
                        f"{sum(summary.credit_literals)} event(s) but elides "
                        f"{summary.elide_count} (one per foreign "
                        f"users.append/remove); the fast path would not be "
                        f"bit-identical with the slow path"
                    ),
                )
