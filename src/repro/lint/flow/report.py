"""Machine-readable flow certificate: ``python -m repro.lint --flow-report``.

Emits one JSON document describing what the interprocedural analyses proved
about the tree:

* per event class — every allocation site with its escape verdict, whether
  the class is pool-safe (no escaping site), and whether the engine
  actually pools it;
* the unresolved-but-event-looking calls the type lattice could not
  classify (pinned empty for the shipped tree by the meta-tests);
* per fast-path function — the crediting shape F502 checked (elided
  mutations, literal credits, dynamic credits).

The report is the audit artifact behind extending the free lists: a class
moves onto ``POOLED_EVENT_CLASSES`` only when its report entry shows
``pool_safe`` with every site accounted for.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Sequence

from repro.lint.framework import (
    MODEL_PACKAGES,
    Module,
    iter_python_files,
    module_name_for,
)
from repro.lint.flow.escape import POOLED_CLASSES
from repro.lint.flow.project import EXCLUDED_MODULES, Project

__all__ = ["build_project", "flow_report"]


def build_project(paths: Sequence[Path]) -> Project:
    """Parse every in-scope module under ``paths`` into an analyzed project."""
    modules: List[Module] = []
    for file in iter_python_files(paths):
        try:
            module = Module(
                str(file), file.read_text(encoding="utf-8"), module_name_for(file)
            )
        except SyntaxError:
            continue
        if module.in_packages(MODEL_PACKAGES):
            modules.append(module)
    project = Project(modules)
    project.analyze()
    return project


def flow_report(paths: Sequence[Path]) -> Dict[str, object]:
    """The JSON-safe flow certificate for the tree under ``paths``."""
    project = build_project(paths)
    classes: Dict[str, Dict[str, object]] = {}
    for qualname in sorted(project.functions):
        func = project.functions[qualname]
        if func.module in EXCLUDED_MODULES or func.summary is None:
            continue
        for site in func.summary.sites:
            for cls in site.classes:
                entry = classes.setdefault(
                    cls,
                    {"pool_safe": True, "pooled": cls in POOLED_CLASSES, "sites": []},
                )
                sites = entry["sites"]
                assert isinstance(sites, list)
                sites.append(
                    {
                        "path": site.path,
                        "line": site.line,
                        "function": site.function,
                        "verdict": site.verdict,
                        "reason": site.reason,
                        "derived": site.derived,
                    }
                )
                if site.verdict == "escapes":
                    entry["pool_safe"] = False
    crediting: List[Dict[str, object]] = []
    for qualname in sorted(project.functions):
        func = project.functions[qualname]
        summary = func.summary
        if (
            summary is None
            or not summary.foreign_touch_lines
            or func.module.startswith("repro.simcore")
        ):
            continue
        crediting.append(
            {
                "function": func.qualname,
                "path": func.path,
                "line": min(summary.foreign_touch_lines),
                "elided": summary.elide_count,
                "literal_credits": sorted(summary.credit_literals),
                "dynamic_credit": summary.dynamic_credit,
            }
        )
    return {
        "pooled_classes": list(POOLED_CLASSES),
        "event_classes": {name: classes[name] for name in sorted(classes)},
        "unresolved_event_like": [
            {"path": path, "line": line, "col": col, "method": method}
            for path, line, col, method in sorted(project.unresolved_event_like)
        ],
        "crediting": crediting,
    }
