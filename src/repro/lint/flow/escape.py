"""Rule F501: pooled event classes must not escape their dispatch.

The engine recycles ``PooledTimeout``, ``StorePut``, ``StoreGet`` and
``Release`` objects through per-class free lists (see
``repro.simcore.engine.POOLED_EVENT_CLASSES``).  Recycling is only sound if
no model code can observe an event after its callbacks ran: a reference
stashed in an attribute, a container, a closure or a condition event would
alias a recycled — and re-armed — object, silently corrupting an unrelated
operation.

F501 is the static half of that contract (the runtime half is
:mod:`repro.sanitize`'s use-after-recycle poisoning): every allocation site
of a pooled class in the model packages must classify as ``consumed``,
``discarded``, ``safe-hold`` or ``returned`` under the
:mod:`repro.lint.flow.summaries` escape analysis.  A site that ``escapes``
is a finding — either the code must stop holding the event, or the class
must come off the pooled list.

The rule deliberately reports *sites*, not classes: the finding points at
the exact allocation whose lifetime the analysis cannot bound.
"""

from __future__ import annotations

from typing import Iterator, Tuple

from repro.lint.framework import MODEL_PACKAGES, Finding, ProjectRule, register
from repro.lint.flow.project import EXCLUDED_MODULES, Project

__all__ = ["EventEscape", "POOLED_CLASSES"]

#: The F501 certificate: classes the engine may recycle.  Must equal
#: ``repro.simcore.engine.POOLED_EVENT_CLASSES`` — pinned by a meta-test so
#: the certificate and the implementation cannot drift apart.
POOLED_CLASSES: Tuple[str, ...] = ("PooledTimeout", "StorePut", "StoreGet", "Release")


@register
class EventEscape(ProjectRule):
    """Allocation sites of pooled event classes must not escape."""

    id = "F501"
    name = "pooled-event-escape"
    rationale = (
        "Event classes on the engine's free-list certificate (PooledTimeout, "
        "StorePut, StoreGet, Release) are recycled after dispatch; any model "
        "code that holds such an event past its consuming yield — in an "
        "attribute, container, closure or condition — would alias a re-armed "
        "object. Every allocation site of a pooled class must provably not "
        "escape; sites the interprocedural escape analysis cannot bound are "
        "findings."
    )
    scope = MODEL_PACKAGES

    def check_project(self, project: Project) -> Iterator[Finding]:
        """Yield a finding per escaping allocation site of a pooled class."""
        project.analyze()
        for qualname in sorted(project.functions):
            func = project.functions[qualname]
            if func.module in EXCLUDED_MODULES or func.summary is None:
                continue
            for site in func.summary.sites:
                if site.verdict != "escapes":
                    continue
                pooled = sorted(set(site.classes) & set(POOLED_CLASSES))
                if not pooled:
                    continue
                yield Finding(
                    rule=self.id,
                    name=self.name,
                    path=site.path,
                    line=site.line,
                    col=site.col,
                    message=(
                        f"pooled event {'/'.join(pooled)} allocated in "
                        f"{func.name}() escapes its dispatch: {site.reason}; "
                        f"recycling would alias a live reference "
                        f"(docs/static-analysis.md)"
                    ),
                )
