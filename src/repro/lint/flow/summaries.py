"""Per-function flow summaries: allocation sites, escapes, crediting shape.

The scanner walks each function's statements *in order*, tracking local names
bound to event allocations, and classifies every Event-subclass allocation
site with a verdict:

``consumed``
    yielded to the scheduler (the normal lifecycle — pool-safe);
``discarded``
    created and dropped without being held (queue-tripped fire-and-forget —
    pool-safe);
``safe-hold``
    appended to one of the engine's own waiter lists inside ``repro.simcore``
    (the protocol hold that ``step()`` itself unwinds — pool-safe);
``returned``
    handed to the caller (a factory; the *call sites* inherit the
    classification, so a returned site never condemns a class by itself);
``escapes``
    stored in an attribute or container, captured by a closure, a condition
    event or a recorder, used after its consuming yield, or passed to a call
    the analysis cannot resolve — **not** pool-safe.

Verdicts only ever escalate (the order above), so the whole-project fixed
point — parameter escape verdicts and returned-event sets feeding call-site
classification, parameter types propagating from typed call sites — is
monotone and converges in a handful of rounds.

Precision notes (all deliberate, all backstopped by :mod:`repro.sanitize`):
calls are resolved through receiver types and name candidates, never guessed;
an event-looking call on an unresolved receiver becomes an
``unresolved_event_like`` audit entry instead of a classified site; a name
that is merely *read* (attribute access, comparison) is not an escape, but
any use after the consuming yield is — that is exactly the use-after-recycle
hazard pooling introduces.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.lint.flow.project import (
    EVENT_LIKE_METHODS,
    EXCLUDED_MODULES,
    FACTORY_EVENTS,
    FunctionInfo,
    Project,
    TypeHint,
    _annotation_hint,
    _base_tail,
)
from repro.lint.rules._helpers import walk_shallow

__all__ = ["AllocSite", "FunctionSummary", "compute_summaries", "VERDICT_ORDER"]

#: Escalation lattice for site verdicts.
VERDICT_ORDER: Dict[str, int] = {
    "discarded": 0,
    "consumed": 1,
    "safe-hold": 2,
    "returned": 3,
    "escapes": 4,
}

#: Engine entry points that *consume* an event handed to them (the event ends
#: its life inside the audited mechanism layer).
_ENGINE_CONSUMERS = frozenset(
    {"trigger_inplace", "complete", "schedule", "_recycle_consumed", "_recycle_release"}
)

#: Calls that read a value without retaining it.
_BENIGN_CALLS = frozenset(
    {"len", "isinstance", "repr", "id", "str", "print", "type", "bool", "hash", "format"}
)

#: Mutating-container method names that retain their argument.
_APPEND_METHODS = frozenset({"append", "appendleft", "add", "insert", "extend", "push"})

#: The engine's own waiter lists: events held here are unwound by the
#: protocol itself, so a hold is safe — but only from inside repro.simcore.
_PROTOCOL_CONTAINERS = frozenset({"_put_waiters", "_get_waiters", "_waiters", "callbacks"})

#: Condition-style constructors that capture their member events.
_CONDITION_CALLS = frozenset({"AllOf", "AnyOf", "ConditionEvent", "Condition"})

#: E301's fast-path internals and crediting calls, mirrored exactly so F502
#: is a strict interprocedural upgrade of the intraprocedural rule.
_FASTPATH_INTERNALS = frozenset({"users", "_waiters", "_grant", "_pop_waiter"})
_CREDITING_CALLS = frozenset({"credit_events", "trigger_inplace", "complete"})

_MAX_ROUNDS = 8


@dataclass
class AllocSite:
    """One Event-subclass allocation site with its escape verdict."""

    classes: Tuple[str, ...]
    function: str
    module: str
    path: str
    line: int
    col: int
    verdict: str = "discarded"
    reason: str = "dropped without use"
    #: True when this site is a call to an event-returning factory rather
    #: than a spelled-out constructor or factory method.
    derived: bool = False

    def escalate(self, verdict: str, reason: str) -> None:
        """Raise the verdict (never lower it) — the lattice is monotone."""
        if VERDICT_ORDER[verdict] > VERDICT_ORDER[self.verdict]:
            self.verdict = verdict
            self.reason = reason


@dataclass
class FunctionSummary:
    """Everything the interprocedural rules need to know about one function."""

    sites: List[AllocSite] = field(default_factory=list)
    returns_events: Set[str] = field(default_factory=set)
    #: parameter name -> ("safe" | "escapes", reason)
    param_verdicts: Dict[str, Tuple[str, str]] = field(default_factory=dict)
    credit_literals: List[int] = field(default_factory=list)
    dynamic_credit: bool = False
    credits_inplace: bool = False
    foreign_touch_lines: List[int] = field(default_factory=list)
    elide_count: int = 0
    #: Final local-name types — nested functions seed their closure
    #: environment from the enclosing function's map.
    local_types: Dict[str, TypeHint] = field(default_factory=dict)

    @property
    def credits_local(self) -> bool:
        """Whether this function itself contains any crediting evidence."""
        return bool(self.credit_literals) or self.dynamic_credit or self.credits_inplace

    def signature(self) -> Tuple[object, ...]:
        """Convergence fingerprint for the fixed point."""
        return (
            tuple(sorted((s.line, s.col, s.classes, s.verdict) for s in self.sites)),
            tuple(sorted(self.returns_events)),
            tuple(sorted(self.param_verdicts.items())),
            tuple(sorted(self.local_types.items())),
        )


@dataclass
class _Tracked:
    """A local name currently bound to one or more allocation sites."""

    sites: List[AllocSite]
    param: Optional[str] = None
    consumed: bool = False
    consumed_line: int = 0


class _Scanner:
    """One pass over one function body (re-run each fixed-point round)."""

    def __init__(self, project: Project, func: FunctionInfo) -> None:
        self.project = project
        self.func = func
        self.summary = FunctionSummary()
        self.sites_by_pos: Dict[Tuple[int, int], AllocSite] = {}
        #: local name -> inferred type
        self.types: Dict[str, TypeHint] = {}
        self.state: Dict[str, _Tracked] = {}
        self.in_simcore = func.module.startswith("repro.simcore")

    # -- entry -------------------------------------------------------------
    def run(self) -> FunctionSummary:
        """Scan the function body once and return its summary."""
        node = self.func.node
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        self._seed_closure()
        self._seed_params(node)
        for name in self.func.param_names:
            self.state[name] = _Tracked(sites=[], param=name)
            self.summary.param_verdicts.setdefault(name, ("safe", ""))
        self._scan_body(node.body)
        self._collect_crediting(node)
        self.summary.local_types = dict(self.types)
        return self.summary

    def _seed_closure(self) -> None:
        """Nested functions see the enclosing function's local types."""
        parent = self.func.parent
        depth = 0
        while parent is not None and depth < 4:
            info = self.project.functions.get(parent)
            if info is None:
                break
            if info.summary is not None:
                for name, hint in info.summary.local_types.items():
                    self.types.setdefault(name, hint)
            parent = info.parent
            depth += 1

    def _seed_params(self, node: ast.AST) -> None:
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        for arg in node.args.args:
            # A parameter shadows any closure-inherited name.
            self.types.pop(arg.arg, None)
            if arg.arg == "self" and self.func.class_name:
                self.types[arg.arg] = TypeHint(self.func.class_name)
                continue
            hint: Optional[TypeHint] = None
            if arg.annotation is not None:
                cand = _annotation_hint(arg.annotation)
                if cand is not None and self.project._known_class(cand.name):
                    hint = cand
            if hint is None:
                hint = self.func.param_types.get(arg.arg) or None
            if hint is None and arg.arg == "env":
                hint = TypeHint("Environment")
            if hint is not None:
                self.types[arg.arg] = hint

    # -- statements --------------------------------------------------------
    def _scan_body(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            self._scan_stmt(stmt)

    def _scan_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._check_closure(stmt)
            return
        if isinstance(stmt, ast.ClassDef):
            return
        if isinstance(stmt, ast.If):
            self._eval(stmt.test, "benign")
            base = dict(self.state)
            self._scan_body(stmt.body)
            after_then = self.state
            self.state = dict(base)
            self._scan_body(stmt.orelse)
            # Merge: a name consumed on either exclusive branch stays
            # consumed; bindings new to one branch are kept.
            merged = dict(after_then)
            merged.update(
                {k: v for k, v in self.state.items() if k not in merged}
            )
            self.state = merged
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._eval(stmt.iter, "benign")
            # Two passes so a type or binding established late in the body is
            # seen by uses early in the next iteration.
            self._scan_body(stmt.body)
            self._scan_body(stmt.body)
            self._scan_body(stmt.orelse)
            return
        if isinstance(stmt, ast.While):
            self._eval(stmt.test, "benign")
            self._scan_body(stmt.body)
            self._scan_body(stmt.body)
            self._scan_body(stmt.orelse)
            return
        if isinstance(stmt, ast.Try):
            self._scan_body(stmt.body)
            for handler in stmt.handlers:
                self._scan_body(handler.body)
            self._scan_body(stmt.orelse)
            self._scan_body(stmt.finalbody)
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                sites = self._eval(item.context_expr, "top")
                if item.optional_vars is not None and isinstance(
                    item.optional_vars, ast.Name
                ):
                    if sites:
                        self.state[item.optional_vars.id] = _Tracked(sites=sites)
            self._scan_body(stmt.body)
            return
        if isinstance(stmt, ast.Assign):
            self._scan_assign(stmt)
            return
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                target = stmt.target
                if isinstance(target, ast.Name):
                    self._bind(target.id, stmt.value)
                else:
                    self._scan_store_target(target, stmt.value)
            return
        if isinstance(stmt, ast.AugAssign):
            self._eval(stmt.value, "benign")
            return
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                sites = self._eval(stmt.value, "return")
                for site in sites:
                    self.summary.returns_events.update(site.classes)
            return
        if isinstance(stmt, ast.Expr):
            self._eval(stmt.value, "top")
            return
        if isinstance(stmt, (ast.Raise, ast.Assert)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._eval(child, "benign")
            return
        # Anything else: conservative generic walk of its expressions.
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self._eval(child, "benign")

    def _scan_assign(self, stmt: ast.Assign) -> None:
        if len(stmt.targets) == 1 and isinstance(stmt.targets[0], ast.Name):
            self._bind(stmt.targets[0].id, stmt.value)
            return
        for target in stmt.targets:
            self._scan_store_target(target, stmt.value)

    def _bind(self, name: str, value: ast.expr) -> None:
        """Handle ``name = value``: track allocations, propagate types."""
        if isinstance(value, ast.Name) and value.id in self.state:
            tracked = self.state[value.id]
            self._use_check(value)
            self.state[name] = tracked
            if value.id in self.types:
                self.types[name] = self.types[value.id]
            return
        sites = self._eval(value, "top")
        if sites:
            self.state[name] = _Tracked(sites=sites)
        else:
            self.state.pop(name, None)
        hint = self._infer_type(value)
        if hint is not None:
            self.types[name] = hint
        else:
            self.types.pop(name, None)

    def _scan_store_target(self, target: ast.expr, value: ast.expr) -> None:
        """An assignment into an attribute, subscript or tuple target."""
        sites = self._eval(value, "store")
        where = (
            "attribute"
            if isinstance(target, ast.Attribute)
            else "container" if isinstance(target, ast.Subscript) else "structure"
        )
        for site in sites:
            site.escalate("escapes", f"stored in {where} at line {target.lineno}")
        if isinstance(value, ast.Name) and value.id in self.state:
            self._escape_name(value.id, f"stored in {where} at line {target.lineno}")

    # -- expressions -------------------------------------------------------
    def _eval(self, expr: ast.expr, ctx: str) -> List[AllocSite]:
        """Walk one expression; returns the allocation sites it produces.

        ``ctx`` is the consuming context: ``yield`` consumes, ``top`` is a
        bare expression statement (discard), ``return`` hands to the caller,
        ``container``/``store`` retain, ``benign`` merely reads.
        """
        if isinstance(expr, ast.Call):
            return self._eval_call(expr, ctx)
        if isinstance(expr, ast.Name):
            if expr.id in self.state:
                self._apply_name_ctx(expr, ctx)
                tracked = self.state[expr.id]
                return list(tracked.sites)
            return []
        if isinstance(expr, ast.Yield):
            if expr.value is not None:
                self._eval(expr.value, "yield")
            return []
        if isinstance(expr, ast.YieldFrom):
            if isinstance(expr.value, ast.Name) and expr.value.id in self.state:
                self._escape_name(expr.value.id, "delegated via yield from")
            else:
                self._eval(expr.value, "benign")
            return []
        if isinstance(expr, ast.Await):
            self._eval(expr.value, ctx)
            return []
        if isinstance(expr, (ast.List, ast.Tuple, ast.Set)):
            sites: List[AllocSite] = []
            for elt in expr.elts:
                sites.extend(self._eval(elt, "container"))
            return sites
        if isinstance(expr, ast.Dict):
            sites = []
            for key in expr.keys:
                if key is not None:
                    sites.extend(self._eval(key, "container"))
            for val in expr.values:
                sites.extend(self._eval(val, "container"))
            return sites
        if isinstance(expr, ast.Starred):
            return self._eval(expr.value, "container")
        if isinstance(expr, (ast.BoolOp, ast.IfExp)):
            sites = []
            if isinstance(expr, ast.IfExp):
                self._eval(expr.test, "benign")
                sites.extend(self._eval(expr.body, ctx))
                sites.extend(self._eval(expr.orelse, ctx))
            else:
                for val in expr.values:
                    sites.extend(self._eval(val, ctx))
            return sites
        if isinstance(expr, ast.Lambda):
            self._check_closure(expr)
            return []
        if isinstance(expr, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
            for gen in expr.generators:
                self._eval(gen.iter, "benign")
            if isinstance(expr, ast.DictComp):
                self._eval(expr.key, "container")
                self._eval(expr.value, "container")
            else:
                self._eval(expr.elt, "container")
            return []
        # Reads: attribute access, subscription, arithmetic, comparison,
        # f-strings — recurse benignly.
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                self._eval(child, "benign")
        return []

    def _apply_name_ctx(self, expr: ast.Name, ctx: str) -> None:
        tracked = self.state[expr.id]
        self._use_check(expr)
        if ctx == "yield":
            for site in tracked.sites:
                site.escalate("consumed", "consumed by yield")
            tracked.consumed = True
            tracked.consumed_line = expr.lineno
        elif ctx == "return":
            for site in tracked.sites:
                site.escalate("returned", "returned to caller")
            self.summary.returns_events.update(
                cls for site in tracked.sites for cls in site.classes
            )
        elif ctx in ("container", "store"):
            self._escape_name(expr.id, f"stored in container at line {expr.lineno}")

    def _use_check(self, expr: ast.Name) -> None:
        tracked = self.state[expr.id]
        if tracked.consumed:
            self._escape_name(
                expr.id,
                f"used at line {expr.lineno} after its consuming yield at "
                f"line {tracked.consumed_line} (use-after-recycle hazard)",
            )

    def _escape_name(self, name: str, reason: str) -> None:
        tracked = self.state[name]
        for site in tracked.sites:
            site.escalate("escapes", reason)
        if tracked.param is not None:
            current = self.summary.param_verdicts.get(tracked.param)
            if current is None or current[0] == "safe":
                self.summary.param_verdicts[tracked.param] = ("escapes", reason)

    def _safe_hold_name(self, name: str, reason: str) -> None:
        tracked = self.state[name]
        for site in tracked.sites:
            site.escalate("safe-hold", reason)

    # -- calls -------------------------------------------------------------
    def _eval_call(self, call: ast.Call, ctx: str) -> List[AllocSite]:
        tail = _base_tail(call.func)
        classes = self._production_classes(call, tail)
        sites: List[AllocSite] = []
        if classes is not None:
            site = self._site_for(call, classes)
            self._apply_site_ctx(site, call, ctx)
            sites.append(site)
        # Receiver and arguments are walked regardless: a production's
        # arguments can themselves carry tracked events.
        if isinstance(call.func, ast.Attribute):
            self._eval(call.func.value, "benign")
        self._dispose_args(call, tail)
        return sites

    def _apply_disposal(
        self, sites: List[AllocSite], verdict: str, reason: str
    ) -> None:
        for site in sites:
            if verdict == "escapes":
                site.escalate("escapes", reason)
            elif verdict == "safe-hold":
                site.escalate("safe-hold", reason)
            else:
                site.escalate("consumed", reason)

    def _site_for(self, call: ast.Call, classes: Tuple[Tuple[str, ...], bool]) -> AllocSite:
        names, derived = classes
        key = (call.lineno, call.col_offset)
        site = self.sites_by_pos.get(key)
        if site is None:
            site = AllocSite(
                classes=names,
                function=self.func.qualname,
                module=self.func.module,
                path=self.func.path,
                line=call.lineno,
                col=call.col_offset,
                derived=derived,
            )
            self.sites_by_pos[key] = site
            self.summary.sites.append(site)
        return site

    def _apply_site_ctx(self, site: AllocSite, call: ast.Call, ctx: str) -> None:
        if ctx == "yield":
            site.escalate("consumed", "consumed by yield")
        elif ctx == "top":
            pass  # discarded: the default verdict
        elif ctx == "return":
            site.escalate("returned", "returned to caller")
        elif ctx in ("container", "store"):
            site.escalate("escapes", f"stored in container at line {call.lineno}")
        elif ctx == "as-arg":
            pass  # the enclosing call applies the disposal verdict
        else:
            site.escalate(
                "escapes", f"used in unsupported expression context at line {call.lineno}"
            )
        # A spelled-out constructor also inherits how __init__ holds `self`.
        if not site.derived and len(site.classes) == 1:
            init = self.project.method(site.classes[0], "__init__")
            if init is not None and init.summary is not None:
                verdict = init.summary.param_verdicts.get("self")
                if verdict is not None and verdict[0] == "escapes":
                    site.escalate(
                        "escapes", f"constructor stores self: {verdict[1]}"
                    )

    def _production_classes(
        self, call: ast.Call, tail: Optional[str]
    ) -> Optional[Tuple[Tuple[str, ...], bool]]:
        """Classify a call as an event allocation, if it is one."""
        if tail is None:
            return None
        # Spelled-out constructor of an Event subclass.
        if tail in self.project.event_classes and tail[:1].isupper():
            return ((tail,), False)
        if isinstance(call.func, ast.Attribute):
            hint = self._infer_receiver(call.func.value)
            if hint is not None and not hint.container:
                kind = (
                    hint.name
                    if hint.name in FACTORY_EVENTS
                    else self.project.kind_of(hint.name)
                )
                if kind is not None and tail in FACTORY_EVENTS[kind]:
                    return (FACTORY_EVENTS[kind][tail], False)
                # Resolved receiver: a method returning events is a derived
                # allocation at this call site.
                method = self.project.method(hint.name, tail)
                if method is not None and method.summary is not None:
                    returned = method.summary.returns_events
                    if returned:
                        return (tuple(sorted(returned)), True)
                return None
            if hint is None:
                self._note_unresolved(call, tail)
            return None
        # Bare-name call: resolve to a unique project function, preferring
        # the caller's own module.
        candidates = [
            f
            for f in self.project.candidates(tail)
            if f.class_name is None
        ]
        local = [f for f in candidates if f.module == self.func.module]
        chosen = local if local else candidates
        if len(chosen) == 1 and chosen[0].summary is not None:
            returned = chosen[0].summary.returns_events
            if returned:
                return (tuple(sorted(returned)), True)
        return None

    def _note_unresolved(self, call: ast.Call, tail: str) -> None:
        """Record event-looking calls on unresolved receivers for the audit."""
        if tail not in EVENT_LIKE_METHODS:
            return
        if self.func.module in EXCLUDED_MODULES:
            return
        npos = len(call.args)
        looks_like = (
            (tail == "get" and (npos == 0 or (npos == 1 and isinstance(call.args[0], ast.Lambda))))
            or (tail == "put" and npos == 1)
            or (tail == "request" and npos <= 1)
            or (tail == "release" and npos == 1)
        )
        if not looks_like:
            return
        entry = (self.func.path, call.lineno, call.col_offset, tail)
        if entry not in self.project.unresolved_event_like:
            self.project.unresolved_event_like.append(entry)

    def _dispose_args(self, call: ast.Call, tail: Optional[str]) -> None:
        """Classify how each argument is held by the callee."""
        receiver_hint: Optional[TypeHint] = None
        if isinstance(call.func, ast.Attribute):
            receiver_hint = self._infer_receiver(call.func.value)
        for index, arg in enumerate(call.args):
            self._dispose_one(call, tail, receiver_hint, arg, index, None)
        for kw in call.keywords:
            if kw.arg is None:
                self._eval(kw.value, "benign")
                continue
            self._dispose_one(call, tail, receiver_hint, kw.value, -1, kw.arg)

    def _dispose_one(
        self,
        call: ast.Call,
        tail: Optional[str],
        receiver_hint: Optional[TypeHint],
        arg: ast.expr,
        index: int,
        kw: Optional[str],
    ) -> None:
        tracked_name = (
            arg.id if isinstance(arg, ast.Name) and arg.id in self.state else None
        )
        if isinstance(arg, ast.Call):
            # A production passed straight as an argument: "as-arg" leaves
            # the site at its default verdict; the outer call decides.
            produced = self._eval_call(arg, "as-arg")
        elif tracked_name is None:
            produced = self._eval(arg, "benign")
        else:
            produced = []
        # Propagate argument types to the callee for the next round.
        self._propagate_param_type(call, tail, receiver_hint, arg, index, kw)
        if tracked_name is None and not produced:
            return
        verdict, reason = self._arg_disposal(call, tail, receiver_hint, index, kw)
        if tracked_name is not None:
            self._use_check_name(arg)
            if verdict == "escapes":
                self._escape_name(tracked_name, reason)
            elif verdict == "safe-hold":
                self._safe_hold_name(tracked_name, reason)
        self._apply_disposal(produced, verdict, reason)

    def _use_check_name(self, arg: ast.expr) -> None:
        if isinstance(arg, ast.Name) and arg.id in self.state:
            self._use_check(arg)

    def _arg_disposal(
        self,
        call: ast.Call,
        tail: Optional[str],
        receiver_hint: Optional[TypeHint],
        index: int,
        kw: Optional[str],
    ) -> Tuple[str, str]:
        """How does the callee hold an event passed at this position?"""
        line = call.lineno
        if tail is None:
            return ("escapes", f"passed to unresolved call at line {line}")
        if tail in _ENGINE_CONSUMERS:
            return ("safe", f"consumed by engine {tail}() at line {line}")
        if tail in ("succeed", "fail", "defuse"):
            return ("safe", f"event method {tail}() at line {line}")
        if tail in _BENIGN_CALLS:
            return ("safe", f"read-only {tail}() at line {line}")
        if tail in _CONDITION_CALLS:
            return ("escapes", f"captured by condition event at line {line}")
        if tail.startswith("record") or tail == "observe":
            return ("escapes", f"captured by trace recorder at line {line}")
        if tail in _APPEND_METHODS and isinstance(call.func, ast.Attribute):
            recv = call.func.value
            recv_tail = (
                recv.attr
                if isinstance(recv, ast.Attribute)
                else recv.id if isinstance(recv, ast.Name) else None
            )
            if recv_tail in _PROTOCOL_CONTAINERS and self.in_simcore:
                return (
                    "safe-hold",
                    f"held in protocol waiter list {recv_tail!r} at line {line}",
                )
            return ("escapes", f"stored in container {recv_tail!r} at line {line}")
        if tail in self.project.event_classes:
            return ("escapes", f"captured by event constructor at line {line}")
        target = self._resolve_callee(call, tail, receiver_hint)
        if target is None:
            return ("escapes", f"passed to unresolved callee {tail!r} at line {line}")
        param = self._param_at(target, index, kw)
        if param is None:
            return (
                "escapes",
                f"passed beyond known parameters of {tail!r} at line {line}",
            )
        if target.summary is None:
            return ("safe", f"callee {tail!r} not yet summarized")
        verdict = target.summary.param_verdicts.get(param)
        if verdict is not None and verdict[0] == "escapes":
            return (
                "escapes",
                f"escapes in callee {tail!r} ({verdict[1]}) at line {line}",
            )
        return ("safe", f"held safely by callee {tail!r}")

    def _resolve_callee(
        self,
        call: ast.Call,
        tail: str,
        receiver_hint: Optional[TypeHint],
    ) -> Optional[FunctionInfo]:
        # Constructing a (non-event) project class hands the argument to
        # its __init__.
        if tail in self.project.classes:
            return self.project.method(tail, "__init__")
        if isinstance(call.func, ast.Attribute):
            if receiver_hint is None or receiver_hint.container:
                return None
            return self.project.method(receiver_hint.name, tail)
        candidates = [f for f in self.project.candidates(tail) if f.class_name is None]
        local = [f for f in candidates if f.module == self.func.module]
        chosen = local if local else candidates
        return chosen[0] if len(chosen) == 1 else None

    def _param_at(
        self, target: FunctionInfo, index: int, kw: Optional[str]
    ) -> Optional[str]:
        if kw is not None:
            return kw if kw in target.param_names else None
        params = list(target.param_names)
        if params and params[0] == "self" and target.class_name is not None:
            params = params[1:]
        return params[index] if 0 <= index < len(params) else None

    def _propagate_param_type(
        self,
        call: ast.Call,
        tail: Optional[str],
        receiver_hint: Optional[TypeHint],
        arg: ast.expr,
        index: int,
        kw: Optional[str],
    ) -> None:
        if tail is None:
            return
        hint = self._infer_receiver(arg)
        if hint is None:
            return
        target = self._resolve_callee(call, tail, receiver_hint)
        if target is None:
            return
        param = self._param_at(target, index, kw)
        if param is None:
            return
        existing = target.param_types.get(param, "unset")
        if existing == "unset":
            target.param_types[param] = hint
        elif existing is not None and existing != hint:
            target.param_types[param] = None

    # -- type inference ----------------------------------------------------
    def _infer_receiver(self, expr: ast.expr) -> Optional[TypeHint]:
        if isinstance(expr, ast.Name):
            if expr.id in self.types:
                return self.types[expr.id]
            if expr.id == "env":
                return TypeHint("Environment")
            return None
        if isinstance(expr, ast.Attribute):
            if expr.attr == "env":
                return TypeHint("Environment")
            base = self._infer_receiver(expr.value)
            if base is not None and not base.container:
                return self.project.attr_type(base.name, expr.attr)
            return None
        if isinstance(expr, ast.Subscript):
            base = self._infer_receiver(expr.value)
            if base is not None and base.container:
                return TypeHint(base.name)
            return None
        if isinstance(expr, ast.Call):
            tail = _base_tail(expr.func)
            if tail is not None and (
                tail in self.project.classes or tail in FACTORY_EVENTS
            ):
                return TypeHint(tail)
            # dict-like ``.get(key)`` on a typed container yields an element.
            if (
                tail == "get"
                and isinstance(expr.func, ast.Attribute)
                and len(expr.args) >= 1
            ):
                base = self._infer_receiver(expr.func.value)
                if base is not None and base.container:
                    return TypeHint(base.name)
            return None
        return None

    def _infer_type(self, value: ast.expr) -> Optional[TypeHint]:
        if isinstance(value, ast.IfExp):
            # ``Container(...) if cond else None`` — the None arm does not
            # veto the hint (uses are guarded by the same condition).
            body = self._infer_type(value.body)
            orelse = self._infer_type(value.orelse)
            if body is not None and orelse is None:
                return body
            if orelse is not None and body is None:
                return orelse
            return body if body == orelse else None
        hint = self._infer_receiver(value)
        if hint is not None:
            return hint
        return self.project._value_hint(value)

    # -- closures ----------------------------------------------------------
    def _check_closure(self, node: ast.AST) -> None:
        body = node.body if isinstance(node.body, list) else [node.body]  # type: ignore[attr-defined]
        for inner in body:
            for leaf in ast.walk(inner):
                if (
                    isinstance(leaf, ast.Name)
                    and isinstance(leaf.ctx, ast.Load)
                    and leaf.id in self.state
                ):
                    self._escape_name(
                        leaf.id, f"captured by closure at line {leaf.lineno}"
                    )

    # -- crediting (E301 mirror, recorded for F502) ------------------------
    def _collect_crediting(self, node: ast.AST) -> None:
        for leaf in walk_shallow(node):
            if isinstance(leaf, ast.Attribute):
                if leaf.attr in _FASTPATH_INTERNALS and not (
                    isinstance(leaf.value, ast.Name) and leaf.value.id == "self"
                ):
                    self.summary.foreign_touch_lines.append(leaf.lineno)
            if isinstance(leaf, ast.Call):
                tail = _base_tail(leaf.func)
                if tail == "credit_events":
                    if (
                        len(leaf.args) == 1
                        and isinstance(leaf.args[0], ast.Constant)
                        and isinstance(leaf.args[0].value, int)
                    ):
                        self.summary.credit_literals.append(leaf.args[0].value)
                    else:
                        self.summary.dynamic_credit = True
                elif tail in _CREDITING_CALLS:
                    self.summary.credits_inplace = True
                if (
                    isinstance(leaf.func, ast.Attribute)
                    and leaf.func.attr in ("append", "remove")
                    and isinstance(leaf.func.value, ast.Attribute)
                    and leaf.func.value.attr == "users"
                    and not (
                        isinstance(leaf.func.value.value, ast.Name)
                        and leaf.func.value.value.id == "self"
                    )
                ):
                    self.summary.elide_count += 1


def _iter_summaries(project: Project) -> Iterator[Tuple[str, FunctionInfo]]:
    for qualname in sorted(project.functions):
        yield qualname, project.functions[qualname]


def compute_summaries(project: Project) -> None:
    """Run the monotone summary fixed point over the whole project."""
    previous: Optional[List[Tuple[object, ...]]] = None
    for _ in range(_MAX_ROUNDS):
        signature: List[Tuple[object, ...]] = []
        for _qualname, func in _iter_summaries(project):
            func.summary = _Scanner(project, func).run()
            signature.append(func.summary.signature())
        if signature == previous:
            break
        previous = signature
