"""Interprocedural flow analyses over the whole ``repro`` model tree.

The PR 6 rules are *intra*procedural: each looks at one function of one
module.  The two invariants the engine's fast paths rest on are whole-program
properties, so this subpackage adds the missing layer:

* :mod:`repro.lint.flow.project` — a project-wide symbol table (classes,
  attribute types, functions, a name-based call graph) built from the same
  :class:`~repro.lint.framework.Module` objects the per-module rules see;
* :mod:`repro.lint.flow.summaries` — per-function summaries: every
  Event-subclass allocation site with an escape verdict, what event classes a
  function returns, how it holds its parameters, and its fast-path crediting
  shape;
* :mod:`repro.lint.flow.escape` — rule **F501**: an allocation site of a
  *pooled* event class must not escape its ``step()`` dispatch;
* :mod:`repro.lint.flow.crediting` — rule **F502**: the interprocedural
  upgrade of E301 — every fast path must credit, on some call path, exactly
  the events it elides;
* :mod:`repro.lint.flow.report` — the machine-readable escape/crediting
  certificate behind ``python -m repro.lint --flow-report``.

The analysis is deliberately honest about its precision: call resolution is
name-based with lightweight receiver typing, unresolvable event-looking
sites are surfaced in the report (and pinned empty for the shipped tree by
the meta-tests) rather than silently classified, and the runtime sanitizer
(:mod:`repro.sanitize`) is the dynamic backstop for whatever the lattice
cannot see.
"""

from repro.lint.flow.project import Project
from repro.lint.flow.report import flow_report

__all__ = ["Project", "flow_report"]
