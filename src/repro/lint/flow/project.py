"""Project-wide symbol table and call graph for the flow analyses.

A :class:`Project` is built from the same parsed :class:`Module` objects the
per-module rules consume.  It records, for the whole analyzed tree at once:

* every class definition, its base-class names and a per-attribute type map
  inferred from ``self.x = ClassName(...)`` assignments and annotated class
  fields (container shapes — ``self.x = {k: Store(...)}`` — are kept as
  *container-of* hints so subscripts resolve element types);
* every function and method, keyed by a stable qualified name, with the set
  of simple callee names for the name-based call graph;
* the transitive set of Event subclasses visible in the tree, seeded with the
  engine's own hierarchy so model packages can be analyzed without parsing
  the (already audited) engine sources.

The type lattice is deliberately small: a name either resolves to a single
known class, to a container of one class, or to nothing.  Anything that does
not resolve is *not* guessed at — the summary layer treats unresolved
receivers conservatively and reports event-looking unresolved calls so the
meta-tests can pin them to zero on the shipped tree.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.lint.framework import Module
from repro.lint.rules._helpers import dotted_name

if TYPE_CHECKING:
    from repro.lint.flow.summaries import FunctionSummary

__all__ = [
    "ClassInfo",
    "FunctionInfo",
    "Project",
    "TypeHint",
    "EXCLUDED_MODULES",
    "FACTORY_EVENTS",
    "KNOWN_EVENT_CLASSES",
]

#: Event classes defined by the engine itself.  The engine and event modules
#: are the audited mechanism layer — their allocation sites implement pooling
#: rather than use it — so the flow analyses know the hierarchy by name
#: instead of re-deriving it from sources they deliberately skip.
KNOWN_EVENT_CLASSES: Tuple[str, ...] = (
    "Event",
    "Timeout",
    "PooledTimeout",
    "Process",
    "Initialize",
    "ConditionEvent",
    "AllOf",
    "AnyOf",
    "Request",
    "Release",
    "StorePut",
    "StoreGet",
    "ContainerPut",
    "ContainerGet",
)

#: Modules whose allocation sites are *not* classified: the engine mechanism
#: layer that the escape certificate is about, audited by hand and guarded at
#: runtime by :mod:`repro.sanitize`.
EXCLUDED_MODULES: Tuple[str, ...] = (
    "repro.simcore.engine",
    "repro.simcore.events",
)

#: Factory methods: receiver type -> method name -> event classes produced.
#: This is how ``yield store.get()`` becomes a StoreGet allocation site even
#: though no constructor is spelled at the call.
FACTORY_EVENTS: Dict[str, Dict[str, Tuple[str, ...]]] = {
    "Environment": {
        "sleep": ("PooledTimeout",),
        "sleep_until": ("PooledTimeout",),
        "timeout": ("Timeout",),
        "event": ("Event",),
        "process": ("Process",),
    },
    "Store": {"put": ("StorePut",), "get": ("StoreGet",)},
    "FilterStore": {"put": ("StorePut",), "get": ("StoreGet",)},
    "Container": {"put": ("ContainerPut",), "get": ("ContainerGet",)},
    "Resource": {"request": ("Request",), "release": ("Release",)},
    "PriorityResource": {"request": ("Request",), "release": ("Release",)},
}

#: Method names that, called on an *unresolved* receiver, look like they may
#: produce an event.  Sites like these are recorded in the project's
#: ``unresolved_event_like`` audit list instead of being classified.
EVENT_LIKE_METHODS: Tuple[str, ...] = ("put", "get", "request", "release")


@dataclass(frozen=True)
class TypeHint:
    """A resolved type: a class name, optionally a container of that class."""

    name: str
    container: bool = False


@dataclass
class ClassInfo:
    """One class definition in the analyzed tree."""

    name: str
    module: str
    node: ast.ClassDef
    bases: Tuple[str, ...]
    #: attribute name -> inferred type, from ``self.x = Cls(...)`` and
    #: annotated class fields.  Conflicting inferences delete the entry.
    attr_types: Dict[str, TypeHint] = field(default_factory=dict)


@dataclass
class FunctionInfo:
    """One function or method, with call-graph edges and analysis state."""

    qualname: str
    name: str
    module: str
    path: str
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    class_name: Optional[str]
    param_names: Tuple[str, ...]
    #: Simple names of everything this function calls (attribute tails and
    #: bare names) — the edges of the name-based call graph.
    callees: Set[str] = field(default_factory=set)
    #: Parameter types propagated from typed call sites; ``None`` marks a
    #: conflict (two call sites passed different types).
    param_types: Dict[str, Optional[TypeHint]] = field(default_factory=dict)
    #: Qualname of the enclosing function for nested defs (closures inherit
    #: the parent's inferred local types).
    parent: Optional[str] = None
    #: Filled by the summary layer's fixed point.
    summary: Optional["FunctionSummary"] = None

    @property
    def excluded(self) -> bool:
        """Whether this function lives in the unclassified engine layer."""
        return self.module in EXCLUDED_MODULES


def _base_tail(node: ast.expr) -> Optional[str]:
    name = dotted_name(node)
    if name is None:
        return None
    return name.rsplit(".", 1)[-1]


def _annotation_hint(node: ast.expr) -> Optional[TypeHint]:
    """Resolve a class-field annotation to a type hint, if it names a class."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        # String annotation: take the last dotted component.
        return TypeHint(node.value.rsplit(".", 1)[-1].strip("'\" "))
    if isinstance(node, ast.Subscript):
        # List[Store] / Dict[str, Store] / Optional[Store] and friends.
        outer = _base_tail(node.value)
        inner = node.slice
        if isinstance(inner, ast.Tuple) and inner.elts:
            inner = inner.elts[-1]
        hint = _annotation_hint(inner) if isinstance(inner, ast.expr) else None
        if hint is None or hint.container:
            return None
        if outer in ("List", "Dict", "Sequence", "Tuple", "Deque", "Set", "FrozenSet"):
            return TypeHint(hint.name, container=True)
        if outer in ("Optional",):
            return hint
        return None
    tail = _base_tail(node)
    return TypeHint(tail) if tail else None


class Project:
    """Symbol table + call graph over a set of parsed modules."""

    def __init__(self, modules: Iterable[Module]) -> None:
        self.modules: List[Module] = sorted(
            (m for m in modules if not m.skip_file), key=lambda m: m.module_name
        )
        self.module_by_name: Dict[str, Module] = {
            m.module_name: m for m in self.modules
        }
        self.classes: Dict[str, ClassInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        #: function name -> qualnames sharing it (call-graph candidate sets).
        self.functions_by_name: Dict[str, List[str]] = {}
        #: (path, line, col, receiver_method) of event-looking calls whose
        #: receiver the type lattice could not resolve.
        self.unresolved_event_like: List[Tuple[str, int, int, str]] = []
        self.event_classes: Set[str] = set(KNOWN_EVENT_CLASSES)
        for module in self.modules:
            self._index_module(module)
        self._close_event_classes()
        self._infer_attr_types()
        self._analyzed = False

    # -- construction ------------------------------------------------------
    def _index_module(self, module: Module) -> None:
        self._index_body(module, module.tree.body, class_name=None, parent=None)

    def _index_body(
        self,
        module: Module,
        body: Sequence[ast.stmt],
        class_name: Optional[str],
        parent: Optional[str],
    ) -> None:
        for node in body:
            if isinstance(node, ast.ClassDef):
                bases = tuple(
                    tail for tail in (_base_tail(b) for b in node.bases) if tail
                )
                info = ClassInfo(node.name, module.module_name, node, bases)
                # Last definition wins on name collisions across modules;
                # the shipped tree has none that matter (pinned by tests).
                self.classes[node.name] = info
                self._index_body(module, node.body, node.name, parent=None)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = self._index_function(module, node, class_name, parent)
                self._index_body(module, node.body, None, parent=qualname)
            elif isinstance(node, (ast.If, ast.Try, ast.With, ast.For, ast.While)):
                # Conditionally defined helpers still get indexed.
                for child in ast.iter_child_nodes(node):
                    if isinstance(child, ast.stmt):
                        self._index_body(module, [child], class_name, parent)

    def _index_function(
        self,
        module: Module,
        node: ast.AST,
        class_name: Optional[str],
        parent: Optional[str],
    ) -> str:
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        if class_name:
            qualname = f"{module.module_name}:{class_name}.{node.name}"
        elif parent:
            qualname = f"{parent}.<locals>.{node.name}"
        else:
            qualname = f"{module.module_name}:{node.name}"
        params = tuple(a.arg for a in node.args.args)
        info = FunctionInfo(
            qualname=qualname,
            name=node.name,
            module=module.module_name,
            path=module.path,
            node=node,
            class_name=class_name,
            param_names=params,
            parent=parent,
        )
        for call in ast.walk(node):
            if isinstance(call, ast.Call):
                tail = _base_tail(call.func)
                if tail:
                    info.callees.add(tail)
        self.functions[qualname] = info
        self.functions_by_name.setdefault(node.name, []).append(qualname)
        return qualname

    def _close_event_classes(self) -> None:
        # Transitive closure: a project class is an event class when any of
        # its base names already is one.
        changed = True
        while changed:
            changed = False
            for info in self.classes.values():
                if info.name in self.event_classes:
                    continue
                if any(base in self.event_classes for base in info.bases):
                    self.event_classes.add(info.name)
                    changed = True

    def _infer_attr_types(self) -> None:
        for info in self.classes.values():
            conflicted: Set[str] = set()
            for stmt in info.node.body:
                if isinstance(stmt, ast.AnnAssign) and isinstance(
                    stmt.target, ast.Name
                ):
                    hint = _annotation_hint(stmt.annotation)
                    if hint and self._known_class(hint.name):
                        self._record_attr(info, stmt.target.id, hint, conflicted)
            for method in info.node.body:
                if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                param_hints: Dict[str, TypeHint] = {}
                for arg in method.args.args:
                    if arg.annotation is not None:
                        cand = _annotation_hint(arg.annotation)
                        if cand is not None and self._known_class(cand.name):
                            param_hints[arg.arg] = cand
                for node in ast.walk(method):
                    target: Optional[ast.expr] = None
                    hint: Optional[TypeHint] = None
                    if isinstance(node, ast.Assign) and len(node.targets) == 1:
                        target = node.targets[0]
                        hint = self._value_hint(node.value)
                        if (
                            hint is None
                            and isinstance(node.value, ast.Name)
                            and node.value.id in param_hints
                        ):
                            # ``self.resource = resource`` with an annotated
                            # parameter: the annotation types the attribute.
                            hint = param_hints[node.value.id]
                    elif isinstance(node, ast.AnnAssign):
                        # ``self._mailboxes: List[FilterStore] = [...]`` — the
                        # annotation is authoritative, the value a fallback.
                        target = node.target
                        annotated = _annotation_hint(node.annotation)
                        if annotated is not None and self._known_class(annotated.name):
                            hint = annotated
                        elif node.value is not None:
                            hint = self._value_hint(node.value)
                    if not (
                        target is not None
                        and isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        continue
                    if hint is not None:
                        self._record_attr(info, target.attr, hint, conflicted)

    def _record_attr(
        self,
        info: ClassInfo,
        attr: str,
        hint: TypeHint,
        conflicted: Set[str],
    ) -> None:
        if attr in conflicted:
            return
        existing = info.attr_types.get(attr)
        if existing is not None and existing != hint:
            del info.attr_types[attr]
            conflicted.add(attr)
            return
        info.attr_types[attr] = hint

    def _value_hint(self, value: ast.expr) -> Optional[TypeHint]:
        """Infer the type of an attribute-assignment right-hand side."""
        if isinstance(value, ast.Call):
            tail = _base_tail(value.func)
            if tail and self._known_class(tail):
                return TypeHint(tail)
            return None
        if isinstance(value, (ast.List, ast.Tuple, ast.Set)):
            hints = {self._value_hint(e) for e in value.elts}
            if len(hints) == 1:
                (hint,) = hints
                if hint is not None and not hint.container:
                    return TypeHint(hint.name, container=True)
            return None
        if isinstance(value, ast.Dict):
            hints = {self._value_hint(v) for v in value.values if v is not None}
            if len(hints) == 1:
                (hint,) = hints
                if hint is not None and not hint.container:
                    return TypeHint(hint.name, container=True)
            return None
        if isinstance(value, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            hint = self._value_hint(value.elt)
            if hint is not None and not hint.container:
                return TypeHint(hint.name, container=True)
            return None
        if isinstance(value, ast.DictComp):
            hint = self._value_hint(value.value)
            if hint is not None and not hint.container:
                return TypeHint(hint.name, container=True)
            return None
        return None

    def _known_class(self, name: str) -> bool:
        return (
            name in self.classes
            or name in FACTORY_EVENTS
            or name in self.event_classes
        )

    # -- queries -----------------------------------------------------------
    def kind_of(self, class_name: str) -> Optional[str]:
        """Resolve a class to the factory kind it behaves as (e.g. a
        ``FilterStore`` subclass resolves to ``FilterStore``)."""
        seen: Set[str] = set()
        current: Optional[str] = class_name
        while current is not None and current not in seen:
            if current in FACTORY_EVENTS:
                return current
            seen.add(current)
            info = self.classes.get(current)
            if info is None:
                return None
            current = next(
                (b for b in info.bases if b in FACTORY_EVENTS or b in self.classes),
                None,
            )
        return None

    def attr_type(self, class_name: str, attr: str) -> Optional[TypeHint]:
        """Resolve an attribute's type through the class's MRO-by-name."""
        seen: Set[str] = set()
        current: Optional[str] = class_name
        while current is not None and current not in seen:
            seen.add(current)
            info = self.classes.get(current)
            if info is None:
                return None
            hint = info.attr_types.get(attr)
            if hint is not None:
                return hint
            current = next((b for b in info.bases if b in self.classes), None)
        return None

    def method(self, class_name: str, method_name: str) -> Optional[FunctionInfo]:
        """Resolve a method through the class's MRO-by-name."""
        seen: Set[str] = set()
        current: Optional[str] = class_name
        while current is not None and current not in seen:
            seen.add(current)
            info = self.classes.get(current)
            if info is None:
                return None
            func = self.functions.get(f"{info.module}:{current}.{method_name}")
            if func is not None:
                return func
            current = next((b for b in info.bases if b in self.classes), None)
        return None

    def candidates(self, name: str) -> Sequence[FunctionInfo]:
        """All functions sharing a simple name (name-based call resolution)."""
        return [self.functions[q] for q in self.functions_by_name.get(name, ())]

    def analyze(self) -> None:
        """Run the summary fixed point once (idempotent)."""
        if self._analyzed:
            return
        from repro.lint.flow.summaries import compute_summaries

        compute_summaries(self)
        self._analyzed = True
