"""Continuous benchmarking harness: measured suites and the ``BENCH_*.json`` trail.

The figure benches regenerate the paper's tables; *this* module watches the
simulator itself.  A :class:`BenchResult` records how fast the discrete-event
engine chewed through a named scenario suite — wall seconds, events processed,
events per second, scenario count — and is persisted as ``BENCH_<suite>.json``
at the repository root, so every PR that touches a hot path leaves a
comparable data point behind.  Each ``BENCH_<suite>.json`` holds a *history
series* — every recorded measurement in chronological order (capped at
:data:`HISTORY_LIMIT`) — so the whole optimisation trail of a suite stays
on record, not just the last point.  ``python -m repro.bench`` runs the
suites, compares against the latest *and best* recorded entries and (with
``--update``) appends the new measurement; CI runs the ``smoke`` suite with
``--check`` and fails on a >20% events/sec regression against the **best**
entry ever recorded, so a slow baseline refresh cannot mask a real loss.

``events_processed`` counts *modelled* events: the engine's fast paths
(see ``docs/performance.md``) credit the events they elide, so the count is
machine-independent and bit-stable for fixed seeds — a change in the count
means the modelled workload changed, while a change in events/sec alone means
the engine got faster or slower.
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

__all__ = [
    "BenchResult",
    "HISTORY_LIMIT",
    "SUITES",
    "bench_path",
    "best_result",
    "compare",
    "load_history",
    "load_result",
    "run_suite",
    "suite_cases",
    "write_result",
]

#: Most entries a suite's history series keeps; appending beyond it drops the
#: oldest entries.  Generous for one entry per landed optimisation PR.
HISTORY_LIMIT = 100

#: Registry of named suites: suite name -> (case factory, repeats).
SUITES: Dict[str, Tuple[Callable[[], List[Tuple[str, object]]], int]] = {}


def _suite(name: str, repeats: int = 1):
    """Register a case factory as a named bench suite."""

    def register(factory: Callable[[], List[Tuple[str, object]]]):
        SUITES[name] = (factory, repeats)
        return factory

    return register


@_suite("pipeline", repeats=3)
def _pipeline_suite() -> List[Tuple[str, object]]:
    """The headline suite: multi-stage chain and fan-out pipelines.

    Exercises the simulator's hot paths end to end — source compute loops,
    two different transports per graph, consumer/forwarding ranks — at two
    job sizes, which is where the per-event engine cost dominates.
    """
    from repro.bench.experiments import pipeline_chain, pipeline_fanout

    cases: List[Tuple[str, object]] = []
    for cores in (384, 768):
        cases.append((f"chain/{cores}", pipeline_chain(total_cores=cores, steps=24)))
        cases.append((f"fanout/{cores}", pipeline_fanout(total_cores=cores, steps=24)))
    return cases


@_suite("elastic", repeats=1)
def _elastic_suite() -> List[Tuple[str, object]]:
    """Elastic control-loop suite: the bursty grid under both policies."""
    from repro.bench.experiments import model_vs_threshold_configs

    return model_vs_threshold_configs(steps=24)


@_suite("faults", repeats=1)
def _faults_suite() -> List[Tuple[str, object]]:
    """Fault-injection suite: checkpoint intervals × modes under one plan.

    A downsized :func:`~repro.bench.experiments.fault_recovery_spec` grid —
    the injector, crash/respawn and degraded-rerouting paths all fire, so
    the suite's ``events_processed`` pins the modelled fault workload.
    """
    from repro.bench.experiments import fault_recovery_spec

    return fault_recovery_spec(steps=12, checkpoint_intervals=(1, 4)).configs()


@_suite("tenants", repeats=1)
def _tenants_suite() -> List[Tuple[str, object]]:
    """Multi-tenant co-scheduling suite: policy × arrival contention grid.

    A downsized :func:`~repro.bench.experiments.tenant_contention_spec`
    grid — admission, epoch-quantized water-filling and segmented pipeline
    advancement all fire, so the suite's ``events_processed`` pins the
    modelled multi-tenant workload.
    """
    from repro.bench.experiments import tenant_contention_spec

    return tenant_contention_spec(steps=6).configs()


@_suite("smoke", repeats=1)
def _smoke_suite() -> List[Tuple[str, object]]:
    """Small grid for CI: one chain and one fan-out at laptop scale."""
    from repro.bench.experiments import pipeline_chain, pipeline_fanout

    return [
        ("chain/384", pipeline_chain(total_cores=384, steps=6)),
        ("fanout/384", pipeline_fanout(total_cores=384, steps=6)),
    ]


@_suite("sanitize", repeats=1)
def _sanitize_suite() -> List[Tuple[str, object]]:
    """The smoke cases under the runtime sanitizer (overhead tracking).

    Same workload as ``smoke`` with ``repro.sanitize`` armed, so the ratio
    of the two suites' events/sec is the sanitizer's overhead.  Its
    ``events_processed`` must equal the smoke suite's — the sanitizer is a
    pure detector.
    """
    from repro.bench.experiments import pipeline_chain, pipeline_fanout

    return [
        ("chain/384", pipeline_chain(total_cores=384, steps=6).replace(sanitize=True)),
        ("fanout/384", pipeline_fanout(total_cores=384, steps=6).replace(sanitize=True)),
    ]


@_suite("campaign", repeats=1)
def _campaign_suite() -> List[Tuple[str, object]]:
    """Distributed-campaign overhead suite (see :mod:`repro.campaign.bench`).

    Measured through a real coordinator/worker campaign over localhost HTTP
    rather than the plain sweep engine — :func:`run_suite` dispatches it to
    :func:`repro.campaign.bench.run_campaign_suite`, which also asserts the
    canonical byte-identity of the campaign store against a serial baseline.
    """
    from repro.campaign.bench import campaign_suite_cases

    return campaign_suite_cases()


@dataclass
class BenchResult:
    """One measured run of a bench suite (the ``BENCH_<suite>.json`` schema)."""

    suite: str
    wall_seconds: float
    events_processed: int
    events_per_sec: float
    scenarios: int
    failed_scenarios: int
    #: Total *simulated* seconds across the suite's scenarios (a cheap
    #: model-fidelity check: engine work should change it by exactly 0).
    sim_seconds: float
    #: Wall-clock timestamp of the measurement (ISO 8601, local time).
    timestamp: str
    #: Interpreter/platform the measurement was taken on (events/sec is
    #: machine-dependent; events_processed is not).
    environment: Dict[str, str] = field(default_factory=dict)
    #: events/sec of the measurement this one replaced (0.0 for the first).
    previous_events_per_sec: float = 0.0
    #: ``events_per_sec / previous_events_per_sec`` (0.0 for the first).
    speedup_vs_previous: float = 0.0

    def as_dict(self) -> Dict[str, object]:
        """JSON-safe dictionary form."""
        return asdict(self)


def suite_cases(suite: str) -> List[Tuple[str, object]]:
    """The ``(label, config)`` list a suite runs (repeats not applied)."""
    try:
        factory, _repeats = SUITES[suite]
    except KeyError:
        raise ValueError(f"unknown bench suite {suite!r}; known: {sorted(SUITES)}") from None
    return factory()


def run_suite(suite: str, workers: int = 0, repeats: Optional[int] = None) -> BenchResult:
    """Run a named suite and measure engine throughput.

    Scenarios run through the sweep engine — serially in-process by default,
    so events/sec measures the simulator rather than multiprocessing fan-out;
    pass ``workers`` > 1 to measure the pooled path instead.  ``repeats``
    overrides the suite's registered repeat count (the case list is run that
    many times back to back to stabilise short measurements).
    """
    from repro.sweep.runner import SweepRunner

    if suite == "campaign":
        from repro.campaign.bench import run_campaign_suite

        return run_campaign_suite(workers=workers, repeats=repeats)
    cases = suite_cases(suite)  # raises for unknown suites
    _factory, default_repeats = SUITES[suite]
    n = default_repeats if repeats is None else max(1, int(repeats))
    work = [
        (f"{label}#r{rep}" if n > 1 else label, config)
        for rep in range(n)
        for label, config in cases
    ]

    runner = SweepRunner(workers=workers)
    start = time.perf_counter()
    try:
        records = runner.run(work)
    finally:
        runner.close()
    wall = time.perf_counter() - start

    events = 0
    sim_seconds = 0.0
    failed = 0
    for record in records:
        if not record.ok or record.result is None:
            failed += 1
            continue
        result = record.result
        events += int(result.stats.get("events_processed", 0.0))
        if result.failed:
            failed += 1
        elif result.end_to_end_time == result.end_to_end_time:  # not NaN
            sim_seconds += result.end_to_end_time

    return BenchResult(
        suite=suite,
        wall_seconds=wall,
        events_processed=events,
        events_per_sec=events / wall if wall > 0 else 0.0,
        scenarios=len(records),
        failed_scenarios=failed,
        sim_seconds=sim_seconds,
        timestamp=time.strftime("%Y-%m-%dT%H:%M:%S"),
        environment={
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "machine": platform.machine(),
            "system": platform.system(),
            "workers": str(workers),
        },
    )


def bench_path(suite: str, directory: Union[str, Path, None] = None) -> Path:
    """Where a suite's committed baseline lives (``BENCH_<suite>.json``)."""
    base = Path(directory) if directory is not None else _repo_root()
    return base / f"BENCH_{suite}.json"


def _repo_root() -> Path:
    """The repository root (three levels above this file's package)."""
    return Path(__file__).resolve().parents[3]


def _entry_from_dict(raw: object) -> Optional[BenchResult]:
    """A :class:`BenchResult` from one JSON entry (``None`` if malformed)."""
    if not isinstance(raw, dict):
        return None
    known = {f for f in BenchResult.__dataclass_fields__}
    kwargs = {k: v for k, v in raw.items() if k in known}
    try:
        return BenchResult(**kwargs)
    except TypeError:
        return None


def load_history(path: Union[str, Path]) -> List[BenchResult]:
    """Load a suite's recorded history series, oldest first.

    Reads the ``{"suite": ..., "history": [...]}`` schema; a legacy one-slot
    file (a single result object at the top level, the pre-history format)
    loads as a single-entry series.  Absent or corrupt files load as empty.
    """
    path = Path(path)
    if not path.exists():
        return []
    try:
        raw = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return []
    if not isinstance(raw, dict):
        return []
    if isinstance(raw.get("history"), list):
        entries = [_entry_from_dict(item) for item in raw["history"]]
        return [e for e in entries if e is not None]
    single = _entry_from_dict(raw)
    return [single] if single is not None else []


def load_result(path: Union[str, Path]) -> Optional[BenchResult]:
    """The *latest* recorded result, or ``None`` if the file is absent/corrupt."""
    history = load_history(path)
    return history[-1] if history else None


def best_result(history: Sequence[BenchResult]) -> Optional[BenchResult]:
    """The highest-throughput entry of a history series (``None`` if empty).

    Ties keep the earliest entry, so the reference point is stable when a
    re-measurement lands on exactly the baseline throughput.
    """
    best: Optional[BenchResult] = None
    for entry in history:
        if best is None or entry.events_per_sec > best.events_per_sec:
            best = entry
    return best


def write_result(
    result: BenchResult,
    path: Union[str, Path],
    previous: Optional[BenchResult] = None,
    limit: int = HISTORY_LIMIT,
) -> Path:
    """Append ``result`` to the suite's ``BENCH_<suite>.json`` history series.

    The existing series (legacy one-slot files included) is preserved, the
    new measurement is stamped with its speedup vs ``previous`` (defaulting
    to the latest recorded entry) and appended, and the series is trimmed to
    the newest ``limit`` entries.
    """
    path = Path(path)
    history = load_history(path)
    if previous is None and history:
        previous = history[-1]
    if previous is not None and previous.events_per_sec > 0:
        result.previous_events_per_sec = previous.events_per_sec
        result.speedup_vs_previous = result.events_per_sec / previous.events_per_sec
    history.append(result)
    if limit > 0:
        history = history[-limit:]
    payload = {
        "suite": result.suite,
        "history": [entry.as_dict() for entry in history],
    }
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return path


def compare(current: BenchResult, previous: Optional[BenchResult]) -> Dict[str, float]:
    """Throughput delta of ``current`` vs ``previous``.

    Returns ``{"speedup": current/previous, "regression_pct": ...}`` where a
    positive ``regression_pct`` means *slower* than the baseline; both are
    0.0 when there is no usable baseline.
    """
    if previous is None or previous.events_per_sec <= 0:
        return {"speedup": 0.0, "regression_pct": 0.0}
    speedup = current.events_per_sec / previous.events_per_sec
    return {"speedup": speedup, "regression_pct": max(0.0, (1.0 - speedup) * 100.0)}
