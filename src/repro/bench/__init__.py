"""Experiment descriptors and report formatting shared by the benchmark harness.

The modules here define, for every table and figure of the paper, the exact
workflow configurations to run and the rows/series to print, so the scripts in
``benchmarks/`` stay thin.  All experiments run on the representative-rank
simulator; the scale knobs (``steps``, ``representative_sim_ranks``,
``data_per_rank``) default to values small enough for a laptop while keeping
the per-rank workload and the full-job parameters faithful to the paper.
"""

from repro.bench.report import format_table, format_series, breakdown_row
from repro.bench.experiments import (
    FIGURE2_TRANSPORTS,
    figure2_configs,
    figure12_configs,
    figure13_configs,
    figure14_configs,
    figure16_configs,
    figure18_configs,
    trace_config,
    SCALABILITY_CORE_COUNTS,
    SYNTHETIC_SCALING_CORES,
)

__all__ = [
    "format_table",
    "format_series",
    "breakdown_row",
    "FIGURE2_TRANSPORTS",
    "figure2_configs",
    "figure12_configs",
    "figure13_configs",
    "figure14_configs",
    "figure16_configs",
    "figure18_configs",
    "trace_config",
    "SCALABILITY_CORE_COUNTS",
    "SYNTHETIC_SCALING_CORES",
]
