"""Experiment descriptors and report formatting shared by the benchmark harness.

The modules here define, for every table and figure of the paper, the exact
workflow configurations to run and the rows/series to print, so the scripts in
``benchmarks/`` stay thin.  The scenario grids are declared as
:class:`~repro.sweep.spec.SweepSpec` objects (``figureN_spec``) and executed
through :mod:`repro.sweep`; the ``figureN_configs`` functions expand them into
flat ``(label, config)`` lists.  All experiments run on the
representative-rank simulator; the scale knobs (``steps``,
``representative_sim_ranks``, ``data_per_rank``) default to values small
enough for a laptop while keeping the per-rank workload and the full-job
parameters faithful to the paper.
"""

from repro.bench.report import format_table, format_series, breakdown_row
from repro.bench.harness import BenchResult, run_suite, suite_cases
from repro.bench.experiments import (
    FIGURE2_TRANSPORTS,
    figure2_spec,
    figure12_spec,
    figure13_spec,
    figure14_spec,
    figure16_spec,
    figure18_spec,
    figure2_configs,
    figure12_configs,
    figure13_configs,
    figure14_configs,
    figure16_configs,
    figure18_configs,
    trace_config,
    run_all,
    SCALABILITY_CORE_COUNTS,
    SCALABILITY_TRANSPORTS,
    SYNTHETIC_SCALING_CORES,
)

__all__ = [
    "format_table",
    "format_series",
    "breakdown_row",
    "BenchResult",
    "run_suite",
    "suite_cases",
    "FIGURE2_TRANSPORTS",
    "figure2_spec",
    "figure12_spec",
    "figure13_spec",
    "figure14_spec",
    "figure16_spec",
    "figure18_spec",
    "figure2_configs",
    "figure12_configs",
    "figure13_configs",
    "figure14_configs",
    "figure16_configs",
    "figure18_configs",
    "trace_config",
    "run_all",
    "SCALABILITY_CORE_COUNTS",
    "SCALABILITY_TRANSPORTS",
    "SYNTHETIC_SCALING_CORES",
]
