"""Plain-text table/series formatting for the benchmark harness."""

from __future__ import annotations

from typing import Dict, List, Sequence

__all__ = ["format_table", "format_series", "breakdown_row"]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = "") -> str:
    """Render a fixed-width text table (the benches print these to stdout)."""
    cols = len(headers)
    for row in rows:
        if len(row) != cols:
            raise ValueError("every row must have as many cells as the header")
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [
        max(len(str(headers[c])), *(len(r[c]) for r in str_rows)) if str_rows else len(str(headers[c]))
        for c in range(cols)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(name: str, points: Dict[object, float], unit: str = "s") -> str:
    """Render one named series (e.g. end-to-end time vs core count)."""
    cells = ", ".join(f"{k}: {v:.2f}{unit}" for k, v in points.items())
    return f"{name}: {cells}"


def breakdown_row(label: str, breakdown) -> List[object]:
    """One Figure-12/13 style row from a :class:`~repro.workflow.result.StageBreakdown`."""
    return [
        label,
        round(breakdown.simulation, 2),
        round(breakdown.transfer, 2),
        round(breakdown.store, 2),
        round(breakdown.analysis, 2),
        round(breakdown.stall, 2),
    ]


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)
