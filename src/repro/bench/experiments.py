"""Workflow configurations for every table and figure of the paper's evaluation.

Each ``figureN_configs`` function returns the list of
:class:`~repro.workflow.config.WorkflowConfig` objects (plus labels) whose
results regenerate that figure.  Scale knobs default to laptop-friendly values
— fewer steps and less data per rank than the paper — while the structural
parameters (core counts, producer:consumer ratio, block sizes, machine
presets) stay faithful, so the *shape* of every result is preserved.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.apps.costs import MiB, cfd_workload, lammps_workload, synthetic_workload
from repro.cluster.presets import bridges, stampede2
from repro.workflow.config import WorkflowConfig

__all__ = [
    "FIGURE2_TRANSPORTS",
    "SCALABILITY_CORE_COUNTS",
    "SYNTHETIC_SCALING_CORES",
    "figure2_configs",
    "figure12_configs",
    "figure13_configs",
    "figure14_configs",
    "figure16_configs",
    "figure18_configs",
    "trace_config",
]

#: The seven transport methods of Figure 2 plus the two reference bars.
FIGURE2_TRANSPORTS: Tuple[str, ...] = (
    "adios+dataspaces",
    "adios+dimes",
    "mpiio",
    "flexpath",
    "decaf",
    "dataspaces",
    "dimes",
)

#: Core counts of the weak-scaling experiments (Figures 16 and 18).
SCALABILITY_CORE_COUNTS: Tuple[int, ...] = (204, 408, 816, 1632, 3264, 6528, 13056)

#: Core counts of the concurrent-transfer experiments (Figures 14 and 15).
SYNTHETIC_SCALING_CORES: Tuple[int, ...] = (84, 168, 336, 588, 1176, 2352)


def figure2_configs(steps: int = 30, representative_sim_ranks: int = 8) -> List[Tuple[str, WorkflowConfig]]:
    """The Bridges CFD workflow of Table 1 under each of the seven transports.

    Table 1: 256 simulation processes, 128 analysis processes, 100 time steps,
    16 MiB of output per process per step (400 GB moved in total).
    """
    workload = cfd_workload(steps=steps)
    base = WorkflowConfig(
        workload=workload,
        cluster=bridges(),
        total_cores=384,
        sim_core_fraction=256 / 384,
        representative_sim_ranks=representative_sim_ranks,
        steps=steps,
        label="figure2",
    )
    configs: List[Tuple[str, WorkflowConfig]] = []
    for transport in FIGURE2_TRANSPORTS + ("zipper", "none"):
        configs.append((transport, base.replace(transport=transport)))
    return configs


def _perf_model_base(
    complexity: str,
    block_bytes: int,
    data_per_rank: int,
    preserve: bool,
    steps_cap: int,
) -> WorkflowConfig:
    workload = synthetic_workload(complexity, block_bytes, data_per_rank=data_per_rank)
    if steps_cap is not None:
        workload = workload.replace(steps=min(workload.steps, steps_cap))
    return WorkflowConfig(
        workload=workload,
        cluster=bridges(),
        transport="zipper",
        total_cores=2352,
        sim_core_fraction=1568 / 2352,
        representative_sim_ranks=8,
        block_bytes=block_bytes,
        preserve=preserve,
        label=f"{complexity}/{block_bytes // MiB}MB",
    )


def figure12_configs(
    data_per_rank: int = 256 * MiB, steps_cap: int = 512
) -> List[Tuple[str, WorkflowConfig]]:
    """Performance-model validation, No-Preserve mode (Figure 12).

    The paper uses 1,568 simulation cores + 784 analysis cores, 2 GiB of data
    per simulation core, and block sizes of 1 MB and 8 MB for each of the
    three synthetic applications; ``data_per_rank`` scales the per-rank volume
    down for laptop runs.
    """
    configs = []
    for block in (1 * MiB, 8 * MiB):
        for complexity in ("O(n)", "O(nlogn)", "O(n^1.5)"):
            cfg = _perf_model_base(complexity, block, data_per_rank, False, steps_cap)
            configs.append((cfg.label, cfg))
    return configs


def figure13_configs(
    data_per_rank: int = 256 * MiB, steps_cap: int = 512
) -> List[Tuple[str, WorkflowConfig]]:
    """Performance-model validation, Preserve mode (Figure 13)."""
    configs = []
    for block in (1 * MiB, 8 * MiB):
        for complexity in ("O(n)", "O(nlogn)", "O(n^1.5)"):
            cfg = _perf_model_base(complexity, block, data_per_rank, True, steps_cap)
            configs.append((cfg.label, cfg))
    return configs


def figure14_configs(
    data_per_rank: int = 256 * MiB,
    core_counts: Iterable[int] = SYNTHETIC_SCALING_CORES,
) -> List[Tuple[str, WorkflowConfig]]:
    """Concurrent message+file transfer optimisation (Figures 14 and 15).

    For each synthetic application and core count, two configurations are
    produced: the message-passing-only baseline and the concurrent (work
    stealing) optimisation.
    """
    configs = []
    for complexity in ("O(n)", "O(nlogn)", "O(n^1.5)"):
        workload = synthetic_workload(complexity, 1 * MiB, data_per_rank=data_per_rank)
        for cores in core_counts:
            for concurrent in (False, True):
                label = f"{complexity}/{cores}/{'concurrent' if concurrent else 'mpi-only'}"
                configs.append(
                    (
                        label,
                        WorkflowConfig(
                            workload=workload,
                            cluster=bridges(),
                            transport="zipper",
                            total_cores=cores,
                            sim_core_fraction=2.0 / 3.0,
                            representative_sim_ranks=8,
                            block_bytes=1 * MiB,
                            concurrent_transfer=concurrent,
                            label=label,
                        ),
                    )
                )
    return configs


def _scalability_configs(workload_factory, steps: int, transports: Tuple[str, ...]):
    configs = []
    for cores in SCALABILITY_CORE_COUNTS:
        for transport in transports:
            workload = workload_factory(steps=steps)
            label = f"{workload.name}/{cores}/{transport}"
            configs.append(
                (
                    label,
                    WorkflowConfig(
                        workload=workload,
                        cluster=stampede2(),
                        transport=transport,
                        total_cores=cores,
                        sim_core_fraction=2.0 / 3.0,
                        representative_sim_ranks=8,
                        steps=steps,
                        label=label,
                    ),
                )
            )
    return configs


def figure16_configs(steps: int = 30) -> List[Tuple[str, WorkflowConfig]]:
    """CFD weak scaling on Stampede2 (Figure 16): MPI-IO, Flexpath, Decaf, Zipper, none."""
    return _scalability_configs(
        cfd_workload, steps, ("mpiio", "flexpath", "decaf", "zipper", "none")
    )


def figure18_configs(steps: int = 30) -> List[Tuple[str, WorkflowConfig]]:
    """LAMMPS weak scaling on Stampede2 (Figure 18)."""
    return _scalability_configs(
        lammps_workload, steps, ("mpiio", "flexpath", "decaf", "zipper", "none")
    )


def trace_config(
    transport: str,
    workload_name: str = "cfd",
    total_cores: int = 204,
    steps: int = 12,
    machine: str = "stampede2",
) -> WorkflowConfig:
    """A small traced run used by the trace figures (4, 5, 6, 17 and 19)."""
    workload = cfd_workload(steps=steps) if workload_name == "cfd" else lammps_workload(steps=steps)
    cluster = stampede2() if machine == "stampede2" else bridges()
    return WorkflowConfig(
        workload=workload,
        cluster=cluster,
        transport=transport,
        total_cores=total_cores,
        representative_sim_ranks=4,
        steps=steps,
        trace=True,
        label=f"trace/{workload_name}/{transport}/{total_cores}",
    )


def run_all(configs: List[Tuple[str, WorkflowConfig]]) -> Dict[str, object]:
    """Convenience helper running every config (used by tests of the bench layer)."""
    from repro.workflow.runner import run_workflow

    return {label: run_workflow(cfg) for label, cfg in configs}
