"""Workflow configurations for every table and figure of the paper's evaluation.

Each figure's scenario grid is declared as a :class:`~repro.sweep.spec.SweepSpec`
(``figureN_spec``) built from :class:`~repro.sweep.spec.ParamGrid` axes —
transports × core counts × block sizes × preserve modes — and the legacy
``figureN_configs`` functions expand those specs into the ``(label, config)``
lists the benchmark drivers consume.  Scale knobs default to laptop-friendly
values — fewer steps and less data per rank than the paper — while the
structural parameters (core counts, producer:consumer ratio, block sizes,
machine presets) stay faithful, so the *shape* of every result is preserved.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.apps.costs import MiB, cfd_workload, lammps_workload, synthetic_workload
from repro.cluster.presets import bridges, stampede2
from repro.elastic import ElasticPolicy, ModelDrivenPolicy
from repro.sweep.spec import ParamGrid, SweepSpec
from repro.workflow.config import WorkflowConfig
from repro.workflow.pipeline import CouplingSpec, PipelineSpec, StageSpec
from repro.workflow.result import WorkflowResult

__all__ = [
    "FIGURE2_TRANSPORTS",
    "SCALABILITY_CORE_COUNTS",
    "SCALABILITY_TRANSPORTS",
    "SYNTHETIC_SCALING_CORES",
    "figure2_spec",
    "figure12_spec",
    "figure13_spec",
    "figure14_spec",
    "figure16_spec",
    "figure18_spec",
    "figure2_configs",
    "figure12_configs",
    "figure13_configs",
    "figure14_configs",
    "figure16_configs",
    "figure18_configs",
    "FAULT_CHECKPOINT_INTERVALS",
    "default_fault_plan",
    "elastic_burst_pipeline",
    "elastic_default_policy",
    "elastic_vs_static_spec",
    "elastic_vs_static_configs",
    "fault_recovery_spec",
    "fault_recovery_configs",
    "model_driven_default_policy",
    "model_vs_threshold_spec",
    "model_vs_threshold_configs",
    "pipeline_chain",
    "pipeline_fanout",
    "pipeline_shapes_spec",
    "pipeline_shapes_configs",
    "tenant_contention_spec",
    "tenant_contention_configs",
    "trace_config",
    "run_all",
]

#: The seven transport methods of Figure 2 plus the two reference bars.
FIGURE2_TRANSPORTS: Tuple[str, ...] = (
    "adios+dataspaces",
    "adios+dimes",
    "mpiio",
    "flexpath",
    "decaf",
    "dataspaces",
    "dimes",
)

#: Core counts of the weak-scaling experiments (Figures 16 and 18).
SCALABILITY_CORE_COUNTS: Tuple[int, ...] = (204, 408, 816, 1632, 3264, 6528, 13056)

#: Transports compared in the weak-scaling experiments.
SCALABILITY_TRANSPORTS: Tuple[str, ...] = ("mpiio", "flexpath", "decaf", "zipper", "none")

#: Core counts of the concurrent-transfer experiments (Figures 14 and 15).
SYNTHETIC_SCALING_CORES: Tuple[int, ...] = (84, 168, 336, 588, 1176, 2352)

#: Block sizes of the performance-model validation (Figures 12 and 13).
PERF_MODEL_BLOCK_BYTES: Tuple[int, ...] = (1 * MiB, 8 * MiB)

#: Synthetic producer complexities of Figures 12-15.
SYNTHETIC_COMPLEXITIES: Tuple[str, ...] = ("O(n)", "O(nlogn)", "O(n^1.5)")


def figure2_spec(steps: int = 30, representative_sim_ranks: int = 8) -> SweepSpec:
    """The Bridges CFD workflow of Table 1 under each of the seven transports.

    Table 1: 256 simulation processes, 128 analysis processes, 100 time steps,
    16 MiB of output per process per step (400 GB moved in total).
    """
    base = WorkflowConfig(
        workload=cfd_workload(steps=steps),
        cluster=bridges(),
        total_cores=384,
        sim_core_fraction=256 / 384,
        representative_sim_ranks=representative_sim_ranks,
        steps=steps,
        trace=False,
        label="figure2",
    )
    grid = ParamGrid(
        base,
        axes=[("transport", FIGURE2_TRANSPORTS + ("zipper", "none"))],
        label="{transport}",
    )
    return SweepSpec("figure2", grids=[grid])


def _perf_model_spec(
    name: str, data_per_rank: int, preserve: bool, steps_cap: Optional[int]
) -> SweepSpec:
    base = WorkflowConfig(
        workload=synthetic_workload("O(n)", 1 * MiB, data_per_rank=data_per_rank),
        cluster=bridges(),
        transport="zipper",
        total_cores=2352,
        sim_core_fraction=1568 / 2352,
        representative_sim_ranks=8,
        preserve=preserve,
        trace=False,
    )

    def derive(params):
        workload = synthetic_workload(
            params["complexity"], params["block"], data_per_rank=data_per_rank
        )
        if steps_cap is not None:
            workload = workload.replace(steps=min(workload.steps, steps_cap))
        return {"workload": workload, "block_bytes": params["block"]}

    grid = ParamGrid(
        base,
        axes=[("block", PERF_MODEL_BLOCK_BYTES), ("complexity", SYNTHETIC_COMPLEXITIES)],
        label=lambda p: f"{p['complexity']}/{p['block'] // MiB}MB",
        derive=derive,
    )
    return SweepSpec(name, grids=[grid])


def figure12_spec(data_per_rank: int = 256 * MiB, steps_cap: int = 512) -> SweepSpec:
    """Performance-model validation, No-Preserve mode (Figure 12).

    The paper uses 1,568 simulation cores + 784 analysis cores, 2 GiB of data
    per simulation core, and block sizes of 1 MB and 8 MB for each of the
    three synthetic applications; ``data_per_rank`` scales the per-rank volume
    down for laptop runs.
    """
    return _perf_model_spec("figure12", data_per_rank, False, steps_cap)


def figure13_spec(data_per_rank: int = 256 * MiB, steps_cap: int = 512) -> SweepSpec:
    """Performance-model validation, Preserve mode (Figure 13)."""
    return _perf_model_spec("figure13", data_per_rank, True, steps_cap)


def figure14_spec(
    data_per_rank: int = 256 * MiB,
    core_counts: Iterable[int] = SYNTHETIC_SCALING_CORES,
) -> SweepSpec:
    """Concurrent message+file transfer optimisation (Figures 14 and 15).

    For each synthetic application and core count, two configurations are
    produced: the message-passing-only baseline and the concurrent (work
    stealing) optimisation.
    """
    base = WorkflowConfig(
        workload=synthetic_workload("O(n)", 1 * MiB, data_per_rank=data_per_rank),
        cluster=bridges(),
        transport="zipper",
        sim_core_fraction=2.0 / 3.0,
        representative_sim_ranks=8,
        block_bytes=1 * MiB,
        trace=False,
    )
    grid = ParamGrid(
        base,
        axes=[
            ("complexity", SYNTHETIC_COMPLEXITIES),
            ("total_cores", tuple(core_counts)),
            ("concurrent_transfer", (False, True)),
        ],
        label=lambda p: (
            f"{p['complexity']}/{p['total_cores']}/"
            f"{'concurrent' if p['concurrent_transfer'] else 'mpi-only'}"
        ),
        derive=lambda p: {
            "workload": synthetic_workload(
                p["complexity"], 1 * MiB, data_per_rank=data_per_rank
            )
        },
    )
    return SweepSpec("figure14", grids=[grid])


def _scalability_spec(
    name: str,
    workload_factory,
    steps: int,
    core_counts: Iterable[int],
    transports: Tuple[str, ...],
) -> SweepSpec:
    workload = workload_factory(steps=steps)
    base = WorkflowConfig(
        workload=workload,
        cluster=stampede2(),
        sim_core_fraction=2.0 / 3.0,
        representative_sim_ranks=8,
        steps=steps,
        trace=False,
    )
    grid = ParamGrid(
        base,
        axes=[("total_cores", tuple(core_counts)), ("transport", transports)],
        label=lambda p, _name=workload.name: f"{_name}/{p['total_cores']}/{p['transport']}",
    )
    return SweepSpec(name, grids=[grid])


def figure16_spec(
    steps: int = 30,
    core_counts: Iterable[int] = SCALABILITY_CORE_COUNTS,
    transports: Tuple[str, ...] = SCALABILITY_TRANSPORTS,
) -> SweepSpec:
    """CFD weak scaling on Stampede2 (Figure 16): MPI-IO, Flexpath, Decaf, Zipper, none."""
    return _scalability_spec("figure16", cfd_workload, steps, core_counts, transports)


def figure18_spec(
    steps: int = 30,
    core_counts: Iterable[int] = SCALABILITY_CORE_COUNTS,
    transports: Tuple[str, ...] = SCALABILITY_TRANSPORTS,
) -> SweepSpec:
    """LAMMPS weak scaling on Stampede2 (Figure 18)."""
    return _scalability_spec("figure18", lammps_workload, steps, core_counts, transports)


# -- multi-stage pipeline scenario families -----------------------------------
def pipeline_chain(
    total_cores: int = 384,
    steps: int = 8,
    representative_sim_ranks: int = 8,
    sim_to_analysis: str = "zipper",
    analysis_to_viz: str = "dimes",
    trace: bool = False,
) -> PipelineSpec:
    """Three-stage chain: CFD simulation → n-th moment analysis → visualization.

    The analysis reduces the raw field to 1/16 of its volume (the moments) and
    streams that reduction to a lightweight rendering stage; the two couplings
    may use *different* transports, which is the whole point of the
    stage-graph API.
    """
    workload = cfd_workload(steps=steps)
    viz_workload = workload.replace(
        analysis_seconds_per_byte=workload.analysis_seconds_per_byte * 4.0
    )
    return PipelineSpec(
        stages=(
            StageSpec(
                "simulation",
                workload,
                representative_ranks=representative_sim_ranks,
                total_ranks=max(2, (total_cores * 2) // 3),
                role="producer",
            ),
            StageSpec(
                "analysis",
                workload,
                representative_ranks=max(1, representative_sim_ranks // 2),
                total_ranks=max(1, total_cores // 4),
                role="analysis",
                output_fraction=1.0 / 16.0,
            ),
            StageSpec(
                "viz",
                viz_workload,
                representative_ranks=max(1, representative_sim_ranks // 4),
                total_ranks=max(1, total_cores // 12),
                role="visualization",
            ),
        ),
        couplings=(
            CouplingSpec("simulation", "analysis", transport=sim_to_analysis),
            CouplingSpec("analysis", "viz", transport=analysis_to_viz),
        ),
        cluster=bridges(),
        total_cores=total_cores,
        steps=steps,
        trace=trace,
        label=f"chain/{total_cores}",
    )


def pipeline_fanout(
    total_cores: int = 384,
    steps: int = 8,
    representative_sim_ranks: int = 8,
    moments_transport: str = "zipper",
    msd_transport: str = "flexpath",
    trace: bool = False,
) -> PipelineSpec:
    """Fan-out: one simulation feeding two concurrent analyses.

    The statistics branch (n-th moments) and the MSD branch consume the same
    output stream over independent couplings with independent transports —
    the ensembles/fan-out scenario the two-application runner could not express.
    """
    workload = cfd_workload(steps=steps)
    # Only the MSD workload's analysis cost matters here: as a sink stage its
    # consumed stream is sized by the simulation (coupling source), not by
    # its own output_bytes_per_step.
    msd_workload = lammps_workload(steps=steps)
    return PipelineSpec(
        stages=(
            StageSpec(
                "simulation",
                workload,
                representative_ranks=representative_sim_ranks,
                total_ranks=max(2, (total_cores * 2) // 3),
                role="producer",
            ),
            StageSpec(
                "statistics",
                workload,
                representative_ranks=max(1, representative_sim_ranks // 2),
                total_ranks=max(1, total_cores // 6),
                role="analysis",
            ),
            StageSpec(
                "msd",
                msd_workload,
                representative_ranks=max(1, representative_sim_ranks // 4),
                total_ranks=max(1, total_cores // 6),
                role="analysis",
            ),
        ),
        couplings=(
            CouplingSpec("simulation", "statistics", transport=moments_transport),
            CouplingSpec("simulation", "msd", transport=msd_transport),
        ),
        cluster=bridges(),
        total_cores=total_cores,
        steps=steps,
        trace=trace,
        label=f"fanout/{total_cores}",
    )


#: Builders of the pipeline scenario families, addressable by shape name.
PIPELINE_SHAPES = {"chain": pipeline_chain, "fanout": pipeline_fanout}


def pipeline_shapes_spec(
    steps: int = 6,
    core_counts: Iterable[int] = (384, 768),
    representative_sim_ranks: int = 8,
) -> SweepSpec:
    """Sweep the multi-stage scenario families over graph shapes × core counts."""
    base = pipeline_chain(
        steps=steps, representative_sim_ranks=representative_sim_ranks
    )

    def derive(params):
        # Rebuild the whole graph for the shape/size: stages and couplings are
        # plain PipelineSpec fields, so sweeping graph shapes is just another
        # derive hook.
        shape = PIPELINE_SHAPES[params["shape"]](
            total_cores=params["total_cores"],
            steps=steps,
            representative_sim_ranks=representative_sim_ranks,
        )
        return {"stages": shape.stages, "couplings": shape.couplings}

    grid = ParamGrid(
        base,
        axes=[("shape", tuple(PIPELINE_SHAPES)), ("total_cores", tuple(core_counts))],
        label=lambda p: f"{p['shape']}/{p['total_cores']}",
        derive=derive,
    )
    return SweepSpec("pipelines", grids=[grid])


def pipeline_shapes_configs(
    steps: int = 6, core_counts: Iterable[int] = (384, 768)
) -> List[Tuple[str, PipelineSpec]]:
    return pipeline_shapes_spec(steps, core_counts).configs()


# -- elastic vs static core splits (bursty analytics) -------------------------
#: Static core grants to the simulation stage swept by ``elastic_vs_static_spec``
#: (out of 384 total cores; the analysis stage gets the remainder).
ELASTIC_SIM_CORE_GRANTS: Tuple[int, ...] = (128, 160, 192, 224, 256)


def elastic_default_policy(epoch_seconds: float = 0.25) -> ElasticPolicy:
    """The adaptation policy used by the elastic scenario family."""
    return ElasticPolicy(
        epoch_seconds=epoch_seconds,
        stall_threshold=0.05,
        idle_threshold=0.7,
        saturated_threshold=0.9,
        resize_fraction=0.25,
        min_stage_fraction=0.25,
    )


def elastic_burst_pipeline(
    sim_cores: int = 256,
    total_cores: int = 384,
    steps: int = 24,
    representative_sim_ranks: int = 8,
    burst_factor: float = 10.0,
    burst_period: Optional[int] = None,
    burst_length: Optional[int] = None,
    elastic: Optional[ElasticPolicy] = None,
    trace: bool = False,
) -> PipelineSpec:
    """A bursty-analytics CFD pipeline under a *static core grant*.

    The stage graph is fixed (a 2:1 simulation:analysis rank split of
    ``total_cores``); what varies is how the cores are *granted*: the
    simulation stage gets ``sim_cores`` of them and the analysis stage the
    rest, encoded as per-stage rate factors exactly like the elastic
    controller's allocation scales (a stage granted half its ranks' cores
    computes at half speed).  The analysis cost spikes
    ``burst_factor``-fold for ``burst_length`` steps at the end of every
    ``burst_period``-step window — the in-situ-rendering/checkpoint pattern
    no fixed split serves well: any grant large enough for the bursts
    starves the simulation between them.

    With ``elastic`` set, the run starts from the same grant and the
    controller re-splits the cores at every policy epoch.
    """
    sim_ranks = (total_cores * 2) // 3
    analysis_ranks = total_cores - sim_ranks
    if not 0 < sim_cores < total_cores:
        raise ValueError("sim_cores must lie strictly between 0 and total_cores")
    if burst_period is None:
        burst_period = min(6, max(2, steps // 2))
    if burst_length is None:
        burst_length = max(1, burst_period // 3)
    f_sim = sim_cores / sim_ranks
    f_analysis = (total_cores - sim_cores) / analysis_ranks
    base = cfd_workload(steps=steps)
    sim_workload = base.replace(sim_step_seconds=base.sim_step_seconds / f_sim)
    analysis_workload = base.replace(
        analysis_seconds_per_byte=base.analysis_seconds_per_byte / f_analysis,
        analysis_burst_factor=burst_factor,
        analysis_burst_period=burst_period,
        analysis_burst_length=burst_length,
    )
    return PipelineSpec(
        stages=(
            StageSpec(
                "simulation",
                sim_workload,
                representative_ranks=representative_sim_ranks,
                total_ranks=sim_ranks,
                role="producer",
                # The grant is encoded in the workload rate factors above;
                # telling the controller makes it move (and conserve) the
                # granted cores rather than rank units.
                granted_cores=float(sim_cores),
            ),
            StageSpec(
                "analysis",
                analysis_workload,
                representative_ranks=max(1, representative_sim_ranks // 2),
                total_ranks=analysis_ranks,
                role="analysis",
                granted_cores=float(total_cores - sim_cores),
            ),
        ),
        couplings=(CouplingSpec("simulation", "analysis", transport="zipper"),),
        cluster=bridges(),
        total_cores=total_cores,
        steps=steps,
        trace=trace,
        # A one-step producer buffer and no file-path stealing, so the
        # burst-induced backlog is visible to the monitor instead of being
        # absorbed by deep buffering.
        producer_buffer_blocks=16,
        high_water_mark=16,
        concurrent_transfer=False,
        elastic=elastic,
        label=f"elastic-burst/{sim_cores}",
    )


def _bursty_grant_grid(
    name: str,
    mode_policies: Dict[str, Optional[ElasticPolicy]],
    steps: int,
    total_cores: int,
    sim_core_grants: Optional[Iterable[int]],
    representative_sim_ranks: int,
    burst_factor: float,
) -> SweepSpec:
    """Grants × modes on the bursty-analytics pipeline (shared grid builder).

    ``mode_policies`` maps each mode label to the elastic policy it runs
    under (``None`` = static); both headline elastic sweeps
    (:func:`elastic_vs_static_spec`, :func:`model_vs_threshold_spec`) are
    instances of this grid.
    """
    if sim_core_grants is None:
        if total_cores == 384:
            sim_core_grants = ELASTIC_SIM_CORE_GRANTS
        else:
            # The same grant fractions (1/3 .. 2/3 of the cores), re-scaled.
            sim_core_grants = tuple(
                max(1, (total_cores * grant) // 384)
                for grant in ELASTIC_SIM_CORE_GRANTS
            )
    base = elastic_burst_pipeline(
        # The base must be a valid grant for *this* total (the default 256
        # would fail validation for small totals); every case's derive hook
        # replaces the stages anyway.
        sim_cores=max(1, (total_cores * 2) // 3),
        steps=steps,
        total_cores=total_cores,
        representative_sim_ranks=representative_sim_ranks,
        burst_factor=burst_factor,
    )

    def derive(params):
        shape = elastic_burst_pipeline(
            sim_cores=params["grant"],
            total_cores=total_cores,
            steps=steps,
            representative_sim_ranks=representative_sim_ranks,
            burst_factor=burst_factor,
            elastic=mode_policies[params["mode"]],
        )
        return {
            "stages": shape.stages,
            "couplings": shape.couplings,
            "elastic": shape.elastic,
        }

    grid = ParamGrid(
        base,
        axes=[("mode", tuple(mode_policies)), ("grant", tuple(sim_core_grants))],
        label=lambda p: f"{p['mode']}/{p['grant']}",
        derive=derive,
    )
    return SweepSpec(name, grids=[grid])


def elastic_vs_static_spec(
    steps: int = 24,
    total_cores: int = 384,
    sim_core_grants: Optional[Iterable[int]] = None,
    representative_sim_ranks: int = 8,
    burst_factor: float = 10.0,
    epoch_seconds: float = 0.25,
) -> SweepSpec:
    """Static core grants × {static, elastic} on the bursty-analytics pipeline.

    The headline comparison of the elastic layer (``python -m repro.sweep
    elastic``): for every static grant the grid runs the fixed split and the
    same split with the elastic controller enabled.  The elastic runs beat
    the *best* static grant because the bursts make the optimal split
    time-varying (asserted, with fixed seeds, in ``tests/test_elastic.py``).
    """
    return _bursty_grant_grid(
        "elastic",
        {"static": None, "elastic": elastic_default_policy(epoch_seconds=epoch_seconds)},
        steps=steps,
        total_cores=total_cores,
        sim_core_grants=sim_core_grants,
        representative_sim_ranks=representative_sim_ranks,
        burst_factor=burst_factor,
    )


def elastic_vs_static_configs(
    steps: int = 24, total_cores: int = 384
) -> List[Tuple[str, PipelineSpec]]:
    return elastic_vs_static_spec(steps=steps, total_cores=total_cores).configs()


def model_driven_default_policy(epoch_seconds: float = 0.15) -> ModelDrivenPolicy:
    """The model-driven policy used by the ``elastic-model`` scenario family.

    Tuned on the bursty-analytics grid: a pure proportional approach to the
    perf model's target (``kp=1``), fast calibration (``smoothing=0.7``) and
    a wide hysteresis dead band (10% of the cores), which is what lets the
    predictive controller match the threshold policy's makespans with a
    fraction of its rebalance events.
    """
    return ModelDrivenPolicy(
        epoch_seconds=epoch_seconds,
        proportional_gain=1.0,
        integral_gain=0.0,
        derivative_gain=0.0,
        deadband_fraction=0.1,
        smoothing=0.7,
        resize_fraction=0.5,
    )


def model_vs_threshold_spec(
    steps: int = 24,
    total_cores: int = 384,
    sim_core_grants: Optional[Iterable[int]] = None,
    representative_sim_ranks: int = 8,
    burst_factor: float = 10.0,
) -> SweepSpec:
    """Threshold vs model-driven elastic policies on the bursty-analytics grid.

    The headline comparison of the model-driven layer (``python -m
    repro.sweep elastic-model``): for every static grant the grid runs the
    same bursty pipeline once under the threshold
    :class:`~repro.elastic.ElasticPolicy` and once under the predictive
    :class:`~repro.elastic.ModelDrivenPolicy`.  With the default grid the
    model-driven runs match or beat every threshold makespan while issuing
    strictly fewer :class:`~repro.elastic.RebalanceEvent`\\ s (asserted, with
    fixed seeds, in ``tests/test_elastic_model.py``).
    """
    return _bursty_grant_grid(
        "elastic-model",
        {
            "threshold": elastic_default_policy(),
            "model": model_driven_default_policy(),
        },
        steps=steps,
        total_cores=total_cores,
        sim_core_grants=sim_core_grants,
        representative_sim_ranks=representative_sim_ranks,
        burst_factor=burst_factor,
    )


def model_vs_threshold_configs(
    steps: int = 24, total_cores: int = 384
) -> List[Tuple[str, PipelineSpec]]:
    """The ``(label, config)`` list form of :func:`model_vs_threshold_spec`."""
    return model_vs_threshold_spec(steps=steps, total_cores=total_cores).configs()


#: Checkpoint intervals (steps) swept by the fault-recovery grid.
FAULT_CHECKPOINT_INTERVALS: Tuple[int, ...] = (1, 2, 4, 8)


def default_fault_plan(
    horizon: float, label: str = "fault-recovery", seed: int = 11
) -> "FaultPlan":
    """The seeded fault schedule of the fault-recovery grid.

    Two simulation-node crashes, one straggler window, one link degradation
    and one transport restart, all drawn inside ``horizon`` simulated
    seconds from the label-derived stream — the same plan for every grid
    case, so elastic-vs-static and per-checkpoint comparisons see the
    identical fault schedule.
    """
    from repro.faults import FaultPlan

    return FaultPlan.seeded(
        f"{label}/{seed}",
        ("simulation",),
        horizon=horizon,
        couplings=("simulation->analysis",),
        crashes=2,
        stragglers=1,
        degradations=1,
        restarts=1,
        slowdown=4.0,
        degrade_scale=0.25,
        recovery_seconds=0.25,
        seed=seed,
    )


def fault_recovery_spec(
    steps: int = 24,
    total_cores: int = 384,
    sim_cores: Optional[int] = None,
    checkpoint_intervals: Iterable[Optional[int]] = FAULT_CHECKPOINT_INTERVALS,
    representative_sim_ranks: int = 8,
    burst_factor: float = 10.0,
    seed: int = 11,
) -> SweepSpec:
    """Checkpoint intervals × {static, elastic} under a seeded fault plan.

    The fault axis of the evaluation (``python -m repro.sweep faults``): the
    bursty-analytics pipeline at one fixed grant, crossed with checkpoint
    intervals for the simulation stage and with the static/elastic modes,
    every case replaying the *same* :func:`default_fault_plan` schedule.
    ``benchmarks/bench_faults.py`` renders the two derived figures:
    time-to-recover vs checkpoint interval and elastic vs static makespan
    under faults.
    """
    from repro.workflow.runner import pipeline_simulation_only_time

    if sim_cores is None:
        sim_cores = max(1, (total_cores * 2) // 3)
    base = elastic_burst_pipeline(
        sim_cores=sim_cores,
        total_cores=total_cores,
        steps=steps,
        representative_sim_ranks=representative_sim_ranks,
        burst_factor=burst_factor,
    )
    # The fault window covers the simulation-only span of the *shared* base
    # pipeline, so the plan is identical for every mode/interval case.
    plan = default_fault_plan(pipeline_simulation_only_time(base), seed=seed)
    modes: Dict[str, Optional[ElasticPolicy]] = {
        "static": None,
        "elastic": elastic_default_policy(),
    }

    def derive(params):
        shape = elastic_burst_pipeline(
            sim_cores=sim_cores,
            total_cores=total_cores,
            steps=steps,
            representative_sim_ranks=representative_sim_ranks,
            burst_factor=burst_factor,
            elastic=modes[params["mode"]],
        )
        interval = params["interval"]
        stages = tuple(
            stage.replace(checkpoint_interval=interval)
            if stage.name == "simulation"
            else stage
            for stage in shape.stages
        )
        return {
            "stages": stages,
            "couplings": shape.couplings,
            "elastic": shape.elastic,
            "faults": plan,
        }

    grid = ParamGrid(
        base,
        axes=[("mode", tuple(modes)), ("interval", tuple(checkpoint_intervals))],
        label=lambda p: (
            f"{p['mode']}/ckpt-{p['interval'] if p['interval'] is not None else 'none'}"
        ),
        derive=derive,
    )
    return SweepSpec("faults", grids=[grid])


def fault_recovery_configs(
    steps: int = 24, total_cores: int = 384
) -> List[Tuple[str, PipelineSpec]]:
    """The ``(label, config)`` list form of :func:`fault_recovery_spec`."""
    return fault_recovery_spec(steps=steps, total_cores=total_cores).configs()


def tenant_contention_spec(
    steps: int = 8,
    capacity_cores: int = 384,
    burst_jobs: int = 4,
    epoch_seconds: float = 0.25,
    seed: int = 23,
) -> SweepSpec:
    """Co-scheduling policies × arrival patterns on one contended facility.

    The multi-tenant axis of the evaluation (``python -m repro.sweep
    tenants``): a deliberately *heterogeneous* queue — one long, heavy
    ``batch`` job holding most of the facility from time zero, plus a
    ``burst`` tenant's stream of short, light jobs arriving shortly after —
    crossed with the two co-scheduling policies and with bursty vs Poisson
    arrivals.  The shape is the classic head-of-line case: under ``fcfs``
    the short jobs cannot start until the batch job releases its cores
    (their demand exceeds the free remainder), inflating their slowdowns,
    while ``fair`` water-fills the capacity across everyone — so weighted
    fair share wins on aggregate slowdown for the contended bursty grid
    (asserted, with fixed seeds, in ``benchmarks/bench_tenants.py``).
    """
    from repro.tenants.spec import ArrivalProcess, JobSpec, TenantSpec, job_queue
    from repro.workflow.runner import pipeline_simulation_only_time

    batch_cores = (capacity_cores * 5) // 6
    burst_cores = capacity_cores // 3
    batch_pipeline = elastic_burst_pipeline(
        sim_cores=(batch_cores * 2) // 3,
        total_cores=batch_cores,
        steps=steps * 3,
        representative_sim_ranks=8,
    )
    burst_pipeline = elastic_burst_pipeline(
        sim_cores=(burst_cores * 2) // 3,
        total_cores=burst_cores,
        steps=steps,
        representative_sim_ranks=4,
    )
    batch_job = JobSpec(
        name="batch/0", tenant="batch", pipeline=batch_pipeline, arrival=0.0, weight=1.0
    )
    # Arrivals land early in the batch job's simulation-only span, so the
    # short jobs always contend with it rather than trickling in after.
    span = pipeline_simulation_only_time(batch_pipeline)
    arrival_processes = {
        "bursty": ArrivalProcess.bursty(
            count=burst_jobs,
            rate=burst_jobs / (0.4 * span),
            burst_size=max(1, burst_jobs // 2),
            start=0.05 * span,
        ),
        "poisson": ArrivalProcess.poisson(
            count=burst_jobs, rate=burst_jobs / (0.4 * span), start=0.05 * span
        ),
    }

    def derive(params):
        process = arrival_processes[params["arrivals"]]
        jobs = (batch_job,) + job_queue(
            "burst", burst_pipeline, process, weight=1.0, seed=seed
        )
        return {"jobs": jobs}

    base = TenantSpec(
        jobs=(batch_job,),
        policy="fair",
        capacity_cores=capacity_cores,
        epoch_seconds=epoch_seconds,
        seed=seed,
    )
    grid = ParamGrid(
        base,
        axes=[("policy", ("fcfs", "fair")), ("arrivals", ("bursty", "poisson"))],
        label="{policy}/{arrivals}",
        derive=derive,
    )
    return SweepSpec("tenants", grids=[grid])


def tenant_contention_configs(
    steps: int = 8, capacity_cores: int = 384
) -> List[Tuple[str, "TenantSpec"]]:
    """The ``(label, config)`` list form of :func:`tenant_contention_spec`."""
    return tenant_contention_spec(steps=steps, capacity_cores=capacity_cores).configs()


# -- legacy (label, config) list API, kept for the bench drivers -------------
def figure2_configs(
    steps: int = 30, representative_sim_ranks: int = 8
) -> List[Tuple[str, WorkflowConfig]]:
    return figure2_spec(steps, representative_sim_ranks).configs()


def figure12_configs(
    data_per_rank: int = 256 * MiB, steps_cap: int = 512
) -> List[Tuple[str, WorkflowConfig]]:
    return figure12_spec(data_per_rank, steps_cap).configs()


def figure13_configs(
    data_per_rank: int = 256 * MiB, steps_cap: int = 512
) -> List[Tuple[str, WorkflowConfig]]:
    return figure13_spec(data_per_rank, steps_cap).configs()


def figure14_configs(
    data_per_rank: int = 256 * MiB,
    core_counts: Iterable[int] = SYNTHETIC_SCALING_CORES,
) -> List[Tuple[str, WorkflowConfig]]:
    return figure14_spec(data_per_rank, core_counts).configs()


def figure16_configs(steps: int = 30) -> List[Tuple[str, WorkflowConfig]]:
    return figure16_spec(steps).configs()


def figure18_configs(steps: int = 30) -> List[Tuple[str, WorkflowConfig]]:
    return figure18_spec(steps).configs()


def trace_config(
    transport: str,
    workload_name: str = "cfd",
    total_cores: int = 204,
    steps: int = 12,
    machine: str = "stampede2",
) -> WorkflowConfig:
    """A small traced run used by the trace figures (4, 5, 6, 17 and 19)."""
    workload = cfd_workload(steps=steps) if workload_name == "cfd" else lammps_workload(steps=steps)
    cluster = stampede2() if machine == "stampede2" else bridges()
    return WorkflowConfig(
        workload=workload,
        cluster=cluster,
        transport=transport,
        total_cores=total_cores,
        representative_sim_ranks=4,
        steps=steps,
        trace=True,
        label=f"trace/{workload_name}/{transport}/{total_cores}",
    )


def run_all(
    configs: List[Tuple[str, WorkflowConfig]], workers: int = 0
) -> Dict[str, WorkflowResult]:
    """Run every config through the sweep engine (serially unless ``workers`` > 1)."""
    from repro.sweep.runner import SweepRunner

    return SweepRunner(workers=workers).run_labelled(configs)
