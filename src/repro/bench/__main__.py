"""Command-line bench harness driver: ``python -m repro.bench``.

Runs the named bench suites (default: the headline ``pipeline`` suite),
prints each measurement next to the committed ``BENCH_<suite>.json`` history
series, and optionally appends to it or fails on regression::

    PYTHONPATH=src python -m repro.bench                       # measure + compare
    PYTHONPATH=src python -m repro.bench --suite smoke --check # CI regression gate
    PYTHONPATH=src python -m repro.bench --update              # append a new entry

``--check`` gates against the *best* entry ever recorded, not merely the
latest, so a slow intervening measurement cannot hide a real regression.

See ``docs/performance.md`` for the JSON schema and how to read the numbers.
"""

from __future__ import annotations

import argparse
from typing import List, Optional

from repro.bench.harness import (
    SUITES,
    bench_path,
    best_result,
    compare,
    load_history,
    run_suite,
    write_result,
)

__all__ = ["main"]


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Run the engine bench suites and compare against BENCH_*.json.",
    )
    parser.add_argument(
        "--suite",
        action="append",
        choices=sorted(SUITES),
        help="suite(s) to run (repeatable; default: pipeline)",
    )
    parser.add_argument(
        "--workers", type=int, default=0, help="sweep workers (0 = serial, the default)"
    )
    parser.add_argument(
        "--repeats", type=int, default=None, help="override the suite's repeat count"
    )
    parser.add_argument(
        "--bench-dir",
        default=None,
        help="directory holding BENCH_<suite>.json (default: the repository root)",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite BENCH_<suite>.json with this measurement",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help=(
            "exit non-zero if events/sec regressed more than --max-regression "
            "vs the best recorded entry (wall-clock based — compare against a "
            "history from comparable hardware, e.g. the previous CI run's "
            "artifact)"
        ),
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=20.0,
        help="allowed events/sec regression in percent for --check (default 20)",
    )
    parser.add_argument(
        "--check-events",
        action="store_true",
        help=(
            "exit non-zero if events_processed differs from the baseline — "
            "machine-independent: a mismatch means the modelled workload "
            "changed without refreshing BENCH_<suite>.json"
        ),
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of ``python -m repro.bench``; returns the exit code."""
    args = _parser().parse_args(argv)
    suites = args.suite or ["pipeline"]

    failures: List[str] = []
    for suite in suites:
        path = bench_path(suite, args.bench_dir)
        history = load_history(path)
        previous = history[-1] if history else None
        best = best_result(history)
        result = run_suite(suite, workers=args.workers, repeats=args.repeats)
        delta = compare(result, previous)
        best_delta = compare(result, best)

        print(f"suite {suite}: {result.scenarios} scenarios in {result.wall_seconds:.2f}s")
        print(
            f"  events_processed={result.events_processed}  "
            f"events/sec={result.events_per_sec:,.0f}  "
            f"sim_seconds={result.sim_seconds:.2f}"
        )
        if previous is not None:
            print(
                f"  latest of {len(history)} ({path.name}): "
                f"events/sec={previous.events_per_sec:,.0f} "
                f"-> speedup {delta['speedup']:.2f}x"
                + (
                    f"  (REGRESSION {delta['regression_pct']:.1f}%)"
                    if delta["regression_pct"] > 0
                    else ""
                )
            )
        else:
            print(f"  no history at {path} (run with --update to create one)")
        if best is not None and previous is not None and best is not previous:
            print(
                f"  best recorded: events/sec={best.events_per_sec:,.0f} "
                f"({best.timestamp}) -> speedup {best_delta['speedup']:.2f}x"
            )

        if result.failed_scenarios:
            failures.append(f"{suite}: {result.failed_scenarios} scenario(s) failed")
        if args.check and best is not None and best_delta["regression_pct"] > args.max_regression:
            failures.append(
                f"{suite}: events/sec regressed {best_delta['regression_pct']:.1f}% "
                f"(allowed {args.max_regression:.1f}%) vs best recorded entry "
                f"in {path.name}"
            )
        if (
            args.check_events
            and previous is not None
            and result.events_processed != previous.events_processed
        ):
            failures.append(
                f"{suite}: events_processed changed "
                f"{previous.events_processed} -> {result.events_processed}; "
                f"the modelled workload changed — refresh {path.name} with --update"
            )
        if args.update:
            write_result(result, path, previous=previous)
            print(f"  wrote {path}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
