"""Collective MPI-IO on the simulated parallel file system.

Models the behaviour that makes the MPI-IO transport the slowest and most
variable method in the paper's Figure 2: every rank of the writing application
participates in a collective write of a shared file (with the implied
synchronisation), the data lands on a file system shared with other users, and
the reading application has to discover that a new step is available by
polling the file system before it can issue its own collective read.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.simcore import Timeout
from repro.simmpi.comm import Communicator

__all__ = ["MPIFile"]


class MPIFile:
    """A shared file accessed collectively by all ranks of a communicator."""

    def __init__(self, comm: Communicator, filename: str, collective_sync: bool = True):
        self.comm = comm
        self.filename = filename
        self.collective_sync = collective_sync
        self.fs = comm.cluster.filesystem
        self._steps_completed = 0

    @property
    def steps_completed(self) -> int:
        """Number of complete step writes visible to readers."""
        return self._steps_completed

    def write_all(self, rank: int, nbytes: int, step: Optional[int] = None) -> Generator:
        """Collective write of ``nbytes`` from ``rank`` into the shared file.

        With ``collective_sync`` (the default, matching two-phase collective
        buffering) all ranks synchronise before and after the data movement,
        so the slowest rank's I/O time is everyone's I/O time.
        """
        if self.collective_sync:
            yield from self.comm.barrier(rank)
        start = self.comm.env.now
        yield from self.fs.write(self.comm.node_of(rank), nbytes, filename=self.filename)
        if self.comm.tracer is not None:
            self.comm.tracer.record(rank, "io_write", start, self.comm.env.now, nbytes=nbytes)
        if self.collective_sync:
            yield from self.comm.barrier(rank)
        if rank == 0:
            self._steps_completed = max(
                self._steps_completed, (step + 1) if step is not None else self._steps_completed + 1
            )

    def read_all(self, rank: int, nbytes: int) -> Generator:
        """Collective read of ``nbytes`` into ``rank`` from the shared file."""
        if self.collective_sync:
            yield from self.comm.barrier(rank)
        start = self.comm.env.now
        yield from self.fs.read(self.comm.node_of(rank), nbytes, filename=self.filename)
        if self.comm.tracer is not None:
            self.comm.tracer.record(rank, "io_read", start, self.comm.env.now, nbytes=nbytes)
        if self.collective_sync:
            yield from self.comm.barrier(rank)

    def wait_for_step(self, rank: int, step: int, poll_interval: float = 0.05) -> Generator:
        """Poll until the writer has completed ``step`` (0-based) writes.

        File-based coupling has no notification mechanism; the paper notes
        that "coupling different applications with MPI-IO requires writing
        code to let a consumer application know when new data is available in
        a file" — this is that code, and its polling latency is part of the
        end-to-end cost.
        """
        if poll_interval <= 0:
            raise ValueError("poll_interval must be positive")
        polls = 0
        while self._steps_completed <= step:
            yield Timeout(self.comm.env, poll_interval)
            polls += 1
        return polls
