"""Simulated MPI communicator."""

from __future__ import annotations

import math
from typing import Any, Generator, List, Optional, Sequence

from repro.cluster.machine import Cluster
from repro.simcore import AllOf, FilterStore, SimBarrier, Timeout
from repro.simmpi.message import ANY_SOURCE, ANY_TAG, Message
from repro.simmpi.request import SimRequest
from repro.trace import Tracer

__all__ = ["Communicator"]


class Communicator:
    """A group of ranks placed on cluster nodes, with MPI-style operations.

    Parameters
    ----------
    cluster:
        The cluster the ranks run on.
    rank_nodes:
        ``rank_nodes[r]`` is the modelled node hosting rank ``r``.
    represented_size:
        Number of ranks in the full job this communicator stands for
        (defaults to ``len(rank_nodes)``); collective costs scale with this.
    tracer:
        Optional :class:`~repro.trace.Tracer` receiving spans for the MPI calls
        (categories ``sendrecv``, ``barrier``, ``waitall``, ``allreduce``).
    name:
        Label used in traces and debugging output.
    """

    def __init__(
        self,
        cluster: Cluster,
        rank_nodes: Sequence[int],
        represented_size: Optional[int] = None,
        tracer: Optional[Tracer] = None,
        name: str = "world",
    ):
        if not rank_nodes:
            raise ValueError("a communicator needs at least one rank")
        for node in rank_nodes:
            if not 0 <= node < cluster.num_nodes:
                raise ValueError(f"node {node} outside the cluster")
        self.cluster = cluster
        self.env = cluster.env
        self.network = cluster.network
        self.rank_nodes: List[int] = list(rank_nodes)
        self.represented_size = (
            int(represented_size) if represented_size else len(rank_nodes)
        )
        if self.represented_size < len(rank_nodes):
            raise ValueError("represented_size cannot be smaller than the rank count")
        self.tracer = tracer
        self.name = name
        self._mailboxes: List[FilterStore] = [
            FilterStore(self.env) for _ in rank_nodes
        ]
        self._barrier = SimBarrier(self.env, len(rank_nodes))

    # -- basic queries -----------------------------------------------------
    @property
    def size(self) -> int:
        """Number of modelled ranks."""
        return len(self.rank_nodes)

    def node_of(self, rank: int) -> int:
        self._check_rank(rank)
        return self.rank_nodes[rank]

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.size:
            raise ValueError(f"rank {rank} out of range [0, {self.size})")

    def _collective_latency(self) -> float:
        """Software latency of one tree-structured collective over the full job."""
        spec = self.network.spec
        depth = max(1.0, math.log2(max(2, self.represented_size)))
        return depth * (spec.latency + spec.per_message_overhead)

    # -- point to point ------------------------------------------------------
    def send(
        self,
        source: int,
        dest: int,
        nbytes: int,
        tag: int = 0,
        payload: Any = None,
        flow: str = "msg",
        congestion_weight: float = 1.0,
    ) -> Generator:
        """Blocking (eager) send: completes once the data reaches the receiver's node."""
        self._check_rank(source)
        self._check_rank(dest)
        msg = Message(source, dest, tag, nbytes, payload, sent_at=self.env.now)
        result = yield from self.network.transfer(
            self.rank_nodes[source],
            self.rank_nodes[dest],
            nbytes,
            flow=flow,
            congestion_weight=congestion_weight,
        )
        msg.delivered_at = self.env.now
        yield self._mailboxes[dest].put(msg)
        return result

    def recv(self, rank: int, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Generator:
        """Blocking receive: waits for a matching message, returns the :class:`Message`."""
        self._check_rank(rank)
        msg = yield self._mailboxes[rank].get(lambda m: m.matches(source, tag))
        return msg

    def isend(
        self,
        source: int,
        dest: int,
        nbytes: int,
        tag: int = 0,
        payload: Any = None,
        flow: str = "msg",
        congestion_weight: float = 1.0,
    ) -> SimRequest:
        """Non-blocking send; returns a :class:`SimRequest`."""
        proc = self.env.process(
            self.send(source, dest, nbytes, tag, payload, flow, congestion_weight)
        )
        return SimRequest(proc, "isend", source, dest, nbytes)

    def irecv(self, rank: int, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> SimRequest:
        """Non-blocking receive; returns a :class:`SimRequest`."""
        proc = self.env.process(self.recv(rank, source, tag))
        return SimRequest(proc, "irecv", rank, source, 0)

    def sendrecv(
        self,
        rank: int,
        dest: int,
        send_bytes: int,
        source: int,
        recv_tag: int = 0,
        send_tag: int = 0,
    ) -> Generator:
        """``MPI_Sendrecv``: exchange with neighbours, as the LBM streaming phase does.

        The traced duration of this call is what the paper's Figures 5 and 6
        show growing once a staging library competes for the same NIC.
        """
        start = self.env.now
        send_req = self.isend(rank, dest, send_bytes, tag=send_tag)
        recv_req = self.irecv(rank, source, tag=recv_tag)
        yield AllOf(self.env, [send_req.event, recv_req.event])
        if self.tracer is not None:
            self.tracer.record(rank, "sendrecv", start, self.env.now, dest=dest, source=source)
        return recv_req.value

    def waitall(self, rank: int, requests: Sequence[SimRequest]) -> Generator:
        """``MPI_Waitall`` over a list of requests (traced per rank)."""
        start = self.env.now
        events = [r.event for r in requests]
        if events:
            yield AllOf(self.env, events)
        if self.tracer is not None:
            self.tracer.record(rank, "waitall", start, self.env.now, count=len(requests))
        return [r.value for r in requests]

    # -- collectives ---------------------------------------------------------
    def barrier(self, rank: int) -> Generator:
        """Global barrier across the communicator (cost scales with the full job)."""
        self._check_rank(rank)
        start = self.env.now
        yield self._barrier.wait()
        yield Timeout(self.env, self._collective_latency())
        if self.tracer is not None:
            self.tracer.record(rank, "barrier", start, self.env.now)

    def allreduce(self, rank: int, nbytes: int = 8) -> Generator:
        """Allreduce of ``nbytes`` per rank (recursive-doubling cost model)."""
        self._check_rank(rank)
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        start = self.env.now
        yield self._barrier.wait()
        spec = self.network.spec
        depth = max(1.0, math.log2(max(2, self.represented_size)))
        per_stage = spec.latency + spec.per_message_overhead + nbytes / spec.link_bandwidth
        yield Timeout(self.env, 2.0 * depth * per_stage)
        if self.tracer is not None:
            self.tracer.record(rank, "allreduce", start, self.env.now, nbytes=nbytes)

    def gather(self, rank: int, nbytes: int, root: int = 0) -> Generator:
        """Gather ``nbytes`` from every rank to ``root`` (tree cost model)."""
        self._check_rank(rank)
        self._check_rank(root)
        start = self.env.now
        yield self._barrier.wait()
        spec = self.network.spec
        depth = max(1.0, math.log2(max(2, self.represented_size)))
        total_bytes = nbytes * self.represented_size
        # The root's ejection bandwidth bounds the gather.
        duration = depth * (spec.latency + spec.per_message_overhead)
        duration += total_bytes / spec.link_bandwidth
        yield Timeout(self.env, duration)
        if self.tracer is not None:
            self.tracer.record(rank, "gather", start, self.env.now, nbytes=nbytes)

    def __repr__(self) -> str:
        return (
            f"<Communicator {self.name!r} size={self.size} "
            f"represents={self.represented_size}>"
        )
