"""A simulated MPI layer running on the cluster model.

The baseline transports and the proxy applications are written against the
same message-passing semantics they would use on a real machine: eager
point-to-point sends, ``Sendrecv`` halo exchanges, non-blocking requests with
``Waitall``, barriers, and reductions.  Collective costs scale with the size
of the *represented* job (not just the modelled ranks), so that Decaf's
``MPI_Waitall`` interlock and the global barriers of the other baselines get
more expensive at 13,056 cores than at 204 — one of the effects behind the
paper's Figures 16 and 18.
"""

from repro.simmpi.message import Message
from repro.simmpi.request import SimRequest
from repro.simmpi.comm import Communicator
from repro.simmpi.mpiio import MPIFile

__all__ = ["Message", "SimRequest", "Communicator", "MPIFile"]
