"""Non-blocking request handles for the simulated MPI layer."""

from __future__ import annotations

from typing import Any, Optional

from repro.simcore import Event

__all__ = ["SimRequest"]


class SimRequest:
    """Handle for a non-blocking operation (``isend``/``irecv``).

    Wraps the underlying simulation event; ``wait`` (yield ``request.event``)
    completes when the operation does.  ``value`` holds the received
    :class:`~repro.simmpi.message.Message` for receives, the
    :class:`~repro.cluster.network.TransferResult` for sends.
    """

    def __init__(self, event: Event, kind: str, rank: int, peer: int, nbytes: int):
        self.event = event
        self.kind = kind
        self.rank = rank
        self.peer = peer
        self.nbytes = nbytes

    @property
    def complete(self) -> bool:
        return self.event.processed or self.event.triggered

    @property
    def value(self) -> Optional[Any]:
        if not self.event.triggered:
            return None
        return self.event.value

    def __repr__(self) -> str:
        state = "done" if self.complete else "pending"
        return (
            f"<SimRequest {self.kind} rank={self.rank} peer={self.peer} "
            f"nbytes={self.nbytes} {state}>"
        )
