"""Message envelope used by the simulated MPI layer."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict

__all__ = ["Message", "ANY_SOURCE", "ANY_TAG"]

#: Wildcards mirroring ``MPI_ANY_SOURCE`` / ``MPI_ANY_TAG``.
ANY_SOURCE = -1
ANY_TAG = -1


@dataclass
class Message:
    """An in-flight or delivered message.

    Only metadata travels through the simulator — ``payload`` is an arbitrary
    Python object (block descriptors, step indices, ...) and ``nbytes`` is the
    size the network model charges for.
    """

    source: int
    dest: int
    tag: int
    nbytes: int
    payload: Any = None
    sent_at: float = 0.0
    delivered_at: float = 0.0
    meta: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise ValueError("nbytes must be non-negative")

    @property
    def latency(self) -> float:
        """Time from send to delivery (0 until delivered)."""
        if self.delivered_at <= 0:
            return 0.0
        return self.delivered_at - self.sent_at

    def matches(self, source: int, tag: int) -> bool:
        """Whether this message satisfies a receive posted for (source, tag)."""
        source_ok = source == ANY_SOURCE or source == self.source
        tag_ok = tag == ANY_TAG or tag == self.tag
        return source_ok and tag_ok
