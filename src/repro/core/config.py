"""Configuration of the Zipper runtime."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Optional

__all__ = ["ZipperConfig", "PRESERVE", "NO_PRESERVE", "MiB"]

MiB = 1024 * 1024

#: Mode constants (Section 4.1: "Zipper offers two modes to users").
PRESERVE = "preserve"
NO_PRESERVE = "no-preserve"


@dataclass(frozen=True)
class ZipperConfig:
    """Tunable parameters of a Zipper session.

    The defaults follow the paper's experimental setup: fine-grain blocks
    between 1 MB and 8 MB, a bounded producer buffer whose high-water mark
    triggers the work-stealing writer thread, and the No-Preserve mode.
    """

    #: Target size of one fine-grain data block in bytes.
    block_size: int = 1 * MiB
    #: Capacity of the producer buffer, in blocks ("num_slots" in the paper's
    #: DIMES discussion; here it bounds memory, not correctness).
    producer_buffer_blocks: int = 16
    #: Work-stealing threshold: the writer thread steals only while the number
    #: of buffered blocks exceeds this value (Algorithm 1's ``Threshold``).
    high_water_mark: int = 12
    #: Capacity of the consumer buffer, in blocks.
    consumer_buffer_blocks: int = 64
    #: Preserve or No-Preserve mode.
    mode: str = NO_PRESERVE
    #: Directory used by the file data path (spilled blocks and, in Preserve
    #: mode, the persistent copy).  ``None`` means a temporary directory is
    #: created per session.
    spill_dir: Optional[Path] = None
    #: Enable the concurrent dual-channel (message + file) transfer
    #: optimisation.  Disabling it gives the message-passing-only baseline the
    #: paper compares against in Figure 14.
    concurrent_transfer: bool = True
    #: Optional throttle of the in-memory message channel, bytes/second.
    #: ``None`` means memory speed.  Tests and the ablation benchmarks use a
    #: throttle to emulate a slow network so that work stealing activates.
    network_bandwidth: Optional[float] = None
    #: Optional throttle of the file channel, bytes/second (``None`` = disk speed).
    file_bandwidth: Optional[float] = None
    #: Per-message latency of the message channel, seconds.
    network_latency: float = 0.0
    #: Number of producer ranks feeding one consumer runtime (used for
    #: end-of-stream accounting when several producers share a consumer).
    num_producers: int = 1
    #: Extra metadata recorded into results.
    label: str = ""
    extras: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.block_size <= 0:
            raise ValueError("block_size must be positive")
        if self.producer_buffer_blocks <= 0:
            raise ValueError("producer_buffer_blocks must be positive")
        if not 0 <= self.high_water_mark <= self.producer_buffer_blocks:
            raise ValueError(
                "high_water_mark must lie within [0, producer_buffer_blocks]"
            )
        if self.consumer_buffer_blocks <= 0:
            raise ValueError("consumer_buffer_blocks must be positive")
        if self.mode not in (PRESERVE, NO_PRESERVE):
            raise ValueError(f"mode must be {PRESERVE!r} or {NO_PRESERVE!r}")
        if self.network_bandwidth is not None and self.network_bandwidth <= 0:
            raise ValueError("network_bandwidth must be positive when given")
        if self.file_bandwidth is not None and self.file_bandwidth <= 0:
            raise ValueError("file_bandwidth must be positive when given")
        if self.network_latency < 0:
            raise ValueError("network_latency must be non-negative")
        if self.num_producers <= 0:
            raise ValueError("num_producers must be positive")

    @property
    def preserve(self) -> bool:
        return self.mode == PRESERVE

    def replace(self, **changes) -> "ZipperConfig":
        """Return a copy with the given fields changed."""
        return replace(self, **changes)
