"""Fine-grain data blocks: the unit of pipelining in Zipper.

The paper (Section 4.2): "The data block itself contains all the necessary
information that the analysis application will need, which includes the time
step index, the process ID that sends the block, and the position of the data
block in the global input domain."  :class:`BlockId` carries exactly that
self-describing metadata; :class:`DataBlock` pairs it with the payload.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

__all__ = ["BlockId", "DataBlock"]


@dataclass(frozen=True, order=True)
class BlockId:
    """Globally unique, self-describing identifier of one data block."""

    #: Simulation time step the block belongs to.
    step: int
    #: Rank of the producing simulation process.
    source_rank: int
    #: Index of the block within the (step, source_rank) output.
    block_index: int
    #: Offset of this block within the global domain (element index or byte
    #: offset, application-defined).  Not part of identity ordering semantics
    #: beyond the triple above, but carried so the consumer can place the data.
    offset: int = 0

    def __post_init__(self) -> None:
        if self.step < 0:
            raise ValueError("step must be non-negative")
        if self.source_rank < 0:
            raise ValueError("source_rank must be non-negative")
        if self.block_index < 0:
            raise ValueError("block_index must be non-negative")

    @property
    def key(self) -> Tuple[int, int, int]:
        """The identity triple (step, source_rank, block_index)."""
        return (self.step, self.source_rank, self.block_index)

    def filename(self, prefix: str = "block") -> str:
        """A stable file name used by the file-system data path."""
        return f"{prefix}_s{self.step:06d}_r{self.source_rank:05d}_b{self.block_index:05d}.npy"

    def __str__(self) -> str:
        return f"(step={self.step}, rank={self.source_rank}, block={self.block_index})"


@dataclass
class DataBlock:
    """A fine-grain block of simulation output flowing through the pipeline."""

    block_id: BlockId
    data: np.ndarray
    #: Whether this block currently resides on the parallel file system
    #: (set by the work-stealing writer on the producer side, and consulted by
    #: the Preserve-mode output thread on the consumer side).
    on_disk: bool = False
    #: Producer-side creation timestamp (``time.perf_counter`` for the
    #: threaded runtime, simulation time for the simulated one).
    created_at: float = 0.0
    #: Free-form annotations (e.g. physical field name).
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not isinstance(self.data, np.ndarray):
            self.data = np.asarray(self.data)

    @property
    def nbytes(self) -> int:
        """Payload size in bytes."""
        return int(self.data.nbytes)

    def with_data(self, data: np.ndarray, on_disk: Optional[bool] = None) -> "DataBlock":
        """A copy of this block carrying different payload (used by the reader thread)."""
        return DataBlock(
            block_id=self.block_id,
            data=data,
            on_disk=self.on_disk if on_disk is None else on_disk,
            created_at=self.created_at,
            meta=dict(self.meta),
        )

    def __repr__(self) -> str:
        return (
            f"<DataBlock {self.block_id} {self.nbytes} bytes"
            f"{' on-disk' if self.on_disk else ''}>"
        )
