"""The two data paths of the threaded Zipper runtime.

* :class:`NetworkChannel` — the low-latency message path.  In-process it is a
  bounded queue; an optional bandwidth throttle lets tests and benchmarks
  emulate a slower interconnect so that the producer buffer actually fills and
  the work-stealing writer activates.
* :class:`FileChannel` — the parallel-file-system path.  Blocks are written as
  real ``.npy`` files into a spill directory and read back by the consumer's
  reader thread; the same directory doubles as the Preserve-mode output
  location.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional

import numpy as np

from repro.core.blocks import BlockId, DataBlock

__all__ = ["MixedMessage", "NetworkChannel", "FileChannel"]


@dataclass
class MixedMessage:
    """What the sender thread actually transmits (Figure 8's "mixed message").

    A mixed message carries at most one data block plus the IDs of any blocks
    the writer thread has shipped via the file system since the previous
    message, so the consumer learns about file-path blocks without any extra
    communication.  ``eof`` marks the end of one producer's stream.
    """

    block: Optional[DataBlock] = None
    disk_ids: List[BlockId] = field(default_factory=list)
    eof: bool = False
    producer_rank: int = 0

    @property
    def nbytes(self) -> int:
        """Bytes charged to the message path (metadata is negligible)."""
        return self.block.nbytes if self.block is not None else 0


class NetworkChannel:
    """Bounded, optionally throttled, in-memory message channel."""

    def __init__(
        self,
        capacity: int = 0,
        bandwidth: Optional[float] = None,
        latency: float = 0.0,
    ):
        if bandwidth is not None and bandwidth <= 0:
            raise ValueError("bandwidth must be positive when given")
        if latency < 0:
            raise ValueError("latency must be non-negative")
        self._queue: "queue.Queue[MixedMessage]" = queue.Queue(maxsize=capacity)
        self.bandwidth = bandwidth
        self.latency = latency
        self._lock = threading.Lock()
        self.messages_sent = 0
        self.bytes_sent = 0

    def send(self, message: MixedMessage) -> float:
        """Transmit ``message``; returns the (emulated) transmission time.

        The sender thread is occupied for the duration, exactly as a real
        sender thread is occupied while the NIC drains its buffer.
        """
        duration = self.latency
        if self.bandwidth is not None and message.nbytes > 0:
            duration += message.nbytes / self.bandwidth
        if duration > 0:
            time.sleep(duration)
        self._queue.put(message)
        with self._lock:
            self.messages_sent += 1
            self.bytes_sent += message.nbytes
        return duration

    def recv(self, timeout: Optional[float] = None) -> Optional[MixedMessage]:
        """Next message, or ``None`` if the timeout expires."""
        try:
            return self._queue.get(timeout=timeout)
        except queue.Empty:
            return None

    def pending(self) -> int:
        """Messages currently queued (approximate, for monitoring)."""
        return self._queue.qsize()


class FileChannel:
    """Block storage in a directory of ``.npy`` files (the file-system data path)."""

    def __init__(
        self,
        directory: Path,
        bandwidth: Optional[float] = None,
        prefix: str = "block",
    ):
        if bandwidth is not None and bandwidth <= 0:
            raise ValueError("bandwidth must be positive when given")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.bandwidth = bandwidth
        self.prefix = prefix
        self._lock = threading.Lock()
        self.blocks_written = 0
        self.blocks_read = 0
        self.bytes_written = 0
        self.bytes_read = 0

    def path_for(self, block_id: BlockId) -> Path:
        return self.directory / block_id.filename(self.prefix)

    def write(self, block: DataBlock) -> Path:
        """Persist ``block`` and return the file path."""
        path = self.path_for(block.block_id)
        if self.bandwidth is not None and block.nbytes > 0:
            time.sleep(block.nbytes / self.bandwidth)
        np.save(path, block.data, allow_pickle=False)
        with self._lock:
            self.blocks_written += 1
            self.bytes_written += block.nbytes
        return path

    def read(self, block_id: BlockId) -> DataBlock:
        """Load the block stored under ``block_id`` (raises if missing)."""
        path = self.path_for(block_id)
        data = np.load(path, allow_pickle=False)
        if self.bandwidth is not None and data.nbytes > 0:
            time.sleep(data.nbytes / self.bandwidth)
        with self._lock:
            self.blocks_read += 1
            self.bytes_read += int(data.nbytes)
        return DataBlock(block_id=block_id, data=data, on_disk=True)

    def exists(self, block_id: BlockId) -> bool:
        return self.path_for(block_id).exists()

    def delete(self, block_id: BlockId) -> bool:
        """Remove a stored block; returns whether it existed."""
        path = self.path_for(block_id)
        if path.exists():
            path.unlink()
            return True
        return False

    def stored_ids(self) -> List[str]:
        """File names currently present (sorted, for inspection and tests)."""
        return sorted(p.name for p in self.directory.glob(f"{self.prefix}_*.npy"))
