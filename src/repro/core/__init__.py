"""The Zipper runtime system — the paper's primary contribution.

Zipper couples a simulation (producer) application with a data-analysis
(consumer) application *below* the application layer: the simulation calls
``Zipper.write(block_id, data)`` for every fine-grain data block it produces,
the analysis calls ``Zipper.read()`` and is driven purely by data
availability.  Between the two sit a multi-threaded producer runtime module
(buffer + sender thread + work-stealing writer thread) and a multi-threaded
consumer runtime module (buffer + receiver + reader + output threads), which
together provide:

* **fine-grain pipelining** — blocks of 1–8 MB flow through the
  compute → transfer → analyse pipeline independently, with no per-step
  barrier or producer/consumer interlock;
* **the concurrent dual-channel transfer optimisation** — when the producer
  buffer fills past a high-water mark, the writer thread *steals* blocks and
  ships them through the file-system path, relieving the message path
  (Algorithm 1 of the paper);
* **Preserve / No-Preserve modes** — optionally persisting every block for
  later validation;
* **an analytical performance model** —
  ``T_t2s = max(T_comp, T_transfer, T_analysis)`` (plus the store stage in
  Preserve mode), used to validate the measured end-to-end times.

Two implementations share these abstractions:

* the **threaded runtime** in this package, which really runs producer and
  consumer callables on Python threads with an in-memory message channel and
  an on-disk file channel — usable directly on a workstation;
* the **simulated distributed transport**
  (:class:`repro.transports.zipper.ZipperTransport`), which executes the same
  algorithm inside the cluster simulator for the paper's large-scale
  experiments.
"""

from repro.core.blocks import BlockId, DataBlock
from repro.core.config import ZipperConfig, PRESERVE, NO_PRESERVE
from repro.core.buffers import ProducerBuffer, ConsumerBuffer, BufferClosed
from repro.core.channels import MixedMessage, NetworkChannel, FileChannel
from repro.core.stats import RuntimeStats
from repro.core.producer import ProducerRuntime
from repro.core.consumer import ConsumerRuntime
from repro.core.zipper import Zipper, ZipperResult, zip_applications
from repro.core.perf_model import (
    PerformanceModel,
    StageTimes,
    pipeline_makespan,
    sequential_makespan,
    pipeline_schedule,
)

__all__ = [
    "BlockId",
    "DataBlock",
    "ZipperConfig",
    "PRESERVE",
    "NO_PRESERVE",
    "ProducerBuffer",
    "ConsumerBuffer",
    "BufferClosed",
    "MixedMessage",
    "NetworkChannel",
    "FileChannel",
    "RuntimeStats",
    "ProducerRuntime",
    "ConsumerRuntime",
    "Zipper",
    "ZipperResult",
    "zip_applications",
    "PerformanceModel",
    "StageTimes",
    "pipeline_makespan",
    "sequential_makespan",
    "pipeline_schedule",
]
