"""Bounded producer and consumer buffers with high-water-mark semantics.

The producer buffer is the heart of Zipper's flow control: the simulation's
``write`` blocks only when the buffer is completely full (this blocked time is
the *application stall* the paper measures), the sender thread drains it
FIFO, and the work-stealing writer thread removes blocks only while the
occupancy exceeds the high-water mark (Algorithm 1).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Deque, Dict, Optional, Tuple

from repro.core.blocks import BlockId, DataBlock
from repro.core.stats import RuntimeStats

__all__ = ["BufferClosed", "ProducerBuffer", "ConsumerBuffer"]


class BufferClosed(RuntimeError):
    """Raised when putting into a buffer that has been closed."""


class ProducerBuffer:
    """FIFO buffer between the simulation thread and Zipper's helper threads."""

    def __init__(
        self,
        capacity: int,
        high_water_mark: int,
        stats: Optional[RuntimeStats] = None,
    ):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 0 <= high_water_mark <= capacity:
            raise ValueError("high_water_mark must lie within [0, capacity]")
        self.capacity = capacity
        self.high_water_mark = high_water_mark
        self.stats = stats if stats is not None else RuntimeStats()
        self._blocks: Deque[DataBlock] = deque()
        self._lock = threading.Lock()
        self._not_full = threading.Condition(self._lock)
        self._not_empty = threading.Condition(self._lock)
        self._above_watermark = threading.Condition(self._lock)
        self._closed = False
        self.max_occupancy = 0

    # -- state -------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._blocks)

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    @property
    def is_full(self) -> bool:
        with self._lock:
            return len(self._blocks) >= self.capacity

    def above_watermark(self) -> bool:
        with self._lock:
            return len(self._blocks) > self.high_water_mark

    # -- producer side -------------------------------------------------------
    def put(self, block: DataBlock, timeout: Optional[float] = None) -> float:
        """Insert ``block``; returns seconds spent stalled waiting for room."""
        start = time.perf_counter()
        with self._not_full:
            if self._closed:
                raise BufferClosed("cannot put into a closed producer buffer")
            while len(self._blocks) >= self.capacity:
                if not self._not_full.wait(timeout):
                    raise TimeoutError("producer buffer stayed full past the timeout")
                if self._closed:
                    raise BufferClosed("producer buffer closed while waiting")
            self._blocks.append(block)
            self.max_occupancy = max(self.max_occupancy, len(self._blocks))
            self._not_empty.notify()
            if len(self._blocks) > self.high_water_mark:
                self._above_watermark.notify()
        stalled = time.perf_counter() - start
        self.stats.add("producer_stall_time", stalled)
        self.stats.add("blocks_produced", 1)
        return stalled

    def close(self) -> None:
        """Signal that no further blocks will be produced."""
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()
            self._above_watermark.notify_all()
            self._not_full.notify_all()

    # -- sender thread ---------------------------------------------------------
    def take(self, timeout: Optional[float] = None) -> Optional[DataBlock]:
        """Remove the oldest block (FIFO).  Returns ``None`` once closed and empty."""
        with self._not_empty:
            while not self._blocks:
                if self._closed:
                    return None
                if not self._not_empty.wait(timeout):
                    return None
            block = self._blocks.popleft()
            self._not_full.notify()
            return block

    # -- writer (work-stealing) thread ------------------------------------------
    def steal(self, timeout: Optional[float] = None) -> Optional[DataBlock]:
        """Algorithm 1's ``StealBlock``: take the first block while above the mark.

        Blocks on a condition variable while the occupancy is at or below the
        high-water mark; returns ``None`` when the buffer is closed (so the
        writer thread can terminate) or when the wait times out.
        """
        with self._above_watermark:
            while len(self._blocks) <= self.high_water_mark:
                if self._closed:
                    return None
                if not self._above_watermark.wait(timeout):
                    return None
            block = self._blocks.popleft()
            self._not_full.notify()
            return block

    def drain(self) -> Deque[DataBlock]:
        """Remove and return every remaining block (used at shutdown by tests)."""
        with self._lock:
            blocks, self._blocks = self._blocks, deque()
            self._not_full.notify_all()
            return blocks


class ConsumerBuffer:
    """Buffer of received blocks on the analysis side, with free accounting.

    A block may be *freed* only once it has been analysed and — in Preserve
    mode — also stored by the output thread (Section 4.2).  The buffer tracks
    that bookkeeping so tests and the runtime can assert nothing is freed
    early and nothing leaks.
    """

    def __init__(self, capacity: int, preserve: bool = False):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.preserve = preserve
        self._queue: Deque[DataBlock] = deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._not_full = threading.Condition(self._lock)
        self._closed = False
        #: block key -> (analyzed, stored) for blocks delivered but not yet freed
        self._pending: Dict[Tuple[int, int, int], Tuple[bool, bool]] = {}
        self.freed_blocks = 0
        self.max_occupancy = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._queue)

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    @property
    def outstanding(self) -> int:
        """Blocks delivered to the analysis but not yet freed."""
        with self._lock:
            return len(self._pending)

    def put(self, block: DataBlock, timeout: Optional[float] = None) -> None:
        with self._not_full:
            if self._closed:
                raise BufferClosed("cannot put into a closed consumer buffer")
            while len(self._queue) >= self.capacity:
                if not self._not_full.wait(timeout):
                    raise TimeoutError("consumer buffer stayed full past the timeout")
                if self._closed:
                    raise BufferClosed("consumer buffer closed while waiting")
            self._queue.append(block)
            self.max_occupancy = max(self.max_occupancy, len(self._queue))
            self._not_empty.notify()

    def get(self, timeout: Optional[float] = None) -> Optional[DataBlock]:
        """Next block for the analysis; ``None`` once closed and drained."""
        with self._not_empty:
            while not self._queue:
                if self._closed:
                    return None
                if not self._not_empty.wait(timeout):
                    return None
            block = self._queue.popleft()
            self._pending[block.block_id.key] = (False, block.on_disk)
            self._not_full.notify()
            return block

    def close(self) -> None:
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()
            self._not_full.notify_all()

    # -- free accounting --------------------------------------------------
    def mark_analyzed(self, block_id: BlockId) -> bool:
        """Record that the analysis finished with the block; returns True if freed."""
        return self._mark(block_id, analyzed=True)

    def mark_stored(self, block_id: BlockId) -> bool:
        """Record that the output thread persisted the block; returns True if freed."""
        return self._mark(block_id, stored=True)

    def _mark(self, block_id: BlockId, analyzed: bool = False, stored: bool = False) -> bool:
        key = block_id.key
        with self._lock:
            if key not in self._pending:
                return False
            a, s = self._pending[key]
            a = a or analyzed
            s = s or stored
            if a and (s or not self.preserve):
                del self._pending[key]
                self.freed_blocks += 1
                return True
            self._pending[key] = (a, s)
            return False
