"""Thread-safe runtime statistics shared by the Zipper runtime modules."""

from __future__ import annotations

import threading
from typing import Dict

__all__ = ["RuntimeStats"]


class RuntimeStats:
    """Counters and accumulated timers, safe to update from any thread.

    The names used by the runtime (all in seconds or counts):

    ``producer_stall_time``      time the application spent blocked in ``write``
    ``sender_busy_time``         time the sender thread spent transmitting
    ``writer_busy_time``         time the writer thread spent storing blocks
    ``consumer_wait_time``       time the analysis spent waiting in ``read``
    ``blocks_produced``          blocks handed to the producer runtime
    ``blocks_sent_network``      blocks shipped on the message path
    ``blocks_stolen``            blocks shipped on the file path by work stealing
    ``blocks_analyzed``          blocks delivered to the analysis
    ``blocks_preserved``         blocks persisted by the output thread
    ``bytes_network`` / ``bytes_file``   data volume per path
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._values: Dict[str, float] = {}

    def add(self, name: str, amount: float = 1.0) -> None:
        """Accumulate ``amount`` into counter ``name``."""
        with self._lock:
            self._values[name] = self._values.get(name, 0.0) + amount

    def set(self, name: str, value: float) -> None:
        """Overwrite counter ``name``."""
        with self._lock:
            self._values[name] = float(value)

    def get(self, name: str, default: float = 0.0) -> float:
        with self._lock:
            return self._values.get(name, default)

    def snapshot(self) -> Dict[str, float]:
        """A consistent copy of every counter."""
        with self._lock:
            return dict(self._values)

    def merge(self, other: "RuntimeStats") -> "RuntimeStats":
        """Return new stats summing this and ``other``."""
        merged = RuntimeStats()
        for src in (self, other):
            for key, value in src.snapshot().items():
                merged.add(key, value)
        return merged

    # -- derived convenience ------------------------------------------------
    @property
    def steal_fraction(self) -> float:
        """Fraction of produced blocks that travelled on the file path."""
        snap = self.snapshot()
        produced = snap.get("blocks_produced", 0.0)
        if produced <= 0:
            return 0.0
        return snap.get("blocks_stolen", 0.0) / produced

    def __repr__(self) -> str:
        parts = ", ".join(f"{k}={v:g}" for k, v in sorted(self.snapshot().items()))
        return f"<RuntimeStats {parts}>"
