"""The consumer runtime module (paper Figure 9).

One consumer runtime serves one analysis process.  It owns:

* the **receiver thread** — takes mixed messages off the message path, puts
  the contained data block into the consumer buffer and forwards the IDs of
  file-path blocks to the reader thread;
* the **reader thread** — loads file-path blocks from the file system and puts
  them into the consumer buffer;
* the **output thread** (Preserve mode only) — persists every block that did
  not already travel through the file system, so the complete simulation
  output survives the run;
* the **consumer buffer** — from which the analysis application pulls blocks
  with ``read()``, purely driven by data availability.

A block is freed only after it has been analysed and, in Preserve mode, also
stored — the accounting lives in :class:`repro.core.buffers.ConsumerBuffer`.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Iterator, Optional, Set, Tuple

from repro.core.blocks import BlockId, DataBlock
from repro.core.buffers import BufferClosed, ConsumerBuffer
from repro.core.channels import FileChannel, NetworkChannel
from repro.core.config import ZipperConfig
from repro.core.stats import RuntimeStats

__all__ = ["ConsumerRuntime"]

_SENTINEL = object()


class ConsumerRuntime:
    """Multi-threaded consumer-side runtime for one analysis rank."""

    def __init__(
        self,
        config: ZipperConfig,
        network: NetworkChannel,
        file_channel: FileChannel,
        stats: Optional[RuntimeStats] = None,
        preserve_channel: Optional[FileChannel] = None,
    ):
        self.config = config
        self.network = network
        self.file_channel = file_channel
        self.stats = stats if stats is not None else RuntimeStats()
        self.buffer = ConsumerBuffer(config.consumer_buffer_blocks, preserve=config.preserve)
        self.preserve_channel = preserve_channel
        if config.preserve and preserve_channel is None:
            self.preserve_channel = FileChannel(
                file_channel.directory / "preserved", prefix="preserved"
            )

        self._read_queue: "queue.Queue" = queue.Queue()
        self._output_queue: "queue.Queue" = queue.Queue()
        self._stored_keys: Set[Tuple[int, int, int]] = set()
        self._stored_lock = threading.Lock()
        self._eof_count = 0
        self._started = False
        self._stopped = False

        self._receiver_thread = threading.Thread(
            target=self._receiver_loop, name="zipper-receiver", daemon=True
        )
        self._reader_thread = threading.Thread(
            target=self._reader_loop, name="zipper-reader", daemon=True
        )
        self._output_thread: Optional[threading.Thread] = None
        if config.preserve:
            self._output_thread = threading.Thread(
                target=self._output_loop, name="zipper-output", daemon=True
            )

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> "ConsumerRuntime":
        if not self._started:
            self._started = True
            self._receiver_thread.start()
            self._reader_thread.start()
            if self._output_thread is not None:
                self._output_thread.start()
        return self

    @property
    def started(self) -> bool:
        return self._started

    @property
    def finished(self) -> bool:
        """True once every producer signalled end-of-stream and all blocks are delivered."""
        return self.buffer.closed and len(self.buffer) == 0

    def join(self, timeout: float = 60.0) -> None:
        """Wait for the helper threads to finish after the stream has ended."""
        self._receiver_thread.join(timeout)
        self._reader_thread.join(timeout)
        if self._output_thread is not None:
            self._output_thread.join(timeout)
        if (
            self._receiver_thread.is_alive()
            or self._reader_thread.is_alive()
            or (self._output_thread is not None and self._output_thread.is_alive())
        ):
            raise RuntimeError("Zipper consumer helper threads failed to stop in time")

    def __enter__(self) -> "ConsumerRuntime":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.join()

    # -- application interface (Zipper.read) -----------------------------------
    def read(self, timeout: Optional[float] = None) -> Optional[DataBlock]:
        """Next available block (any order), or ``None`` at end of stream.

        The time spent waiting is accumulated into ``consumer_wait_time``.
        """
        if not self._started:
            self.start()
        start = time.perf_counter()
        block = self.buffer.get(timeout=timeout)
        self.stats.add("consumer_wait_time", time.perf_counter() - start)
        if block is not None:
            self.stats.add("blocks_analyzed", 1)
        return block

    def release(self, block_id: BlockId) -> bool:
        """Mark a block as analysed; returns ``True`` once it is fully freed."""
        freed = self.buffer.mark_analyzed(block_id)
        if not freed and self.config.preserve:
            with self._stored_lock:
                stored = block_id.key in self._stored_keys
            if stored:
                freed = self.buffer.mark_stored(block_id)
        return freed

    def blocks(self, timeout: Optional[float] = None) -> Iterator[DataBlock]:
        """Iterate over every incoming block, releasing each after the caller is done."""
        while True:
            block = self.read(timeout=timeout)
            if block is None:
                return
            try:
                yield block
            finally:
                self.release(block.block_id)

    # -- helper threads ------------------------------------------------------
    def _receiver_loop(self) -> None:
        expected_eofs = self.config.num_producers
        try:
            while True:
                # Blocks until a message arrives: every producer ends its
                # stream with an end-of-stream message (the abort path
                # included — the sender's final flush always runs), so the
                # loop needs no wake-and-recheck polling.
                message = self.network.recv()
                for block_id in message.disk_ids:
                    self._read_queue.put(block_id)
                if message.block is not None:
                    self._admit(message.block)
                    self.stats.add("blocks_received_network", 1)
                if message.eof:
                    self._eof_count += 1
                    if self._eof_count >= expected_eofs:
                        break
        except BufferClosed:
            # The session was aborted while this thread was delivering into
            # the consumer buffer; stop pumping and let the reader exit too.
            pass
        finally:
            # All producers finished (or the session aborted): after the
            # reader drains the pending file-path IDs, the stream is complete.
            self._read_queue.put(_SENTINEL)

    def _reader_loop(self) -> None:
        try:
            while True:
                item = self._read_queue.get()
                if item is _SENTINEL:
                    break
                start = time.perf_counter()
                block = self.file_channel.read(item)
                self.stats.add("reader_busy_time", time.perf_counter() - start)
                self.stats.add("blocks_received_file", 1)
                self._admit(block)
        except BufferClosed:
            pass
        finally:
            self.buffer.close()
            self._output_queue.put(_SENTINEL)
            self._stopped = True

    def _admit(self, block: DataBlock) -> None:
        self.buffer.put(block)
        if self.config.preserve and not block.on_disk:
            self._output_queue.put(block)

    def _output_loop(self) -> None:
        assert self.preserve_channel is not None
        while True:
            item = self._output_queue.get()
            if item is _SENTINEL:
                break
            start = time.perf_counter()
            self.preserve_channel.write(item)
            self.stats.add("output_busy_time", time.perf_counter() - start)
            self.stats.add("blocks_preserved", 1)
            with self._stored_lock:
                self._stored_keys.add(item.block_id.key)
            self.buffer.mark_stored(item.block_id)
