"""Compatibility shim: the analytical model moved to :mod:`repro.perfmodel`.

The Section 4.4 two-application estimator (:class:`PerformanceModel` over
``P``/``Q`` cores and :class:`StageTimes` per-block costs) and the Figure 11
makespan helpers now live in :mod:`repro.perfmodel.zipper`, alongside the
generalized multi-stage :class:`~repro.perfmodel.pipeline.PipelinePerfModel`
that the model-driven elastic policies consume.  This module re-exports the
historical names so existing imports keep working unchanged.
"""

from __future__ import annotations

from repro.perfmodel.zipper import (
    PerformanceModel,
    StageTimes,
    pipeline_makespan,
    pipeline_schedule,
    sequential_makespan,
)

__all__ = [
    "StageTimes",
    "PerformanceModel",
    "sequential_makespan",
    "pipeline_makespan",
    "pipeline_schedule",
]
