"""The producer runtime module (paper Figure 8).

One producer runtime serves one simulation process.  It owns:

* the **producer buffer** — a bounded FIFO the application's ``write`` fills;
* the **sender thread** — drains the buffer and ships blocks over the message
  path, attaching the IDs of any file-path blocks to form *mixed messages*;
* the **writer thread** — the concurrent dual-channel optimisation
  (Algorithm 1): while the buffer occupancy exceeds the high-water mark it
  steals blocks and stores them on the file-system path so the application is
  never blocked by a slow consumer or a congested message path.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import List, Optional

import numpy as np

from repro.core.blocks import BlockId, DataBlock
from repro.core.buffers import ProducerBuffer
from repro.core.channels import FileChannel, MixedMessage, NetworkChannel
from repro.core.config import ZipperConfig
from repro.core.stats import RuntimeStats

__all__ = ["ProducerRuntime"]


class ProducerRuntime:
    """Multi-threaded producer-side runtime for one simulation rank."""

    def __init__(
        self,
        config: ZipperConfig,
        network: NetworkChannel,
        file_channel: FileChannel,
        stats: Optional[RuntimeStats] = None,
        rank: int = 0,
    ):
        self.config = config
        self.network = network
        self.file_channel = file_channel
        self.stats = stats if stats is not None else RuntimeStats()
        self.rank = rank
        self.buffer = ProducerBuffer(
            config.producer_buffer_blocks, config.high_water_mark, self.stats
        )
        self._disk_ids: "queue.SimpleQueue[BlockId]" = queue.SimpleQueue()
        self._writer_done = threading.Event()
        self._started = False
        self._closed = False
        self._sender_thread = threading.Thread(
            target=self._sender_loop, name=f"zipper-sender-{rank}", daemon=True
        )
        self._writer_thread: Optional[threading.Thread] = None
        if config.concurrent_transfer:
            self._writer_thread = threading.Thread(
                target=self._writer_loop, name=f"zipper-writer-{rank}", daemon=True
            )
        else:
            self._writer_done.set()

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> "ProducerRuntime":
        """Start the helper threads (idempotent)."""
        if not self._started:
            self._started = True
            self._sender_thread.start()
            if self._writer_thread is not None:
                self._writer_thread.start()
        return self

    @property
    def started(self) -> bool:
        return self._started

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self, timeout: float = 60.0) -> None:
        """Flush everything, send the end-of-stream message and stop the threads."""
        if not self._started:
            self.start()
        if self._closed:
            return
        self._closed = True
        self.buffer.close()
        if self._writer_thread is not None:
            self._writer_thread.join(timeout)
        self._writer_done.set()
        self._sender_thread.join(timeout)
        if self._sender_thread.is_alive() or (
            self._writer_thread is not None and self._writer_thread.is_alive()
        ):
            raise RuntimeError("Zipper producer helper threads failed to stop in time")

    def __enter__(self) -> "ProducerRuntime":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- application interface (Zipper.write) ---------------------------------
    def write(self, block_id: BlockId, data: np.ndarray, **meta) -> float:
        """Hand one fine-grain block to the runtime.

        Returns the number of seconds the call was stalled waiting for buffer
        space (the quantity reported as *application stall time* in the
        paper's Figure 14).
        """
        if not self._started:
            self.start()
        if self._closed:
            raise RuntimeError("cannot write after the producer runtime was closed")
        block = DataBlock(
            block_id=block_id,
            data=np.asarray(data),
            created_at=time.perf_counter(),
            meta=dict(meta),
        )
        return self.buffer.put(block)

    def write_array(self, step: int, array: np.ndarray, rank: Optional[int] = None) -> int:
        """Split ``array`` into ``config.block_size`` blocks and write them all.

        Convenience used by the example applications; returns the number of
        blocks written.
        """
        rank = self.rank if rank is None else rank
        flat = np.ascontiguousarray(array).reshape(-1)
        itemsize = flat.dtype.itemsize
        elems_per_block = max(1, self.config.block_size // itemsize)
        nblocks = 0
        for index, start in enumerate(range(0, flat.size, elems_per_block)):
            chunk = flat[start : start + elems_per_block]
            self.write(
                BlockId(step=step, source_rank=rank, block_index=index, offset=start),
                chunk,
            )
            nblocks += 1
        return nblocks

    # -- helper threads ------------------------------------------------------
    def _drain_disk_ids(self) -> List[BlockId]:
        ids: List[BlockId] = []
        while True:
            try:
                ids.append(self._disk_ids.get_nowait())
            except queue.Empty:
                return ids

    def _sender_loop(self) -> None:
        while True:
            # Blocks on the buffer's not-empty condition; a None return means
            # the buffer is closed *and* fully drained, so nothing further
            # can arrive (the writer only ever removes blocks).
            block = self.buffer.take()
            if block is None:
                # Wait for the writer's in-flight block (if any) so its disk
                # id travels on the end-of-stream message below.
                self._writer_done.wait()
                break
            disk_ids = self._drain_disk_ids()
            message = MixedMessage(
                block=block, disk_ids=disk_ids, producer_rank=self.rank
            )
            start = time.perf_counter()
            self.network.send(message)
            elapsed = time.perf_counter() - start
            self.stats.add("sender_busy_time", elapsed)
            self.stats.add("blocks_sent_network", 1)
            self.stats.add("bytes_network", block.nbytes)
            if disk_ids:
                self.stats.add("disk_ids_piggybacked", len(disk_ids))
        # Final flush: any block IDs the writer queued after the last data
        # message still have to reach the consumer, followed by end-of-stream.
        final_ids = self._drain_disk_ids()
        self.network.send(
            MixedMessage(block=None, disk_ids=final_ids, eof=True, producer_rank=self.rank)
        )

    def _writer_loop(self) -> None:
        while True:
            # Blocks on the above-watermark condition; None only when the
            # buffer has been closed (any backlog above the mark is still
            # stolen before the loop observes the close).
            block = self.buffer.steal()
            if block is None:
                break
            start = time.perf_counter()
            self.file_channel.write(block)
            elapsed = time.perf_counter() - start
            self._disk_ids.put(block.block_id)
            self.stats.add("writer_busy_time", elapsed)
            self.stats.add("blocks_stolen", 1)
            self.stats.add("bytes_file", block.nbytes)
        self._writer_done.set()
